"""Service-level protocol: operations, limits, and the typed error.

The connectivity service reuses the RPC frame codec wholesale
(:func:`repro.mpc.rpc.encode_frame` and friends); this module only pins
down the *semantic* layer on top of it — which operations exist, what
their headers carry, and the error type a client raises when the server
reports a failure.

Operations (the ``op`` header field of a request frame):

``put_graph``
    Register a graph: header carries ``n``, the blob carries the
    ``(m, 2)`` edge array.  Reply returns the graph's content digest —
    the key for every subsequent query.
``components``
    Full component labelling of a registered graph (by digest); the
    reply blob carries the canonical label array.
``connected``
    Batched pair queries: the blob carries a ``(k, 2)`` vertex-pair
    array, the reply a boolean array (same-component per pair).
``component_count``
    Number of components of a registered graph (header scalar reply).
``stats``
    Server counters: graphs held, queries served, cache hits/misses,
    computations run.
``ping``
    Liveness probe (used by client connect checks and tests).

Every reply frame carries ``ok: true`` or ``ok: false`` plus
``error``/``message``; a client maps the latter to
:class:`ServiceError`.
"""

from __future__ import annotations

from repro.mpc.rpc import RpcError

#: Operations a server accepts (anything else is rejected typed).
SERVICE_OPS = (
    "put_graph",
    "components",
    "connected",
    "component_count",
    "stats",
    "ping",
)

#: Default seconds a client waits for the initial connection.
DEFAULT_CONNECT_TIMEOUT = 10.0

#: Default seconds a client waits for one reply (covers a full
#: pipeline computation on a cache miss, so it is generous).
DEFAULT_CALL_TIMEOUT = 120.0


class ServiceError(RpcError):
    """A service-level failure reported by the server (unknown digest,
    malformed query, engine failure) or detected by the client
    (connection refused, reply timeout).  Subclasses
    :class:`~repro.mpc.rpc.RpcError` so callers can catch the whole
    wire-failure family with one ``except``.
    """
