"""Synchronous client for the connectivity service.

One :class:`ServiceClient` holds one blocking Unix-domain connection.
Calls are serialised per client by an internal lock (one request, one
reply), so a single instance is safe to share between threads; for
genuine concurrency open one client per thread — the server multiplexes
connections on its event loop either way.
"""

from __future__ import annotations

import socket
import threading

import numpy as np

from repro.mpc.rpc import (
    RpcProtocolError,
    RpcTimeoutError,
    pack_arrays,
    recv_frame,
    send_frame,
    unpack_arrays,
)
from repro.service.protocol import (
    DEFAULT_CALL_TIMEOUT,
    DEFAULT_CONNECT_TIMEOUT,
    ServiceError,
)


class ServiceClient:
    """Blocking client for one :class:`~repro.service.ServiceServer`.

    Parameters
    ----------
    path:
        The server's socket path (``ServiceServer.address``).
    connect_timeout:
        Seconds to wait for the initial connection.
    call_timeout:
        Seconds to wait for each reply; generous by default because a
        cache-missing query runs a full pipeline computation.

    Raises
    ------
    ServiceError
        Connection failure, a server-reported error, or a reply
        arriving for the wrong request.
    RpcTimeoutError
        No reply within ``call_timeout``.
    RpcProtocolError
        A malformed frame on the connection.
    """

    def __init__(
        self,
        path: str,
        *,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        call_timeout: float = DEFAULT_CALL_TIMEOUT,
    ):
        self.path = path
        self.call_timeout = float(call_timeout)
        self._lock = threading.Lock()
        self._request_counter = 0
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(float(connect_timeout))
        try:
            self._sock.connect(path)
        except (OSError, socket.timeout) as exc:
            self._sock.close()
            raise ServiceError(
                f"cannot connect to service at {path!r}: {exc}"
            ) from None
        self._sock.settimeout(self.call_timeout)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- plumbing ------------------------------------------------------------

    def _call(self, header: dict, blob: bytes = b"") -> "tuple[dict, bytes]":
        """One request/reply exchange; raises the typed error family."""
        if self._sock is None:
            raise ServiceError("client is closed")
        with self._lock:
            self._request_counter += 1
            request_id = self._request_counter
            header = dict(header, id=request_id)
            try:
                send_frame(self._sock, header, blob)
                reply = recv_frame(self._sock)
            except socket.timeout:
                self.close()
                raise RpcTimeoutError(
                    f"no reply from {self.path!r} within "
                    f"{self.call_timeout:.1f}s"
                ) from None
            except (ConnectionError, OSError) as exc:
                self.close()
                raise ServiceError(f"connection lost: {exc}") from None
        if reply is None:
            self.close()
            raise ServiceError("server closed the connection")
        reply_header, reply_blob = reply
        if not reply_header.get("ok"):
            raise ServiceError(
                f"{reply_header.get('error', 'ServiceError')}: "
                f"{reply_header.get('message', 'unknown server error')}"
            )
        if reply_header.get("id") != request_id:
            self.close()
            raise RpcProtocolError(
                f"reply for request {reply_header.get('id')!r}, "
                f"expected {request_id}"
            )
        return reply_header, reply_blob

    # -- operations ----------------------------------------------------------

    def ping(self) -> bool:
        """Liveness probe; True when the server answers."""
        header, _ = self._call({"op": "ping"})
        return bool(header.get("pong"))

    def put_graph(self, n: int, edges) -> str:
        """Register a graph; returns its content digest (idempotent —
        re-registering an identical graph returns the same digest and
        keeps its cache entry).
        """
        edges = np.ascontiguousarray(
            np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        )
        meta, blob, _ = pack_arrays({"edges": edges})
        header, _ = self._call(
            {"op": "put_graph", "n": int(n), "arrays": meta}, blob
        )
        return header["digest"]

    def components(self, digest: str) -> np.ndarray:
        """Canonical component labels of a registered graph."""
        header, blob = self._call({"op": "components", "digest": digest})
        return unpack_arrays(header["arrays"], blob, {})["labels"]

    def component_count(self, digest: str) -> int:
        """Number of components of a registered graph."""
        header, _ = self._call({"op": "component_count", "digest": digest})
        return int(header["count"])

    def connected(self, digest: str, pairs) -> np.ndarray:
        """Batched same-component queries: ``pairs`` is array-like of
        shape ``(k, 2)``; returns a boolean array of length ``k``.
        """
        pairs = np.ascontiguousarray(
            np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        )
        meta, blob, _ = pack_arrays({"pairs": pairs})
        header, reply_blob = self._call(
            {"op": "connected", "digest": digest, "arrays": meta}, blob
        )
        return unpack_arrays(header["arrays"], reply_blob, {})["connected"]

    def stats(self) -> dict:
        """The server's counter snapshot (see ``ServiceServer.stats``)."""
        header, _ = self._call({"op": "stats"})
        return header["stats"]
