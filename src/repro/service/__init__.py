"""Long-lived connectivity service over the RPC wire protocol.

The millions-of-users deployment shape from the ROADMAP: a resident
:class:`ServiceServer` holds a graph store and answers connectivity
queries computed once per graph through
:func:`repro.core.pipeline.mpc_connected_components` — over any
registered engine and any execution backend, including the
wire-protocol :class:`~repro.mpc.rpc.RpcBackend` — while many
concurrent :class:`ServiceClient` connections admit batched queries.

Results are cached by the same graph-content digest the plan-trace
layer uses (:func:`repro.mpc.plan.graph_digest`), so repeat queries —
including a streaming maintainer re-asking about an unchanged prefix
via :meth:`repro.streaming.StreamingConnectivity.graph_digest` — cost
one cache lookup, and concurrent first queries for the same graph
share a single computation.

Everything speaks the length-prefixed frame codec of
:mod:`repro.mpc.rpc`; failures surface as the typed
:class:`ServiceError` / :class:`~repro.mpc.rpc.RpcError` family, never
as hangs or bare socket errors.
"""

from repro.service.client import ServiceClient
from repro.service.protocol import ServiceError
from repro.service.server import ServiceServer

__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
]
