"""The resident connectivity server (see package docs).

One :class:`ServiceServer` owns a Unix-domain listener, an asyncio
event loop on a daemon thread, a graph store, and a compute-once label
cache.  Client connections are handled concurrently on the loop; the
actual pipeline computations run serialised on a single worker thread
(the MPC engine and backend are not reentrant), with concurrent
requests for the same graph awaiting one shared future.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import tempfile
import threading
import weakref
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.graph import Graph
from repro.mpc.plan import graph_digest
from repro.mpc.rpc import (
    RpcProtocolError,
    encode_frame,
    pack_arrays,
    read_frame_async,
    unpack_arrays,
)
from repro.service.protocol import SERVICE_OPS


def _stop_server(loop, thread, tempdir) -> None:
    """Finalizer: stop the loop thread and remove the socket directory."""
    if loop is not None and not loop.is_closed():

        def _cancel_and_stop() -> None:
            tasks = list(asyncio.all_tasks(loop))
            for task in tasks:
                task.cancel()

            async def _drain() -> None:
                await asyncio.gather(*tasks, return_exceptions=True)
                loop.stop()

            asyncio.ensure_future(_drain())

        with contextlib.suppress(RuntimeError):
            loop.call_soon_threadsafe(_cancel_and_stop)
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
        if not loop.is_running():
            with contextlib.suppress(RuntimeError):
                loop.close()
    if tempdir is not None:
        with contextlib.suppress(OSError):
            tempdir.cleanup()


class ServiceServer:
    """Long-lived connectivity service over a Unix-domain socket.

    Parameters
    ----------
    path:
        Socket path to listen on; a private temp directory is created
        when ``None`` (read the bound path from :attr:`address`).
    engine:
        Registered connectivity-engine name every computation runs
        through (``"paper"``, ``"liu_tarjan"``, ``"exponentiation"``,
        ``"portfolio"``).
    backend:
        Execution-backend spec for the data plane — any
        :func:`repro.mpc.backends.make_backend` name (``"rpc"`` puts
        the whole compute path on the wire protocol) or a ready
        instance.  Constructed once and reused across computations;
        instances passed in are owned by the caller.
    spectral_gap_bound:
        The paper's ``λ`` lower bound applied to every query graph.
    config, seed:
        Pipeline tuning constants and the RNG seed; both are fixed for
        the server's lifetime so every computation is deterministic —
        a cached result is bit-identical to a fresh one.

    Results are cached per graph-content digest
    (:func:`repro.mpc.plan.graph_digest`): the first query for a digest
    computes, concurrent duplicates await that same computation, and
    later queries are pure cache hits.  Distinct graphs never share an
    entry — the digest covers the vertex count and every edge byte.
    """

    def __init__(
        self,
        path: "str | None" = None,
        *,
        engine: str = "paper",
        backend=None,
        spectral_gap_bound: float = 0.1,
        config=None,
        seed: int = 23,
    ):
        self.engine = engine
        self.spectral_gap_bound = float(spectral_gap_bound)
        self.config = config
        self.seed = int(seed)
        self._backend_spec = backend
        self._backend = None
        self._owns_backend = False
        self._path = path
        self._tempdir: "tempfile.TemporaryDirectory | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: "threading.Thread | None" = None
        self._server: "asyncio.AbstractServer | None" = None
        self._executor: "ThreadPoolExecutor | None" = None
        self._finalizer = None
        self._graphs: "dict[str, tuple[int, np.ndarray]]" = {}
        self._labels: "dict[str, asyncio.Future]" = {}
        self._counters = dict.fromkeys(
            ("queries", "cache_hits", "cache_misses", "computes", "errors"), 0
        )
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> str:
        """The socket path clients connect to (after :meth:`start`)."""
        if self._path is None:
            raise RuntimeError("server not started; no address yet")
        return self._path

    def start(self) -> "ServiceServer":
        """Bind the socket and serve until :meth:`close` (returns self)."""
        if self._started:
            return self
        from repro.mpc.backends import ExecutionBackend, make_backend

        if isinstance(self._backend_spec, ExecutionBackend):
            self._backend = self._backend_spec
        else:
            self._backend = make_backend(self._backend_spec)
            self._owns_backend = True
        if self._path is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-svc-")
            self._path = os.path.join(
                self._tempdir.name, f"service-{os.getpid()}.sock"
            )
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="svc-compute"
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="svc-server", daemon=True
        )
        self._thread.start()
        self._finalizer = weakref.finalize(
            self, _stop_server, self._loop, self._thread, self._tempdir
        )
        fut = asyncio.run_coroutine_threadsafe(self._serve(), self._loop)
        fut.result(timeout=10.0)
        self._started = True
        return self

    async def _serve(self) -> None:
        """Create the listening server on the loop thread."""
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=self._path
        )

    def close(self) -> None:
        """Stop serving, release the compute thread and backend (idempotent)."""
        if self._server is not None and self._loop is not None:
            with contextlib.suppress(Exception):
                asyncio.run_coroutine_threadsafe(
                    self._close_server(), self._loop
                ).result(timeout=5.0)
            self._server = None
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        if self._backend is not None and self._owns_backend:
            self._backend.close()
        self._started = False

    async def _close_server(self) -> None:
        """Close the listener on the loop thread."""
        self._server.close()
        await self._server.wait_closed()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request handling ----------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        """Serve one client connection: a frame loop until EOF.

        Each request is dispatched to its op handler; protocol
        violations and handler failures are reported back as typed
        error replies (the connection survives handler errors and
        drops on protocol errors).
        """
        try:
            while True:
                try:
                    frame = await read_frame_async(reader)
                except RpcProtocolError as exc:
                    await self._reply_error(writer, None, exc)
                    return
                if frame is None:
                    return
                header, blob = frame
                op = header.get("op")
                try:
                    if op not in SERVICE_OPS:
                        raise RpcProtocolError(
                            f"unknown service op {op!r}; "
                            f"expected one of {list(SERVICE_OPS)}"
                        )
                    reply_header, reply_blob = await self._dispatch(
                        op, header, blob
                    )
                except asyncio.CancelledError:
                    raise
                except BaseException as exc:  # noqa: BLE001 - typed reply
                    self._counters["errors"] += 1
                    await self._reply_error(writer, header.get("id"), exc)
                    continue
                reply_header["ok"] = True
                reply_header["id"] = header.get("id")
                writer.write(encode_frame(reply_header, reply_blob))
                await writer.drain()
        except (ConnectionError, OSError):
            return
        except asyncio.CancelledError:
            # Shutdown path: absorb the cancellation so the task ends
            # clean — the 3.11 streams connection_made done-callback
            # calls task.exception() on cancelled handler tasks and
            # would log a spurious CancelledError traceback otherwise.
            return
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    async def _reply_error(self, writer, request_id, exc) -> None:
        """Send one typed error reply (best effort)."""
        with contextlib.suppress(ConnectionError, OSError):
            writer.write(
                encode_frame(
                    {
                        "ok": False,
                        "id": request_id,
                        "error": type(exc).__name__,
                        "message": str(exc),
                    }
                )
            )
            await writer.drain()

    async def _dispatch(self, op, header, blob) -> "tuple[dict, bytes]":
        """Route one request to its handler; returns (header, blob)."""
        if op == "ping":
            return {"pong": True}, b""
        if op == "stats":
            return {"stats": self.stats()}, b""
        if op == "put_graph":
            return self._op_put_graph(header, blob)
        # Everything below queries a registered graph by digest.
        digest = header.get("digest")
        if digest not in self._graphs:
            raise ValueError(
                f"unknown graph digest {digest!r}; call put_graph first"
            )
        labels = await self._labels_for(digest)
        self._counters["queries"] += 1
        if op == "components":
            meta, out_blob, _ = pack_arrays({"labels": labels})
            return {"arrays": meta}, out_blob
        if op == "component_count":
            count = int(labels.max()) + 1 if labels.size else 0
            return {"count": count}, b""
        # op == "connected": batched same-component pair queries.
        pairs = unpack_arrays(header["arrays"], blob, {}).get("pairs")
        if pairs is None or pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError("connected queries need a (k, 2) 'pairs' array")
        n = self._graphs[digest][0]
        pairs = pairs.astype(np.int64, copy=False)
        if pairs.size and (pairs.min() < 0 or pairs.max() >= n):
            raise ValueError(f"pair endpoint out of range [0, {n})")
        same = labels[pairs[:, 0]] == labels[pairs[:, 1]]
        meta, out_blob, _ = pack_arrays({"connected": same})
        return {"arrays": meta}, out_blob

    def _op_put_graph(self, header, blob) -> "tuple[dict, bytes]":
        """Register a graph; returns its content digest (idempotent)."""
        n = int(header["n"])
        edges = unpack_arrays(header["arrays"], blob, {}).get("edges")
        if edges is None:
            raise ValueError("put_graph needs an 'edges' array")
        edges = np.ascontiguousarray(edges, dtype=np.int64).reshape(-1, 2)
        # Validate eagerly so a bad graph fails at registration, not at
        # first query time deep inside the pipeline.
        Graph(n, edges)
        digest = graph_digest(n, edges)
        self._graphs.setdefault(digest, (n, edges))
        return {"digest": digest}, b""

    # -- computation + cache -------------------------------------------------

    async def _labels_for(self, digest: str) -> np.ndarray:
        """The cached labels for a digest, computing once on first demand.

        Concurrent callers for the same digest all await the same
        future, so one computation serves every in-flight duplicate; a
        failed computation is evicted so a later query can retry.
        """
        fut = self._labels.get(digest)
        if fut is not None:
            self._counters["cache_hits"] += 1
            return await asyncio.shield(fut)
        self._counters["cache_misses"] += 1
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        self._labels[digest] = fut
        try:
            labels = await loop.run_in_executor(
                self._executor, self._compute, digest
            )
        except BaseException as exc:
            self._labels.pop(digest, None)
            if not fut.done():
                fut.set_exception(exc)
                # The shield above means nobody may ever await it.
                fut.exception()
            raise
        fut.set_result(labels)
        return labels

    def _compute(self, digest: str) -> np.ndarray:
        """Run the connectivity pipeline for one stored graph (worker
        thread; serialised by the single-slot executor because neither
        the MPC engine nor the backend is reentrant).
        """
        from repro.core.pipeline import mpc_connected_components

        n, edges = self._graphs[digest]
        result = mpc_connected_components(
            Graph(n, edges),
            self.spectral_gap_bound,
            config=self.config,
            rng=self.seed,
            engine=self.engine,
            backend=self._backend,
        )
        self._counters["computes"] += 1
        labels = result.labels
        labels.flags.writeable = False
        return labels

    # -- reporting -----------------------------------------------------------

    def stats(self) -> dict:
        """Server counters: graphs held, queries, cache hits/misses,
        computations run, handler errors, and the hit rate.
        """
        queries = self._counters["cache_hits"] + self._counters["cache_misses"]
        return {
            "graphs": len(self._graphs),
            "engine": self.engine,
            "backend": getattr(self._backend, "name", None) or "local",
            "hit_rate": (
                self._counters["cache_hits"] / queries if queries else 0.0
            ),
            **self._counters,
        }
