"""Graph exponentiation: O(log D) connectivity (arXiv:1910.05385).

Behnezhad, Dhulipala, Esfandiari, Łącki and Mirrokni reach the optimal
``O(log D)`` round bound by *neighborhood doubling*: alongside a
min-label step, every phase squares the (contracted) graph so each label
can see 2-hop neighbors — reachable distance doubles per phase, with a
per-vertex degree cap keeping the squared graph sparse.

Each phase runs three plans through :meth:`MPCEngine.run_plan`:

1. **connect+shortcut** — the same fused min-label round the Liu–Tarjan
   engine uses, over the current doubled edge set;
2. **contract** — the reused :func:`repro.core.grow.contract_plan`
   (search → ``contract_keys`` → min-reduce → unpack, one fused
   dispatch) drops intra-component edges and dedups;
3. **square** — one global ``sort`` by midpoint co-locates every label's
   incidence span, the ``wedge_keys`` transform emits capped 2-hop pair
   keys machine-locally, and a min-reduce dedups them.

The engine terminates when the contracted graph is empty (no
cross-component edges remain).  The eager
:func:`repro.baselines.exponentiation_components` stays as the slow
oracle this engine is differentially certified against.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.grow import contract_plan
from repro.core.pipeline import PipelineResult
from repro.engines.base import (
    ConnectivityEngine,
    canonicalize_plan,
    incidence_arrays,
    min_label_round_plan,
    register_engine,
)
from repro.graph.graph import Graph
from repro.mpc.plan import PlanBuilder


def _dedup_plan(edges: np.ndarray, k: int):
    """Deduplicate an edge list as one reduce round (packed pair keys)."""
    builder = PlanBuilder("exp-dedup")
    keys = builder.transform("pack_pair_keys", edges, k=k)
    unique, _rep = builder.reduce_by_key(keys, keys, op="min")
    deduped = builder.transform("unpack_pair_keys", unique, k=k)
    return builder.build([deduped])


def _square_plan(edges: np.ndarray, k: int, cap: int):
    """Capped squaring of ``edges`` as one sort + wedge + reduce round."""
    incidences = np.stack(
        [
            np.concatenate([edges[:, 0], edges[:, 1]]),
            np.concatenate([edges[:, 1], edges[:, 0]]),
        ],
        axis=1,
    )
    builder = PlanBuilder("exp-square")
    by_midpoint = builder.sort(
        incidences, order_by=np.ascontiguousarray(incidences[:, 0])
    )
    keys = builder.transform("wedge_keys", by_midpoint, k=k, cap=cap)
    unique, _rep = builder.reduce_by_key(keys, keys, op="min")
    doubled = builder.transform("unpack_pair_keys", unique, k=k)
    return builder.build([doubled])


@register_engine
class ExponentiationEngine(ConnectivityEngine):
    """Neighborhood doubling to ``O(log D)`` min-label rounds."""

    name = "exponentiation"

    def run(
        self,
        graph: Graph,
        spectral_gap_bound: float,
        *,
        config=None,
        rng=None,
        mpc=None,
        walk_mode: str = "direct",
        finalize: bool = True,
    ) -> PipelineResult:
        """Square-and-propagate until no cross-component edge remains.

        ``spectral_gap_bound``, ``rng``, ``walk_mode``, and ``finalize``
        are accepted for engine-contract uniformity and ignored: the
        algorithm is deterministic and its round count depends on the
        component diameters, not the spectral gap.
        """
        config, rng, mpc = self._ensure(graph, config, rng, mpc)
        n = graph.n
        labels = np.arange(n, dtype=np.int64)
        if graph.m == 0:
            return PipelineResult(
                labels=labels, rounds=mpc.rounds, engine=mpc,
                walk_length=0, phase_count=0, verify_rounds=0,
            )

        # Input placement (capacity check + trace completeness).
        builder = PlanBuilder("scatter-input")
        mpc.run_plan(builder.build(builder.scatter(graph.edges)))

        cap = max(8, math.ceil(math.sqrt(max(n, 1))))
        max_phases = 2 * max(1, math.ceil(math.log2(max(n, 2)))) + 8
        phases = 0
        with mpc.phase("Exponentiation"):
            (doubled,) = mpc.run_plan(_dedup_plan(graph.edges, n))
            mpc.charge_sort(graph.m, label="input dedup")
            doubled = np.asarray(doubled).reshape(-1, 2)

            for _ in range(max_phases):
                if doubled.shape[0] == 0:
                    break
                send, recv = incidence_arrays(doubled)
                (new_labels,) = mpc.run_plan(
                    min_label_round_plan("exp-connect", labels, send, recv)
                )
                new_labels = np.asarray(new_labels)
                mpc.charge_shuffle(int(send.size), label="connect")
                mpc.charge_search(n, label="shortcut")
                phases += 1
                if np.array_equal(new_labels, labels):
                    break
                labels = new_labels

                (contracted, _rep) = mpc.run_plan(contract_plan(labels, doubled))
                mpc.charge_sort(2 * doubled.shape[0], label="contract")
                contracted = np.asarray(contracted).reshape(-1, 2)
                if contracted.shape[0] == 0:
                    break

                (squared,) = mpc.run_plan(_square_plan(contracted, n, cap))
                mpc.charge_sort(2 * contracted.shape[0], label="square sort")
                squared = np.asarray(squared).reshape(-1, 2)
                # The dedup reduce shuffles the *wedge key stream*, not
                # the deduped output: each midpoint span of capped size
                # g emits at most g*(g-1) ordered pair keys.  Charging
                # that bound keeps peak_machines honest about the join's
                # materialised volume (e17 certifies fleet==accounting).
                spans = np.minimum(
                    np.bincount(contracted.reshape(-1), minlength=n), cap + 1
                )
                mpc.charge_shuffle(
                    int((spans * (spans - 1)).sum()), label="square dedup"
                )
                doubled = np.concatenate([contracted, squared], axis=0)
            else:  # pragma: no cover - termination is proven O(log D)
                raise RuntimeError(
                    f"exponentiation did not converge within {max_phases} phases"
                )

            # The loop can stop with label *chains* still unresolved:
            # "no cross-component edge" is a statement about roots, but
            # a vertex may still point at an intermediate label (v → a
            # → root).  Pointer-jump to the roots — O(log chain) search
            # rounds, usually zero because the last connect round
            # already shortcut every chain.
            while not np.array_equal(labels[labels], labels):
                builder = PlanBuilder("exp-resolve")
                jumped = builder.search(labels, labels)
                (labels,) = mpc.run_plan(builder.build(jumped))
                labels = np.asarray(labels)
                mpc.charge_search(n, label="resolve")
            (labels,) = mpc.run_plan(canonicalize_plan(labels))

        return PipelineResult(
            labels=np.asarray(labels),
            rounds=mpc.rounds,
            engine=mpc,
            walk_length=0,
            phase_count=phases,
            verify_rounds=0,
        )
