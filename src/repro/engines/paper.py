"""The Theorem 4 pipeline wrapped as a registered engine.

This is a thin adapter: the algorithm itself lives in
:mod:`repro.core.pipeline` and is unchanged — registering it gives the
dispatch seam (``mpc_connected_components(..., engine=...)``, the
portfolio, the e21 race) a uniform handle on the paper's own algorithm,
so ``engine="paper"`` is bit-identical to passing no engine at all.
"""

from __future__ import annotations

from repro.core.pipeline import PipelineResult, _run_stages
from repro.engines.base import ConnectivityEngine, register_engine
from repro.graph.graph import Graph
from repro.utils.validation import check_in_range


@register_engine
class PaperEngine(ConnectivityEngine):
    """Theorem 4: regularize → randomize → random-graph CC (+ verify).

    Round complexity ``O((1/δ)(log log n + log(1/λ)))`` — independent of
    the graph's diameter, which is what the portfolio dispatcher selects
    it for in the well-connected (large spectral gap) regime.
    """

    name = "paper"

    def run(
        self,
        graph: Graph,
        spectral_gap_bound: float,
        *,
        config=None,
        rng=None,
        mpc=None,
        walk_mode: str = "direct",
        finalize: bool = True,
    ) -> PipelineResult:
        """Run the unchanged three-stage pipeline on ``mpc``."""
        spectral_gap_bound = check_in_range(
            spectral_gap_bound, "spectral_gap_bound", 1e-12, 2.0
        )
        config, rng, mpc = self._ensure(graph, config, rng, mpc)
        return _run_stages(
            graph, spectral_gap_bound, config, rng, mpc,
            walk_mode=walk_mode, finalize=finalize,
        )
