"""Portfolio dispatcher: pick the engine from cheap workload features.

No single connectivity algorithm dominates: graph exponentiation is
round-optimal ``O(log D)`` on low-diameter inputs, the paper pipeline's
``O(log log n + log(1/λ))`` wins when components are well connected
(large spectral gap) regardless of size, and Liu–Tarjan's ``O(log n)``
is the robust fallback when neither regime is detected.  The portfolio
engine measures two cheap features — an estimated diameter from sampled
double-sweep BFS probes, and the caller's spectral-gap bound — and
delegates to the winner's regime:

========================  =========================================
Feature regime            Engine chosen
========================  =========================================
``est_diameter`` small    ``exponentiation`` (``O(log D)`` optimal)
``gap_bound`` large       ``paper`` (gap-driven round budget)
otherwise                 ``liu_tarjan`` (``O(log n)`` fallback)
========================  =========================================

Every engine returns the exact component partition, so the portfolio's
labels are bit-identical to the paper engine's no matter which engine it
picks — the choice only moves the round/wall-time trade-off.  The
feature probes run client-side on the input summary and are not charged
MPC rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import PipelineResult
from repro.engines.base import (
    ConnectivityEngine,
    get_engine,
    incidence_arrays,
    register_engine,
)
from repro.graph.graph import Graph


@dataclass(frozen=True)
class WorkloadFeatures:
    """The cheap per-input features the dispatcher reads."""

    n: int
    m: int
    est_diameter: int
    gap_bound: float


def _eccentricity(
    n: int, send: np.ndarray, recv: np.ndarray, start: int
) -> "tuple[int, int]":
    """BFS eccentricity of ``start`` within its component.

    Returns ``(eccentricity, farthest_vertex)`` using vectorised
    level-synchronous relaxation over the incidence arrays.
    """
    dist = np.full(n, -1, dtype=np.int64)
    dist[start] = 0
    level = 0
    while True:
        fresh = (dist[send] == level) & (dist[recv] < 0)
        if not fresh.any():
            break
        dist[recv[fresh]] = level + 1
        level += 1
    farthest = int(np.argmax(dist))
    return int(dist[farthest]), farthest


def estimate_features(graph: Graph, gap_bound: float) -> WorkloadFeatures:
    """Measure the dispatcher's features with sampled double-sweep BFS.

    Three spread-out seed vertices are probed; each probe runs one BFS,
    then a second from the farthest vertex found (the classic
    double-sweep lower bound on that component's diameter).  The
    estimate is the maximum over probes — exact on single-component
    graphs whose diameter is realised from a probed component, and a
    lower bound otherwise, which errs toward the diameter-robust
    engines.
    """
    n = graph.n
    if graph.m == 0:
        return WorkloadFeatures(
            n=n, m=0, est_diameter=0, gap_bound=float(gap_bound)
        )
    send, recv = incidence_arrays(graph.edges)
    seeds = sorted({0, n // 3, (2 * n) // 3})
    est = 0
    for seed in seeds:
        _, far = _eccentricity(n, send, recv, seed)
        ecc, _ = _eccentricity(n, send, recv, far)
        est = max(est, ecc)
    return WorkloadFeatures(
        n=n, m=graph.m, est_diameter=est, gap_bound=float(gap_bound)
    )


def choose_engine(features: WorkloadFeatures) -> str:
    """The dispatch rule (documented in ``docs/engines.md``).

    Low estimated diameter (``≤ max(16, 2·log₂ n)``) selects
    ``exponentiation``; otherwise a strong spectral-gap bound
    (``≥ 0.25``) selects ``paper``; everything else falls back to
    ``liu_tarjan``.
    """
    low_diameter = max(16, 2 * math.ceil(math.log2(max(features.n, 2))))
    if features.est_diameter <= low_diameter:
        return "exponentiation"
    if features.gap_bound >= 0.25:
        return "paper"
    return "liu_tarjan"


@register_engine
class PortfolioEngine(ConnectivityEngine):
    """Feature-driven dispatch over the registered concrete engines."""

    name = "portfolio"

    def run(
        self,
        graph: Graph,
        spectral_gap_bound: float,
        *,
        config=None,
        rng=None,
        mpc=None,
        walk_mode: str = "direct",
        finalize: bool = True,
    ) -> PipelineResult:
        """Measure features, pick a concrete engine, and delegate."""
        features = estimate_features(graph, spectral_gap_bound)
        chosen = get_engine(choose_engine(features))
        return chosen.run(
            graph,
            spectral_gap_bound,
            config=config,
            rng=rng,
            mpc=mpc,
            walk_mode=walk_mode,
            finalize=finalize,
        )
