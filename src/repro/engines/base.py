"""The engine contract: interchangeable connectivity algorithms on one IR.

An *engine* is a complete connectivity algorithm — the paper's Theorem 4
pipeline, Liu–Tarjan labeling, graph exponentiation — expressed against
the same three seams every other layer of the stack already uses:

* every communication round is a :class:`~repro.mpc.plan.RoundPlan`
  built with :class:`~repro.mpc.plan.PlanBuilder` and submitted through
  :meth:`~repro.mpc.engine.MPCEngine.run_plan`, so ProcessBackend
  fusion, ShmArena leasing, and ``MPCEngine(trace=...)`` capture/replay
  apply to a new algorithm with zero backend work;
* round *charges* go through the same :class:`~repro.mpc.engine.MPCEngine`
  cost model, so ``result.rounds`` is comparable across engines;
* the result is the same :class:`~repro.core.pipeline.PipelineResult`
  the benches and tests already consume.

Engines register under a short name (:func:`register_engine`) and are
selected by ``mpc_connected_components(..., engine="liu_tarjan")`` or
raced explicitly by the ``e21_engine_race`` benchmark.  The module also
registers the machine-local transforms the non-paper engines need
(``elementwise_min``, ``pack_pair_keys``, ``wedge_keys``) so a captured
trace replays them by name.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.pipeline import PipelineResult
from repro.graph.graph import Graph
from repro.mpc.engine import MPCEngine
from repro.mpc.plan import PlanBuilder, RoundPlan, register_transform
from repro.utils.rng import ensure_rng

#: Registry of engine instances by name (engines are stateless values).
ENGINES: "dict[str, ConnectivityEngine]" = {}


class ConnectivityEngine:
    """Base class / protocol for a pluggable connectivity algorithm.

    Subclasses set :attr:`name` and implement :meth:`run`.  Engines must
    be deterministic given ``(graph, rng seed, config)`` and must route
    every backend operation through ``mpc.run_plan`` so all execution
    backends produce bit-identical labels and the plan stream is
    traceable/replayable.
    """

    #: Registry key; also the value users pass as ``engine="..."``.
    name: str = "abstract"

    def run(
        self,
        graph: Graph,
        spectral_gap_bound: float,
        *,
        config: "PipelineConfig | None" = None,
        rng=None,
        mpc: "MPCEngine | None" = None,
        walk_mode: str = "direct",
        finalize: bool = True,
    ) -> PipelineResult:
        """Compute connected components of ``graph``.

        Parameters
        ----------
        graph:
            Input undirected graph.
        spectral_gap_bound:
            The caller's lower bound on the per-component spectral gap.
            Only the paper engine's round budget depends on it; the
            label-propagation engines accept and ignore it, and the
            portfolio dispatcher reads it as the gap-regime feature.
        config, rng:
            Pipeline tuning constants and randomness (both optional).
        mpc:
            The accounting :class:`~repro.mpc.engine.MPCEngine` to
            charge and execute plans on.  A fresh
            ``MPCEngine.for_delta`` on the local backend is created when
            absent; pass your own to pick the backend or capture a
            trace.
        walk_mode, finalize:
            Paper-pipeline knobs, ignored by engines without walks.

        Returns
        -------
        PipelineResult
            Canonical component labels plus round/phase accounting.
        """
        raise NotImplementedError

    def _ensure(self, graph: Graph, config, rng, mpc):
        """Default ``(config, rng, mpc)`` for a bare :meth:`run` call."""
        config = config or PipelineConfig()
        rng = ensure_rng(rng)
        if mpc is None:
            mpc = MPCEngine.for_delta(max(graph.n + graph.m, 2), config.delta)
        return config, rng, mpc


def register_engine(engine_cls):
    """Class decorator: instantiate and register a connectivity engine.

    The registry maps :attr:`ConnectivityEngine.name` to a singleton
    instance (engines hold no per-run state).  Re-registering a taken
    name raises :class:`ValueError`.
    """
    instance = engine_cls()
    if instance.name in ENGINES:
        raise ValueError(f"engine {instance.name!r} is already registered")
    ENGINES[instance.name] = instance
    return engine_cls


def engine_names() -> "list[str]":
    """Sorted names of every registered engine."""
    return sorted(ENGINES)


def get_engine(name: str) -> ConnectivityEngine:
    """Look up a registered engine by name.

    Raises
    ------
    KeyError
        Unknown engine name (the message lists the registered ones).
    """
    try:
        return ENGINES[name]
    except KeyError:
        raise KeyError(
            f"unknown engine {name!r}; registered engines: "
            f"{', '.join(engine_names())}"
        ) from None


def resolve_engine(spec) -> ConnectivityEngine:
    """Coerce an ``engine=`` argument to a :class:`ConnectivityEngine`.

    Accepts a registered name or an engine instance; anything else is a
    :class:`TypeError` (``MPCEngine`` instances are handled by the
    pipeline front-end before this is called).
    """
    if isinstance(spec, str):
        return get_engine(spec)
    if isinstance(spec, ConnectivityEngine):
        return spec
    raise TypeError(
        f"engine must be a registered name or ConnectivityEngine, "
        f"got {type(spec).__name__}"
    )


# ---------------------------------------------------------------------------
# Shared plan shapes and transforms
# ---------------------------------------------------------------------------


@register_transform("elementwise_min")
def _t_elementwise_min(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise minimum — merges a label vector with its shortcut."""
    return np.minimum(np.asarray(a), np.asarray(b))


@register_transform("pack_pair_keys")
def _t_pack_pair_keys(edges: np.ndarray, *, k: int) -> np.ndarray:
    """Pack ``(m, 2)`` vertex pairs into sorted ``a * k + b`` keys.

    Self-loops are dropped and endpoints ordered ``a < b``, matching the
    ``contract_keys`` packing so ``unpack_pair_keys`` inverts it.
    """
    pairs = np.asarray(edges).reshape(-1, 2)
    u, v = pairs[:, 0], pairs[:, 1]
    idx = np.flatnonzero(u != v)
    a = np.minimum(u[idx], v[idx])
    b = np.maximum(u[idx], v[idx])
    return a * int(k) + b


@register_transform("wedge_keys")
def _t_wedge_keys(sorted_pairs: np.ndarray, *, k: int, cap: int) -> np.ndarray:
    """Capped wedge join: 2-hop pair keys from midpoint-sorted incidences.

    ``sorted_pairs`` is an ``(h, 2)`` array of ``[midpoint, other]``
    incidences globally sorted by midpoint, so each midpoint's
    neighborhood is one contiguous span — the post-sort state in which
    every machine holds whole groups.  Per midpoint the first
    ``cap + 1`` neighbors form all ordered 2-hop pairs ``a < b``
    (the cap keeps the join quadratic only in the cap, the standard
    sparsification of the exponentiation technique); the result is the
    packed ``a * k + b`` key stream feeding a dedup reduce.
    """
    pairs = np.asarray(sorted_pairs).reshape(-1, 2)
    if pairs.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    mid, other = pairs[:, 0], pairs[:, 1]
    starts = np.flatnonzero(np.concatenate(([True], mid[1:] != mid[:-1])))
    sizes = np.diff(np.append(starts, mid.size))
    keys: "list[np.ndarray]" = []
    take = int(cap) + 1
    for start, size in zip(starts.tolist(), sizes.tolist()):
        span = other[start : start + min(size, take)]
        if span.size < 2:
            continue
        left = np.repeat(span, span.size)
        right = np.tile(span, span.size)
        sel = left != right
        a = np.minimum(left[sel], right[sel])
        b = np.maximum(left[sel], right[sel])
        keys.append(a * int(k) + b)
    if not keys:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(keys)


def incidence_arrays(edges: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Both orientations of an edge list as read-only ``(send, recv)``.

    The arrays are loop-invariant across an engine's label-propagation
    rounds; marking them read-only lets an arena-backed process backend
    pin them in shared memory once instead of re-copying every round.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    send = np.concatenate([edges[:, 0], edges[:, 1]])
    recv = np.concatenate([edges[:, 1], edges[:, 0]])
    send.setflags(write=False)
    recv.setflags(write=False)
    return send, recv


def min_label_round_plan(
    name: str, labels: np.ndarray, send: np.ndarray, recv: np.ndarray
) -> RoundPlan:
    """One connect-and-shortcut round as a single fused plan.

    Three steps: a ``min_label_exchange`` ships every vertex's label
    across its incident edges and folds the minimum (the *connect* step
    of Liu–Tarjan), a ``search`` reads each vertex's parent's label
    (the *parent-pointer shortcut*), and an ``elementwise_min``
    transform merges the two.  Because the exchange output feeds the
    later search, a fusing backend runs the whole round in one dispatch
    barrier.
    """
    builder = PlanBuilder(name)
    connected, _incoming = builder.min_label_exchange(labels, send, recv)
    shortcut = builder.search(connected, connected)
    merged = builder.transform("elementwise_min", connected, shortcut)
    return builder.build([merged])


def csr_min_label_round_plan(
    name: str, labels: np.ndarray, indptr: np.ndarray, indices: np.ndarray
) -> RoundPlan:
    """One connect-and-shortcut round on a frozen CSR index.

    The gather-shaped twin of :func:`min_label_round_plan`: a
    ``csr_min_label`` folds each vertex's minimum over its contiguous
    CSR slot run (no argsort, no scatter), then the same ``search`` +
    ``elementwise_min`` shortcut.  Labels, rounds, and every gated
    counter are bit-identical to the sort-based plan — binding the
    read-only CSR arrays into every round lets arena-backed backends pin
    them once and the RPC wire dedup them by content digest.
    """
    builder = PlanBuilder(name)
    connected, _incoming = builder.csr_min_label(labels, indptr, indices)
    shortcut = builder.search(connected, connected)
    merged = builder.transform("elementwise_min", connected, shortcut)
    return builder.build([merged])


def canonicalize_plan(labels: np.ndarray) -> RoundPlan:
    """Machine-local canonicalisation of a final labelling as a plan.

    Pure transform, no backend ops — it costs no rounds but keeps the
    engine's complete output derivation inside the traced plan stream.
    """
    builder = PlanBuilder("engine-canonical")
    canonical = builder.transform("canonical_labels", labels)
    return builder.build([canonical])
