"""Interchangeable connectivity engines on the round-plan IR.

Public surface of the engine layer: the
:class:`~repro.engines.base.ConnectivityEngine` contract, the registry
(:func:`register_engine` / :func:`get_engine` / :func:`engine_names` /
:func:`resolve_engine`), and the four registered engines — ``paper``
(Theorem 4), ``liu_tarjan`` (arXiv:1812.06177), ``exponentiation``
(arXiv:1910.05385), and the feature-driven ``portfolio`` dispatcher.

Importing this package registers every engine plus the machine-local
transforms their plans use, so a trace captured from any engine replays
by name (``repro`` imports it eagerly for exactly that reason).  See
``docs/engines.md`` for the contract and the dispatch rule.
"""

from repro.engines.base import (
    ENGINES,
    ConnectivityEngine,
    engine_names,
    get_engine,
    register_engine,
    resolve_engine,
)
from repro.engines.exponentiation import ExponentiationEngine
from repro.engines.liu_tarjan import LiuTarjanEngine
from repro.engines.paper import PaperEngine
from repro.engines.portfolio import (
    PortfolioEngine,
    WorkloadFeatures,
    choose_engine,
    estimate_features,
)

__all__ = [
    "ENGINES",
    "ConnectivityEngine",
    "ExponentiationEngine",
    "LiuTarjanEngine",
    "PaperEngine",
    "PortfolioEngine",
    "WorkloadFeatures",
    "choose_engine",
    "engine_names",
    "estimate_features",
    "get_engine",
    "register_engine",
    "resolve_engine",
]
