"""Liu–Tarjan concurrent min-label propagation (arXiv:1812.06177).

The simplest of the "simple concurrent connected components" framework
variants: every round each vertex adopts the minimum label offered over
its incident edges (*connect*), then shortcuts to its parent's label
(*shortcut*).  Both halves of the round run as one fused
:class:`~repro.mpc.plan.RoundPlan` (see
:func:`repro.engines.base.min_label_round_plan`): a
``min_label_exchange`` — one all-to-all shuffle — feeding a ``search``
over the freshly updated label table.

Rounds: ``O(log n)`` in the worst case (label minima travel at least one
hop per round and the shortcut halves pointer chains), with far fewer on
low-diameter inputs.  Compared to the paper pipeline there is no
dependence on the spectral gap — the engine the portfolio falls back to
when neither the low-diameter nor the well-connected regime is
detected.  The eager :func:`repro.baselines.min_label_propagation` and
:func:`repro.baselines.pointer_jumping_propagation` implementations stay
as the slow oracles this engine is differentially certified against.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.pipeline import PipelineResult
from repro.engines.base import (
    ConnectivityEngine,
    canonicalize_plan,
    csr_min_label_round_plan,
    incidence_arrays,
    min_label_round_plan,
    register_engine,
)
from repro.graph.csr import CSRIndex, csr_enabled
from repro.graph.graph import Graph
from repro.mpc.plan import PlanBuilder


@register_engine
class LiuTarjanEngine(ConnectivityEngine):
    """Concurrent min-label propagation with parent-pointer shortcutting."""

    name = "liu_tarjan"

    def run(
        self,
        graph: Graph,
        spectral_gap_bound: float,
        *,
        config=None,
        rng=None,
        mpc=None,
        walk_mode: str = "direct",
        finalize: bool = True,
    ) -> PipelineResult:
        """Propagate minimum labels to convergence; exact on any graph.

        ``spectral_gap_bound``, ``rng``, ``walk_mode``, and ``finalize``
        are accepted for engine-contract uniformity and ignored: the
        algorithm is deterministic and needs no gap assumption.
        """
        config, rng, mpc = self._ensure(graph, config, rng, mpc)
        n = graph.n
        labels = np.arange(n, dtype=np.int64)
        if graph.m == 0:
            return PipelineResult(
                labels=labels, rounds=mpc.rounds, engine=mpc,
                walk_length=0, phase_count=0, verify_rounds=0,
            )

        # Place the input on the data plane (capacity check + trace
        # completeness), exactly like the paper pipeline's opening round.
        # With the CSR fast path on, the same opening plan also builds
        # the frozen index at scatter time (a machine-local relayout of
        # data the scatter already moved), so a captured trace replays
        # the exact arrays every subsequent round binds.
        use_gather = csr_enabled()
        builder = PlanBuilder("scatter-input")
        scattered = builder.scatter(graph.edges)
        if use_gather:
            csr_refs = builder.transform("build_csr", graph.edges, n=n)
            _, indptr, indices, halfedges = mpc.run_plan(
                builder.build([scattered, *csr_refs])
            )
            index = CSRIndex.adopt(n, indptr, indices, halfedges)
            mpc.backend.note_csr_build()
        else:
            mpc.run_plan(builder.build(scattered))
            send, recv = incidence_arrays(graph.edges)

        max_rounds = 4 * max(1, math.ceil(math.log2(max(n, 2)))) + 8
        iterations = 0
        with mpc.phase("LiuTarjan"):
            for _ in range(max_rounds):
                if use_gather:
                    plan = csr_min_label_round_plan(
                        "lt-round", labels, index.indptr, index.indices
                    )
                else:
                    plan = min_label_round_plan(
                        "lt-round", labels, send, recv
                    )
                (new_labels,) = mpc.run_plan(plan)
                new_labels = np.asarray(new_labels)
                # Work first, charge second: the connect shuffle and the
                # shortcut search absorb the exchanges the plan made.
                # Both round shapes move the same 2m incidences
                # (send.size == index.indices.size), so the charge is
                # identical either way.
                mpc.charge_shuffle(2 * graph.m, label="connect")
                mpc.charge_search(n, label="shortcut")
                iterations += 1
                if np.array_equal(new_labels, labels):
                    break
                labels = new_labels
            else:  # pragma: no cover - convergence is proven O(log n)
                raise RuntimeError(
                    f"liu_tarjan did not converge within {max_rounds} rounds"
                )
            (labels,) = mpc.run_plan(canonicalize_plan(labels))

        return PipelineResult(
            labels=np.asarray(labels),
            rounds=mpc.rounds,
            engine=mpc,
            walk_length=0,
            phase_count=iterations,
            verify_rounds=0,
        )
