"""Incremental connectivity over a maintained AGM sketch.

:class:`StreamingConnectivity` is the dynamic-graph subsystem: it
consumes batched edge insert/delete events, applies them as signed
updates to a maintained :class:`~repro.sketch.AGMSketch` (linearity
makes a delete exactly a ``-1`` update), and answers component /
connectivity queries between batches by Borůvka-decoding the sketch.

Two honesty mechanisms back the sketch path:

* **Oracle fallback** — sketch decoding is w.h.p.-correct for *one*
  decode per sketch; repeated queries against an evolving stream reuse
  the same shared randomness, so decoding can degrade (the decoder then
  raises rather than return wrong labels).  On failure — or every
  ``recompute_every`` batches, unconditionally — the structure runs a
  full from-scratch recompute through
  :func:`repro.core.mpc_connected_components` (any registered
  connectivity engine on any execution backend) and **rebuilds** the
  sketch from the live multiset with fresh randomness, restoring the
  independence the w.h.p. guarantee needs.
* **Exact multiset** — the live edge multiset is kept alongside the
  sketch (dict of edge-id → multiplicity), so deletes of absent edges
  are rejected before anything mutates and the oracle always recomputes
  from the true current graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pipeline import PipelineConfig, mpc_connected_components
from repro.graph.components import canonical_labels
from repro.graph.graph import Graph
from repro.mpc.backends import make_backend
from repro.sketch.agm import AGMSketch, agm_decode_components
from repro.sketch.sharded import SKETCH_STATS_ZERO, ShardedAGMSketch, SketchStats
from repro.streaming.events import EventBatch
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


@dataclass
class StreamingStats:
    """Counters describing how a :class:`StreamingConnectivity` ran.

    ``sketch`` is the live :class:`~repro.sketch.sharded.SketchStats` of
    a sharded-ingest structure (``None`` for monolithic ingest); the
    JSON snapshot always carries the block, zero-filled when absent, so
    consumers see one schema.
    """

    batches_applied: int = 0
    events_applied: int = 0
    sketch_queries: int = 0
    decode_failures: int = 0
    scheduled_recomputes: int = 0
    full_recomputes: int = 0
    sketch_rebuilds: int = 0
    oracle_rounds: int = 0
    sketch: "SketchStats | None" = None
    extra: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        """Serializable counter snapshot (one schema everywhere)."""
        return {
            "batches_applied": self.batches_applied,
            "events_applied": self.events_applied,
            "sketch_queries": self.sketch_queries,
            "decode_failures": self.decode_failures,
            "scheduled_recomputes": self.scheduled_recomputes,
            "full_recomputes": self.full_recomputes,
            "sketch_rebuilds": self.sketch_rebuilds,
            "oracle_rounds": self.oracle_rounds,
            "sketch": (
                self.sketch.to_json()
                if self.sketch is not None
                else dict(SKETCH_STATS_ZERO)
            ),
        }


class StreamingConnectivity:
    """Batched insert/delete connectivity on a maintained AGM sketch.

    Parameters
    ----------
    n:
        Number of vertices (fixed for the structure's lifetime).
    rng:
        Seed or generator; drives the sketch randomness, every rebuild's
        fresh randomness, and the oracle pipeline's randomness — the
        whole run is reproducible from it.
    spectral_gap_bound, config:
        Forwarded to the oracle recompute
        (:func:`~repro.core.mpc_connected_components`); the pipeline's
        honest verification broadcast keeps oracle labels exact even
        when the bound is loose for the current graph.
    engine, backend:
        Connectivity-engine and execution-backend specs for the oracle
        recompute — any registered name or instance, exactly as the
        dispatch seam accepts them.
    recompute_every:
        Force a full recompute (and sketch rebuild) on the first query
        after every this-many applied batches, regardless of sketch
        health; ``None`` recomputes only on decode failure.
    sparsity, rows, boruvka_rounds:
        Sketch shape knobs, forwarded to :meth:`AGMSketch.empty`.
    sketch_shards:
        ``None`` (default) maintains one monolithic
        :class:`~repro.sketch.AGMSketch` exactly as before.  A positive
        int switches ingest to a
        :class:`~repro.sketch.sharded.ShardedAGMSketch` with that many
        owner-vertex shards, updated through the ``backend`` spec's
        ingest seam and merged (by linearity) only at decode time.
    workers:
        Worker count for an *owned* ingest backend built from a string
        ``backend`` spec (``"process"``/``"rpc"``); ignored for specs
        without a worker pool and for backend instances (already
        configured).  Only meaningful with ``sketch_shards``.
    """

    def __init__(
        self,
        n: int,
        *,
        rng=None,
        spectral_gap_bound: float = 0.1,
        config: "PipelineConfig | None" = None,
        engine="paper",
        backend="local",
        recompute_every: "int | None" = None,
        sparsity: int = 4,
        rows: int = 3,
        boruvka_rounds: "int | None" = None,
        sketch_shards: "int | None" = None,
        workers: "int | None" = None,
    ):
        self.n = check_positive_int(n, "n")
        self._rng = ensure_rng(rng)
        self._gap_bound = float(spectral_gap_bound)
        self._config = config or PipelineConfig()
        self._engine = engine
        self._backend = backend
        if recompute_every is not None:
            recompute_every = check_positive_int(recompute_every, "recompute_every")
        self._recompute_every = recompute_every
        self._sketch_shape = dict(
            sparsity=sparsity, rows=rows, boruvka_rounds=boruvka_rounds
        )
        if sketch_shards is not None:
            sketch_shards = check_positive_int(sketch_shards, "sketch_shards")
        self._sketch_shards = sketch_shards
        if workers is not None:
            workers = check_positive_int(workers, "workers")
        self._workers = workers
        self._ingest_backend = None
        self._owns_ingest_backend = False
        if sketch_shards is not None:
            if isinstance(backend, str):
                options = (
                    {"workers": workers}
                    if workers is not None and backend in ("process", "rpc")
                    else {}
                )
                self._ingest_backend = make_backend(backend, **options)
                self._owns_ingest_backend = True
            else:
                self._ingest_backend = make_backend(backend)
        self._sketch_stats = SketchStats()
        self._sketch_dirty = False
        self._sketch = self._new_sketch()
        self._multiplicity: "dict[int, int]" = {}
        self._batches_since_recompute = 0
        self._cached_labels: "np.ndarray | None" = canonical_labels(
            np.arange(n, dtype=np.int64)
        )
        self.stats = StreamingStats(
            sketch=self._sketch_stats if sketch_shards is not None else None
        )

    def _new_sketch(self):
        """Fresh sketch over fresh randomness, monolithic or sharded."""
        if self._sketch_shards is None:
            return AGMSketch.empty(self.n, self._rng, **self._sketch_shape)
        return ShardedAGMSketch.empty(
            self.n,
            self._rng,
            shards=self._sketch_shards,
            backend=self._ingest_backend,
            stats=self._sketch_stats,
            **self._sketch_shape,
        )

    # -- updates -------------------------------------------------------------

    def apply(self, batch: EventBatch) -> None:
        """Apply one event batch to the sketch and the live multiset.

        Validates the whole batch against the current multiset first —
        a delete that would drive any edge's multiplicity negative
        raises :class:`ValueError` and nothing is mutated.
        """
        edges = batch.edges
        if edges.size and (edges.min() < 0 or edges.max() >= self.n):
            raise ValueError(f"edge endpoint out of range [0, {self.n})")
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        edge_ids = lo * self.n + hi
        unique_ids, inverse = np.unique(edge_ids, return_inverse=True)
        deltas = np.zeros(unique_ids.shape[0], dtype=np.int64)
        np.add.at(deltas, inverse, batch.weights)
        current = np.fromiter(
            (self._multiplicity.get(edge_id, 0) for edge_id in unique_ids.tolist()),
            dtype=np.int64,
            count=unique_ids.shape[0],
        )
        negative = deltas < -current
        if negative.any():
            edge_id = int(unique_ids[np.flatnonzero(negative)[0]])
            u, v = divmod(edge_id, self.n)
            raise ValueError(
                f"batch would delete edge ({u}, {v}) below multiplicity 0"
            )
        # Sketch before multiset: the sketch update is the only step that
        # can still fail (a parallel backend can die mid-batch), and on
        # failure the multiset must keep describing the last good prefix.
        try:
            self._sketch.update_edges(edges, batch.weights)
        except Exception:
            self._sketch_dirty = True
            raise
        updated = current + deltas
        for edge_id, value in zip(unique_ids.tolist(), updated.tolist()):
            if value:
                self._multiplicity[edge_id] = value
            else:
                self._multiplicity.pop(edge_id, None)
        self.stats.batches_applied += 1
        self.stats.events_applied += batch.size
        self._batches_since_recompute += 1
        self._cached_labels = None

    def apply_edges(self, edges, weights=None) -> None:
        """Shorthand: wrap raw arrays in an :class:`EventBatch` and apply."""
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if weights is None:
            weights = np.ones(edges.shape[0], dtype=np.int64)
        self.apply(EventBatch(edges, weights))

    # -- state ---------------------------------------------------------------

    @property
    def edge_count(self) -> int:
        """Total multiplicity of the live multiset."""
        return sum(self._multiplicity.values())

    def current_graph(self) -> Graph:
        """Materialise the live multiset as a :class:`Graph`.

        Edges come out sorted by edge id with multiplicity expanded to
        parallel rows, so the materialisation is deterministic — the
        oracle and the differential tests rely on that.
        """
        if not self._multiplicity:
            return Graph(self.n, np.empty((0, 2), dtype=np.int64))
        ids = np.fromiter(self._multiplicity.keys(), dtype=np.int64)
        counts = np.fromiter(self._multiplicity.values(), dtype=np.int64)
        order = np.argsort(ids, kind="stable")
        ids, counts = ids[order], counts[order]
        expanded = np.repeat(ids, counts)
        return Graph(self.n, np.column_stack([expanded // self.n, expanded % self.n]))

    def graph_digest(self) -> str:
        """Content digest of the live multiset's deterministic materialisation.

        The exact key :mod:`repro.service` caches connectivity results
        under (:func:`repro.mpc.plan.graph_digest`), so a streaming
        maintainer can hand its current prefix to a long-lived
        :class:`~repro.service.ServiceClient` and hit the server's cache
        whenever the same multiset has been queried before —
        :meth:`current_graph` orders edges deterministically precisely
        so equal multisets digest equal.
        """
        from repro.mpc.plan import graph_digest

        graph = self.current_graph()
        return graph_digest(graph.n, graph.edges)

    # -- queries -------------------------------------------------------------

    def query(self) -> np.ndarray:
        """Canonical component labels for the current stream prefix.

        Decodes the maintained sketch; on decode failure — or when the
        ``recompute_every`` schedule is due — falls back to the full
        oracle recompute and rebuilds the sketch with fresh randomness.
        Labels are cached until the next :meth:`apply`.
        """
        if self._cached_labels is not None:
            return self._cached_labels.copy()
        if (
            self._recompute_every is not None
            and self._batches_since_recompute >= self._recompute_every
        ):
            self.stats.scheduled_recomputes += 1
            labels = self._full_recompute()
        elif self._sketch_dirty:
            # A backend failure interrupted an ingest batch, so the sketch
            # may hold a partially applied update — never decode it.
            self.stats.decode_failures += 1
            labels = self._full_recompute()
        else:
            try:
                # merge() is inside the try: for a sharded sketch it is the
                # point where worker-resident partials are collected, so a
                # lost pool surfaces here as a RuntimeError and falls back.
                sketch = self._sketch
                if isinstance(sketch, ShardedAGMSketch):
                    sketch = sketch.merge()
                labels = agm_decode_components(sketch)
                self.stats.sketch_queries += 1
            except RuntimeError:
                self.stats.decode_failures += 1
                labels = self._full_recompute()
        self._cached_labels = labels
        return labels.copy()

    def connected(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` are currently in the same component."""
        labels = self.query()
        return bool(labels[u] == labels[v])

    def component_count(self) -> int:
        """Number of components in the current labelling."""
        labels = self.query()
        return int(labels.max()) + 1 if labels.size else 0

    # -- the oracle ----------------------------------------------------------

    def recompute(self) -> np.ndarray:
        """Force the oracle recompute (and sketch rebuild) right now.

        Returns the fresh canonical labels; afterwards the sketch carries
        fresh randomness over the live multiset, exactly as if it had
        just been built from scratch.
        """
        self.stats.scheduled_recomputes += 1
        labels = self._full_recompute()
        self._cached_labels = labels
        return labels.copy()

    def _full_recompute(self) -> np.ndarray:
        """From-scratch recompute + sketch rebuild with fresh randomness."""
        graph = self.current_graph()
        result = mpc_connected_components(
            graph,
            self._gap_bound,
            config=self._config,
            rng=self._rng,
            engine=self._engine,
            backend=self._backend,
        )
        self.stats.full_recomputes += 1
        self.stats.oracle_rounds += result.rounds
        self._rebuild_sketch()
        self._batches_since_recompute = 0
        return canonical_labels(result.labels)

    def _rebuild_sketch(self) -> None:
        """Fresh-randomness sketch rebuilt from the live multiset."""
        old = self._sketch
        if isinstance(old, ShardedAGMSketch):
            old.close()
        self._sketch = self._new_sketch()
        self._sketch_dirty = False
        graph = self.current_graph()
        if graph.m:
            self._sketch.update_edges(graph.edges)
        self.stats.sketch_rebuilds += 1

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release sketch partials and any ingest backend this object owns.

        Only needed for sharded ingest (worker-resident or arena-backed
        partials); a monolithic structure holds nothing to release.
        Idempotent.  A later query falls back to the oracle, which
        rebuilds the sketch (restarting owned pools if needed).
        """
        sketch = self._sketch
        if isinstance(sketch, ShardedAGMSketch):
            self._sketch_dirty = True
            sketch.close()
        if self._owns_ingest_backend and self._ingest_backend is not None:
            self._ingest_backend.close()
