"""Incremental connectivity over a maintained AGM sketch.

:class:`StreamingConnectivity` is the dynamic-graph subsystem: it
consumes batched edge insert/delete events, applies them as signed
updates to a maintained :class:`~repro.sketch.AGMSketch` (linearity
makes a delete exactly a ``-1`` update), and answers component /
connectivity queries between batches by Borůvka-decoding the sketch.

Two honesty mechanisms back the sketch path:

* **Oracle fallback** — sketch decoding is w.h.p.-correct for *one*
  decode per sketch; repeated queries against an evolving stream reuse
  the same shared randomness, so decoding can degrade (the decoder then
  raises rather than return wrong labels).  On failure — or every
  ``recompute_every`` batches, unconditionally — the structure runs a
  full from-scratch recompute through
  :func:`repro.core.mpc_connected_components` (any registered
  connectivity engine on any execution backend) and **rebuilds** the
  sketch from the live multiset with fresh randomness, restoring the
  independence the w.h.p. guarantee needs.
* **Exact multiset** — the live edge multiset is kept alongside the
  sketch (dict of edge-id → multiplicity), so deletes of absent edges
  are rejected before anything mutates and the oracle always recomputes
  from the true current graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pipeline import PipelineConfig, mpc_connected_components
from repro.graph.components import canonical_labels
from repro.graph.graph import Graph
from repro.sketch.agm import AGMSketch, agm_decode_components
from repro.streaming.events import EventBatch
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


@dataclass
class StreamingStats:
    """Counters describing how a :class:`StreamingConnectivity` ran."""

    batches_applied: int = 0
    events_applied: int = 0
    sketch_queries: int = 0
    decode_failures: int = 0
    scheduled_recomputes: int = 0
    full_recomputes: int = 0
    sketch_rebuilds: int = 0
    oracle_rounds: int = 0
    extra: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        """Serializable counter snapshot (one schema everywhere)."""
        return {
            "batches_applied": self.batches_applied,
            "events_applied": self.events_applied,
            "sketch_queries": self.sketch_queries,
            "decode_failures": self.decode_failures,
            "scheduled_recomputes": self.scheduled_recomputes,
            "full_recomputes": self.full_recomputes,
            "sketch_rebuilds": self.sketch_rebuilds,
            "oracle_rounds": self.oracle_rounds,
        }


class StreamingConnectivity:
    """Batched insert/delete connectivity on a maintained AGM sketch.

    Parameters
    ----------
    n:
        Number of vertices (fixed for the structure's lifetime).
    rng:
        Seed or generator; drives the sketch randomness, every rebuild's
        fresh randomness, and the oracle pipeline's randomness — the
        whole run is reproducible from it.
    spectral_gap_bound, config:
        Forwarded to the oracle recompute
        (:func:`~repro.core.mpc_connected_components`); the pipeline's
        honest verification broadcast keeps oracle labels exact even
        when the bound is loose for the current graph.
    engine, backend:
        Connectivity-engine and execution-backend specs for the oracle
        recompute — any registered name or instance, exactly as the
        dispatch seam accepts them.
    recompute_every:
        Force a full recompute (and sketch rebuild) on the first query
        after every this-many applied batches, regardless of sketch
        health; ``None`` recomputes only on decode failure.
    sparsity, rows, boruvka_rounds:
        Sketch shape knobs, forwarded to :meth:`AGMSketch.empty`.
    """

    def __init__(
        self,
        n: int,
        *,
        rng=None,
        spectral_gap_bound: float = 0.1,
        config: "PipelineConfig | None" = None,
        engine="paper",
        backend="local",
        recompute_every: "int | None" = None,
        sparsity: int = 4,
        rows: int = 3,
        boruvka_rounds: "int | None" = None,
    ):
        self.n = check_positive_int(n, "n")
        self._rng = ensure_rng(rng)
        self._gap_bound = float(spectral_gap_bound)
        self._config = config or PipelineConfig()
        self._engine = engine
        self._backend = backend
        if recompute_every is not None:
            recompute_every = check_positive_int(recompute_every, "recompute_every")
        self._recompute_every = recompute_every
        self._sketch_shape = dict(
            sparsity=sparsity, rows=rows, boruvka_rounds=boruvka_rounds
        )
        self._sketch = AGMSketch.empty(n, self._rng, **self._sketch_shape)
        self._multiplicity: "dict[int, int]" = {}
        self._batches_since_recompute = 0
        self._cached_labels: "np.ndarray | None" = canonical_labels(
            np.arange(n, dtype=np.int64)
        )
        self.stats = StreamingStats()

    # -- updates -------------------------------------------------------------

    def apply(self, batch: EventBatch) -> None:
        """Apply one event batch to the sketch and the live multiset.

        Validates the whole batch against the current multiset first —
        a delete that would drive any edge's multiplicity negative
        raises :class:`ValueError` and nothing is mutated.
        """
        edges = batch.edges
        if edges.size and edges.max() >= self.n:
            raise ValueError(f"edge endpoint out of range [0, {self.n})")
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        edge_ids = lo * self.n + hi
        unique_ids, inverse = np.unique(edge_ids, return_inverse=True)
        deltas = np.zeros(unique_ids.shape[0], dtype=np.int64)
        np.add.at(deltas, inverse, batch.weights)
        for edge_id, delta in zip(unique_ids.tolist(), deltas.tolist()):
            if self._multiplicity.get(edge_id, 0) + delta < 0:
                u, v = divmod(edge_id, self.n)
                raise ValueError(
                    f"batch would delete edge ({u}, {v}) below multiplicity 0"
                )
        for edge_id, delta in zip(unique_ids.tolist(), deltas.tolist()):
            new = self._multiplicity.get(edge_id, 0) + delta
            if new:
                self._multiplicity[edge_id] = new
            else:
                self._multiplicity.pop(edge_id, None)
        self._sketch.update_edges(edges, batch.weights)
        self.stats.batches_applied += 1
        self.stats.events_applied += batch.size
        self._batches_since_recompute += 1
        self._cached_labels = None

    def apply_edges(self, edges, weights=None) -> None:
        """Shorthand: wrap raw arrays in an :class:`EventBatch` and apply."""
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if weights is None:
            weights = np.ones(edges.shape[0], dtype=np.int64)
        self.apply(EventBatch(edges, weights))

    # -- state ---------------------------------------------------------------

    @property
    def edge_count(self) -> int:
        """Total multiplicity of the live multiset."""
        return sum(self._multiplicity.values())

    def current_graph(self) -> Graph:
        """Materialise the live multiset as a :class:`Graph`.

        Edges come out sorted by edge id with multiplicity expanded to
        parallel rows, so the materialisation is deterministic — the
        oracle and the differential tests rely on that.
        """
        if not self._multiplicity:
            return Graph(self.n, np.empty((0, 2), dtype=np.int64))
        ids = np.fromiter(self._multiplicity.keys(), dtype=np.int64)
        counts = np.fromiter(self._multiplicity.values(), dtype=np.int64)
        order = np.argsort(ids, kind="stable")
        ids, counts = ids[order], counts[order]
        expanded = np.repeat(ids, counts)
        return Graph(self.n, np.column_stack([expanded // self.n, expanded % self.n]))

    def graph_digest(self) -> str:
        """Content digest of the live multiset's deterministic materialisation.

        The exact key :mod:`repro.service` caches connectivity results
        under (:func:`repro.mpc.plan.graph_digest`), so a streaming
        maintainer can hand its current prefix to a long-lived
        :class:`~repro.service.ServiceClient` and hit the server's cache
        whenever the same multiset has been queried before —
        :meth:`current_graph` orders edges deterministically precisely
        so equal multisets digest equal.
        """
        from repro.mpc.plan import graph_digest

        graph = self.current_graph()
        return graph_digest(graph.n, graph.edges)

    # -- queries -------------------------------------------------------------

    def query(self) -> np.ndarray:
        """Canonical component labels for the current stream prefix.

        Decodes the maintained sketch; on decode failure — or when the
        ``recompute_every`` schedule is due — falls back to the full
        oracle recompute and rebuilds the sketch with fresh randomness.
        Labels are cached until the next :meth:`apply`.
        """
        if self._cached_labels is not None:
            return self._cached_labels.copy()
        if (
            self._recompute_every is not None
            and self._batches_since_recompute >= self._recompute_every
        ):
            self.stats.scheduled_recomputes += 1
            labels = self._full_recompute()
        else:
            try:
                labels = agm_decode_components(self._sketch)
                self.stats.sketch_queries += 1
            except RuntimeError:
                self.stats.decode_failures += 1
                labels = self._full_recompute()
        self._cached_labels = labels
        return labels.copy()

    def connected(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` are currently in the same component."""
        labels = self.query()
        return bool(labels[u] == labels[v])

    def component_count(self) -> int:
        """Number of components in the current labelling."""
        labels = self.query()
        return int(labels.max()) + 1 if labels.size else 0

    # -- the oracle ----------------------------------------------------------

    def recompute(self) -> np.ndarray:
        """Force the oracle recompute (and sketch rebuild) right now.

        Returns the fresh canonical labels; afterwards the sketch carries
        fresh randomness over the live multiset, exactly as if it had
        just been built from scratch.
        """
        self.stats.scheduled_recomputes += 1
        labels = self._full_recompute()
        self._cached_labels = labels
        return labels.copy()

    def _full_recompute(self) -> np.ndarray:
        """From-scratch recompute + sketch rebuild with fresh randomness."""
        graph = self.current_graph()
        result = mpc_connected_components(
            graph,
            self._gap_bound,
            config=self._config,
            rng=self._rng,
            engine=self._engine,
            backend=self._backend,
        )
        self.stats.full_recomputes += 1
        self.stats.oracle_rounds += result.rounds
        self._rebuild_sketch()
        self._batches_since_recompute = 0
        return canonical_labels(result.labels)

    def _rebuild_sketch(self) -> None:
        """Fresh-randomness sketch rebuilt from the live multiset."""
        self._sketch = AGMSketch.empty(self.n, self._rng, **self._sketch_shape)
        graph = self.current_graph()
        if graph.m:
            self._sketch.update_edges(graph.edges)
        self.stats.sketch_rebuilds += 1
