"""Streaming-update connectivity on the AGM sketch layer.

The dynamic-graph workload: an edge insert/delete stream, processed as
batched signed updates to a maintained :class:`~repro.sketch.AGMSketch`
(linearity makes a delete just a ``-1`` update), with component and
connectivity queries answered between batches and a periodic full
recompute (``mpc_connected_components`` through any registered
engine/backend) as the oracle when sketch decoding degrades.

* :class:`EventBatch` — one batch of signed edge events.
* :class:`StreamingConnectivity` — the maintained structure.
* :class:`StreamWorkload` + the registered stream patterns
  (``insert_heavy``, ``delete_heavy``, ``churn``, ``component_split``)
  — declarative, reproducible update streams over every registered
  graph family.
"""

from repro.streaming.connectivity import StreamingConnectivity, StreamingStats
from repro.streaming.events import EventBatch
from repro.streaming.streams import (
    StreamWorkload,
    register_stream_pattern,
    stream_pattern_names,
)

__all__ = [
    "EventBatch",
    "StreamingConnectivity",
    "StreamingStats",
    "StreamWorkload",
    "register_stream_pattern",
    "stream_pattern_names",
]
