"""Reproducible edge-event streams over the registered graph families.

A :class:`StreamWorkload` is the streaming analogue of
:class:`repro.bench.workloads.Workload`: a declarative recipe — graph
family × size × *stream pattern* — that materialises into a deterministic
sequence of :class:`~repro.streaming.events.EventBatch`es.  Patterns are
registered by name so experiments and tests can sweep them like graph
families.

The four bundled patterns cover the update mixes a dynamic-connectivity
structure must survive:

* ``insert_heavy`` — incremental build-up: the family's edges arrive in
  shuffled insert batches.
* ``delete_heavy`` — decremental teardown: everything is inserted up
  front, then most instances are deleted batch by batch.
* ``churn`` — sustained mixed load: every batch deletes a random slice
  of the present instances and re-inserts a slice of the absent ones.
* ``component_split`` — the adversary: extra bridges join two vertex
  halves, then *every* crossing instance is deleted so the components
  split exactly along the cut — correct answers require the sketch's
  cancellations to be exact — before one fresh bridge re-merges them.

Every pattern deletes only instances it knows to be present, so a
stream is always applicable (no negative multiplicities) starting from
an empty :class:`~repro.streaming.connectivity.StreamingConnectivity`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.workloads import Workload
from repro.graph.graph import Graph
from repro.streaming.events import EventBatch
from repro.utils.rng import ensure_rng

_PATTERNS: "dict[str, callable]" = {}


def register_stream_pattern(name: str):
    """Decorator: register a ``pattern(graph, rng, batches) -> list[EventBatch]``."""

    def decorator(pattern):
        if name in _PATTERNS:
            raise ValueError(f"stream pattern {name!r} is already registered")
        _PATTERNS[name] = pattern
        return pattern

    return decorator


def stream_pattern_names() -> "list[str]":
    """Sorted names of all registered stream patterns."""
    return sorted(_PATTERNS)


@dataclass(frozen=True)
class EventStream:
    """A materialised stream: the vertex count plus its event batches."""

    n: int
    batches: "tuple[EventBatch, ...]"

    def __iter__(self):
        return iter(self.batches)

    def __len__(self) -> int:
        return len(self.batches)

    @property
    def total_events(self) -> int:
        """Total number of events across all batches."""
        return sum(batch.size for batch in self.batches)


@dataclass(frozen=True)
class StreamWorkload:
    """A reproducible update stream: ``family`` × size × ``pattern``.

    ``build(seed)`` materialises the family's graph (exactly as the
    static :class:`~repro.bench.workloads.Workload` would) and threads
    it through the named stream pattern; the same seed always yields
    the same batches.  ``batches`` is the pattern's batch-count target
    (adversarial patterns may use their own fixed shape).
    """

    family: str
    n: int
    pattern: str
    batches: int = 6
    params: "dict" = field(default_factory=dict)

    def __post_init__(self):
        if self.pattern not in _PATTERNS:
            raise KeyError(
                f"unknown stream pattern {self.pattern!r}; "
                f"available: {stream_pattern_names()}"
            )
        if self.batches < 1:
            raise ValueError(f"batches must be positive, got {self.batches}")

    @property
    def label(self) -> str:
        """Stable record key: ``pattern:family(n=...)``."""
        return f"{self.pattern}:{Workload(self.family, self.n, self.params).label}"

    def build(self, rng=None) -> EventStream:
        """Materialise the stream (deterministic for a seeded ``rng``)."""
        rng = ensure_rng(rng)
        graph = Workload(self.family, self.n, self.params).build(rng)
        batches = _PATTERNS[self.pattern](graph, rng, self.batches)
        return EventStream(n=graph.n, batches=tuple(batches))


def _chunks(array: np.ndarray, count: int) -> "list[np.ndarray]":
    """Split into up to ``count`` non-empty contiguous chunks."""
    count = max(1, min(count, array.shape[0]))
    return [c for c in np.array_split(array, count) if c.shape[0]]


def _loopless(graph: Graph) -> np.ndarray:
    """The graph's edge instances with self-loops dropped (events reject
    them; they carry no connectivity information)."""
    edges = graph.edges
    if edges.shape[0] == 0:
        return edges.reshape(0, 2)
    return edges[edges[:, 0] != edges[:, 1]]


@register_stream_pattern("insert_heavy")
def insert_heavy_stream(graph: Graph, rng, batches: int) -> "list[EventBatch]":
    """Incremental build-up: all edge instances arrive as shuffled inserts."""
    rng = ensure_rng(rng)
    edges = _loopless(graph)
    order = rng.permutation(edges.shape[0])
    return [EventBatch.insert(chunk) for chunk in _chunks(edges[order], batches)]


@register_stream_pattern("delete_heavy")
def delete_heavy_stream(
    graph: Graph, rng, batches: int, *, delete_fraction: float = 0.75
) -> "list[EventBatch]":
    """Decremental teardown: insert everything, then delete most of it."""
    rng = ensure_rng(rng)
    edges = _loopless(graph)
    out = [EventBatch.insert(edges)]
    doomed = rng.permutation(edges.shape[0])
    doomed = doomed[: max(1, int(delete_fraction * doomed.shape[0]))]
    out.extend(
        EventBatch.delete(edges[chunk])
        for chunk in _chunks(doomed, max(1, batches - 1))
    )
    return out


@register_stream_pattern("churn")
def churn_stream(
    graph: Graph, rng, batches: int, *, delete_fraction: float = 0.25
) -> "list[EventBatch]":
    """Sustained mixed load: each batch deletes a random slice of the
    present instances and re-inserts a slice of the absent ones."""
    rng = ensure_rng(rng)
    edges = _loopless(graph)
    present = np.ones(edges.shape[0], dtype=bool)
    out = [EventBatch.insert(edges)]
    for _ in range(max(1, batches - 1)):
        here = np.flatnonzero(present)
        gone = np.flatnonzero(~present)
        kill = rng.permutation(here)[: max(1, int(delete_fraction * here.shape[0]))]
        revive = rng.permutation(gone)[: gone.shape[0] // 2]
        chosen = np.concatenate([kill, revive])
        weights = np.concatenate(
            [
                -np.ones(kill.shape[0], dtype=np.int64),
                np.ones(revive.shape[0], dtype=np.int64),
            ]
        )
        present[kill] = False
        present[revive] = True
        out.append(EventBatch(edges[chosen], weights))
    return out


@register_stream_pattern("component_split")
def component_split_stream(
    graph: Graph, rng, batches: int, *, extra_bridges: int = 3
) -> "list[EventBatch]":
    """The component-split adversary (``batches`` is ignored: the attack
    has a fixed four-act shape).

    Inserts the family's edges plus ``extra_bridges`` explicit bridges
    across the vertex halves, then deletes *every* crossing instance in
    two shuffled batches — the components must split exactly along the
    cut, which only happens if the sketch's signed cancellations are
    exact — and finally re-inserts one fresh bridge to re-merge.
    """
    rng = ensure_rng(rng)
    edges = _loopless(graph)
    n = graph.n
    half = max(1, n // 2)
    lows = rng.choice(half, size=min(extra_bridges, half), replace=False)
    bridges = np.column_stack([lows, (lows + half) % n]).astype(np.int64)
    bridges = bridges[bridges[:, 0] != bridges[:, 1]]

    all_edges = np.concatenate([edges, bridges]) if edges.size else bridges
    in_a = np.minimum(all_edges[:, 0], all_edges[:, 1]) < half
    in_b = np.maximum(all_edges[:, 0], all_edges[:, 1]) >= half
    crossing = np.flatnonzero(in_a & in_b)

    out = [EventBatch.insert(all_edges)]
    doomed = rng.permutation(crossing)
    out.extend(
        EventBatch.delete(all_edges[chunk]) for chunk in _chunks(doomed, 2)
    )
    if n > 2:
        lo = int(rng.integers(0, half))
        out.append(EventBatch.insert(np.array([[lo, half]], dtype=np.int64)))
    return out
