"""Edge events for the streaming-connectivity workload.

An event is a signed edge-multiplicity delta: weight ``+k`` inserts ``k``
parallel copies of the edge, ``-k`` deletes ``k``.  Events travel in
batches (numpy arrays, not per-event objects) because both consumers —
the linear AGM sketch and the materialised edge multiset — apply them
vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class EventBatch:
    """One batch of signed edge events.

    Parameters
    ----------
    edges:
        ``(m, 2)`` int64 endpoints.  Self-loops are rejected: they carry
        no connectivity information and would silently vanish inside the
        sketch, making the materialised multiset and the sketch disagree
        about what was applied.
    weights:
        ``(m,)`` int64 multiplicity deltas; positive inserts, negative
        deletes, zero rejected.
    """

    edges: np.ndarray
    weights: np.ndarray

    def __post_init__(self):
        edges = np.asarray(self.edges, dtype=np.int64).reshape(-1, 2)
        weights = np.asarray(self.weights, dtype=np.int64).reshape(-1)
        if weights.shape[0] != edges.shape[0]:
            raise ValueError(
                f"{edges.shape[0]} edges but {weights.shape[0]} weights"
            )
        if edges.size and edges.min() < 0:
            raise ValueError("edge endpoints must be non-negative")
        if edges.size and np.any(edges[:, 0] == edges[:, 1]):
            raise ValueError("self-loop events are not allowed")
        if np.any(weights == 0):
            raise ValueError("zero-weight events are not allowed")
        object.__setattr__(self, "edges", edges)
        object.__setattr__(self, "weights", weights)

    @classmethod
    def insert(cls, edges) -> "EventBatch":
        """A batch inserting every given edge once."""
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        return cls(edges, np.ones(edges.shape[0], dtype=np.int64))

    @classmethod
    def delete(cls, edges) -> "EventBatch":
        """A batch deleting every given edge once."""
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        return cls(edges, -np.ones(edges.shape[0], dtype=np.int64))

    @property
    def size(self) -> int:
        """Number of events in the batch."""
        return int(self.edges.shape[0])

    @property
    def inserts(self) -> int:
        """Total multiplicity inserted by the batch."""
        return int(self.weights[self.weights > 0].sum())

    @property
    def deletes(self) -> int:
        """Total multiplicity deleted by the batch."""
        return int(-self.weights[self.weights < 0].sum())
