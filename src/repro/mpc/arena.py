"""Persistent shared-memory arena for the true-parallel executor.

Before this module existed, every :class:`~repro.mpc.process_backend.
ProcessBackend` operation created fresh ``multiprocessing.shared_memory``
segments for its inputs and outputs and unlinked them when the operation
returned.  At pipeline scale that is O(ops) segment allocations per run —
each one a ``shm_open`` + ``ftruncate`` + ``mmap`` round-trip on the hot
path, exactly the constant-factor per-round overhead the work-efficient
MPC connectivity literature warns separates round-optimal algorithms from
fast ones.

A :class:`ShmArena` owns *long-lived* segments instead.  Callers acquire
:class:`ArenaLease`\\ s — numpy-viewable reservations of a whole segment —
and release them back to a free list when the operation completes, so a
pipeline run allocates O(distinct size classes) segments up front and then
recycles them across operations and rounds.  Three safety properties make
the leases a real discipline rather than a raw buffer pool:

* **No aliasing** — a live lease owns its whole segment; the arena never
  hands the same segment to two live leases (property-tested in
  ``tests/test_arena.py``).
* **Generation tags** — every segment carries a generation counter,
  bumped on each release.  A lease captures the generation it was issued
  under, and every access through :attr:`ArenaLease.view` /
  :attr:`ArenaLease.descriptor` re-validates it, so use-after-release is
  an immediate :class:`ArenaLeaseError` instead of silent data corruption
  through a recycled buffer.
* **Bounded lifetime** — segments are unlinked only by :meth:`ShmArena.
  close` (also run by a ``weakref`` finalizer), never mid-run, so worker
  processes may cache their attachments by segment name for as long as
  the arena lives.  ``close()`` leaves nothing behind in ``/dev/shm`` —
  the lifecycle test re-attaches every name and expects
  ``FileNotFoundError``.

**Pinned leases** extend recycling across *operations*: an input array
marked read-only (``array.flags.writeable`` is ``False`` with no base)
can be shared once via :meth:`ShmArena.share_pinned` and re-used by every
subsequent operation that passes the same array object — the repeated
``send``/``recv`` incidence arrays of the label-broadcast loop stop being
re-copied on every level.  Reuse is content-verified (a vectorised
compare, cheaper than the copy it saves), so a pinned buffer can never
serve stale data.  A ``weakref`` on the array releases the pinned lease
when the caller drops it.

This buffer-lease discipline is also the prerequisite for any future
async/RPC executor: a remote data plane needs exactly this "allocate
once, lease per op, generation-check on reuse" contract.
"""

from __future__ import annotations

import weakref
from multiprocessing import shared_memory

import numpy as np

#: Smallest segment the arena allocates (one page); sizes round up to the
#: next power of two so operations of similar magnitude share size classes.
MIN_SEGMENT_BYTES = 4096


class ArenaLeaseError(RuntimeError):
    """A lease was used after release (or after its arena closed)."""


def _round_up_pow2(nbytes: int) -> int:
    """Smallest power-of-two segment size (≥ :data:`MIN_SEGMENT_BYTES`)
    holding ``nbytes``.
    """
    size = MIN_SEGMENT_BYTES
    while size < nbytes:
        size *= 2
    return size


class _Segment:
    """One shared-memory block owned by the arena (internal)."""

    __slots__ = ("shm", "size", "generation", "in_use")

    def __init__(self, shm: shared_memory.SharedMemory, size: int):
        self.shm = shm
        self.size = size
        self.generation = 0
        self.in_use = False


class ArenaLease:
    """A generation-tagged reservation of one arena segment.

    The lease exposes the segment as a numpy array (:attr:`view`) and as
    a picklable :attr:`descriptor` workers can attach by name.  Both
    accessors re-validate the generation tag, so any access after
    :meth:`release` (or after the owning arena closed) raises
    :class:`ArenaLeaseError`.  Leases are context managers: leaving the
    ``with`` body releases them.
    """

    __slots__ = ("_arena", "_segment", "shape", "dtype", "nbytes",
                 "_generation", "_released")

    def __init__(self, arena: "ShmArena", segment: _Segment, shape, dtype):
        self._arena = arena
        self._segment = segment
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.nbytes = int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize
        self._generation = segment.generation
        self._released = False

    # -- validation ----------------------------------------------------------

    @property
    def alive(self) -> bool:
        """True while the lease may be used (not released, arena open)."""
        return (
            not self._released
            and not self._arena.closed
            and self._segment.generation == self._generation
        )

    def _check(self) -> None:
        if not self.alive:
            raise ArenaLeaseError(
                f"stale lease: segment {self._segment.shm.name} is at "
                f"generation {self._segment.generation}, lease was issued at "
                f"{self._generation}"
                + (" (arena closed)" if self._arena.closed else "")
            )

    # -- access --------------------------------------------------------------

    @property
    def view(self) -> np.ndarray:
        """The live numpy view over the leased segment."""
        self._check()
        return np.ndarray(self.shape, dtype=self.dtype,
                          buffer=self._segment.shm.buf)

    @property
    def descriptor(self) -> tuple:
        """Picklable ``(name, shape, dtype_str, cacheable)`` for workers.

        ``cacheable`` tells a worker it may keep its attachment open by
        name: true for persistent arenas (segments live until the arena
        closes), false for transient per-operation arenas, whose
        segments are unlinked as soon as the operation returns.
        """
        self._check()
        return (
            self._segment.shm.name,
            self.shape,
            self.dtype.str,
            self._arena.cache_in_workers,
        )

    @property
    def segment_name(self) -> str:
        """The shared-memory name backing this lease (for tests/debug)."""
        self._check()
        return self._segment.shm.name

    # -- lifecycle -----------------------------------------------------------

    def release(self) -> None:
        """Return the segment to the arena's free list (idempotent).

        Releasing a lease that is already stale — the arena closed, or a
        pinned lease was evicted — is a no-op: release is the cleanup
        path (``with`` blocks, ``finally`` clauses), and cleanup must
        not mask the error that invalidated the lease.  Only the *data*
        accessors raise on staleness.
        """
        if self._released or not self.alive:
            self._released = True
            return
        self._released = True
        self._arena._release_segment(self._segment)

    def __enter__(self) -> "ArenaLease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "live" if self.alive else "stale"
        return (
            f"ArenaLease({self._segment.shm.name}, shape={self.shape}, "
            f"dtype={self.dtype}, {state})"
        )


def _unlink_segments(segments: "list[_Segment]") -> None:
    """Finalizer body: close + unlink every segment (idempotent)."""
    for segment in segments:
        try:
            segment.shm.close()
            segment.shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - cleanup
            pass
    segments.clear()


class ShmArena:
    """Allocator of long-lived shared-memory segments with lease recycling.

    Parameters
    ----------
    cache_in_workers:
        Marks every descriptor this arena issues as safe for worker-side
        attachment caching.  True (default) for the persistent per-backend
        arena; the process backend passes False for the transient arenas
        it creates in ``--no-arena`` mode, whose segments are unlinked per
        operation.

    Acquisition is best-fit over the free list: the smallest free segment
    that holds the request wins; a miss allocates a fresh segment whose
    size is the request rounded up to a power of two (so repeated
    operations of similar magnitude converge on a handful of size
    classes and the steady-state allocation rate is zero).
    """

    def __init__(self, *, cache_in_workers: bool = True):
        self.cache_in_workers = bool(cache_in_workers)
        self._segments: "list[_Segment]" = []
        self._closed = False
        # Pinned read-only inputs: id(array) -> (weakref, lease).
        self._pinned: "dict[int, tuple]" = {}
        self.segments_created = 0
        self.bytes_reserved = 0
        self.leases_issued = 0
        self.leases_recycled = 0
        self.pinned_hits = 0
        self._live_leases = 0
        self.peak_live_leases = 0
        self._finalizer = weakref.finalize(
            self, _unlink_segments, self._segments
        )

    # -- state ---------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; acquiring then raises."""
        return self._closed

    def segment_names(self) -> "list[str]":
        """Shared-memory names of every segment currently owned."""
        return [segment.shm.name for segment in self._segments]

    def stats(self) -> dict:
        """Allocation/recycling counters (embedded in ``BackendStats``).

        ``segments`` is the number of shared-memory segments ever created
        by this arena — the quantity the arena exists to keep O(1) per
        run; ``leases`` / ``recycled`` / ``pinned_hits`` break down how
        demand was served; ``bytes_reserved`` is the total capacity held.
        """
        return {
            "segments": self.segments_created,
            "segments_held": len(self._segments),
            "bytes_reserved": self.bytes_reserved,
            "leases": self.leases_issued,
            "recycled": self.leases_recycled,
            "pinned_hits": self.pinned_hits,
            "peak_live_leases": self.peak_live_leases,
        }

    # -- allocation ----------------------------------------------------------

    def acquire(self, shape, dtype) -> ArenaLease:
        """Lease a segment holding an array of ``shape`` × ``dtype``.

        Reuses the best-fitting free segment when one exists, else
        allocates a new one.  The returned view is uninitialised.

        Raises
        ------
        ArenaLeaseError
            The arena is closed.
        """
        if self._closed:
            raise ArenaLeaseError("arena is closed")
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dtype.itemsize)
        best = None
        for segment in self._segments:
            if segment.in_use or segment.size < nbytes:
                continue
            if best is None or segment.size < best.size:
                best = segment
        if best is None:
            size = _round_up_pow2(nbytes)
            shm = shared_memory.SharedMemory(create=True, size=size)
            best = _Segment(shm, size)
            self._segments.append(best)
            self.segments_created += 1
            self.bytes_reserved += size
        else:
            self.leases_recycled += 1
        best.in_use = True
        self.leases_issued += 1
        self._live_leases += 1
        self.peak_live_leases = max(self.peak_live_leases, self._live_leases)
        return ArenaLease(self, best, shape, dtype)

    def share(self, array: np.ndarray) -> ArenaLease:
        """Copy ``array`` into a leased segment; returns the lease."""
        array = np.ascontiguousarray(array)
        lease = self.acquire(array.shape, array.dtype)
        lease.view[...] = array
        return lease

    def share_pinned(self, array: np.ndarray) -> "tuple[ArenaLease, bool] | None":
        """Share a *read-only* array once and reuse the lease on repeats.

        Returns ``(lease, copied)`` when ``array`` qualifies for pinning
        (non-writeable with no base array) — ``copied`` is True iff this
        call wrote the array into shared memory, False on a verified
        cache hit — and ``None`` otherwise, in which case the caller
        must fall back to :meth:`share` and manage the lease's lifetime
        itself.

        Reuse is *content-verified*: a hit compares the cached shared
        copy against the array (a vectorised compare is cheaper than
        the copy it saves, and it makes the cache correct even if the
        contents changed behind the read-only flag — e.g. through a
        writeable view taken before the flag was set).  A detected
        change refreshes the shared copy in place.

        Pinned leases are owned by the arena: a weak reference on the
        array releases them when the caller drops it, and :meth:`close`
        releases the rest.  Callers must not release pinned leases
        themselves.
        """
        if array.flags.writeable or array.base is not None:
            return None
        key = id(array)
        entry = self._pinned.get(key)
        if entry is not None:
            ref, lease = entry
            if (
                ref() is array
                and lease.alive
                and lease.shape == array.shape
                and lease.dtype == array.dtype
            ):
                view = lease.view
                if np.array_equal(view, array):
                    self.pinned_hits += 1
                    return lease, False
                view[...] = array  # mutated behind the flag: refresh
                return lease, True
            self._pinned.pop(key, None)
            if lease.alive:
                lease.release()
        lease = self.share(array)
        self._pinned[key] = (
            weakref.ref(array, lambda _ref: self._evict_pinned(key)),
            lease,
        )
        return lease, True

    def _evict_pinned(self, key: int) -> None:
        entry = self._pinned.pop(key, None)
        if entry is not None and not self._closed and entry[1].alive:
            entry[1].release()

    def _release_segment(self, segment: _Segment) -> None:
        segment.generation += 1  # invalidates every outstanding lease tag
        segment.in_use = False
        self._live_leases -= 1

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Unlink every segment and invalidate all leases (idempotent).

        After closing, nothing this arena created remains attachable by
        name; live leases (including pinned ones) turn stale.
        """
        if self._closed:
            return
        self._closed = True
        self._pinned.clear()
        for segment in self._segments:
            segment.generation += 1
        self._finalizer()
        self._live_leases = 0

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShmArena(segments={len(self._segments)}, "
            f"created={self.segments_created}, "
            f"reserved={self.bytes_reserved}b, "
            f"{'closed' if self._closed else 'open'})"
        )
