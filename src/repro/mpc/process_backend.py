"""True-parallel MPC data plane: a pool of OS worker processes.

:class:`ProcessBackend` is the first executor that makes the reproduction
faster on real hardware rather than only cheaper in accounted rounds.  It
subclasses :class:`~repro.mpc.backends.ShardedBackend` and overrides *only*
the compute kernels, so capacity enforcement
(:class:`~repro.mpc.machine.MachineMemoryError` semantics), exchange
attribution, and every counter reported in ``engine.summary()["backend"]``
are shared code — counter-identical to the sharded backend by
construction, which the differential suite asserts.

Execution model
---------------
The pool holds ``workers`` long-lived OS processes (stdlib
``multiprocessing``; no third-party dependencies).  Arrays travel through
``multiprocessing.shared_memory`` blocks and are read in the workers as
zero-copy numpy views; only tiny command descriptors (shared-memory names,
shapes, dtypes, splitters, block bounds) cross the command pipes.

Work is partitioned along the same canonical shard layout the
:class:`~repro.mpc.backends.ShardedBackend` accounts for: with
``shard_count`` shards of ``s`` words, each worker owns
``ceil(shard_count / workers)`` consecutive shards and executes its part
of every operation locally.  Synchronisation is one explicit exchange
barrier per operation — the parent dispatches one command per worker and
waits for all replies — and the only data that conceptually moves at the
barrier is what the sharded accounting already prices: the splitters that
delimit each worker's key range and the records migrating to the shards
that own them in the output layout.

Per-operation partitioning:

* ``search`` — query positions are split into shard-aligned blocks; each
  worker gathers ``table[queries[lo:hi]]`` for its block.
* ``sort`` / ``reduce_by_key`` — sample sort: the parent draws a
  deterministic sample of the keys and broadcasts ``W - 1`` splitters;
  worker ``w`` selects the keys in its splitter range, stable-sorts them
  locally (original positions ascending break ties, so the concatenation
  of the buckets *is* the global stable argsort, bit for bit), and writes
  the result directly into its slice of the output block.  Reduce-by-key
  additionally folds each group locally — key ranges are disjoint across
  workers, so no combine step is needed.
* ``min_label_exchange`` — the label space is split into shard-aligned
  ranges; each worker owns the labels of its range and applies
  ``minimum.at`` for exactly the incidences whose receiving endpoint
  lives there (min is commutative, associative, and idempotent, so any
  partition gives the serial result exactly).  Each worker selects its
  range by scanning the full incidence arrays — deliberately redundant:
  the vectorised compares are cheap, while the scalar ``minimum.at``
  scatter they feed is the expensive part the partition divides, and a
  parent-side pre-bucketing argsort would serialise more work than the
  redundant scans cost.

Determinism
-----------
Every kernel is bit-identical to the serial
:class:`~repro.mpc.backends.ShardedBackend` kernels — the pipeline's
labels, round counts, and RNG streams do not depend on the worker count.
Inputs the range partition cannot handle exactly (non-finite floats,
object dtypes, 0-d edge cases) fall back to the serial kernels, as do
operations below ``min_parallel_items`` words, where process dispatch
overhead would dominate.

Lifecycle
---------
Workers start lazily on the first parallel kernel and are reused across
operations, engines, and :meth:`reset` calls.  Call :meth:`close` (or use
the backend as a context manager) to stop the pool; a finalizer and
daemonised workers guarantee nothing outlives the interpreter either way.
"""

from __future__ import annotations

import contextlib
import math
import multiprocessing
import os
import weakref
from multiprocessing import shared_memory

import numpy as np

from repro.mpc.backends import BACKENDS, ShardedBackend, _grouped_reduce
from repro.utils.validation import check_nonnegative_int, check_positive_int

#: Below this many words an operation runs on the serial kernels: the
#: ~0.1–1 ms of per-operation process dispatch would dominate the compute.
DEFAULT_MIN_PARALLEL_ITEMS = 32768


#: Scoped override for the ``workers=None`` default (see
#: :func:`default_workers`); ``None`` means "derive from the CPU count".
_DEFAULT_WORKERS_OVERRIDE: "int | None" = None


def usable_cpu_count() -> int:
    """CPUs this process may run on (affinity-aware; at least 1)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def default_worker_count() -> int:
    """Worker processes to use when none are requested.

    The :func:`default_workers` override wins when active; otherwise the
    usable CPUs (respecting CPU affinity masks in containers), capped
    at 4.
    """
    if _DEFAULT_WORKERS_OVERRIDE is not None:
        return _DEFAULT_WORKERS_OVERRIDE
    return min(4, usable_cpu_count())


@contextlib.contextmanager
def default_workers(workers: "int | None"):
    """Scope a default pool size for ``ProcessBackend(workers=None)``.

    The bench runner wraps each experiment in this so ``--workers N``
    reaches every backend the experiment constructs by name — including
    the ones built deep inside ``mpc_connected_components(...,
    backend="process")``.  Backends constructed with an explicit
    ``workers=`` are unaffected.  ``None`` is a no-op scope.
    """
    global _DEFAULT_WORKERS_OVERRIDE
    if workers is not None:
        workers = check_positive_int(workers, "workers")
    previous = _DEFAULT_WORKERS_OVERRIDE
    _DEFAULT_WORKERS_OVERRIDE = workers if workers is not None else previous
    try:
        yield
    finally:
        _DEFAULT_WORKERS_OVERRIDE = previous


def _mp_context():
    """The cheapest available start method (fork on Linux, else spawn)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# ---------------------------------------------------------------------------
# Shared-memory plumbing
# ---------------------------------------------------------------------------
#
# A descriptor is the picklable triple ``(name, shape, dtype_str)``; the
# parent owns every block (create + unlink), workers only attach.


class _Arena:
    """Parent-side owner of the shared-memory blocks of one operation.

    Use as a context manager: blocks are created inside the ``with`` body
    (outputs must be copied out before it exits) and are closed *and
    unlinked* on exit, so no segment outlives its operation.
    """

    def __init__(self):
        self._blocks: "list[shared_memory.SharedMemory]" = []

    def __enter__(self) -> "_Arena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def share(self, array: np.ndarray) -> tuple:
        """Copy ``array`` into a fresh block; returns its descriptor."""
        array = np.ascontiguousarray(array)
        desc, view = self.alloc(array.shape, array.dtype)
        view[...] = array
        return desc

    def alloc(self, shape, dtype) -> "tuple[tuple, np.ndarray]":
        """Allocate an uninitialised block; returns (descriptor, view)."""
        dtype = np.dtype(dtype)
        words = int(np.prod(shape, dtype=np.int64)) if shape else 1
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, words * dtype.itemsize)
        )
        self._blocks.append(shm)
        view = np.ndarray(tuple(shape), dtype=dtype, buffer=shm.buf)
        return (shm.name, tuple(shape), dtype.str), view

    def close(self) -> None:
        """Close and unlink every block created by this arena."""
        for shm in self._blocks:
            try:
                shm.close()
                shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover - cleanup
                pass
        self._blocks.clear()


def _attach(desc, opened: list) -> np.ndarray:
    """Worker-side: attach a descriptor, return its numpy view.

    The segment handle is appended to ``opened`` so the caller can close
    it after the kernel.  Resource-tracker registration is suppressed
    around the attach: the parent owns every segment's lifetime, and on
    Python < 3.13 an attach would otherwise register the name a second
    time and have it unlinked (or double-unregistered) when the worker
    exits (bpo-39959).
    """
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        shm = shared_memory.SharedMemory(name=desc[0])
    finally:
        resource_tracker.register = original_register
    opened.append(shm)
    return np.ndarray(desc[1], dtype=np.dtype(desc[2]), buffer=shm.buf)


# ---------------------------------------------------------------------------
# Worker-side kernels
# ---------------------------------------------------------------------------


def _bucket_select(keys: np.ndarray, lo, hi) -> "tuple[np.ndarray, int]":
    """Original positions (ascending) of the keys in ``[lo, hi)`` plus the
    bucket's global output offset (= count of keys below ``lo``).

    ``None`` bounds are open: ``(None, None)`` selects everything.
    """
    if lo is None and hi is None:
        return np.arange(keys.shape[0], dtype=np.int64), 0
    mask = np.ones(keys.shape[0], dtype=bool)
    if lo is not None:
        mask &= keys >= lo
    if hi is not None:
        mask &= keys < hi
    offset = 0 if lo is None else int(np.count_nonzero(keys < lo))
    return np.flatnonzero(mask), offset


def _op_search(payload: dict):
    opened: list = []
    try:
        table = _attach(payload["table"], opened)
        queries = _attach(payload["queries"], opened)
        out = _attach(payload["out"], opened)
        lo, hi = payload["block"]
        out[lo:hi] = table[queries[lo:hi]]
    finally:
        for shm in opened:
            shm.close()
    return None


def _op_sort(payload: dict):
    opened: list = []
    try:
        keys = _attach(payload["keys"], opened)
        values = _attach(payload["values"], opened)
        out_values = _attach(payload["out_values"], opened)
        out_order = _attach(payload["out_order"], opened)
        lo, hi = payload["bounds"]
        idx, offset = _bucket_select(keys, lo, hi)
        if idx.size:
            seg = idx[np.argsort(keys[idx], kind="stable")]
            out_order[offset : offset + seg.size] = seg
            out_values[offset : offset + seg.size] = values[seg]
    finally:
        for shm in opened:
            shm.close()
    return None


def _op_reduce(payload: dict):
    opened: list = []
    try:
        keys = _attach(payload["keys"], opened)
        values = _attach(payload["values"], opened)
        out_order = _attach(payload["out_order"], opened)
        out_unique = _attach(payload["out_unique"], opened)
        out_reduced = _attach(payload["out_reduced"], opened)
        lo, hi = payload["bounds"]
        idx, offset = _bucket_select(keys, lo, hi)
        if idx.size == 0:
            return (offset, 0)
        unique, reduced, local = _grouped_reduce(
            keys[idx], values[idx], payload["op"]
        )
        seg = idx[local]
        out_order[offset : offset + seg.size] = seg
        out_unique[offset : offset + unique.shape[0]] = unique
        out_reduced[offset : offset + reduced.shape[0]] = reduced
        return (offset, int(unique.shape[0]))
    finally:
        for shm in opened:
            shm.close()


def _op_min_label(payload: dict):
    opened: list = []
    try:
        labels = _attach(payload["labels"], opened)
        send = _attach(payload["send"], opened)
        recv = _attach(payload["recv"], opened)
        out_incoming = _attach(payload["out_incoming"], opened)
        out_labels = _attach(payload["out_labels"], opened)
        if payload["pos_block"] is not None:
            lo, hi = payload["pos_block"]
            out_incoming[lo:hi] = labels[send[lo:hi]]
        if payload["label_block"] is not None:
            lo, hi = payload["label_block"]
            out_labels[lo:hi] = labels[lo:hi]
            mask = (recv >= lo) & (recv < hi)
            np.minimum.at(out_labels, recv[mask], labels[send[mask]])
    finally:
        for shm in opened:
            shm.close()
    return None


_WORKER_OPS = {
    "search": _op_search,
    "sort": _op_sort,
    "reduce": _op_reduce,
    "min_label": _op_min_label,
}


def _worker_main(conn) -> None:
    """Worker process loop: execute commands until EOF / ``None``."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        op, payload = message
        try:
            result = _WORKER_OPS[op](payload)
        except BaseException as exc:  # noqa: BLE001 - ship every failure back
            try:
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):
                return
        else:
            conn.send(("ok", result))


def _shutdown_pool(procs: list, pipes: list) -> None:
    """Stop a worker pool: polite ``None``, then join, then terminate."""
    for pipe in pipes:
        try:
            pipe.send(None)
        except (BrokenPipeError, OSError):
            pass
        try:
            pipe.close()
        except OSError:  # pragma: no cover - cleanup
            pass
    for proc in procs:
        proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - stuck worker
            proc.terminate()
            proc.join(timeout=2.0)


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------


class ProcessBackend(ShardedBackend):
    """Sharded execution on a pool of OS worker processes.

    Accounting (capacity enforcement, exchange/byte counters, op counts)
    is inherited unchanged from :class:`~repro.mpc.backends.ShardedBackend`;
    only the ``_kernel_*`` compute hooks are overridden, so results *and*
    counters are bit-identical to the serial sharded backend while the
    heavy numpy work runs in parallel.

    Parameters
    ----------
    shard_memory:
        Per-shard capacity ``s`` in words; bound to the owning engine's
        ``machine_memory`` at attach time when ``None`` (exactly as the
        sharded backend does).
    max_shards:
        Optional hard fleet size; operations needing more shards raise
        :class:`~repro.mpc.machine.MachineMemoryError`.
    workers:
        OS processes in the pool (default: :func:`default_worker_count`).
        ``workers=1`` still routes kernels through the single worker
        process — the honest baseline for scaling measurements.
    min_parallel_items:
        Operations touching fewer words than this run on the serial
        kernels (default :data:`DEFAULT_MIN_PARALLEL_ITEMS`); set to 0 to
        force every operation through the pool (the differential tests
        do).

    Raises
    ------
    RuntimeError
        From any operation whose worker process died mid-command.
    """

    name = "process"

    def __init__(
        self,
        shard_memory: "int | None" = None,
        *,
        max_shards: "int | None" = None,
        workers: "int | None" = None,
        min_parallel_items: int = DEFAULT_MIN_PARALLEL_ITEMS,
    ):
        super().__init__(shard_memory, max_shards=max_shards)
        if workers is None:
            workers = default_worker_count()
        self.workers = check_positive_int(workers, "workers")
        self.min_parallel_items = check_nonnegative_int(
            min_parallel_items, "min_parallel_items"
        )
        self._procs: list = []
        self._pipes: list = []
        self._finalizer = None

    # -- pool lifecycle ------------------------------------------------------

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop the worker pool (idempotent; the pool restarts on demand)."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._procs = []
        self._pipes = []

    def _ensure_pool(self) -> None:
        if self._procs and all(p.is_alive() for p in self._procs):
            return
        self.close()
        ctx = _mp_context()
        for _ in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_main, args=(child_conn,), daemon=True)
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._pipes.append(parent_conn)
        self._finalizer = weakref.finalize(
            self, _shutdown_pool, list(self._procs), list(self._pipes)
        )

    def _run(self, commands: "list[tuple]") -> list:
        """One exchange barrier: dispatch ``commands[i]`` to worker ``i``
        and gather every reply (raising on worker death or kernel error).
        """
        self._ensure_pool()
        for i, command in enumerate(commands):
            try:
                self._pipes[i].send(command)
            except (BrokenPipeError, OSError) as exc:
                # Same contract as a recv failure: a dead worker means the
                # pipes are desynchronised — drop the pool and report.
                self.close()
                raise RuntimeError(
                    f"process backend worker {i} died mid-dispatch"
                ) from exc
        replies, first_error = [], None
        for i in range(len(commands)):
            try:
                status, value = self._pipes[i].recv()
            except (EOFError, OSError) as exc:
                # A dead worker desynchronises the pipes; drop the pool so
                # the next operation starts from a clean slate.
                self.close()
                raise RuntimeError(
                    f"process backend worker {i} died mid-operation"
                ) from exc
            if status == "err" and first_error is None:
                first_error = f"process backend worker {i} failed: {value}"
            replies.append(value)
        if first_error is not None:
            raise RuntimeError(first_error)
        return replies

    # -- partitioning --------------------------------------------------------

    def _use_pool(self, n: int) -> bool:
        return n > 0 and n >= self.min_parallel_items

    def _blocks(self, n: int) -> "list[tuple[int, int]]":
        """Shard-aligned position blocks: worker ``w`` owns the
        ``ceil(shard_count / workers)`` consecutive shards of block ``w``.
        """
        s = self._s
        shards = max(1, math.ceil(n / s))
        per_worker = math.ceil(shards / min(self.workers, shards))
        blocks = []
        for w in range(self.workers):
            lo = w * per_worker * s
            if lo >= n:
                break
            blocks.append((lo, min(n, (w + 1) * per_worker * s)))
        return blocks

    def _key_bounds(self, keys: np.ndarray) -> "list[tuple]":
        """Splitter-delimited key ranges for sample sort: ``≤ W`` disjoint
        half-open intervals covering the key space, picked from a
        deterministic sample so buckets are approximately balanced.
        """
        buckets = max(1, min(self.workers, self.shards_for(int(keys.shape[0]))))
        if buckets == 1:
            return [(None, None)]
        step = max(1, keys.shape[0] // (buckets * 64))
        sample = np.sort(keys[::step], kind="stable")
        positions = [(sample.shape[0] * i) // buckets for i in range(1, buckets)]
        splitters = np.unique(sample[positions])
        bounds = [None, *splitters.tolist(), None]
        return list(zip(bounds[:-1], bounds[1:]))

    @staticmethod
    def _partitionable(keys: np.ndarray) -> bool:
        """Key dtypes the range partition handles exactly (ints, bools,
        finite floats); anything else falls back to the serial kernel.
        """
        if keys.dtype.kind in "iub":
            return True
        if keys.dtype.kind == "f":
            return bool(np.isfinite(keys).all())
        return False

    @staticmethod
    def _shm_safe(*arrays: np.ndarray) -> bool:
        """True iff every array can live in shared memory: object dtypes
        hold PyObject pointers that are meaningless (spawn) or
        refcount-unsafe (fork) in another process, so they take the
        serial kernels instead.
        """
        return not any(array.dtype.hasobject for array in arrays)

    # -- parallel kernels ----------------------------------------------------

    def _kernel_search(self, table: np.ndarray, queries: np.ndarray) -> np.ndarray:
        n = int(queries.shape[0])
        if (
            not self._use_pool(n)
            or queries.ndim != 1
            or queries.dtype.kind not in "iu"
            or table.ndim > 2
            or not self._shm_safe(table)
        ):
            return super()._kernel_search(table, queries)
        with _Arena() as arena:
            table_d = arena.share(table)
            queries_d = arena.share(queries)
            out_d, out = arena.alloc((n,) + table.shape[1:], table.dtype)
            self._run(
                [
                    ("search", {"table": table_d, "queries": queries_d,
                                "out": out_d, "block": block})
                    for block in self._blocks(n)
                ]
            )
            return out.copy()

    def _kernel_sort(self, values: np.ndarray, keys: np.ndarray):
        n = int(values.shape[0])
        if (
            not self._use_pool(n)
            or keys.ndim != 1
            or values.ndim > 2
            or not self._partitionable(keys)
            or not self._shm_safe(values)
        ):
            return super()._kernel_sort(values, keys)
        with _Arena() as arena:
            keys_d = arena.share(keys)
            values_d = keys_d if values is keys else arena.share(values)
            out_values_d, out_values = arena.alloc(values.shape, values.dtype)
            out_order_d, out_order = arena.alloc((n,), np.int64)
            self._run(
                [
                    ("sort", {"keys": keys_d, "values": values_d,
                              "out_values": out_values_d,
                              "out_order": out_order_d, "bounds": bounds})
                    for bounds in self._key_bounds(keys)
                ]
            )
            return out_values.copy(), out_order.copy()

    def _kernel_reduce(self, keys: np.ndarray, values: np.ndarray, op: str):
        n = int(keys.shape[0])
        if (
            not self._use_pool(n)
            or keys.ndim != 1
            or values.ndim > 2
            or not self._partitionable(keys)
            or not self._shm_safe(values)
        ):
            return super()._kernel_reduce(keys, values, op)
        with _Arena() as arena:
            keys_d = arena.share(keys)
            values_d = arena.share(values)
            out_order_d, out_order = arena.alloc((n,), np.int64)
            out_unique_d, out_unique = arena.alloc((n,), keys.dtype)
            out_reduced_d, out_reduced = arena.alloc(values.shape, values.dtype)
            replies = self._run(
                [
                    ("reduce", {"keys": keys_d, "values": values_d,
                                "out_order": out_order_d,
                                "out_unique": out_unique_d,
                                "out_reduced": out_reduced_d,
                                "bounds": bounds, "op": op})
                    for bounds in self._key_bounds(keys)
                ]
            )
            # Key ranges are disjoint and ascending, so concatenating the
            # per-bucket unique/reduced slices yields the global result.
            unique = np.concatenate(
                [out_unique[off : off + cnt] for off, cnt in replies]
            )
            reduced = np.concatenate(
                [out_reduced[off : off + cnt] for off, cnt in replies]
            )
            return unique, reduced, out_order.copy()

    def _kernel_min_label(
        self, labels: np.ndarray, send: np.ndarray, recv: np.ndarray
    ):
        n = int(labels.shape[0]) + int(send.shape[0])
        if (
            not self._use_pool(n)
            or labels.ndim != 1
            or send.ndim != 1
            or not self._shm_safe(labels)
        ):
            return super()._kernel_min_label(labels, send, recv)
        with _Arena() as arena:
            labels_d = arena.share(labels)
            send_d = arena.share(send)
            recv_d = arena.share(recv)
            out_incoming_d, out_incoming = arena.alloc(send.shape, labels.dtype)
            out_labels_d, out_labels = arena.alloc(labels.shape, labels.dtype)
            pos_blocks = self._blocks(int(send.shape[0]))
            label_blocks = self._blocks(int(labels.shape[0]))
            commands = []
            for w in range(max(len(pos_blocks), len(label_blocks))):
                commands.append(
                    ("min_label", {
                        "labels": labels_d, "send": send_d, "recv": recv_d,
                        "out_incoming": out_incoming_d,
                        "out_labels": out_labels_d,
                        "pos_block": pos_blocks[w] if w < len(pos_blocks) else None,
                        "label_block": (
                            label_blocks[w] if w < len(label_blocks) else None
                        ),
                    })
                )
            self._run(commands)
            return out_labels.copy(), out_incoming.copy()

    # -- reporting -----------------------------------------------------------

    def stats(self):
        """Sharded counters plus the pool size (``workers``)."""
        snapshot = super().stats()  # name resolves to "process" already
        snapshot.workers = self.workers
        return snapshot


#: Selecting ``backend="process"`` anywhere resolves to this class.
BACKENDS["process"] = ProcessBackend
