"""True-parallel MPC data plane: a pool of OS worker processes.

:class:`ProcessBackend` is the first executor that makes the reproduction
faster on real hardware rather than only cheaper in accounted rounds.  It
subclasses :class:`~repro.mpc.backends.ShardedBackend` and overrides *only*
the compute kernels, so capacity enforcement
(:class:`~repro.mpc.machine.MachineMemoryError` semantics), exchange
attribution, and every counter reported in ``engine.summary()["backend"]``
are shared code — counter-identical to the sharded backend by
construction, which the differential suite asserts.

Execution model
---------------
The pool holds ``workers`` long-lived OS processes (stdlib
``multiprocessing``; no third-party dependencies).  Arrays travel through
``multiprocessing.shared_memory`` blocks and are read in the workers as
zero-copy numpy views; only tiny *plans* (lists of step descriptors:
shared-memory names, shapes, dtypes, splitters, block bounds) cross the
command pipes.

Work is partitioned along the same canonical shard layout the
:class:`~repro.mpc.backends.ShardedBackend` accounts for: with
``shard_count`` shards of ``s`` words, each worker owns
``ceil(shard_count / workers)`` consecutive shards and executes its part
of every operation locally.  Synchronisation is one explicit exchange
barrier per operation — the parent dispatches one plan per worker and
waits for all replies — and the only data that conceptually moves at the
barrier is what the sharded accounting already prices: the splitters that
delimit each worker's key range and the records migrating to the shards
that own them in the output layout.

Arena-backed buffers (PR 4)
---------------------------
Shared-memory blocks come from a persistent
:class:`~repro.mpc.arena.ShmArena` owned by the backend: segments are
allocated once (rounded to power-of-two size classes), leased per
operation with generation tags, and recycled across operations and
rounds, so a pipeline run performs O(size classes) segment allocations
instead of O(ops).  Inputs the caller marks read-only (such as the
constant ``send``/``recv`` incidence arrays of the broadcast loop) are
*pinned*: uploaded once and re-leased by every subsequent operation that
passes the same array.  Workers cache their segment attachments by name
for the arena's lifetime, so the per-operation IPC setup is just the
plan descriptor.  Construct with ``arena=False`` (or run the bench CLI
with ``--no-arena``) to fall back to transient per-operation segments —
the PR 3 behaviour, kept as the honest baseline the
``e19_arena_overhead`` experiment measures against.

Fused dispatch
--------------
Worker messages carry *plans* — lists of kernel steps executed
back-to-back without returning to the parent.  Consecutive kernel steps
that target the same shard ranges and have no cross-worker data
dependency ride in one message: a ``min_label_exchange`` dispatches its
incoming-gather and its min-fold as two fused steps per worker (each
worker reads only the immutable input ``labels``, so no barrier is
needed between the steps).  Fusion changes only dispatch cost — round
counters, exchange counters, and results stay bit-identical, because all
accounting lives in the :class:`~repro.mpc.backends.ShardedBackend`
public operations, which this class never overrides.

Per-operation partitioning:

* ``search`` — query positions are split into shard-aligned blocks; each
  worker gathers ``table[queries[lo:hi]]`` for its block.
* ``sort`` / ``reduce_by_key`` — sample sort: the parent draws a
  deterministic sample of the keys and broadcasts ``W - 1`` splitters;
  worker ``w`` selects the keys in its splitter range, stable-sorts them
  locally (original positions ascending break ties, so the concatenation
  of the buckets *is* the global stable argsort, bit for bit), and writes
  the result directly into its slice of the output block.  Reduce-by-key
  additionally folds each group locally — key ranges are disjoint across
  workers, so no combine step is needed.
* ``min_label_exchange`` — a fused two-step plan per worker: the *gather*
  step fills ``incoming = labels[send]`` for the worker's shard-aligned
  position block; the *fold* step owns a shard-aligned range of the label
  space and applies ``minimum.at`` for exactly the incidences whose
  receiving endpoint lives there (min is commutative, associative, and
  idempotent, so any partition gives the serial result exactly).  The
  fold selects its range by scanning the full incidence arrays —
  deliberately redundant: the vectorised compares are cheap, while the
  scalar ``minimum.at`` scatter they feed is the expensive part the
  partition divides.

Determinism
-----------
Every kernel is bit-identical to the serial
:class:`~repro.mpc.backends.ShardedBackend` kernels — the pipeline's
labels, round counts, and RNG streams do not depend on the worker count
or the arena toggle.  Inputs the range partition cannot handle exactly
(non-finite floats, object dtypes, 0-d edge cases) fall back to the
serial kernels, as do operations below ``min_parallel_items`` words,
where process dispatch overhead would dominate.

Lifecycle
---------
Workers start lazily on the first parallel kernel and are reused across
operations, engines, and :meth:`reset` calls; the arena's segments
likewise survive :meth:`reset` and are recycled across runs.  Call
:meth:`close` (or use the backend as a context manager) to stop the pool
and unlink every arena segment; finalizers and daemonised workers
guarantee nothing outlives the interpreter either way.  The pipeline
entry points close backends they constructed from a string spec via
``try``/``finally``, so segments cannot leak even when an exception
escapes mid-run.
"""

from __future__ import annotations

import contextlib
import math
import multiprocessing
import os
import weakref
from multiprocessing import shared_memory

import numpy as np

from repro.mpc.arena import ShmArena
from repro.mpc.backends import BACKENDS, ShardedBackend, _grouped_reduce
from repro.mpc.plan import RoundPlan, parent_local_steps
from repro.utils.validation import check_nonnegative_int, check_positive_int

#: Below this many words an operation runs on the serial kernels: the
#: ~0.1–1 ms of per-operation process dispatch would dominate the compute.
DEFAULT_MIN_PARALLEL_ITEMS = 32768


#: Scoped override for the ``workers=None`` default (see
#: :func:`default_workers`); ``None`` means "derive from the CPU count".
_DEFAULT_WORKERS_OVERRIDE: "int | None" = None

#: Scoped override for the ``arena=None`` default (see
#: :func:`default_arena`); ``None`` means "arena on" (the fast path).
_DEFAULT_ARENA_OVERRIDE: "bool | None" = None


def usable_cpu_count() -> int:
    """CPUs this process may run on (affinity-aware; at least 1)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def default_worker_count() -> int:
    """Worker processes to use when none are requested.

    The :func:`default_workers` override wins when active; otherwise the
    usable CPUs (respecting CPU affinity masks in containers), capped
    at 4.
    """
    if _DEFAULT_WORKERS_OVERRIDE is not None:
        return _DEFAULT_WORKERS_OVERRIDE
    return min(4, usable_cpu_count())


@contextlib.contextmanager
def default_workers(workers: "int | None"):
    """Scope a default pool size for ``ProcessBackend(workers=None)``.

    The bench runner wraps each experiment in this so ``--workers N``
    reaches every backend the experiment constructs by name — including
    the ones built deep inside ``mpc_connected_components(...,
    backend="process")``.  Backends constructed with an explicit
    ``workers=`` are unaffected.  ``None`` is a no-op scope.
    """
    global _DEFAULT_WORKERS_OVERRIDE
    if workers is not None:
        workers = check_positive_int(workers, "workers")
    previous = _DEFAULT_WORKERS_OVERRIDE
    _DEFAULT_WORKERS_OVERRIDE = workers if workers is not None else previous
    try:
        yield
    finally:
        _DEFAULT_WORKERS_OVERRIDE = previous


def default_arena_enabled() -> bool:
    """Whether ``ProcessBackend(arena=None)`` uses the persistent arena.

    True unless a :func:`default_arena` scope says otherwise — the arena
    is the fast path and the default everywhere; ``--no-arena`` on the
    bench CLI exists to measure what it saves.
    """
    if _DEFAULT_ARENA_OVERRIDE is not None:
        return _DEFAULT_ARENA_OVERRIDE
    return True


@contextlib.contextmanager
def default_arena(enabled: "bool | None"):
    """Scope a default arena toggle for ``ProcessBackend(arena=None)``.

    The bench runner wraps each experiment in this so ``--arena`` /
    ``--no-arena`` reaches every backend the experiment constructs by
    name.  Backends constructed with an explicit ``arena=`` are
    unaffected.  ``None`` is a no-op scope.
    """
    global _DEFAULT_ARENA_OVERRIDE
    previous = _DEFAULT_ARENA_OVERRIDE
    _DEFAULT_ARENA_OVERRIDE = bool(enabled) if enabled is not None else previous
    try:
        yield
    finally:
        _DEFAULT_ARENA_OVERRIDE = previous


def _mp_context():
    """The cheapest available start method (fork on Linux, else spawn)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# ---------------------------------------------------------------------------
# Shared-memory plumbing
# ---------------------------------------------------------------------------
#
# A descriptor is the picklable 4-tuple ``(name, shape, dtype_str,
# cacheable)`` issued by an ArenaLease; the parent owns every segment
# (create + unlink), workers only attach.  ``cacheable`` descriptors come
# from the persistent arena, whose segments live until the backend
# closes, so workers keep those attachments open by name instead of
# re-mmapping per operation.

#: Worker-side attachment cache: segment name -> SharedMemory handle.
#: Only ever populated inside worker processes.
_SHM_CACHE: "dict[str, shared_memory.SharedMemory]" = {}


def _attach(desc, opened: dict) -> np.ndarray:
    """Worker-side: attach a descriptor, return its numpy view.

    Cacheable descriptors (persistent-arena segments) are attached once
    per worker and kept open; transient descriptors are deduped per
    fused plan through ``opened`` (segment name → handle) so a plan
    whose steps share inputs maps each segment once, and the caller
    closes them after the plan.  Resource-tracker registration is
    suppressed around the attach: the parent owns every segment's
    lifetime, and on Python < 3.13 an attach would otherwise register
    the name a second time and have it unlinked (or double-unregistered)
    when the worker exits (bpo-39959).
    """
    name, shape, dtype_str, cacheable = desc
    shm = _SHM_CACHE.get(name) if cacheable else opened.get(name)
    if shm is None:
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        if cacheable:
            _SHM_CACHE[name] = shm
        else:
            opened[name] = shm
    return np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=shm.buf)


# ---------------------------------------------------------------------------
# Worker-side kernels (plan steps)
# ---------------------------------------------------------------------------


def _bucket_select(keys: np.ndarray, lo, hi) -> "tuple[np.ndarray, int]":
    """Original positions (ascending) of the keys in ``[lo, hi)`` plus the
    bucket's global output offset (= count of keys below ``lo``).

    ``None`` bounds are open: ``(None, None)`` selects everything.
    """
    if lo is None and hi is None:
        return np.arange(keys.shape[0], dtype=np.int64), 0
    mask = np.ones(keys.shape[0], dtype=bool)
    if lo is not None:
        mask &= keys >= lo
    if hi is not None:
        mask &= keys < hi
    offset = 0 if lo is None else int(np.count_nonzero(keys < lo))
    return np.flatnonzero(mask), offset


def _op_search(payload: dict, opened: list):
    table = _attach(payload["table"], opened)
    queries = _attach(payload["queries"], opened)
    out = _attach(payload["out"], opened)
    lo, hi = payload["block"]
    out[lo:hi] = table[queries[lo:hi]]
    return None


def _op_sort(payload: dict, opened: list):
    keys = _attach(payload["keys"], opened)
    values = _attach(payload["values"], opened)
    out_values = _attach(payload["out_values"], opened)
    out_order = _attach(payload["out_order"], opened)
    lo, hi = payload["bounds"]
    idx, offset = _bucket_select(keys, lo, hi)
    if idx.size:
        seg = idx[np.argsort(keys[idx], kind="stable")]
        out_order[offset : offset + seg.size] = seg
        out_values[offset : offset + seg.size] = values[seg]
    return None


def _op_reduce(payload: dict, opened: list):
    keys = _attach(payload["keys"], opened)
    values = _attach(payload["values"], opened)
    out_order = _attach(payload["out_order"], opened)
    out_unique = _attach(payload["out_unique"], opened)
    out_reduced = _attach(payload["out_reduced"], opened)
    lo, hi = payload["bounds"]
    idx, offset = _bucket_select(keys, lo, hi)
    if idx.size == 0:
        return (offset, 0)
    unique, reduced, local = _grouped_reduce(
        keys[idx], values[idx], payload["op"]
    )
    seg = idx[local]
    out_order[offset : offset + seg.size] = seg
    out_unique[offset : offset + unique.shape[0]] = unique
    out_reduced[offset : offset + reduced.shape[0]] = reduced
    return (offset, int(unique.shape[0]))


def _op_gather_incoming(payload: dict, opened: list):
    labels = _attach(payload["labels"], opened)
    send = _attach(payload["send"], opened)
    out_incoming = _attach(payload["out_incoming"], opened)
    lo, hi = payload["block"]
    out_incoming[lo:hi] = labels[send[lo:hi]]
    return None


def _op_min_fold(payload: dict, opened: list):
    labels = _attach(payload["labels"], opened)
    send = _attach(payload["send"], opened)
    recv = _attach(payload["recv"], opened)
    out_labels = _attach(payload["out_labels"], opened)
    lo, hi = payload["block"]
    out_labels[lo:hi] = labels[lo:hi]
    mask = (recv >= lo) & (recv < hi)
    np.minimum.at(out_labels, recv[mask], labels[send[mask]])
    return None


def _op_csr_min_fold(payload: dict, opened: list):
    labels = _attach(payload["labels"], opened)
    indptr = _attach(payload["indptr"], opened)
    indices = _attach(payload["indices"], opened)
    out_labels = _attach(payload["out_labels"], opened)
    lo, hi = payload["block"]
    out_labels[lo:hi] = labels[lo:hi]
    # A worker's label block [lo, hi) owns the contiguous CSR slot range
    # indptr[lo]:indptr[hi] — no cross-worker scan is needed, unlike the
    # sort-based fold, which is the point of the gather layout.
    block_ptr = indptr[lo : hi + 1]
    base = block_ptr[0]
    nz = np.diff(block_ptr) > 0
    if not nz.any():
        return None
    incoming = labels[indices[base : block_ptr[-1]]]
    starts = (block_ptr[:-1] - base)[nz]
    mins = np.minimum.reduceat(incoming, starts)
    sub = out_labels[lo:hi]
    sub[nz] = np.minimum(sub[nz], mins)
    return None


def _op_sketch_update(payload: dict, opened: list):
    # Imported lazily: the sketch layer sits above the backend stack, so
    # the module-level import graph stays acyclic; workers pay the import
    # once (fork shares the parent's already-loaded module anyway).
    from repro.sketch.sharded import sketch_update_partial

    data = _attach(payload["data"], opened)
    edges = _attach(payload["edges"], opened)
    weights = _attach(payload["weights"], opened)
    level_coeffs = _attach(payload["level_coeffs"], opened)
    row_coeffs = _attach(payload["row_coeffs"], opened)
    bases = _attach(payload["bases"], opened)
    return sketch_update_partial(
        data,
        edges,
        weights,
        vlo=payload["vlo"],
        vhi=payload["vhi"],
        n=payload["n"],
        levels=payload["levels"],
        cols=payload["cols"],
        level_coeffs=level_coeffs,
        row_coeffs=row_coeffs,
        bases=bases,
    )


_WORKER_OPS = {
    "search": _op_search,
    "sort": _op_sort,
    "reduce": _op_reduce,
    "gather_incoming": _op_gather_incoming,
    "min_fold": _op_min_fold,
    "csr_min_fold": _op_csr_min_fold,
    "sketch_update": _op_sketch_update,
}


def _worker_main(conn) -> None:
    """Worker process loop: execute step plans until EOF / ``None``.

    Each message is a list of ``(op, payload)`` steps — a fused plan —
    executed back-to-back; one reply carries every step's result.
    """
    while True:
        try:
            plan = conn.recv()
        except (EOFError, OSError):
            return
        if plan is None:
            return
        opened: dict = {}
        results = []
        try:
            for op, payload in plan:
                results.append(_WORKER_OPS[op](payload, opened))
        except BaseException as exc:  # noqa: BLE001 - ship every failure back
            try:
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):
                return
        else:
            conn.send(("ok", results))
        finally:
            for shm in opened.values():
                shm.close()


def _shutdown_pool(procs: list, pipes: list) -> None:
    """Stop a worker pool: polite ``None``, then join, then terminate."""
    for pipe in pipes:
        try:
            pipe.send(None)
        except (BrokenPipeError, OSError):
            pass
        try:
            pipe.close()
        except OSError:  # pragma: no cover - cleanup
            pass
    for proc in procs:
        proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - stuck worker
            proc.terminate()
            proc.join(timeout=2.0)


# ---------------------------------------------------------------------------
# Parent-side buffer handout (arena leases per operation)
# ---------------------------------------------------------------------------


class _OpBuffers:
    """One operation's shared-memory handout, backed by an arena.

    ``share``/``alloc`` return descriptors (and views) exactly as the
    old per-operation arena did; :meth:`finish` releases every
    non-pinned lease back to the arena so the segments recycle.  Inputs
    that qualify for pinning (read-only, no base) bypass the per-op
    lease list entirely — their leases belong to the arena and persist
    across operations.
    """

    def __init__(self, arena: ShmArena, *, pin_inputs: bool):
        self._arena = arena
        self._pin_inputs = pin_inputs
        self._leases: list = []
        self.bytes_copied = 0

    def share(self, array: np.ndarray) -> tuple:
        """Place ``array`` in shared memory; returns its descriptor."""
        array = np.ascontiguousarray(array)
        if self._pin_inputs:
            pinned = self._arena.share_pinned(array)
            if pinned is not None:
                lease, copied = pinned
                if copied:
                    self.bytes_copied += int(array.nbytes)
                return lease.descriptor
        lease = self._arena.share(array)
        self._leases.append(lease)
        self.bytes_copied += int(array.nbytes)
        return lease.descriptor

    def alloc(self, shape, dtype) -> "tuple[tuple, np.ndarray]":
        """Lease an uninitialised output; returns (descriptor, view)."""
        lease = self._arena.acquire(shape, dtype)
        self._leases.append(lease)
        return lease.descriptor, lease.view

    def finish(self) -> None:
        """Release this operation's leases (outputs must be copied out).

        Runs from ``finally`` blocks; a worker death may already have
        closed the backend's arena, which is fine — releasing a stale
        lease is a no-op, so the original ``RuntimeError`` diagnostic
        is never masked.
        """
        for lease in self._leases:
            lease.release()
        self._leases.clear()


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------


class ProcessBackend(ShardedBackend):
    """Sharded execution on a pool of OS worker processes.

    Accounting (capacity enforcement, exchange/byte counters, op counts)
    is inherited unchanged from :class:`~repro.mpc.backends.ShardedBackend`;
    only the ``_kernel_*`` compute hooks are overridden, so results *and*
    counters are bit-identical to the serial sharded backend while the
    heavy numpy work runs in parallel.

    Parameters
    ----------
    shard_memory:
        Per-shard capacity ``s`` in words; bound to the owning engine's
        ``machine_memory`` at attach time when ``None`` (exactly as the
        sharded backend does).
    max_shards:
        Optional hard fleet size; operations needing more shards raise
        :class:`~repro.mpc.machine.MachineMemoryError`.
    workers:
        OS processes in the pool (default: :func:`default_worker_count`).
        ``workers=1`` still routes kernels through the single worker
        process — the honest baseline for scaling measurements.
    min_parallel_items:
        Operations touching fewer words than this run on the serial
        kernels (default :data:`DEFAULT_MIN_PARALLEL_ITEMS`); set to 0 to
        force every operation through the pool (the differential tests
        do).
    arena:
        ``True`` (the default via :func:`default_arena_enabled`) backs
        every operation with one persistent
        :class:`~repro.mpc.arena.ShmArena` — segments allocated once,
        leased per op, recycled across ops and rounds, with read-only
        inputs pinned and worker attachments cached.  ``False`` restores
        the transient per-operation segments of PR 3 (the
        ``e19_arena_overhead`` baseline).  Results are bit-identical
        either way.
    fuse_plans:
        ``True`` (default) analyses every
        :class:`~repro.mpc.plan.RoundPlan` with
        :func:`~repro.mpc.plan.parent_local_steps` and pins the steps
        whose outputs feed a later backend op to the serial kernels —
        their results must be materialised in the parent anyway before
        the next dispatch can be planned, so skipping their worker
        round-trip saves a barrier per occurrence (the contract stage's
        search→reduce pair becomes one barrier).  ``False`` executes
        plans step-by-eager-step — the pre-fusion baseline the
        ``e20_plan_fusion`` experiment measures against.  Results and
        model counters are bit-identical either way.

    Raises
    ------
    RuntimeError
        From any operation whose worker process died mid-command.
    """

    name = "process"

    def __init__(
        self,
        shard_memory: "int | None" = None,
        *,
        max_shards: "int | None" = None,
        workers: "int | None" = None,
        min_parallel_items: int = DEFAULT_MIN_PARALLEL_ITEMS,
        arena: "bool | None" = None,
        fuse_plans: bool = True,
    ):
        super().__init__(shard_memory, max_shards=max_shards)
        if workers is None:
            workers = default_worker_count()
        self.workers = check_positive_int(workers, "workers")
        self.min_parallel_items = check_nonnegative_int(
            min_parallel_items, "min_parallel_items"
        )
        self.use_arena = default_arena_enabled() if arena is None else bool(arena)
        self.fuse_plans = bool(fuse_plans)
        self._arena: "ShmArena | None" = None
        self._arena_retired: "dict[str, int]" = {}
        self._procs: list = []
        self._pipes: list = []
        self._finalizer = None
        self._serial_depth = 0
        self.dispatch_barriers = 0
        self.dispatch_messages = 0
        self.dispatch_steps = 0
        self.dispatch_serial_fused = 0
        self.shm_bytes_copied = 0
        self.plan_barriers: "dict[str, int]" = {}

    # -- pool + arena lifecycle ----------------------------------------------

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _stop_pool(self) -> None:
        """Tear down the worker pool (shared by :meth:`close` and the
        half-dead-pool recovery in :meth:`_ensure_pool`).
        """
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._procs = []
        self._pipes = []

    def close(self) -> None:
        """Stop the pool and unlink every arena segment (idempotent).

        The pool stops first so cached worker attachments close before
        the parent unlinks; both restart lazily on the next operation,
        so a closed backend remains usable and its counters readable.
        """
        self._stop_pool()
        if self._arena is not None:
            self._retire_arena(self._arena)
            self._arena = None

    def reset(self) -> None:
        """Clear run counters; the pool and the arena's segments survive."""
        super().reset()
        self.dispatch_barriers = 0
        self.dispatch_messages = 0
        self.dispatch_steps = 0
        self.dispatch_serial_fused = 0
        self.shm_bytes_copied = 0
        self.plan_barriers = {}

    # -- round plans ---------------------------------------------------------

    @contextlib.contextmanager
    def _serial_kernels(self):
        """Pin the kernels under this scope to their serial fallbacks.

        Used by plan execution for steps the fusion analysis keeps in
        the parent (:meth:`_plan_serial_steps`); nesting is allowed and
        counted once per scope in ``dispatch_serial_fused``.
        """
        self._serial_depth += 1
        self.dispatch_serial_fused += 1
        try:
            yield
        finally:
            self._serial_depth -= 1

    def _plan_serial_steps(self, plan: RoundPlan) -> frozenset:
        """The fusion analysis: parent-local steps when fusing is on."""
        if not self.fuse_plans:
            return frozenset()
        return parent_local_steps(plan)

    def run_plan(self, plan: RoundPlan) -> tuple:
        """Execute a plan, attributing dispatch barriers to its name.

        Inherits the sequential walk (public operations keep all model
        accounting); the override only records how many dispatch
        barriers each plan shape cost, which the ``e20_plan_fusion``
        experiment reads per stage through ``stats().dispatch``.
        """
        before = self.dispatch_barriers
        outputs = super().run_plan(plan)
        self.plan_barriers[plan.name] = (
            self.plan_barriers.get(plan.name, 0)
            + self.dispatch_barriers
            - before
        )
        return outputs

    def _ensure_pool(self) -> None:
        if self._procs and all(p.is_alive() for p in self._procs):
            return
        self._stop_pool()  # drop any half-dead pool first (arena survives)
        ctx = _mp_context()
        for _ in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_main, args=(child_conn,), daemon=True)
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._pipes.append(parent_conn)
        self._finalizer = weakref.finalize(
            self, _shutdown_pool, list(self._procs), list(self._pipes)
        )

    def _persistent_arena(self) -> ShmArena:
        if self._arena is None or self._arena.closed:
            self._arena = ShmArena()
        return self._arena

    def _retire_arena(self, arena: ShmArena) -> None:
        """Fold a finished arena's counters into the lifetime totals."""
        stats = arena.stats()
        arena.close()
        retired = self._arena_retired
        for field in ("segments", "leases", "recycled", "pinned_hits"):
            retired[field] = retired.get(field, 0) + stats[field]
        retired["peak_live_leases"] = max(
            retired.get("peak_live_leases", 0), stats["peak_live_leases"]
        )

    def arena_stats(self) -> dict:
        """Lifetime arena counters: live arena plus every retired one.

        ``segments`` counts every shared-memory segment this backend ever
        created — the quantity the arena keeps at O(size classes) per run
        where transient buffers pay O(ops); ``bytes_reserved`` and
        ``segments_held`` describe only the currently live arena.
        """
        merged = {
            "segments": 0,
            "segments_held": 0,
            "bytes_reserved": 0,
            "leases": 0,
            "recycled": 0,
            "pinned_hits": 0,
            "peak_live_leases": 0,
        }
        for field, value in self._arena_retired.items():
            merged[field] = value
        if self._arena is not None and not self._arena.closed:
            live = self._arena.stats()
            for field in ("segments", "leases", "recycled", "pinned_hits"):
                merged[field] += live[field]
            merged["segments_held"] = live["segments_held"]
            merged["bytes_reserved"] = live["bytes_reserved"]
            merged["peak_live_leases"] = max(
                merged["peak_live_leases"], live["peak_live_leases"]
            )
        return merged

    def persistent_lease(self, shape, dtype):
        """A zero-initialised lease from the persistent arena.

        The descriptor is cacheable, so pool workers attach the segment
        once and keep the mapping — the residency contract the sharded
        sketch builds on: shard partials live here, workers scatter into
        them in place, and the parent reads the same memory at merge
        time without ever copying a partial.  The caller owns the lease
        (``release()`` returns the segment to the arena); leases survive
        pool restarts because the parent owns the arena.
        """
        lease = self._persistent_arena().acquire(shape, dtype)
        lease.view[...] = 0
        return lease

    @contextlib.contextmanager
    def _op_buffers(self):
        """Shared-memory handout for one operation.

        Arena mode leases from the persistent arena (released — i.e.
        recycled — when the operation ends); ``arena=False`` creates a
        throwaway arena whose segments are unlinked immediately, which
        is exactly the PR 3 per-operation behaviour.
        """
        if self.use_arena:
            buffers = _OpBuffers(self._persistent_arena(), pin_inputs=True)
            try:
                yield buffers
            finally:
                buffers.finish()
                self.shm_bytes_copied += buffers.bytes_copied
        else:
            arena = ShmArena(cache_in_workers=False)
            buffers = _OpBuffers(arena, pin_inputs=False)
            try:
                yield buffers
            finally:
                self.shm_bytes_copied += buffers.bytes_copied
                self._retire_arena(arena)

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, plans: "list[list[tuple]]") -> "list[list]":
        """One exchange barrier: send ``plans[i]`` (a list of fused steps)
        to worker ``i`` and gather every reply.

        Empty plans are skipped (no message).  Returns one result list
        per plan, aligned with ``plans``; raises on worker death or any
        step error.
        """
        self._ensure_pool()
        self.dispatch_barriers += 1
        sent = []
        for i, plan in enumerate(plans):
            if not plan:
                continue
            try:
                self._pipes[i].send(plan)
            except (BrokenPipeError, OSError) as exc:
                # Same contract as a recv failure: a dead worker means the
                # pipes are desynchronised — drop the pool and report.
                self.close()
                raise RuntimeError(
                    f"process backend worker {i} died mid-dispatch"
                ) from exc
            sent.append(i)
            self.dispatch_messages += 1
            self.dispatch_steps += len(plan)
        replies: "list[list]" = [[] for _ in plans]
        first_error = None
        for i in sent:
            try:
                status, value = self._pipes[i].recv()
            except (EOFError, OSError) as exc:
                # A dead worker desynchronises the pipes; drop the pool so
                # the next operation starts from a clean slate.
                self.close()
                raise RuntimeError(
                    f"process backend worker {i} died mid-operation"
                ) from exc
            if status == "err" and first_error is None:
                first_error = f"process backend worker {i} failed: {value}"
            else:
                replies[i] = value
        if first_error is not None:
            raise RuntimeError(first_error)
        return replies

    # -- partitioning --------------------------------------------------------

    def _use_pool(self, n: int) -> bool:
        return (
            self._serial_depth == 0
            and n > 0
            and n >= self.min_parallel_items
        )

    def _blocks(self, n: int) -> "list[tuple[int, int]]":
        """Shard-aligned position blocks: worker ``w`` owns the
        ``ceil(shard_count / workers)`` consecutive shards of block ``w``.
        """
        s = self._s
        shards = max(1, math.ceil(n / s))
        per_worker = math.ceil(shards / min(self.workers, shards))
        blocks = []
        for w in range(self.workers):
            lo = w * per_worker * s
            if lo >= n:
                break
            blocks.append((lo, min(n, (w + 1) * per_worker * s)))
        return blocks

    def _key_bounds(self, keys: np.ndarray) -> "list[tuple]":
        """Splitter-delimited key ranges for sample sort: ``≤ W`` disjoint
        half-open intervals covering the key space, picked from a
        deterministic sample so buckets are approximately balanced.
        """
        buckets = max(1, min(self.workers, self.shards_for(int(keys.shape[0]))))
        if buckets == 1:
            return [(None, None)]
        step = max(1, keys.shape[0] // (buckets * 64))
        sample = np.sort(keys[::step], kind="stable")
        positions = [(sample.shape[0] * i) // buckets for i in range(1, buckets)]
        splitters = np.unique(sample[positions])
        bounds = [None, *splitters.tolist(), None]
        return list(zip(bounds[:-1], bounds[1:]))

    @staticmethod
    def _partitionable(keys: np.ndarray) -> bool:
        """Key dtypes the range partition handles exactly (ints, bools,
        finite floats); anything else falls back to the serial kernel.
        """
        if keys.dtype.kind in "iub":
            return True
        if keys.dtype.kind == "f":
            return bool(np.isfinite(keys).all())
        return False

    @staticmethod
    def _shm_safe(*arrays: np.ndarray) -> bool:
        """True iff every array can live in shared memory: object dtypes
        hold PyObject pointers that are meaningless (spawn) or
        refcount-unsafe (fork) in another process, so they take the
        serial kernels instead.
        """
        return not any(array.dtype.hasobject for array in arrays)

    # -- parallel kernels ----------------------------------------------------

    def _kernel_search(self, table: np.ndarray, queries: np.ndarray) -> np.ndarray:
        n = int(queries.shape[0])
        if (
            not self._use_pool(n)
            or queries.ndim != 1
            or queries.dtype.kind not in "iu"
            or table.ndim > 2
            or not self._shm_safe(table)
        ):
            return super()._kernel_search(table, queries)
        with self._op_buffers() as buf:
            table_d = buf.share(table)
            queries_d = buf.share(queries)
            out_d, out = buf.alloc((n,) + table.shape[1:], table.dtype)
            self._dispatch(
                [
                    [("search", {"table": table_d, "queries": queries_d,
                                 "out": out_d, "block": block})]
                    for block in self._blocks(n)
                ]
            )
            return out.copy()

    def _kernel_sort(self, values: np.ndarray, keys: np.ndarray):
        n = int(values.shape[0])
        if (
            not self._use_pool(n)
            or keys.ndim != 1
            or values.ndim > 2
            or not self._partitionable(keys)
            or not self._shm_safe(values)
        ):
            return super()._kernel_sort(values, keys)
        with self._op_buffers() as buf:
            keys_d = buf.share(keys)
            values_d = keys_d if values is keys else buf.share(values)
            out_values_d, out_values = buf.alloc(values.shape, values.dtype)
            out_order_d, out_order = buf.alloc((n,), np.int64)
            self._dispatch(
                [
                    [("sort", {"keys": keys_d, "values": values_d,
                               "out_values": out_values_d,
                               "out_order": out_order_d, "bounds": bounds})]
                    for bounds in self._key_bounds(keys)
                ]
            )
            return out_values.copy(), out_order.copy()

    def _kernel_reduce(self, keys: np.ndarray, values: np.ndarray, op: str):
        n = int(keys.shape[0])
        if (
            not self._use_pool(n)
            or keys.ndim != 1
            or values.ndim > 2
            or not self._partitionable(keys)
            or not self._shm_safe(values)
        ):
            return super()._kernel_reduce(keys, values, op)
        with self._op_buffers() as buf:
            keys_d = buf.share(keys)
            values_d = buf.share(values)
            out_order_d, out_order = buf.alloc((n,), np.int64)
            out_unique_d, out_unique = buf.alloc((n,), keys.dtype)
            out_reduced_d, out_reduced = buf.alloc(values.shape, values.dtype)
            replies = self._dispatch(
                [
                    [("reduce", {"keys": keys_d, "values": values_d,
                                 "out_order": out_order_d,
                                 "out_unique": out_unique_d,
                                 "out_reduced": out_reduced_d,
                                 "bounds": bounds, "op": op})]
                    for bounds in self._key_bounds(keys)
                ]
            )
            # Key ranges are disjoint and ascending, so concatenating the
            # per-bucket unique/reduced slices yields the global result.
            parts = [reply[0] for reply in replies if reply]
            unique = np.concatenate(
                [out_unique[off : off + cnt] for off, cnt in parts]
            )
            reduced = np.concatenate(
                [out_reduced[off : off + cnt] for off, cnt in parts]
            )
            return unique, reduced, out_order.copy()

    def _kernel_min_label(
        self, labels: np.ndarray, send: np.ndarray, recv: np.ndarray
    ):
        n = int(labels.shape[0]) + int(send.shape[0])
        if (
            not self._use_pool(n)
            or labels.ndim != 1
            or send.ndim != 1
            or not self._shm_safe(labels)
        ):
            return super()._kernel_min_label(labels, send, recv)
        with self._op_buffers() as buf:
            labels_d = buf.share(labels)
            send_d = buf.share(send)
            recv_d = buf.share(recv)
            out_incoming_d, out_incoming = buf.alloc(send.shape, labels.dtype)
            out_labels_d, out_labels = buf.alloc(labels.shape, labels.dtype)
            pos_blocks = self._blocks(int(send.shape[0]))
            label_blocks = self._blocks(int(labels.shape[0]))
            # Fused plan: each worker's gather and fold steps ride in one
            # message.  Both steps read only the immutable inputs (labels,
            # send, recv) and write disjoint outputs, so no barrier is
            # needed between them and the single reply is the exchange.
            plans = []
            for w in range(max(len(pos_blocks), len(label_blocks))):
                steps = []
                if w < len(pos_blocks):
                    steps.append(
                        ("gather_incoming", {
                            "labels": labels_d, "send": send_d,
                            "out_incoming": out_incoming_d,
                            "block": pos_blocks[w],
                        })
                    )
                if w < len(label_blocks):
                    steps.append(
                        ("min_fold", {
                            "labels": labels_d, "send": send_d, "recv": recv_d,
                            "out_labels": out_labels_d,
                            "block": label_blocks[w],
                        })
                    )
                plans.append(steps)
            self._dispatch(plans)
            return out_labels.copy(), out_incoming.copy()

    def _kernel_csr_min_label(
        self, labels: np.ndarray, indptr: np.ndarray, indices: np.ndarray
    ):
        n = int(labels.shape[0]) + int(indices.shape[0])
        if (
            not self._use_pool(n)
            or labels.ndim != 1
            or indices.ndim != 1
            or not self._shm_safe(labels)
        ):
            return super()._kernel_csr_min_label(labels, indptr, indices)
        with self._op_buffers() as buf:
            # The CSR arrays arrive read-only and owning (the CSRIndex
            # zero-copy contract), so ``share`` pins them: one upload,
            # re-leased for every level of the broadcast loop.
            labels_d = buf.share(labels)
            indptr_d = buf.share(indptr)
            indices_d = buf.share(indices)
            out_incoming_d, out_incoming = buf.alloc(
                indices.shape, labels.dtype
            )
            out_labels_d, out_labels = buf.alloc(labels.shape, labels.dtype)
            pos_blocks = self._blocks(int(indices.shape[0]))
            label_blocks = self._blocks(int(labels.shape[0]))
            # Fused plan, mirroring min_label_exchange: gather + fold per
            # worker in one message.  The fold reads the slot range its
            # label block owns via indptr — contiguous, no scan.
            plans = []
            for w in range(max(len(pos_blocks), len(label_blocks))):
                steps = []
                if w < len(pos_blocks):
                    steps.append(
                        ("gather_incoming", {
                            "labels": labels_d, "send": indices_d,
                            "out_incoming": out_incoming_d,
                            "block": pos_blocks[w],
                        })
                    )
                if w < len(label_blocks):
                    steps.append(
                        ("csr_min_fold", {
                            "labels": labels_d, "indptr": indptr_d,
                            "indices": indices_d,
                            "out_labels": out_labels_d,
                            "block": label_blocks[w],
                        })
                    )
                plans.append(steps)
            self._dispatch(plans)
            return out_labels.copy(), out_incoming.copy()

    def _kernel_sketch_update(self, store, edges, weights) -> int:
        """Scatter one update batch into the shm-resident shard partials.

        Arena-backed stores dispatch one fused plan per worker — one
        ``sketch_update`` step per owned shard — with the batch shared
        transiently and the hash coefficient arrays pinned (uploaded
        once, reused every batch).  Workers scatter straight into the
        cached persistent-arena segments, so the parent copies zero
        partial bytes; small batches (and non-arena stores) take the
        serial kernel, which writes the very same shm views parent-side.
        """
        total_words = int(edges.size) + int(weights.size)
        if (
            store.kind != "arena"
            or not self._use_pool(total_words)
            or not self._shm_safe(edges, weights)
        ):
            return store.apply_serial(edges, weights)
        params = store.params
        shard_count = len(store.partials)
        per_worker = math.ceil(shard_count / min(self.workers, shard_count))
        with self._op_buffers() as buf:
            edges_d = buf.share(edges)
            weights_d = buf.share(weights)
            level_d = buf.share(params["level_coeffs"])
            row_d = buf.share(params["row_coeffs"])
            bases_d = buf.share(params["bases"])
            plans = []
            for w in range(self.workers):
                lo = w * per_worker
                if lo >= shard_count:
                    break
                steps = []
                for part in store.partials[lo : lo + per_worker]:
                    steps.append(
                        ("sketch_update", {
                            "data": part.descriptor,
                            "edges": edges_d,
                            "weights": weights_d,
                            "level_coeffs": level_d,
                            "row_coeffs": row_d,
                            "bases": bases_d,
                            "vlo": part.vlo,
                            "vhi": part.vhi,
                            "n": params["n"],
                            "levels": params["levels"],
                            "cols": params["cols"],
                        })
                    )
                plans.append(steps)
            replies = self._dispatch(plans)
        return sum(int(count) for reply in replies for count in reply)

    # -- reporting -----------------------------------------------------------

    def stats(self):
        """Sharded counters plus pool size, arena, and dispatch telemetry."""
        snapshot = super().stats()  # name resolves to "process" already
        snapshot.workers = self.workers
        snapshot.arena = self.arena_stats()
        snapshot.dispatch = {
            "barriers": self.dispatch_barriers,
            "messages": self.dispatch_messages,
            "steps": self.dispatch_steps,
            "shm_bytes_copied": self.shm_bytes_copied,
            "serial_fused": self.dispatch_serial_fused,
            "plan_barriers": dict(self.plan_barriers),
        }
        return snapshot


#: Selecting ``backend="process"`` anywhere resolves to this class.
BACKENDS["process"] = ProcessBackend
