"""Pluggable execution backends for the MPC subsystem.

The :class:`~repro.mpc.engine.MPCEngine` is the *control plane*: it charges
rounds for every primitive an algorithm would execute on a real cluster.
An :class:`ExecutionBackend` is the *data plane* behind it — the thing that
actually performs the sorts, searches, reductions, and label exchanges the
charges describe.  Three implementations ship:

* :class:`LocalBackend` — accounting-only.  Every operation is the plain
  vectorised numpy the algorithms always ran; no partitioning, no caps, no
  communication counters.  This is the historical behaviour and the zero-
  overhead default.
* :class:`ShardedBackend` — the scale substrate.  Data is kept as numpy
  arrays partitioned into ``ceil(N/s)`` contiguous shards of at most ``s``
  items (:class:`ShardedArray`); every operation enforces the per-shard
  memory cap *and* the per-round communication cap of the
  Beame–Koutris–Suciu model (raising
  :class:`~repro.mpc.machine.MachineMemoryError` on violation), while
  counting exchange barriers and bytes moved.  Sorting is argsort plus
  shard-boundary splitters; search and reduce-by-key route by key home;
  the min-label exchange is the fused one-shipment level of
  :mod:`repro.mpc.algorithms`.
* :class:`~repro.mpc.process_backend.ProcessBackend` — the true-parallel
  executor: the same accounting and enforcement as :class:`ShardedBackend`
  (it subclasses it), but the compute kernels run on a pool of worker
  processes over ``multiprocessing.shared_memory`` views, each worker
  owning ``ceil(shard_count / workers)`` shards.  Selected with
  ``backend="process"`` (registered when :mod:`repro.mpc` imports the
  module).

The split between *accounting* and *compute* is explicit in the code:
every public :class:`ShardedBackend` operation performs capacity checks
and exchange/byte counting itself and delegates the pure computation to a
``_kernel_*`` hook.  Subclasses that override only the hooks (such as
``ProcessBackend``) are therefore counter-identical to ``ShardedBackend``
by construction, which is what the differential suite asserts.

Compared with :class:`~repro.mpc.cluster.Cluster` — the faithful per-item
executor used by the primitive-level certification tests — a
``ShardedBackend`` trades message-level fidelity for vectorised execution:
it runs the *full pipeline* under enforced resource bounds on graphs that
are orders of magnitude beyond what Python-list machines can hold, which is
what the pipeline-level differential and certification suites exercise.

Shard layout convention
-----------------------
Arrays live in *canonical layout*: the item at global position ``p``
resides on shard ``p // s``.  Every operation consumes and produces
canonical layout, so communication for an operation is exactly the set of
items whose canonical position changes — measurable with one vectorised
comparison.  One *exchange* is one all-to-all barrier (the unit the engine
charges rounds for); ``bytes_exchanged`` sums the payload that actually
crossed shard boundaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.mpc.machine import MachineMemoryError
from repro.mpc.plan import RoundPlan, run_plan_steps
from repro.utils.validation import check_nonnegative_int, check_positive_int

#: Reduction operators supported by :meth:`ExecutionBackend.reduce_by_key`.
_REDUCERS = {
    "min": np.minimum,
    "max": np.maximum,
    "sum": np.add,
}

#: Zeroed arena block for backends without a shared-memory arena, so
#: ``BackendStats.to_json()`` emits one schema for every backend (the
#: process backend fills the same keys with live counters).
ARENA_STATS_ZERO = {
    "segments": 0,
    "segments_held": 0,
    "bytes_reserved": 0,
    "leases": 0,
    "recycled": 0,
    "pinned_hits": 0,
    "peak_live_leases": 0,
}

#: Zeroed dispatch block, same contract as :data:`ARENA_STATS_ZERO`.
DISPATCH_STATS_ZERO = {
    "barriers": 0,
    "messages": 0,
    "steps": 0,
    "shm_bytes_copied": 0,
    "serial_fused": 0,
    "plan_barriers": {},
}

#: Zeroed transport block for backends that move no data over a wire,
#: same one-schema contract as :data:`ARENA_STATS_ZERO`.  The RPC
#: backend (:mod:`repro.mpc.rpc`) fills the same keys with live
#: counters: ``op_frames``/``op_wire_bytes`` count only operation
#: traffic (deterministic, so bench records may gate them), while
#: ``heartbeats`` and ``retries`` are time-driven and never gated.
TRANSPORT_STATS_ZERO = {
    "op_frames": 0,
    "op_wire_bytes": 0,
    "acks": 0,
    "digest_hits": 0,
    "digest_misses": 0,
    "heartbeats": 0,
    "retries": 0,
    "workers_restarted": 0,
}

#: Zeroed CSR block, same one-schema contract as
#: :data:`ARENA_STATS_ZERO`.  ``csr_builds`` counts CSR index
#: constructions an engine announced with
#: :meth:`ExecutionBackend.note_csr_build`; ``csr_gathers`` counts
#: indptr-sliced gather operations executed (``csr_min_label``);
#: ``argsorts_avoided`` counts the sort-based exchanges those gathers
#: replaced.  All three only ever *grow* when the fast path engages, so
#: none carries a gated compare suffix — the model counters
#: (exchanges, bytes, barriers) stay bit-identical either way and keep
#: their own gates.
CSR_STATS_ZERO = {
    "csr_builds": 0,
    "csr_gathers": 0,
    "argsorts_avoided": 0,
}


@dataclass
class BackendStats:
    """Resource counters of one backend over one algorithm execution.

    ``shard_count`` is the *peak* fleet size observed (``ceil(N/s)`` over
    the largest data volume seen); ``peak_shard_load`` the largest number
    of items any single shard held; ``exchanges`` the number of all-to-all
    barriers executed; ``bytes_exchanged`` the payload bytes that crossed
    shard boundaries.  ``op_counts`` breaks executions down by operation
    name; ``plans`` counts the :class:`~repro.mpc.plan.RoundPlan` batches
    executed through :meth:`ExecutionBackend.run_plan`.  All fields are
    zero for the accounting-only local backend.
    ``workers`` is the OS-process pool size of a
    :class:`~repro.mpc.process_backend.ProcessBackend` (``None`` for the
    in-process backends); ``arena`` and ``dispatch`` carry that backend's
    shared-memory arena counters (segment allocations, lease recycling,
    pinned-input hits) and dispatch telemetry (barriers, worker messages,
    fused steps, bytes copied into shared memory, plan-fusion savings) —
    ``None`` on the dataclass for backends without a worker pool, but
    :meth:`to_json` always emits both blocks (zeroed where not
    applicable) so ``--compare`` and downstream tooling never
    special-case the backend.  ``transport`` carries the wire telemetry
    of an :class:`~repro.mpc.rpc.RpcBackend` (frames, payload bytes,
    digest-dedup hits, heartbeats, retries) under the same zero-filled
    one-schema contract (:data:`TRANSPORT_STATS_ZERO`).  ``csr`` carries
    the CSR fast-path telemetry (index builds, indptr-sliced gathers,
    argsorts avoided) under the :data:`CSR_STATS_ZERO` schema.
    """

    name: str
    shard_memory: "int | None" = None
    max_shards: "int | None" = None
    shard_count: int = 0
    peak_shard_load: int = 0
    exchanges: int = 0
    bytes_exchanged: int = 0
    op_counts: "dict[str, int]" = field(default_factory=dict)
    plans: int = 0
    workers: "int | None" = None
    arena: "dict | None" = None
    dispatch: "dict | None" = None
    transport: "dict | None" = None
    csr: "dict | None" = None

    def to_json(self) -> dict:
        """Plain-dict form embedded in ``MPCEngine.summary()`` and the
        ``BENCH_*.json`` artifacts.

        One schema for every backend: the ``workers`` scalar and the
        ``arena``/``dispatch`` blocks carry the same keys everywhere,
        zero-filled for backends without a worker pool, so consumers
        index the document without branching on the backend name.
        """
        return {
            "name": self.name,
            "shard_memory": self.shard_memory,
            "max_shards": self.max_shards,
            "shard_count": self.shard_count,
            "peak_shard_load": self.peak_shard_load,
            "exchanges": self.exchanges,
            "bytes_exchanged": self.bytes_exchanged,
            "op_counts": dict(self.op_counts),
            "plans": self.plans,
            "workers": 0 if self.workers is None else self.workers,
            "arena": dict(ARENA_STATS_ZERO if self.arena is None else self.arena),
            "dispatch": dict(
                DISPATCH_STATS_ZERO if self.dispatch is None else self.dispatch
            ),
            "transport": dict(
                TRANSPORT_STATS_ZERO if self.transport is None else self.transport
            ),
            "csr": dict(CSR_STATS_ZERO if self.csr is None else self.csr),
        }


class ShardedArray:
    """A numpy array partitioned into contiguous shards of ``≤ s`` words.

    The partition is positional (canonical layout) over the leading axis;
    for multi-column arrays (e.g. ``(m, 2)`` edge lists) a row counts as
    ``row_words`` words, so each shard holds at most
    ``shard_memory // row_words`` rows and never exceeds the word cap.
    The wrapper keeps the data as one contiguous buffer — shards are
    views — so shard-local work stays vectorised while the shard structure
    remains inspectable and enforceable.
    """

    def __init__(self, data: np.ndarray, shard_memory: int):
        self.data = np.asarray(data)
        self.shard_memory = check_positive_int(shard_memory, "shard_memory")
        rows = int(self.data.shape[0])
        self.row_words = int(self.data.size // rows) if rows else 1
        self.rows_per_shard = max(1, self.shard_memory // self.row_words)

    def __len__(self) -> int:
        return int(self.data.shape[0])

    @property
    def shard_count(self) -> int:
        """Number of shards in the canonical partition (at least 1)."""
        return max(1, math.ceil(len(self) / self.rows_per_shard))

    def shards(self) -> "list[np.ndarray]":
        """The per-shard views, in canonical order (zero-copy)."""
        r = self.rows_per_shard
        return [self.data[i * r : (i + 1) * r] for i in range(self.shard_count)]

    def loads(self) -> "list[int]":
        """Words held per shard."""
        return [int(shard.shape[0]) * self.row_words for shard in self.shards()]

    @property
    def max_load(self) -> int:
        """Words held by the fullest shard."""
        return max(self.loads())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedArray(n={len(self)}, shards={self.shard_count}, "
            f"s={self.shard_memory})"
        )


def _data(values) -> np.ndarray:
    """Unwrap :class:`ShardedArray` or coerce to ``np.ndarray``."""
    if isinstance(values, ShardedArray):
        return values.data
    return np.asarray(values)


class ExecutionBackend:
    """Protocol + shared bookkeeping for MPC data-plane backends.

    Subclasses implement the five vectorised operations the pipeline
    stages route their data movement through:

    * :meth:`scatter` — place an array on the fleet;
    * :meth:`sort` — global sort (argsort + shard-boundary splitters);
    * :meth:`search` — annotate integer queries against a table
      (Goodrich parallel search: the cost model prices it like a sort);
    * :meth:`reduce_by_key` — group by key and fold (contractions,
      tallies, dedup);
    * :meth:`min_label_exchange` — one fused min-label broadcast level
      (edge copies co-located with the sending endpoint, one shipment to
      the receiving home — the layout of
      :func:`repro.mpc.algorithms.distributed_min_label_round`).

    The engine additionally calls :meth:`ensure_capacity` for every charge
    it records, so resource bounds are enforced across the *whole*
    pipeline, including stages whose data never materialises here.
    """

    name = "abstract"

    def __init__(self) -> None:
        self._op_counts: "dict[str, int]" = {}
        self._exchange_mark = 0
        self.plans_run = 0
        self.csr_builds = 0
        self.csr_gathers = 0
        self.argsorts_avoided = 0

    # -- lifecycle -----------------------------------------------------------

    def attach(self, machine_memory: int) -> None:
        """Bind to an engine's machine memory (no-op unless needed)."""

    def reset(self) -> None:
        """Clear all counters (heavy resources like pools may survive)."""
        self._op_counts.clear()
        self._exchange_mark = 0
        self.plans_run = 0
        self.csr_builds = 0
        self.csr_gathers = 0
        self.argsorts_avoided = 0

    def close(self) -> None:
        """Release external resources (processes, files); no-op here.

        Counters stay readable after closing, and implementations restart
        their resources on demand, so a closed backend remains usable.
        The pipeline closes backends it constructed itself from a string
        spec; callers who pass an instance own its lifetime.
        """

    # -- enforcement / accounting --------------------------------------------

    def ensure_capacity(self, total_items: int) -> int:
        """Check ``total_items`` fits the fleet; returns the shard count."""
        return 1

    def take_exchange_delta(self) -> int:
        """Exchanges executed since the previous call (charge attribution)."""
        return 0

    def stats(self) -> BackendStats:
        """Snapshot of this backend's resource counters."""
        return BackendStats(
            name=self.name,
            op_counts=dict(self._op_counts),
            plans=self.plans_run,
            csr=self._csr_stats(),
        )

    def _count_op(self, op: str) -> None:
        self._op_counts[op] = self._op_counts.get(op, 0) + 1

    def note_csr_build(self) -> None:
        """Record that an engine built a CSR index for this execution."""
        self.csr_builds += 1

    def _csr_stats(self) -> dict:
        """The live CSR telemetry block (:data:`CSR_STATS_ZERO` schema)."""
        return {
            "csr_builds": self.csr_builds,
            "csr_gathers": self.csr_gathers,
            "argsorts_avoided": self.argsorts_avoided,
        }

    # -- round plans ---------------------------------------------------------

    def run_plan(self, plan: RoundPlan) -> tuple:
        """Execute one :class:`~repro.mpc.plan.RoundPlan`; returns its outputs.

        The default is sequential step execution through the *public*
        operations — behaviourally identical to the eager calls the plan
        records, so results, capacity enforcement, and every
        exchange/byte counter match the unplanned execution bit for bit
        on any backend.  Subclasses with a dispatch layer may override
        :meth:`_plan_serial_steps` (or this method) to fuse the plan
        into fewer barriers; fusion must never change results or model
        counters, only dispatch cost.
        """
        self.plans_run += 1
        return run_plan_steps(self, plan, self._plan_serial_steps(plan))

    def _plan_serial_steps(self, plan: RoundPlan) -> frozenset:
        """Step indices to pin to serial kernels (none by default)."""
        return frozenset()

    # -- operations (subclass responsibility) --------------------------------

    def scatter(self, values):
        """Place ``values`` on the fleet; returns the backend's handle."""
        raise NotImplementedError

    def sort(self, values, order_by=None):
        """Globally stable-sort ``values`` (by ``order_by`` when given)."""
        raise NotImplementedError

    def search(self, table, queries):
        """Annotate integer ``queries`` with ``table`` entries
        (``table[queries]``).
        """
        raise NotImplementedError

    def reduce_by_key(self, keys, values, op: str = "min"):
        """Group ``values`` by ``keys`` and fold with ``op``; returns
        ``(sorted_unique_keys, reduced)``.
        """
        raise NotImplementedError

    def min_label_exchange(self, labels, send, recv):
        """One fused min-label broadcast level; returns
        ``(new_labels, incoming)``.
        """
        raise NotImplementedError

    def csr_min_label(self, labels, indptr, indices):
        """One min-label broadcast level over a pinned CSR index; returns
        ``(new_labels, incoming)``.

        Semantically identical to :meth:`min_label_exchange` on the
        incidence arrays the index was built from: CSR slots enumerate
        the same directed-incidence multiset, so labels, exchange
        barriers, and payload bytes match bit for bit — only the kernel
        changes (contiguous ``reduceat`` folds over indptr-sliced
        neighbour runs instead of scattered ``minimum.at``).
        """
        raise NotImplementedError

    # -- sketch ingest seam ---------------------------------------------------
    #
    # The streaming layer's sharded AGM sketch routes its update batches
    # through these three ops (see ``repro.sketch.sharded``).  The store
    # argument is a ``SketchPartialStore``: shard partials plus the
    # plain-array kernel parameters.  The defaults run the shared
    # in-process kernel; subclasses override the ``_kernel_*`` hooks to
    # move the same scatter into pool workers (process) or keep partials
    # resident across the wire (rpc) — accounting stays in the public ops
    # so every backend reports identical op/exchange counters.

    def sketch_update(self, store, edges, weights) -> int:
        """Fan one signed edge-update batch out to the sketch shard
        partials; returns the number of incidence updates applied."""
        self._count_op("sketch_update")
        return self._kernel_sketch_update(store, edges, weights)

    def sketch_collect(self, store) -> "list[np.ndarray]":
        """Gather the shard partial arrays to the coordinator (decode-time
        merge reads them once)."""
        self._count_op("sketch_collect")
        return self._kernel_sketch_collect(store)

    def sketch_release(self, store) -> None:
        """Drop backend-held partial state for ``store`` (best effort;
        in-process stores hold nothing backend-side)."""
        self._count_op("sketch_release")
        self._kernel_sketch_release(store)

    def _kernel_sketch_update(self, store, edges, weights) -> int:
        """Sketch-update kernel: the shared per-shard scatter, in-process."""
        return store.apply_serial(edges, weights)

    def _kernel_sketch_collect(self, store) -> "list[np.ndarray]":
        """Sketch-collect kernel: read the locally held partial arrays."""
        return store.local_partial_data()

    def _kernel_sketch_release(self, store) -> None:
        """Sketch-release kernel: nothing held backend-side by default."""
        return None


class LocalBackend(ExecutionBackend):
    """Accounting-only backend: plain vectorised numpy, no caps.

    Each operation is byte-identical to the inline numpy the algorithms
    executed before the backend layer existed, so results, RNG streams and
    round charges are unchanged — the zero-regression default.
    """

    name = "local"

    def scatter(self, values) -> np.ndarray:
        """Return ``values`` as a plain array (no partitioning)."""
        self._count_op("scatter")
        return _data(values)

    def sort(self, values, order_by=None) -> np.ndarray:
        """Stable numpy sort (argsort by ``order_by`` when given)."""
        self._count_op("sort")
        values = _data(values)
        if order_by is None:
            return np.sort(values, kind="stable")
        return values[np.argsort(_data(order_by), kind="stable")]

    def search(self, table, queries) -> np.ndarray:
        """Plain gather: ``table[queries]``."""
        self._count_op("search")
        return _data(table)[_data(queries)]

    def reduce_by_key(self, keys, values, op: str = "min"):
        """Grouped fold via :func:`_grouped_reduce`; returns
        ``(sorted_unique_keys, reduced)``.

        Raises :class:`ValueError` for unknown ``op`` or misaligned
        shapes.
        """
        self._count_op("reduce_by_key")
        unique, reduced, _ = _grouped_reduce(_data(keys), _data(values), op)
        return unique, reduced

    def min_label_exchange(self, labels, send, recv):
        """One min-label level: ``incoming = labels[send]`` folded onto
        ``labels[recv]`` by elementwise minimum.
        """
        self._count_op("min_label_exchange")
        labels = _data(labels)
        incoming = labels[_data(send)]
        new_labels = labels.copy()
        np.minimum.at(new_labels, _data(recv), incoming)
        return new_labels, incoming

    def csr_min_label(self, labels, indptr, indices):
        """One min-label level as indptr-sliced gathers (no partitioning).

        Returns the same ``(new_labels, incoming)`` the sort-based
        :meth:`min_label_exchange` produces for the incidence arrays the
        index enumerates — ``incoming`` is in CSR slot order, the order
        the engine-side fast path addresses it in.
        """
        self._count_op("csr_min_label")
        labels = _data(labels)
        indptr = _data(indptr)
        indices = _data(indices)
        new_labels, incoming = _csr_min_label_kernel(labels, indptr, indices)
        self.csr_gathers += 1
        self.argsorts_avoided += 1
        return new_labels, incoming


class ShardedBackend(ExecutionBackend):
    """Vectorised sharded executor with enforced memory/communication caps.

    Parameters
    ----------
    shard_memory:
        The per-shard capacity ``s`` (words).  When ``None`` it is bound
        to the owning engine's ``machine_memory`` at attach time, so the
        enforced bound is exactly the bound the engine charges against.
    max_shards:
        Optional hard fleet size.  When set, any operation (or engine
        charge) whose data volume needs more than ``max_shards`` shards
        raises :class:`MachineMemoryError` — input exceeding
        ``max_shards × shard_memory`` cannot be placed.  When ``None``
        the fleet grows as ``ceil(N/s)``, the standard MPC regime where
        the machine *count* is unbounded but each machine is small.
    """

    name = "sharded"

    def __init__(
        self,
        shard_memory: "int | None" = None,
        *,
        max_shards: "int | None" = None,
    ):
        super().__init__()
        if shard_memory is not None:
            shard_memory = check_positive_int(shard_memory, "shard_memory")
        if max_shards is not None:
            max_shards = check_positive_int(max_shards, "max_shards")
        self.shard_memory = shard_memory
        self.max_shards = max_shards
        self.shard_count = 0
        self.peak_shard_load = 0
        self.exchanges = 0
        self.bytes_exchanged = 0

    # -- lifecycle -----------------------------------------------------------

    def attach(self, machine_memory: int) -> None:
        """Adopt the engine's machine memory as ``s`` when unset."""
        if self.shard_memory is None:
            self.shard_memory = check_positive_int(machine_memory, "machine_memory")

    def reset(self) -> None:
        """Clear the shard/communication counters."""
        super().reset()
        self.shard_count = 0
        self.peak_shard_load = 0
        self.exchanges = 0
        self.bytes_exchanged = 0

    # -- enforcement / accounting --------------------------------------------

    @property
    def _s(self) -> int:
        if self.shard_memory is None:
            raise RuntimeError(
                "ShardedBackend has no shard_memory; pass one or attach an engine"
            )
        return self.shard_memory

    def shards_for(self, total_items: int) -> int:
        """Shards needed for ``total_items`` in canonical layout."""
        total_items = check_nonnegative_int(total_items, "total_items")
        return max(1, math.ceil(total_items / self._s))

    def ensure_capacity(self, total_items: int) -> int:
        """Check ``total_items`` fits the fleet and update peak counters.

        Raises
        ------
        MachineMemoryError
            When ``max_shards`` is set and ``total_items`` needs more
            than ``max_shards × shard_memory`` words — the input cannot
            be placed on the capped fleet.
        """
        shards = self.shards_for(total_items)
        if self.max_shards is not None and shards > self.max_shards:
            raise MachineMemoryError(
                f"{total_items} items need {shards} shards of {self._s} words; "
                f"fleet is capped at {self.max_shards} "
                f"(capacity {self.max_shards * self._s})"
            )
        self.shard_count = max(self.shard_count, shards)
        self.peak_shard_load = max(
            self.peak_shard_load, min(total_items, self._s)
        )
        return shards

    def take_exchange_delta(self) -> int:
        """Exchanges since the previous call (engine charge attribution)."""
        delta = self.exchanges - self._exchange_mark
        self._exchange_mark = self.exchanges
        return delta

    def _exchange(self, shards: int, nbytes: int) -> None:
        """Record one all-to-all barrier (single-shard ops are local)."""
        if shards > 1:
            self.exchanges += 1
            self.bytes_exchanged += int(nbytes)

    def stats(self) -> BackendStats:
        """Snapshot the shard/communication counters (see :class:`BackendStats`)."""
        return BackendStats(
            name=self.name,
            shard_memory=self.shard_memory,
            max_shards=self.max_shards,
            shard_count=self.shard_count,
            peak_shard_load=self.peak_shard_load,
            exchanges=self.exchanges,
            bytes_exchanged=self.bytes_exchanged,
            op_counts=dict(self._op_counts),
            plans=self.plans_run,
            csr=self._csr_stats(),
        )

    # -- compute kernels (overridable; accounting stays in the public ops) ----
    #
    # The arena-aware kernel seam: a subclass kernel may stage its inputs
    # and outputs in recycled shared-memory buffers (see
    # ``repro.mpc.arena.ShmArena``), provided the arrays it *returns* are
    # plain ndarrays it owns — leased buffers recycle as soon as the
    # operation ends, so results must be copied out before the kernel
    # returns.  Kernels must never mutate their input arrays: the process
    # backend pins read-only inputs across consecutive operations, and a
    # mutated input would poison that cache.

    def _kernel_sort(self, values: np.ndarray, keys: np.ndarray):
        """Stable sort kernel: return ``(values[order], order)`` for the
        stable argsort ``order`` of ``keys``.
        """
        order = np.argsort(keys, kind="stable")
        return values[order], order

    def _kernel_search(self, table: np.ndarray, queries: np.ndarray) -> np.ndarray:
        """Gather kernel: return ``table[queries]``."""
        return table[queries]

    def _kernel_reduce(self, keys: np.ndarray, values: np.ndarray, op: str):
        """Grouped-reduce kernel: ``(unique_keys, reduced, order)`` exactly
        as :func:`_grouped_reduce` computes them.
        """
        return _grouped_reduce(keys, values, op)

    def _kernel_min_label(
        self, labels: np.ndarray, send: np.ndarray, recv: np.ndarray
    ):
        """Min-label kernel: ``(new_labels, incoming)`` with
        ``incoming = labels[send]`` scattered by elementwise minimum onto
        ``new_labels[recv]``.
        """
        incoming = labels[send]
        new_labels = labels.copy()
        np.minimum.at(new_labels, recv, incoming)
        return new_labels, incoming

    def _kernel_csr_min_label(
        self, labels: np.ndarray, indptr: np.ndarray, indices: np.ndarray
    ):
        """CSR min-label kernel: ``(new_labels, incoming)`` via contiguous
        ``minimum.reduceat`` folds over the indptr-sliced neighbour runs
        (``incoming = labels[indices]`` in CSR slot order).
        """
        return _csr_min_label_kernel(labels, indptr, indices)

    # -- operations ----------------------------------------------------------

    def scatter(self, values) -> ShardedArray:
        """Place ``values`` on the fleet in canonical layout (one barrier).

        Capacity and payload are counted in *words*: a row of a
        multi-column array (e.g. one edge of an ``(m, 2)`` list) is
        ``row_words`` words, matching the model's accounting."""
        self._count_op("scatter")
        values = _data(values)
        words = int(values.size)
        shards = self.ensure_capacity(words)
        self._exchange(shards, int(values.nbytes))
        return ShardedArray(values, self._s)

    def sort(self, values, order_by=None) -> np.ndarray:
        """Global sort: argsort, then route item at rank ``r`` to shard
        ``r // s``.  Each shard receives at most ``s`` items by
        construction; the shard-boundary splitters (the sorted values at
        positions ``s, 2s, …``) are broadcast so every shard can route
        locally — their cost is counted into the same barrier."""
        self._count_op("sort")
        values = _data(values)
        keys = values if order_by is None else _data(order_by)
        n = int(values.shape[0])
        shards = self.ensure_capacity(n)
        out, order = self._kernel_sort(values, keys)
        if shards > 1:
            s = self._s
            ranks = np.arange(n, dtype=np.int64)
            moved = int(np.count_nonzero(order // s != ranks // s))
            splitter_bytes = (shards - 1) * shards * out.itemsize
            self._exchange(shards, moved * out.itemsize + splitter_bytes)
        return out

    def search(self, table, queries) -> np.ndarray:
        """Parallel search: annotate integer ``queries`` with ``table``
        entries.  Query at position ``p`` lives on shard ``p // s``; the
        key it references lives on shard ``key // s`` — crossing pairs
        ship the query over and the annotation back in one barrier (the
        cost model prices search like sort, which covers the skew-free
        routing Goodrich's construction guarantees)."""
        self._count_op("search")
        table = _data(table)
        queries = _data(queries)
        # Capacity check first: a capped fleet must reject oversized input
        # before any (potentially pooled) compute runs.
        shards = self.ensure_capacity(int(table.shape[0]) + int(queries.shape[0]))
        result = self._kernel_search(table, queries)
        if shards > 1:
            s = self._s
            home = queries // s
            origin = np.arange(queries.shape[0], dtype=np.int64) // s
            crossing = int(np.count_nonzero(home != origin))
            self._exchange(
                shards, crossing * (queries.itemsize + result.itemsize)
            )
        return result

    def reduce_by_key(self, keys, values, op: str = "min"):
        """Group ``values`` by ``keys`` and fold with ``op``; returns the
        sorted unique keys and one reduced value per key.  Routing is by
        key rank (argsort); groups straddling a shard boundary combine
        their partials in the same barrier (≤ 1 partial per boundary)."""
        self._count_op("reduce_by_key")
        if op not in _REDUCERS:
            raise ValueError(f"unknown reducer {op!r}; choose from {sorted(_REDUCERS)}")
        keys = _data(keys)
        values = _data(values)
        n = int(keys.shape[0])
        shards = self.ensure_capacity(n)
        unique, reduced, order = self._kernel_reduce(keys, values, op)
        if shards > 1 and order is not None:
            s = self._s
            ranks = np.arange(n, dtype=np.int64)
            moved = int(np.count_nonzero(order // s != ranks // s))
            partial_bytes = (shards - 1) * (keys.itemsize + values.itemsize)
            self._exchange(shards, moved * keys.itemsize + partial_bytes)
        return unique, reduced

    def min_label_exchange(self, labels, send, recv):
        """One min-label broadcast level: each edge copy reads its sending
        endpoint's label locally (co-located, as in
        :func:`repro.mpc.algorithms.distributed_min_label_round`) and ships
        it to the receiving endpoint's home — one barrier, payload = the
        incidences whose endpoints live on different shards."""
        self._count_op("min_label_exchange")
        labels = _data(labels)
        send = _data(send)
        recv = _data(recv)
        # Capacity check first (see search()).
        shards = self.ensure_capacity(int(labels.shape[0]) + int(send.shape[0]))
        new_labels, incoming = self._kernel_min_label(labels, send, recv)
        if shards > 1:
            s = self._s
            crossing = int(np.count_nonzero(send // s != recv // s))
            self._exchange(shards, crossing * incoming.itemsize)
        return new_labels, incoming

    def csr_min_label(self, labels, indptr, indices):
        """One min-label broadcast level over a pinned CSR index.

        Accounting is identical to :meth:`min_label_exchange` on the
        incidence arrays the index enumerates: CSR slot ``p`` holds the
        incidence *sending* from ``indices[p]`` to the slot's owning row
        — the same directed-incidence multiset as the concatenated
        orientation arrays — so the capacity check
        (``n + 2m`` words), the barrier count, and the crossing payload
        (incidences whose endpoints live on different shards) match the
        sort-based level bit for bit.  Only the kernel differs: a
        contiguous gather plus ``reduceat`` folds instead of argsorted
        scatter."""
        self._count_op("csr_min_label")
        labels = _data(labels)
        indptr = _data(indptr)
        indices = _data(indices)
        # Capacity check first (see search()).
        shards = self.ensure_capacity(
            int(labels.shape[0]) + int(indices.shape[0])
        )
        new_labels, incoming = self._kernel_csr_min_label(
            labels, indptr, indices
        )
        if shards > 1:
            s = self._s
            owners = np.repeat(
                np.arange(indptr.shape[0] - 1, dtype=np.int64),
                np.diff(indptr),
            )
            crossing = int(np.count_nonzero(indices // s != owners // s))
            self._exchange(shards, crossing * incoming.itemsize)
        self.csr_gathers += 1
        self.argsorts_avoided += 1
        return new_labels, incoming

    def sketch_update(self, store, edges, weights) -> int:
        """Broadcast one update batch to the sketch shard partials.

        Capacity is charged on the batch in flight (the edge endpoints
        plus their weights — the partials themselves are standing state,
        not a message); the broadcast to ``store.shard_count`` owner
        ranges is one barrier when more than one shard listens.  Compute
        delegates to :meth:`_kernel_sketch_update`, so the process/rpc
        subclasses report identical counters by construction.  A backend
        constructed without ``shard_memory`` skips the capacity check
        (standing ingest services have no engine to attach one).
        """
        self._count_op("sketch_update")
        edges = _data(edges)
        weights = _data(weights)
        if self.shard_memory is not None:
            self.ensure_capacity(int(edges.size) + int(weights.size))
        applied = self._kernel_sketch_update(store, edges, weights)
        self._exchange(store.shard_count, int(edges.nbytes + weights.nbytes))
        return applied

    def sketch_collect(self, store) -> "list[np.ndarray]":
        """Gather the shard partials to the coordinator for a decode-time
        merge — one barrier carrying the partial payloads."""
        self._count_op("sketch_collect")
        parts = self._kernel_sketch_collect(store)
        self._exchange(
            store.shard_count, int(sum(int(p.nbytes) for p in parts))
        )
        return parts


def _csr_min_label_kernel(
    labels: np.ndarray, indptr: np.ndarray, indices: np.ndarray
):
    """Shared CSR min-label compute: ``(new_labels, incoming)``.

    ``incoming = labels[indices]`` (CSR slot order); each vertex's new
    label is the minimum of its old label and the labels arriving on its
    neighbour run.  Runs are contiguous, so one ``minimum.reduceat``
    over the non-empty run starts folds every row — no scatter, no
    argsort.  Excluding empty runs first means consecutive ``starts``
    delimit exactly the non-empty runs and every start is in range.
    """
    incoming = labels[indices]
    new_labels = labels.copy()
    nz = np.diff(indptr) > 0
    starts = indptr[:-1][nz]
    if starts.size:
        new_labels[nz] = np.minimum(
            new_labels[nz], np.minimum.reduceat(incoming, starts)
        )
    return new_labels, incoming


def _grouped_reduce(keys: np.ndarray, values: np.ndarray, op: str):
    """Shared compute kernel: sorted unique keys + per-group fold.

    Stable argsort keeps equal keys in input order, so ``op="min"`` over
    ascending index values reproduces ``np.unique(keys, return_index=True)``
    exactly — the contraction dedup relies on that.  Also returns the sort
    permutation (``None`` for empty input) so callers accounting for data
    movement don't argsort twice.
    """
    if op not in _REDUCERS:
        raise ValueError(f"unknown reducer {op!r}; choose from {sorted(_REDUCERS)}")
    keys = np.asarray(keys)
    values = np.asarray(values)
    if keys.shape[0] != values.shape[0]:
        raise ValueError(
            f"keys and values must align: {keys.shape[0]} vs {values.shape[0]}"
        )
    if keys.shape[0] == 0:
        return keys.copy(), values.copy(), None
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_values = values[order]
    starts = np.empty(sorted_keys.shape[0], dtype=bool)
    starts[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=starts[1:])
    boundaries = np.flatnonzero(starts)
    reduced = _REDUCERS[op].reduceat(sorted_values, boundaries)
    return sorted_keys[boundaries], reduced, order


#: Registry for CLI/pipeline string selection.  ``"process"`` and
#: ``"rpc"`` are added by :mod:`repro.mpc.process_backend` and
#: :mod:`repro.mpc.rpc` at import time — and since importing *this*
#: module always executes the :mod:`repro.mpc` package ``__init__``
#: first (which imports both), every import path sees the full
#: registry.
BACKENDS = {
    "local": LocalBackend,
    "sharded": ShardedBackend,
}


def backend_names() -> "list[str]":
    """All selectable backend names, sorted."""
    return sorted(BACKENDS)


def make_backend(spec, **kwargs) -> "ExecutionBackend | None":
    """Resolve a backend spec into an instance.

    Parameters
    ----------
    spec:
        ``None`` (caller default, returned as-is), a name from
        :data:`BACKENDS` (``"local"``, ``"sharded"``, ``"process"``), or an
        :class:`ExecutionBackend` instance (returned unchanged).
    **kwargs:
        Constructor options for a named backend (e.g. ``workers=4`` for
        ``"process"``).  Rejected when ``spec`` is already an instance.

    Raises
    ------
    ValueError
        Unknown name, or options passed alongside an instance.
    TypeError
        ``spec`` is neither ``None``, a string, nor a backend instance.
    """
    if spec is None:
        return None
    if isinstance(spec, ExecutionBackend):
        if kwargs:
            raise ValueError("cannot pass options with a backend instance")
        return spec
    if isinstance(spec, str):
        # Lookup and construction are separated deliberately: a KeyError
        # escaping a backend *constructor* must propagate as-is, not be
        # mislabelled as an unknown-name error.
        try:
            cls = BACKENDS[spec]
        except KeyError:
            raise ValueError(
                f"unknown backend {spec!r}; available: {backend_names()}"
            ) from None
        return cls(**kwargs)
    raise TypeError(f"backend must be None, a name, or an ExecutionBackend: {spec!r}")
