"""A faithful (small-scale) MPC executor.

This is the validation substrate: data really lives on
:class:`~repro.mpc.machine.Machine` objects, rounds really consist of a
local-computation step followed by an all-to-all message exchange, and both
per-machine memory and per-round communication are enforced exactly as in
the model of Beame–Koutris–Suciu [12] that the paper adopts:

* during a round, machines compute locally — no communication;
* between rounds, each machine may send and receive at most its memory.

Algorithms meant for production use charge an :class:`~repro.mpc.engine.MPCEngine`
instead (vectorised, unbounded scale); the tests run the same primitive
logic on a ``Cluster`` to certify the round counts charged there are
achievable under real memory limits.

For *pipeline-scale* certification, see
:class:`~repro.mpc.backends.ShardedBackend`: it enforces the same
per-shard memory and per-round communication caps over partitioned numpy
arrays, trading this executor's message-level fidelity for vectorised
execution at sizes Python-list machines cannot hold.  The per-round
``messages_exchanged`` counter here mirrors the backend's
``bytes_exchanged`` so both layers report comparable communication.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.mpc.machine import Machine, MachineMemoryError
from repro.utils.validation import check_positive_int

#: A message is (destination machine id, payload).
Message = "tuple[int, Any]"


class Cluster:
    """A fleet of memory-capped machines executing synchronous rounds."""

    def __init__(self, machine_count: int, memory: int):
        machine_count = check_positive_int(machine_count, "machine_count")
        memory = check_positive_int(memory, "memory")
        self.machines = [Machine(i, memory) for i in range(machine_count)]
        self.memory = memory
        self.rounds_executed = 0
        self.messages_exchanged = 0

    @property
    def machine_count(self) -> int:
        """Number of machines in the fleet."""
        return len(self.machines)

    @property
    def total_capacity(self) -> int:
        """Total words the fleet can hold (``machines × memory``)."""
        return self.machine_count * self.memory

    # -- data placement ---------------------------------------------------------

    def scatter(self, items: Iterable[Any]) -> None:
        """Distribute ``items`` over machines (adversarial placement in the
        model; here: round-robin, which the algorithms may not rely on)."""
        items = list(items)
        if len(items) > self.total_capacity:
            raise MachineMemoryError(
                f"{len(items)} items exceed total capacity {self.total_capacity}"
            )
        for index, item in enumerate(items):
            self.machines[index % self.machine_count].store(item)

    def all_items(self) -> "list[Any]":
        """Gather every item (inspection only — not an MPC operation)."""
        out: list[Any] = []
        for machine in self.machines:
            out.extend(machine.items)
        return out

    def loads(self) -> "list[int]":
        """Items held per machine, in machine-id order."""
        return [m.load for m in self.machines]

    # -- round execution ----------------------------------------------------------

    def round(
        self,
        compute: Callable[[int, "list[Any]"], "list[Message]"],
    ) -> None:
        """Execute one MPC round.

        ``compute(machine_id, items) -> [(dest, payload), ...]`` runs locally
        on each machine with its current items; items not re-sent are
        dropped (machines must explicitly keep state by addressing
        themselves).  Send and receive volumes are checked against the
        memory cap, then messages are delivered.
        """
        outboxes: list[list[Message]] = []
        for machine in self.machines:
            messages = list(compute(machine.machine_id, machine.take_all()))
            if len(messages) > self.memory:
                raise MachineMemoryError(
                    f"machine {machine.machine_id} sends {len(messages)} "
                    f"messages > memory {self.memory}"
                )
            outboxes.append(messages)

        inboxes: list[list[Any]] = [[] for _ in self.machines]
        for machine, messages in zip(self.machines, outboxes):
            for dest, payload in messages:
                if not 0 <= dest < self.machine_count:
                    raise ValueError(f"bad destination machine {dest}")
                if dest != machine.machine_id:
                    self.messages_exchanged += 1
                inboxes[dest].append(payload)

        for machine, inbox in zip(self.machines, inboxes):
            if len(inbox) > self.memory:
                raise MachineMemoryError(
                    f"machine {machine.machine_id} receives {len(inbox)} "
                    f"messages > memory {self.memory}"
                )
            machine.store_many(inbox)

        self.rounds_executed += 1
