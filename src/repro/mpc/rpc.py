"""Wire-protocol MPC data plane: worker processes behind a socket RPC.

:class:`RpcBackend` is the first executor whose kernels run across a
*wire* rather than shared memory — the substrate the ROADMAP's
connectivity service (:mod:`repro.service`) is built on.  Like
:class:`~repro.mpc.process_backend.ProcessBackend` it subclasses
:class:`~repro.mpc.backends.ShardedBackend` and overrides *only* the
``_kernel_*`` compute hooks, so capacity enforcement, exchange
attribution, and every model counter are shared code — counter-identical
to the serial sharded backend by construction.

Wire protocol
-------------
Everything crosses the socket as length-prefixed *frames*
(:func:`encode_frame` / :func:`decode_frame`): a fixed
magic + header-length + blob-length prefix, a JSON header, and a raw
binary blob.  Op frames carry :class:`~repro.mpc.plan.OpStep`-shaped
step sequences (``op`` / ``inputs`` / ``outputs`` / ``params`` dicts)
in the header and their input arrays in the blob; a worker executes the
steps in order against an environment of named arrays and replies with
one ACK frame carrying the requested output arrays.  Malformed,
truncated, or oversized frames raise the typed
:class:`RpcProtocolError` — never a hang, never a bare struct/JSON
error.

Arrays are *content-digest deduplicated* per worker
(:func:`repro.mpc.plan.content_digest`, the same identity trace files
and the service cache use): the parent tracks which digests each worker
holds and ships a bare digest reference instead of payload bytes on
every repeat — the loop-invariant incidence arrays of the broadcast
stage cross the wire once per worker, not once per round.

Execution model
---------------
The pool holds ``workers`` forked OS processes, each running a
synchronous frame loop over a private Unix-domain socket; the parent
side is a dedicated asyncio event loop on a background thread.  One
backend operation is one *ACK barrier*: the parent sends every worker
its step frame, then awaits all ACKs — exactly the all-to-all barrier
the sharded accounting already prices.  Partitioning mirrors the
process backend bit for bit: ``search`` and ``min_label_exchange``
split shard-aligned position blocks, ``sort`` and ``reduce_by_key``
use deterministic sample-sort splitters with disjoint key ranges, so
concatenating the per-worker results *is* the serial kernel's output.

A background heartbeat task pings idle workers every
``heartbeat_interval`` seconds; a worker that misses the
``heartbeat_timeout`` deadline (or whose connection drops) is marked
dead with a typed error, pending calls fail immediately, and the pool
fails closed.  Calls are bounded by ``call_timeout`` with
``max_retries`` re-waits under exponential backoff
(:class:`RpcTimeoutError` after the budget); pool construction is
bounded by ``connect_timeout``.  A failed pool restarts lazily on the
next operation, so the backend recovers without caller intervention.

Certification order (the point of the plan IR)
----------------------------------------------
The backend is certified through the replay seam before it ever runs
live: every committed per-engine trace must replay bit-identically
(``repro.mpc.plan.replay(path, backend=RpcBackend(...))`` — outputs,
rounds, and exchange/byte counters), then the backend joins
``tests/test_differential.py`` as the fourth backend across all
generator families, and only then does the connectivity service ride
it.  Transport telemetry (frames, payload bytes, digest hits) is
reported in ``stats().transport`` under the one-schema zero-filled
contract of :data:`~repro.mpc.backends.TRANSPORT_STATS_ZERO`.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import os
import socket
import struct
import tempfile
import threading
import time
import weakref

import numpy as np

from repro.mpc.backends import BACKENDS, ShardedBackend, _grouped_reduce
from repro.mpc.plan import content_digest
from repro.mpc.process_backend import DEFAULT_MIN_PARALLEL_ITEMS, _mp_context
from repro.utils.validation import check_nonnegative_int, check_positive_int

# ---------------------------------------------------------------------------
# Errors
# ---------------------------------------------------------------------------


class RpcError(RuntimeError):
    """Base class of every typed RPC failure."""


class RpcProtocolError(RpcError):
    """A malformed frame: bad magic, truncated payload, invalid JSON,
    oversized section, unknown digest reference, or a duplicate ACK.
    """


class RpcTimeoutError(RpcError):
    """A call (or pool connect) exceeded its configured deadline,
    including every retry of the bounded backoff schedule.
    """


class RpcWorkerError(RpcError):
    """A worker process died, failed a step, or missed its heartbeat."""


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------

#: Frame prefix: magic, header length, blob length (network byte order).
FRAME_MAGIC = b"MPR1"
_PREFIX = struct.Struct("!4sII")

#: Section ceilings: a frame announcing more than this is malformed by
#: definition (and would otherwise stall the reader on a short stream).
MAX_HEADER_BYTES = 16 * 1024 * 1024
MAX_BLOB_BYTES = 1 << 31


def encode_frame(header: dict, blob: bytes = b"") -> bytes:
    """Serialise one frame: prefix + JSON header + binary blob.

    Raises
    ------
    RpcProtocolError
        The header is not JSON-serialisable or a section exceeds its
        ceiling.
    """
    try:
        head = json.dumps(header, separators=(",", ":")).encode()
    except (TypeError, ValueError) as exc:
        raise RpcProtocolError(f"unencodable frame header: {exc}") from None
    if len(head) > MAX_HEADER_BYTES or len(blob) > MAX_BLOB_BYTES:
        raise RpcProtocolError(
            f"frame sections too large: header {len(head)}, blob {len(blob)}"
        )
    return _PREFIX.pack(FRAME_MAGIC, len(head), len(blob)) + head + blob


def decode_frame(data: bytes) -> "tuple[dict, bytes]":
    """Inverse of :func:`encode_frame` for one complete frame.

    Raises
    ------
    RpcProtocolError
        Truncated prefix/sections, wrong magic, oversized lengths,
        invalid JSON, a non-object header, or trailing garbage.
    """
    if len(data) < _PREFIX.size:
        raise RpcProtocolError(
            f"truncated frame prefix: {len(data)} < {_PREFIX.size} bytes"
        )
    magic, head_len, blob_len = _PREFIX.unpack_from(data)
    if magic != FRAME_MAGIC:
        raise RpcProtocolError(f"bad frame magic {magic!r}")
    if head_len > MAX_HEADER_BYTES or blob_len > MAX_BLOB_BYTES:
        raise RpcProtocolError(
            f"frame announces oversized sections: {head_len}/{blob_len}"
        )
    expected = _PREFIX.size + head_len + blob_len
    if len(data) != expected:
        raise RpcProtocolError(
            f"frame length {len(data)} != announced {expected}"
        )
    head = data[_PREFIX.size : _PREFIX.size + head_len]
    try:
        header = json.loads(head.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RpcProtocolError(f"invalid frame header: {exc}") from None
    if not isinstance(header, dict):
        raise RpcProtocolError(
            f"frame header must be a JSON object, got {type(header).__name__}"
        )
    return header, data[_PREFIX.size + head_len :]


def pack_arrays(
    arrays: "dict[str, np.ndarray]",
    known: "set[str] | None" = None,
) -> "tuple[list[dict], bytes, list[str]]":
    """Encode named arrays for a frame blob, digest-deduplicated.

    Returns ``(meta, blob, shipped)``: per-array metadata for the frame
    header, the concatenated payload, and the digests whose bytes were
    actually included.  An array whose digest is in ``known`` (or
    appeared earlier in this same frame) is sent as a bare reference.

    Raises
    ------
    RpcProtocolError
        An array has an object dtype (PyObject pointers are meaningless
        on the far side of a socket).
    """
    meta: "list[dict]" = []
    chunks: "list[bytes]" = []
    shipped: "list[str]" = []
    seen = set(known) if known is not None else set()
    offset = 0
    for slot, array in arrays.items():
        array = np.asarray(array)
        if array.ndim:  # ascontiguousarray would flatten a 0-d to (1,)
            array = np.ascontiguousarray(array)
        if array.dtype.hasobject:
            raise RpcProtocolError(
                f"array {slot!r} has object dtype {array.dtype}; "
                "only plain binary dtypes cross the wire"
            )
        digest = content_digest(array)
        if digest in seen:
            meta.append({"slot": slot, "digest": digest, "cached": True})
            continue
        payload = array.tobytes()
        meta.append(
            {
                "slot": slot,
                "digest": digest,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": len(payload),
            }
        )
        chunks.append(payload)
        offset += len(payload)
        seen.add(digest)
        shipped.append(digest)
    return meta, b"".join(chunks), shipped


def unpack_arrays(
    meta: "list[dict]",
    blob: bytes,
    cache: "dict[str, np.ndarray] | None" = None,
) -> "dict[str, np.ndarray]":
    """Decode :func:`pack_arrays` output back into named arrays.

    ``cache`` (digest → array) resolves bare references and is updated
    with every array decoded from the blob, so same-frame and
    cross-frame dedup both resolve.  Decoded arrays are read-only views
    of the blob — kernels never mutate their inputs.

    Raises
    ------
    RpcProtocolError
        A reference names a digest the cache does not hold, a payload
        slice falls outside the blob, or dtype/shape are inconsistent
        with the announced byte count.
    """
    out: "dict[str, np.ndarray]" = {}
    for entry in meta:
        slot = entry["slot"]
        if entry.get("cached"):
            if cache is None or entry["digest"] not in cache:
                raise RpcProtocolError(
                    f"frame references unknown cached digest "
                    f"{entry['digest']!r} for {slot!r}"
                )
            out[slot] = cache[entry["digest"]]
            continue
        lo = entry["offset"]
        hi = lo + entry["nbytes"]
        if lo < 0 or hi > len(blob):
            raise RpcProtocolError(
                f"array {slot!r} payload [{lo}:{hi}] exceeds blob of "
                f"{len(blob)} bytes"
            )
        try:
            dtype = np.dtype(entry["dtype"])
            count = int(np.prod(entry["shape"], dtype=np.int64))
        except (TypeError, ValueError) as exc:
            raise RpcProtocolError(
                f"array {slot!r} does not decode: {exc}"
            ) from None
        if count * dtype.itemsize != entry["nbytes"]:
            raise RpcProtocolError(
                f"array {slot!r} dtype/shape imply "
                f"{count * dtype.itemsize} bytes, frame announced "
                f"{entry['nbytes']}"
            )
        try:
            array = np.frombuffer(
                blob, dtype=dtype, count=count, offset=lo
            ).reshape(entry["shape"])
        except (TypeError, ValueError) as exc:
            raise RpcProtocolError(
                f"array {slot!r} does not decode: {exc}"
            ) from None
        out[slot] = array
        if cache is not None:
            cache[entry["digest"]] = array
    return out


def _recv_exact(sock: socket.socket, n: int) -> "bytes | None":
    """Read exactly ``n`` bytes from a blocking socket.

    Returns ``None`` on a clean EOF at offset 0 (peer closed between
    frames); raises :class:`RpcProtocolError` on EOF mid-read.
    """
    chunks: "list[bytes]" = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise RpcProtocolError(
                f"connection closed mid-frame: {got}/{n} bytes"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> "tuple[dict, bytes] | None":
    """Read one frame from a blocking socket (``None`` on clean EOF).

    Raises :class:`RpcProtocolError` on truncation or malformed content.
    """
    prefix = _recv_exact(sock, _PREFIX.size)
    if prefix is None:
        return None
    magic, head_len, blob_len = _PREFIX.unpack(prefix)
    if magic != FRAME_MAGIC:
        raise RpcProtocolError(f"bad frame magic {magic!r}")
    if head_len > MAX_HEADER_BYTES or blob_len > MAX_BLOB_BYTES:
        raise RpcProtocolError(
            f"frame announces oversized sections: {head_len}/{blob_len}"
        )
    rest = _recv_exact(sock, head_len + blob_len)
    if rest is None:
        raise RpcProtocolError("connection closed before frame body")
    return decode_frame(prefix + rest)


def send_frame(sock: socket.socket, header: dict, blob: bytes = b"") -> None:
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(header, blob))


async def read_frame_async(
    reader: asyncio.StreamReader,
) -> "tuple[dict, bytes] | None":
    """Read one frame from an asyncio stream (``None`` on clean EOF).

    Raises :class:`RpcProtocolError` on truncation or malformed content.
    """
    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise RpcProtocolError(
            f"connection closed mid-prefix: {len(exc.partial)} bytes"
        ) from None
    magic, head_len, blob_len = _PREFIX.unpack(prefix)
    if magic != FRAME_MAGIC:
        raise RpcProtocolError(f"bad frame magic {magic!r}")
    if head_len > MAX_HEADER_BYTES or blob_len > MAX_BLOB_BYTES:
        raise RpcProtocolError(
            f"frame announces oversized sections: {head_len}/{blob_len}"
        )
    try:
        rest = await reader.readexactly(head_len + blob_len)
    except asyncio.IncompleteReadError as exc:
        raise RpcProtocolError(
            f"connection closed mid-frame: {len(exc.partial)}/"
            f"{head_len + blob_len} bytes"
        ) from None
    return decode_frame(prefix + rest)


# ---------------------------------------------------------------------------
# Worker side (synchronous frame loop, forked process)
# ---------------------------------------------------------------------------


def _k_search(env: dict, step: dict) -> None:
    """Wire kernel: gather ``table[queries[lo:hi]]`` for a position block."""
    table, queries = (env[name] for name in step["inputs"])
    lo, hi = step["params"]["lo"], step["params"]["hi"]
    env[step["outputs"][0]] = table[queries[lo:hi]]


def _bucket(keys: np.ndarray, lo, hi) -> "tuple[np.ndarray, int]":
    """Positions (ascending) of the keys in ``[lo, hi)`` plus the global
    output offset (= count of keys below ``lo``); ``None`` bounds are open.
    """
    if lo is None and hi is None:
        return np.arange(keys.shape[0], dtype=np.int64), 0
    mask = np.ones(keys.shape[0], dtype=bool)
    if lo is not None:
        mask &= keys >= lo
    if hi is not None:
        mask &= keys < hi
    offset = 0 if lo is None else int(np.count_nonzero(keys < lo))
    return np.flatnonzero(mask), offset


def _k_sort(env: dict, step: dict) -> None:
    """Wire kernel: stable-sort this worker's key bucket.

    Outputs the bucket's slice of the global stable argsort and the
    values gathered through it, plus the scalar output offset — the
    buckets' key ranges are disjoint and ascending, so the parent's
    slice-assembly reproduces the serial kernel bit for bit.
    """
    keys, values = (env[name] for name in step["inputs"])
    lo, hi = step["params"]["lo"], step["params"]["hi"]
    idx, offset = _bucket(keys, lo, hi)
    seg = idx[np.argsort(keys[idx], kind="stable")]
    env[step["outputs"][0]] = seg
    env[step["outputs"][1]] = values[seg]
    env[step["outputs"][2]] = np.array([offset], dtype=np.int64)


def _k_reduce(env: dict, step: dict) -> None:
    """Wire kernel: grouped fold over this worker's key bucket.

    Key ranges are disjoint across workers, so no combine step exists;
    the parent concatenates ``unique``/``reduced`` in bucket order and
    splices each bucket's slice of the global sort permutation.
    """
    keys, values = (env[name] for name in step["inputs"])
    params = step["params"]
    idx, offset = _bucket(keys, params["lo"], params["hi"])
    if idx.size:
        unique, reduced, local = _grouped_reduce(
            keys[idx], values[idx], params["op"]
        )
        seg = idx[local]
    else:
        unique = keys[:0]
        reduced = values[:0]
        seg = idx
    env[step["outputs"][0]] = seg
    env[step["outputs"][1]] = unique
    env[step["outputs"][2]] = reduced
    env[step["outputs"][3]] = np.array([offset], dtype=np.int64)


def _k_gather_incoming(env: dict, step: dict) -> None:
    """Wire kernel: ``incoming = labels[send[lo:hi]]`` for a position block."""
    labels, send = (env[name] for name in step["inputs"])
    lo, hi = step["params"]["lo"], step["params"]["hi"]
    env[step["outputs"][0]] = labels[send[lo:hi]]


def _k_min_fold(env: dict, step: dict) -> None:
    """Wire kernel: min-fold the incidences landing in a label block.

    Min is commutative, associative, and idempotent, so partitioning the
    scatter by receiving-label range reproduces the serial result
    exactly (the same argument the process backend's fold relies on).
    """
    labels, send, recv = (env[name] for name in step["inputs"])
    lo, hi = step["params"]["lo"], step["params"]["hi"]
    out = labels[lo:hi].copy()
    mask = (recv >= lo) & (recv < hi)
    np.minimum.at(out, recv[mask] - lo, labels[send[mask]])
    env[step["outputs"][0]] = out


def _k_csr_min_fold(env: dict, step: dict) -> None:
    """Wire kernel: CSR min-fold for a label block.

    The block's vertices own the contiguous CSR slot range
    ``indptr[lo]:indptr[hi]``, so the fold reads exactly its own slots —
    an indptr-sliced gather plus ``minimum.reduceat`` over the non-empty
    runs, with no scan of the full incidence arrays.
    """
    labels, indptr, indices = (env[name] for name in step["inputs"])
    lo, hi = step["params"]["lo"], step["params"]["hi"]
    out = labels[lo:hi].copy()
    block_ptr = indptr[lo : hi + 1]
    base = block_ptr[0]
    nz = np.diff(block_ptr) > 0
    if nz.any():
        incoming = labels[indices[base : block_ptr[-1]]]
        starts = (block_ptr[:-1] - base)[nz]
        out[nz] = np.minimum(out[nz], np.minimum.reduceat(incoming, starts))
    env[step["outputs"][0]] = out


def _k_sketch_update(env: dict, step: dict) -> None:
    """Wire kernel: scatter an update batch into a worker-resident sketch
    partial.

    The partial lives in the worker's persistent state dict (keyed by
    sketch token × shard), created zeroed on first touch; the parent
    never holds a copy.  Hash state arrives as coefficient arrays —
    digest-deduped, so after the first frame only the batch ships.
    """
    # Lazy import keeps the module-level graph acyclic (sketch sits
    # above the backend stack).
    from repro.sketch.sharded import sketch_update_partial

    params = step["params"]
    state = env["__state__"]
    key = (params["key"], params["shard"])
    partial = state.get(key)
    if partial is None:
        partial = np.zeros(
            (params["rounds"], 3, params["vhi"] - params["vlo"], params["cells"]),
            dtype=np.int64,
        )
        state[key] = partial
    edges, weights, level_coeffs, row_coeffs, bases = (
        env[name] for name in step["inputs"]
    )
    applied = sketch_update_partial(
        partial,
        edges,
        weights,
        vlo=params["vlo"],
        vhi=params["vhi"],
        n=params["n"],
        levels=params["levels"],
        cols=params["cols"],
        level_coeffs=level_coeffs,
        row_coeffs=row_coeffs,
        bases=bases,
    )
    env[step["outputs"][0]] = np.array([applied], dtype=np.int64)


def _k_sketch_collect(env: dict, step: dict) -> None:
    """Wire kernel: return a resident sketch partial for a decode-time
    merge.

    A shard no update frame ever touched is legitimately all-zero (the
    parent guards against actual state loss with its pool-generation
    residency check before dispatching), so a missing key materialises
    zeros rather than failing.
    """
    params = step["params"]
    partial = env["__state__"].get((params["key"], params["shard"]))
    if partial is None:
        partial = np.zeros(
            (params["rounds"], 3, params["vhi"] - params["vlo"], params["cells"]),
            dtype=np.int64,
        )
    env[step["outputs"][0]] = partial


def _k_sketch_release(env: dict, step: dict) -> None:
    """Wire kernel: drop a resident sketch partial (rebuilds and closes
    evict their worker-side state so long-lived pools don't leak)."""
    params = step["params"]
    env["__state__"].pop((params["key"], params["shard"]), None)


#: Step kernels a worker executes (op name → kernel).
WIRE_KERNELS = {
    "search": _k_search,
    "sort": _k_sort,
    "reduce": _k_reduce,
    "gather_incoming": _k_gather_incoming,
    "min_fold": _k_min_fold,
    "csr_min_fold": _k_csr_min_fold,
    "sketch_update": _k_sketch_update,
    "sketch_collect": _k_sketch_collect,
    "sketch_release": _k_sketch_release,
}


def _rpc_worker_main(path: str, worker_id: int) -> None:
    """Worker process: connect back to the parent and serve frames.

    Each op frame carries an OpStep-shaped step sequence; the worker
    executes the steps against an environment seeded with the frame's
    arrays (plus its digest cache) and replies with one ACK frame
    holding the arrays named in ``returns``.  ``ping`` frames get an
    immediate ``pong``; a ``shutdown`` frame or EOF ends the loop.
    """
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        sock.connect(path)
        send_frame(sock, {"kind": "hello", "worker": worker_id})
        cache: "dict[str, np.ndarray]" = {}
        # Persistent worker state across frames (worker-resident sketch
        # partials); dies with the worker, which the parent detects via
        # its pool-generation residency check.
        state: dict = {}
        while True:
            frame = recv_frame(sock)
            if frame is None:
                return
            header, blob = frame
            kind = header.get("kind")
            if kind == "shutdown":
                return
            if kind == "ping":
                send_frame(sock, {"kind": "pong", "call": header["call"]})
                continue
            if kind != "op":
                send_frame(
                    sock,
                    {
                        "kind": "err",
                        "call": header.get("call"),
                        "error": "RpcProtocolError",
                        "message": f"unknown frame kind {kind!r}",
                    },
                )
                continue
            for digest in header.get("evict", ()):
                cache.pop(digest, None)
            try:
                env = unpack_arrays(header["arrays"], blob, cache)
                env["__state__"] = state
                for step in header["steps"]:
                    WIRE_KERNELS[step["op"]](env, step)
                meta, out_blob, _ = pack_arrays(
                    {name: env[name] for name in header["returns"]}
                )
            except BaseException as exc:  # noqa: BLE001 - ship failures back
                send_frame(
                    sock,
                    {
                        "kind": "err",
                        "call": header["call"],
                        "error": type(exc).__name__,
                        "message": str(exc),
                    },
                )
                continue
            send_frame(
                sock,
                {"kind": "ack", "call": header["call"], "arrays": meta},
                out_blob,
            )
            if header.get("dup_ack"):
                # Test-only fault injection: repeat the ACK verbatim so
                # the parent's router can prove it fails closed.
                send_frame(
                    sock,
                    {"kind": "ack", "call": header["call"], "arrays": meta},
                    out_blob,
                )
    except (RpcError, OSError):
        return
    finally:
        sock.close()


# ---------------------------------------------------------------------------
# Parent side (asyncio pool on a background thread)
# ---------------------------------------------------------------------------


class _WorkerHandle:
    """Parent-side state of one connected worker."""

    def __init__(self, proc, reader, writer):
        self.proc = proc
        self.reader = reader
        self.writer = writer
        self.digests: "set[str]" = set()
        self.digest_order: "list[tuple[str, int]]" = []
        self.cache_bytes = 0
        self.pending: "dict[int, asyncio.Future]" = {}
        self.dead: "str | None" = None
        self.dead_kind: type = RpcWorkerError


def _stop_rpc_pool(procs, loop, thread, tempdir) -> None:
    """Finalizer: stop the loop thread, reap workers, remove the socket dir."""
    if loop is not None and not loop.is_closed():

        def _cancel_and_stop() -> None:
            tasks = list(asyncio.all_tasks(loop))
            for task in tasks:
                task.cancel()

            async def _drain() -> None:
                # Let the cancellations actually run before stopping,
                # else asyncio warns about destroyed pending tasks.
                await asyncio.gather(*tasks, return_exceptions=True)
                loop.stop()

            asyncio.ensure_future(_drain())

        with contextlib.suppress(RuntimeError):
            loop.call_soon_threadsafe(_cancel_and_stop)
        if thread is not None and thread.is_alive():
            thread.join(timeout=2.0)
        if not loop.is_running():
            with contextlib.suppress(RuntimeError):
                loop.close()
    for proc in procs:
        proc.join(timeout=1.0)
        if proc.is_alive():
            # SIGKILL, not SIGTERM: a SIGSTOP'd worker queues SIGTERM
            # until continued, which would hang this reap.
            proc.kill()
            proc.join(timeout=2.0)
    if tempdir is not None:
        with contextlib.suppress(OSError):
            tempdir.cleanup()


class _RpcPool:
    """The parent half of the wire: workers, event loop, heartbeats.

    All socket I/O happens on one asyncio event loop running in a
    daemon thread; the synchronous kernel path submits coroutines with
    ``run_coroutine_threadsafe`` and blocks on the result.  One
    :meth:`barrier` call is one ACK barrier across every participating
    worker.
    """

    def __init__(
        self,
        workers: int,
        *,
        connect_timeout: float,
        call_timeout: float,
        max_retries: int,
        backoff: float,
        heartbeat_interval: float,
        heartbeat_timeout: float,
        cache_bytes: int,
        counters: dict,
    ):
        self.workers = workers
        self.connect_timeout = connect_timeout
        self.call_timeout = call_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.cache_bytes = cache_bytes
        self.counters = counters
        self._handles: "list[_WorkerHandle]" = []
        self._procs: list = []
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: "threading.Thread | None" = None
        self._tempdir: "tempfile.TemporaryDirectory | None" = None
        self._call_counter = 0
        self._closed = False
        self._finalizer = None
        self.socket_path: "str | None" = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Bind the rendezvous socket, fork workers, accept them all.

        Raises :class:`RpcTimeoutError` when a worker fails to connect
        within ``connect_timeout`` (after bounded respawn retries).
        """
        self._tempdir = tempfile.TemporaryDirectory(prefix="repro-rpc-")
        self.socket_path = os.path.join(
            self._tempdir.name, f"pool-{os.getpid()}.sock"
        )
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.socket_path)
        listener.listen(self.workers)
        listener.setblocking(False)

        ctx = _mp_context()
        for worker_id in range(self.workers):
            proc = ctx.Process(
                target=_rpc_worker_main,
                args=(self.socket_path, worker_id),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="rpc-pool", daemon=True
        )
        self._thread.start()
        self._finalizer = weakref.finalize(
            self,
            _stop_rpc_pool,
            list(self._procs),
            self._loop,
            self._thread,
            self._tempdir,
        )
        try:
            fut = asyncio.run_coroutine_threadsafe(
                self._accept_all(listener), self._loop
            )
            fut.result(timeout=self.connect_timeout + 5.0)
        except Exception:
            self.close()
            raise
        finally:
            listener.close()

    async def _accept_all(self, listener: socket.socket) -> None:
        """Accept every worker's connection and start its reader task."""
        loop = asyncio.get_running_loop()
        deadline = time.monotonic() + self.connect_timeout
        delay = 0.05
        accepted = 0
        attempts = 0
        while accepted < self.workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RpcTimeoutError(
                    f"only {accepted}/{self.workers} workers connected "
                    f"within {self.connect_timeout:.1f}s"
                )
            try:
                conn, _ = await asyncio.wait_for(
                    loop.sock_accept(listener), timeout=remaining
                )
            except (asyncio.TimeoutError, TimeoutError):
                # Bounded retry-and-backoff: respawn any dead stragglers
                # before giving up on the deadline above.
                attempts += 1
                if attempts > self.max_retries:
                    raise RpcTimeoutError(
                        f"only {accepted}/{self.workers} workers connected "
                        f"within {self.connect_timeout:.1f}s"
                    ) from None
                await asyncio.sleep(delay)
                delay *= self.backoff
                continue
            reader, writer = await asyncio.open_connection(sock=conn)
            frame = await read_frame_async(reader)
            if frame is None or frame[0].get("kind") != "hello":
                raise RpcProtocolError("worker sent no hello frame")
            handle = _WorkerHandle(
                self._procs[frame[0]["worker"]], reader, writer
            )
            self._handles.append(handle)
            asyncio.ensure_future(self._reader_task(handle))
            accepted += 1
        self._handles.sort(key=lambda h: h.proc.pid)
        asyncio.ensure_future(self._heartbeat_task())

    def close(self) -> None:
        """Stop the loop thread, reap workers, unlink the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and self._loop.is_running():
            with contextlib.suppress(Exception):
                asyncio.run_coroutine_threadsafe(
                    self._shutdown_workers(), self._loop
                ).result(timeout=2.0)
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None

    async def _shutdown_workers(self) -> None:
        """Send polite shutdown frames and close every writer."""
        for handle in self._handles:
            with contextlib.suppress(Exception):
                handle.writer.write(encode_frame({"kind": "shutdown"}))
                await handle.writer.drain()
            with contextlib.suppress(Exception):
                handle.writer.close()

    @property
    def failed(self) -> bool:
        """True once any worker has been marked dead (pool fails closed)."""
        return self._closed or any(h.dead for h in self._handles)

    @property
    def dead_workers(self) -> "list[str]":
        """Reasons for every worker currently marked dead."""
        return [h.dead for h in self._handles if h.dead]

    # -- routing -------------------------------------------------------------

    def _fail_worker(self, handle: _WorkerHandle, kind: type, reason: str):
        """Mark a worker dead and fail its pending calls (fail closed)."""
        if handle.dead is None:
            handle.dead = reason
            handle.dead_kind = kind
        for fut in list(handle.pending.values()):
            if not fut.done():
                fut.set_exception(kind(reason))
        handle.pending.clear()
        with contextlib.suppress(Exception):
            handle.writer.close()

    async def _reader_task(self, handle: _WorkerHandle) -> None:
        """Route every inbound frame to its pending call future.

        A frame whose call id has no pending future — a duplicate ACK,
        or an ACK for a call that already timed out — is a protocol
        violation: the worker is marked dead and the pool fails closed.
        """
        while True:
            try:
                frame = await read_frame_async(handle.reader)
            except RpcProtocolError as exc:
                self._fail_worker(handle, RpcProtocolError, str(exc))
                return
            except (ConnectionError, OSError) as exc:
                self._fail_worker(
                    handle, RpcWorkerError, f"connection lost: {exc}"
                )
                return
            if frame is None:
                if handle.dead is None and (handle.pending or not self._closed):
                    self._fail_worker(
                        handle,
                        RpcWorkerError,
                        f"worker pid {handle.proc.pid} closed its connection",
                    )
                return
            header, blob = frame
            fut = handle.pending.pop(header.get("call"), None)
            if fut is None:
                self._fail_worker(
                    handle,
                    RpcProtocolError,
                    f"duplicate or unmatched ACK for call "
                    f"{header.get('call')!r} from worker pid "
                    f"{handle.proc.pid}",
                )
                return
            if fut.done():  # pragma: no cover - cancelled by timeout
                continue
            kind = header.get("kind")
            if kind == "err":
                fut.set_exception(
                    RpcWorkerError(
                        f"worker pid {handle.proc.pid} failed: "
                        f"{header.get('error')}: {header.get('message')}"
                    )
                )
            else:
                self.counters["acks"] += 1
                fut.set_result((header, blob))

    async def _call(
        self,
        handle: _WorkerHandle,
        header: dict,
        blob: bytes,
        *,
        timeout: float,
        retries: int,
    ) -> "tuple[dict, bytes]":
        """Send one frame and await its ACK with bounded retry-and-backoff.

        Each retry re-arms the wait with an exponentially longer
        deadline (the frame is not re-sent — the barrier protocol is
        not idempotent); exhausting the budget raises
        :class:`RpcTimeoutError` and the caller fails the pool closed.
        """
        if handle.dead is not None:
            raise handle.dead_kind(handle.dead)
        self._call_counter += 1
        call_id = self._call_counter
        header = dict(header, call=call_id)
        fut = asyncio.get_running_loop().create_future()
        handle.pending[call_id] = fut
        try:
            handle.writer.write(encode_frame(header, blob))
            await handle.writer.drain()
        except (ConnectionError, OSError) as exc:
            handle.pending.pop(call_id, None)
            self._fail_worker(
                handle, RpcWorkerError, f"send failed: {exc}"
            )
            raise RpcWorkerError(
                f"worker pid {handle.proc.pid} unreachable: {exc}"
            ) from None
        delay = timeout
        for attempt in range(retries + 1):
            try:
                return await asyncio.wait_for(asyncio.shield(fut), delay)
            except (asyncio.TimeoutError, TimeoutError):
                if attempt < retries:
                    self.counters["retries"] += 1
                    delay *= self.backoff
        handle.pending.pop(call_id, None)
        raise RpcTimeoutError(
            f"worker pid {handle.proc.pid} did not ACK call {call_id} "
            f"within {timeout:.2f}s x {retries + 1} attempts"
        )

    async def _heartbeat_task(self) -> None:
        """Ping idle workers; a missed deadline marks the worker dead.

        Workers with calls in flight are skipped — the ACK itself
        proves liveness, and a worker mid-kernel cannot answer pings.
        """
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            if self._closed:
                return
            for handle in self._handles:
                if handle.dead is not None or handle.pending:
                    continue
                try:
                    await self._call(
                        handle,
                        {"kind": "ping"},
                        b"",
                        timeout=self.heartbeat_timeout,
                        retries=0,
                    )
                    self.counters["heartbeats"] += 1
                except RpcTimeoutError:
                    self._fail_worker(
                        handle,
                        RpcWorkerError,
                        f"worker pid {handle.proc.pid} missed the "
                        f"{self.heartbeat_timeout:.1f}s heartbeat deadline",
                    )
                except RpcError:
                    continue

    # -- barrier dispatch ----------------------------------------------------

    def barrier(self, payloads: "list[dict | None]") -> "list[dict]":
        """One ACK barrier: send ``payloads[i]`` to worker ``i``, await all.

        Each payload is ``{"steps": [...], "arrays": {name: ndarray},
        "returns": [...]}`` (``None`` skips the worker).  Returns the
        decoded output-array dict per participating payload, in order.
        Any failure closes the pool (fail closed) and re-raises typed.
        """
        if self._closed or self._loop is None or self._loop.is_closed():
            reasons = "; ".join(self.dead_workers) or "pool shut down"
            raise RpcWorkerError(f"pool is closed: {reasons}")
        fut = asyncio.run_coroutine_threadsafe(
            self._barrier_async(payloads), self._loop
        )
        try:
            return fut.result()
        except RpcError:
            self.close()
            raise

    async def _barrier_async(self, payloads) -> "list[dict]":
        calls = []
        for handle, payload in zip(self._handles, payloads):
            if payload is None:
                continue
            arrays = {
                name: np.ascontiguousarray(a)
                for name, a in payload["arrays"].items()
            }
            meta, blob, shipped = pack_arrays(arrays, known=handle.digests)
            self.counters["digest_misses"] += len(shipped)
            self.counters["digest_hits"] += len(meta) - len(shipped)
            evict = self._plan_eviction(handle, arrays, shipped)
            header = {
                "kind": "op",
                "steps": payload["steps"],
                "arrays": meta,
                "returns": payload["returns"],
            }
            if evict:
                header["evict"] = evict
            if payload.get("dup_ack"):
                header["dup_ack"] = True
            frame_bytes = len(encode_frame(header, blob))
            self.counters["op_frames"] += 1
            self.counters["op_wire_bytes"] += frame_bytes
            calls.append(
                self._call(
                    handle,
                    header,
                    blob,
                    timeout=self.call_timeout,
                    retries=self.max_retries,
                )
            )
        replies = await asyncio.gather(*calls, return_exceptions=True)
        results: "list[dict]" = []
        first_error = None
        for reply in replies:
            if isinstance(reply, BaseException):
                if first_error is None:
                    first_error = reply
                continue
            header, blob = reply
            self.counters["op_frames"] += 1
            self.counters["op_wire_bytes"] += len(
                encode_frame(header, blob)
            )
            # A fresh per-frame cache resolves same-frame references
            # (two identical output arrays dedup inside one ACK).
            results.append(unpack_arrays(header["arrays"], blob, {}))
        if first_error is not None:
            raise first_error
        return results

    def _plan_eviction(self, handle, arrays, shipped) -> "list[str]":
        """Keep each worker's digest cache under ``cache_bytes``.

        The parent drives eviction deterministically (FIFO by first
        shipment) and tells the worker which digests to drop in the op
        frame, so both sides always agree on cache contents.
        """
        by_digest = {
            content_digest(a): int(np.ascontiguousarray(a).nbytes)
            for a in arrays.values()
        }
        for digest in shipped:
            handle.digests.add(digest)
            size = by_digest.get(digest, 0)
            handle.digest_order.append((digest, size))
            handle.cache_bytes += size
        evict: "list[str]" = []
        while (
            handle.cache_bytes > self.cache_bytes
            and len(handle.digest_order) > len(shipped)
        ):
            digest, size = handle.digest_order.pop(0)
            if digest in set(shipped):
                handle.digest_order.append((digest, size))
                continue
            handle.digests.discard(digest)
            handle.cache_bytes -= size
            evict.append(digest)
        return evict


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------


class RpcBackend(ShardedBackend):
    """Sharded execution over a socket wire protocol (see module docs).

    Accounting (capacity enforcement, exchange/byte counters, op
    counts) is inherited unchanged from
    :class:`~repro.mpc.backends.ShardedBackend`; only the ``_kernel_*``
    compute hooks are overridden, so results *and* model counters are
    bit-identical to the serial backend while kernels execute in worker
    processes across length-prefixed frames.

    Parameters
    ----------
    shard_memory:
        Per-shard capacity ``s`` in words; bound to the owning engine's
        ``machine_memory`` at attach time when ``None``.
    max_shards:
        Optional hard fleet size (as in the sharded backend).
    workers:
        Worker processes behind the wire (default 2 — wire overhead
        grows with fan-out, and certification needs at least two
        partitions).
    min_wire_items:
        Operations touching fewer words than this run on the serial
        kernels (default
        :data:`~repro.mpc.process_backend.DEFAULT_MIN_PARALLEL_ITEMS`);
        set to 0 to force every operation across the wire (the
        certification and differential tests do).
    connect_timeout:
        Seconds the pool waits for every worker to connect at startup.
    call_timeout:
        Base seconds to await one op/ACK before the retry schedule.
    max_retries:
        Bounded retry budget: extra exponentially-backed-off waits per
        call (and respawn attempts at connect time) before the typed
        :class:`RpcTimeoutError`.
    backoff:
        Multiplier applied to the deadline on each retry.
    heartbeat_interval / heartbeat_timeout:
        Idle-worker ping cadence and the pong deadline after which a
        worker is declared dead.
    cache_bytes:
        Per-worker digest-cache budget; the parent evicts FIFO beyond
        it (both sides stay agreed because eviction rides in op frames).

    Raises
    ------
    RpcTimeoutError
        Pool construction or a call exceeded its configured deadline.
    RpcWorkerError
        A worker died, failed a kernel, or missed its heartbeat.
    RpcProtocolError
        A malformed frame or duplicate ACK crossed the wire.
    """

    name = "rpc"

    def __init__(
        self,
        shard_memory: "int | None" = None,
        *,
        max_shards: "int | None" = None,
        workers: int = 2,
        min_wire_items: int = DEFAULT_MIN_PARALLEL_ITEMS,
        connect_timeout: float = 10.0,
        call_timeout: float = 30.0,
        max_retries: int = 2,
        backoff: float = 2.0,
        heartbeat_interval: float = 2.0,
        heartbeat_timeout: float = 10.0,
        cache_bytes: int = 64 * 1024 * 1024,
    ):
        super().__init__(shard_memory, max_shards=max_shards)
        self.workers = check_positive_int(workers, "workers")
        self.min_wire_items = check_nonnegative_int(
            min_wire_items, "min_wire_items"
        )
        self.connect_timeout = float(connect_timeout)
        self.call_timeout = float(call_timeout)
        self.max_retries = check_nonnegative_int(max_retries, "max_retries")
        self.backoff = float(backoff)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.cache_bytes = check_positive_int(cache_bytes, "cache_bytes")
        self._pool: "_RpcPool | None" = None
        self.workers_restarted = 0
        # Monotonic pool identity: bumps on every (re)start, including
        # explicit close(); worker-resident sketch stores snapshot it so
        # partial loss is detected parent-side before any dispatch.
        self._pool_generation = 0
        self._transport = dict.fromkeys(
            (
                "op_frames",
                "op_wire_bytes",
                "acks",
                "digest_hits",
                "digest_misses",
                "heartbeats",
                "retries",
            ),
            0,
        )

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "RpcBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop the pool: loop thread, workers, and the socket directory.

        Idempotent; counters stay readable, and the pool restarts
        lazily on the next wire operation, so a closed backend remains
        usable (the recovery path the fault suite exercises).
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def reset(self) -> None:
        """Clear run counters; the pool and worker digest caches survive."""
        super().reset()
        for key in self._transport:
            self._transport[key] = 0
        self.workers_restarted = 0

    def _ensure_pool(self) -> _RpcPool:
        """The live pool, (re)started on demand after close or failure."""
        if self._pool is not None and self._pool.failed:
            self._pool.close()
            self._pool = None
            self.workers_restarted += 1
        if self._pool is None:
            pool = _RpcPool(
                self.workers,
                connect_timeout=self.connect_timeout,
                call_timeout=self.call_timeout,
                max_retries=self.max_retries,
                backoff=self.backoff,
                heartbeat_interval=self.heartbeat_interval,
                heartbeat_timeout=self.heartbeat_timeout,
                cache_bytes=self.cache_bytes,
                counters=self._transport,
            )
            pool.start()
            self._pool = pool
            self._pool_generation += 1
        return self._pool

    # -- reporting -----------------------------------------------------------

    def transport_stats(self) -> dict:
        """The live transport telemetry block (see module docs)."""
        return {
            **self._transport,
            "workers_restarted": self.workers_restarted,
        }

    def dead_workers(self) -> "list[str]":
        """Reasons for workers currently marked dead (empty when healthy)."""
        if self._pool is None:
            return []
        return self._pool.dead_workers

    def stats(self):
        """Sharded counters plus pool size and wire telemetry."""
        snapshot = super().stats()
        snapshot.workers = self.workers
        snapshot.transport = self.transport_stats()
        return snapshot

    # -- partitioning (identical semantics to the process backend) -----------

    def _use_wire(self, n: int) -> bool:
        return n > 0 and n >= self.min_wire_items

    def _blocks(self, n: int) -> "list[tuple[int, int]]":
        """Shard-aligned position blocks: worker ``w`` owns the
        ``ceil(shard_count / workers)`` consecutive shards of block ``w``.
        """
        s = self._s
        shards = max(1, math.ceil(n / s))
        per_worker = math.ceil(shards / min(self.workers, shards))
        blocks = []
        for w in range(self.workers):
            lo = w * per_worker * s
            if lo >= n:
                break
            blocks.append((lo, min(n, (w + 1) * per_worker * s)))
        return blocks

    def _key_bounds(self, keys: np.ndarray) -> "list[tuple]":
        """Splitter-delimited key ranges for sample sort (identical
        construction to the process backend, so partitions — and
        therefore every assembled result — match it bit for bit).
        """
        buckets = max(1, min(self.workers, self.shards_for(int(keys.shape[0]))))
        if buckets == 1:
            return [(None, None)]
        step = max(1, keys.shape[0] // (buckets * 64))
        sample = np.sort(keys[::step], kind="stable")
        positions = [(sample.shape[0] * i) // buckets for i in range(1, buckets)]
        splitters = np.unique(sample[positions])
        bounds = [None, *splitters.tolist(), None]
        return list(zip(bounds[:-1], bounds[1:]))

    @staticmethod
    def _partitionable(keys: np.ndarray) -> bool:
        """Key dtypes the range partition handles exactly; anything else
        falls back to the serial kernel (as in the process backend).
        """
        if keys.dtype.kind in "iub":
            return True
        if keys.dtype.kind == "f":
            return bool(np.isfinite(keys).all())
        return False

    @staticmethod
    def _wire_safe(*arrays: np.ndarray) -> bool:
        """True iff every array is plain binary data (no object dtypes)."""
        return not any(array.dtype.hasobject for array in arrays)

    @staticmethod
    def _json_bound(value):
        """A splitter bound as a JSON scalar (numpy scalars intact)."""
        if value is None:
            return None
        if isinstance(value, (int, float)):
            return value
        return value.item()

    # -- wire kernels --------------------------------------------------------

    def _kernel_search(self, table: np.ndarray, queries: np.ndarray):
        n = int(queries.shape[0])
        if (
            not self._use_wire(n)
            or queries.ndim != 1
            or queries.dtype.kind not in "iu"
            or table.ndim > 2
            or not self._wire_safe(table)
        ):
            return super()._kernel_search(table, queries)
        blocks = self._blocks(n)
        payloads = [
            {
                "steps": [
                    {
                        "op": "search",
                        "inputs": ["table", "queries"],
                        "outputs": ["found"],
                        "params": {"lo": lo, "hi": hi},
                    }
                ],
                "arrays": {"table": table, "queries": queries},
                "returns": ["found"],
            }
            for lo, hi in blocks
        ]
        replies = self._ensure_pool().barrier(self._pad(payloads))
        out = np.empty((n,) + table.shape[1:], dtype=table.dtype)
        for (lo, hi), reply in zip(blocks, replies):
            out[lo:hi] = reply["found"]
        return out

    def _kernel_sort(self, values: np.ndarray, keys: np.ndarray):
        n = int(values.shape[0])
        if (
            not self._use_wire(n)
            or keys.ndim != 1
            or values.ndim > 2
            or not self._partitionable(keys)
            or not self._wire_safe(values)
        ):
            return super()._kernel_sort(values, keys)
        bounds = self._key_bounds(keys)
        payloads = [
            {
                "steps": [
                    {
                        "op": "sort",
                        "inputs": ["keys", "values"],
                        "outputs": ["order", "sorted", "offset"],
                        "params": {
                            "lo": self._json_bound(lo),
                            "hi": self._json_bound(hi),
                        },
                    }
                ],
                "arrays": {"keys": keys, "values": values},
                "returns": ["order", "sorted", "offset"],
            }
            for lo, hi in bounds
        ]
        replies = self._ensure_pool().barrier(self._pad(payloads))
        out_values = np.empty_like(values)
        out_order = np.empty(n, dtype=np.int64)
        for reply in replies:
            off = int(reply["offset"][0])
            seg = reply["order"]
            out_order[off : off + seg.shape[0]] = seg
            out_values[off : off + seg.shape[0]] = reply["sorted"]
        return out_values, out_order

    def _kernel_reduce(self, keys: np.ndarray, values: np.ndarray, op: str):
        n = int(keys.shape[0])
        if (
            not self._use_wire(n)
            or keys.ndim != 1
            or values.ndim > 2
            or not self._partitionable(keys)
            or not self._wire_safe(values)
        ):
            return super()._kernel_reduce(keys, values, op)
        bounds = self._key_bounds(keys)
        payloads = [
            {
                "steps": [
                    {
                        "op": "reduce",
                        "inputs": ["keys", "values"],
                        "outputs": ["order", "unique", "reduced", "offset"],
                        "params": {
                            "lo": self._json_bound(lo),
                            "hi": self._json_bound(hi),
                            "op": op,
                        },
                    }
                ],
                "arrays": {"keys": keys, "values": values},
                "returns": ["order", "unique", "reduced", "offset"],
            }
            for lo, hi in bounds
        ]
        replies = self._ensure_pool().barrier(self._pad(payloads))
        out_order = np.empty(n, dtype=np.int64)
        uniques = []
        reduceds = []
        for reply in replies:
            off = int(reply["offset"][0])
            seg = reply["order"]
            out_order[off : off + seg.shape[0]] = seg
            uniques.append(reply["unique"])
            reduceds.append(reply["reduced"])
        # Key ranges are disjoint and ascending, so concatenating the
        # per-bucket unique/reduced slices yields the global result.
        unique = np.concatenate(uniques) if uniques else keys[:0]
        reduced = np.concatenate(reduceds) if reduceds else values[:0]
        return unique.astype(keys.dtype, copy=False), reduced, out_order

    def _kernel_min_label(
        self, labels: np.ndarray, send: np.ndarray, recv: np.ndarray
    ):
        n = int(labels.shape[0]) + int(send.shape[0])
        if (
            not self._use_wire(n)
            or labels.ndim != 1
            or send.ndim != 1
            or not self._wire_safe(labels)
        ):
            return super()._kernel_min_label(labels, send, recv)
        pos_blocks = self._blocks(int(send.shape[0]))
        label_blocks = self._blocks(int(labels.shape[0]))
        payloads = []
        for w in range(max(len(pos_blocks), len(label_blocks))):
            steps = []
            returns = []
            if w < len(pos_blocks):
                lo, hi = pos_blocks[w]
                steps.append(
                    {
                        "op": "gather_incoming",
                        "inputs": ["labels", "send"],
                        "outputs": ["incoming"],
                        "params": {"lo": lo, "hi": hi},
                    }
                )
                returns.append("incoming")
            if w < len(label_blocks):
                lo, hi = label_blocks[w]
                steps.append(
                    {
                        "op": "min_fold",
                        "inputs": ["labels", "send", "recv"],
                        "outputs": ["folded"],
                        "params": {"lo": lo, "hi": hi},
                    }
                )
                returns.append("folded")
            payloads.append(
                {
                    "steps": steps,
                    "arrays": {"labels": labels, "send": send, "recv": recv},
                    "returns": returns,
                }
            )
        replies = self._ensure_pool().barrier(self._pad(payloads))
        incoming = np.empty(send.shape, dtype=labels.dtype)
        new_labels = np.empty_like(labels)
        for w, reply in enumerate(replies):
            if w < len(pos_blocks):
                lo, hi = pos_blocks[w]
                incoming[lo:hi] = reply["incoming"]
            if w < len(label_blocks):
                lo, hi = label_blocks[w]
                new_labels[lo:hi] = reply["folded"]
        return new_labels, incoming

    def _kernel_csr_min_label(
        self, labels: np.ndarray, indptr: np.ndarray, indices: np.ndarray
    ):
        n = int(labels.shape[0]) + int(indices.shape[0])
        if (
            not self._use_wire(n)
            or labels.ndim != 1
            or indices.ndim != 1
            or not self._wire_safe(labels)
        ):
            return super()._kernel_csr_min_label(labels, indptr, indices)
        pos_blocks = self._blocks(int(indices.shape[0]))
        label_blocks = self._blocks(int(labels.shape[0]))
        payloads = []
        for w in range(max(len(pos_blocks), len(label_blocks))):
            steps = []
            returns = []
            if w < len(pos_blocks):
                lo, hi = pos_blocks[w]
                steps.append(
                    {
                        # The generic gather reads its inputs
                        # positionally, so the CSR heads ride in the
                        # "send" slot unchanged.
                        "op": "gather_incoming",
                        "inputs": ["labels", "indices"],
                        "outputs": ["incoming"],
                        "params": {"lo": lo, "hi": hi},
                    }
                )
                returns.append("incoming")
            if w < len(label_blocks):
                lo, hi = label_blocks[w]
                steps.append(
                    {
                        "op": "csr_min_fold",
                        "inputs": ["labels", "indptr", "indices"],
                        "outputs": ["folded"],
                        "params": {"lo": lo, "hi": hi},
                    }
                )
                returns.append("folded")
            payloads.append(
                {
                    "steps": steps,
                    # The frozen CSR arrays hash to the same content
                    # digest every level, so after the first round they
                    # cross the wire as bare references per worker.
                    "arrays": {
                        "labels": labels,
                        "indptr": indptr,
                        "indices": indices,
                    },
                    "returns": returns,
                }
            )
        replies = self._ensure_pool().barrier(self._pad(payloads))
        incoming = np.empty(indices.shape, dtype=labels.dtype)
        new_labels = np.empty_like(labels)
        for w, reply in enumerate(replies):
            if w < len(pos_blocks):
                lo, hi = pos_blocks[w]
                incoming[lo:hi] = reply["incoming"]
            if w < len(label_blocks):
                lo, hi = label_blocks[w]
                new_labels[lo:hi] = reply["folded"]
        return new_labels, incoming

    # -- sketch residency (worker-resident partials) --------------------------

    def sketch_residency(self) -> int:
        """Start the pool if needed and return its generation stamp.

        A :class:`~repro.sketch.sharded.SketchPartialStore` created
        against this backend records the stamp; every later sketch op
        re-checks it, so partials lost to a pool restart fail loudly
        (typed :class:`RpcWorkerError`) instead of silently resetting.
        """
        self._ensure_pool()
        return self._pool_generation

    def _check_residency(self, store) -> None:
        """Raise if ``store``'s resident partials predate the live pool."""
        if store.residency != self._pool_generation:
            raise RpcWorkerError(
                "worker-resident sketch partials were lost to a pool "
                "restart; rebuild the sketch"
            )

    def _sketch_assignment(self, store) -> "list[list[int]]":
        """Shard indices per worker: contiguous blocks, same construction
        as the process backend's shard-aligned position blocks."""
        shard_count = len(store.partials)
        per_worker = math.ceil(shard_count / min(self.workers, shard_count))
        groups = []
        for w in range(self.workers):
            lo = w * per_worker
            if lo >= shard_count:
                break
            groups.append(list(range(lo, min(shard_count, lo + per_worker))))
        return groups

    def _sketch_step_params(self, store, shard: int) -> dict:
        params = store.params
        part = store.partials[shard]
        rows = int(params["row_coeffs"].shape[1])
        return {
            "key": store.token,
            "shard": shard,
            "vlo": part.vlo,
            "vhi": part.vhi,
            "n": params["n"],
            "levels": params["levels"],
            "cols": params["cols"],
            "rounds": int(params["bases"].shape[0]),
            "cells": params["levels"] * rows * params["cols"],
        }

    def _kernel_sketch_update(self, store, edges, weights) -> int:
        """Ship one update batch to the worker-resident shard partials.

        One frame per worker, one ``sketch_update`` step per owned
        shard; the hash coefficient arrays ride along digest-deduped
        (bare references after the first batch), so a warm stream ships
        only the edges and weights.  Partials never cross the wire here
        — only the per-shard applied counts come back.
        """
        if store.kind != "resident":
            return super()._kernel_sketch_update(store, edges, weights)
        pool = self._ensure_pool()
        self._check_residency(store)
        edges = np.ascontiguousarray(edges)
        weights = np.ascontiguousarray(weights)
        params = store.params
        payloads = []
        for group in self._sketch_assignment(store):
            steps = []
            returns = []
            for shard in group:
                out = f"applied_{shard}"
                steps.append({
                    "op": "sketch_update",
                    "inputs": ["edges", "weights", "level_coeffs",
                               "row_coeffs", "bases"],
                    "outputs": [out],
                    "params": self._sketch_step_params(store, shard),
                })
                returns.append(out)
            payloads.append({
                "steps": steps,
                "arrays": {
                    "edges": edges,
                    "weights": weights,
                    "level_coeffs": params["level_coeffs"],
                    "row_coeffs": params["row_coeffs"],
                    "bases": params["bases"],
                },
                "returns": returns,
            })
        replies = pool.barrier(self._pad(payloads))
        return sum(
            int(count[0]) for reply in replies for count in reply.values()
        )

    def _kernel_sketch_collect(self, store) -> "list[np.ndarray]":
        """Fetch the worker-resident partials for a decode-time merge —
        the one moment partial payloads cross the wire."""
        if store.kind != "resident":
            return super()._kernel_sketch_collect(store)
        pool = self._ensure_pool()
        self._check_residency(store)
        payloads = []
        for group in self._sketch_assignment(store):
            steps = []
            returns = []
            for shard in group:
                out = f"partial_{shard}"
                steps.append({
                    "op": "sketch_collect",
                    "inputs": [],
                    "outputs": [out],
                    "params": self._sketch_step_params(store, shard),
                })
                returns.append(out)
            payloads.append({"steps": steps, "arrays": {}, "returns": returns})
        replies = pool.barrier(self._pad(payloads))
        collected: "dict[int, np.ndarray]" = {}
        for reply in replies:
            for name, array in reply.items():
                collected[int(name.rsplit("_", 1)[1])] = array
        return [collected[i] for i in range(len(store.partials))]

    def _kernel_sketch_release(self, store) -> None:
        """Drop the worker-resident partials (best effort: a dead or
        already-replaced pool has nothing left to release)."""
        if store.kind != "resident" or self._pool is None:
            return
        if store.residency != self._pool_generation:
            return
        payloads = []
        for group in self._sketch_assignment(store):
            steps = [
                {
                    "op": "sketch_release",
                    "inputs": [],
                    "outputs": [],
                    "params": {"key": store.token, "shard": shard},
                }
                for shard in group
            ]
            payloads.append({"steps": steps, "arrays": {}, "returns": []})
        try:
            self._pool.barrier(self._pad(payloads))
        except RpcError:
            pass

    def _pad(self, payloads: list) -> list:
        """Pad a payload list with ``None`` to the pool's worker count."""
        return payloads + [None] * (self.workers - len(payloads))


#: Selecting ``backend="rpc"`` anywhere resolves to this class.
BACKENDS["rpc"] = RpcBackend
