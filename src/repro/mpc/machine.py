"""A single MPC machine with an enforced memory cap."""

from __future__ import annotations

from typing import Any, Iterable

from repro.utils.validation import check_positive_int


class MachineMemoryError(RuntimeError):
    """Raised when a machine would exceed its memory, or when a round's
    send/receive volume exceeds the per-round communication limit (which the
    MPC model ties to the memory size).

    Shared by both enforcement layers: the per-item :class:`Machine` /
    :class:`~repro.mpc.cluster.Cluster` executor and the vectorised
    :class:`~repro.mpc.backends.ShardedBackend` (whose capped fleets raise
    it when data cannot be placed within ``max_shards × shard_memory``)."""


class Machine:
    """Holds up to ``memory`` items (one item = one word in the model)."""

    def __init__(self, machine_id: int, memory: int):
        self.machine_id = machine_id
        self.memory = check_positive_int(memory, "memory")
        self._items: list[Any] = []

    @property
    def items(self) -> "list[Any]":
        """The stored items (live list — inspection only)."""
        return self._items

    @property
    def load(self) -> int:
        """Words currently stored."""
        return len(self._items)

    @property
    def free(self) -> int:
        """Words of remaining capacity."""
        return self.memory - self.load

    def store(self, item: Any) -> None:
        """Store one item; raises :class:`MachineMemoryError` when full."""
        if self.load + 1 > self.memory:
            raise MachineMemoryError(
                f"machine {self.machine_id} over memory: {self.load + 1} > {self.memory}"
            )
        self._items.append(item)

    def store_many(self, items: Iterable[Any]) -> None:
        """Store several items; raises :class:`MachineMemoryError` if the
        batch would exceed this machine's memory (nothing is stored then).
        """
        items = list(items)
        if self.load + len(items) > self.memory:
            raise MachineMemoryError(
                f"machine {self.machine_id} over memory: "
                f"{self.load + len(items)} > {self.memory}"
            )
        self._items.extend(items)

    def take_all(self) -> "list[Any]":
        """Remove and return all items (used between rounds)."""
        items, self._items = self._items, []
        return items

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Machine(id={self.machine_id}, load={self.load}/{self.memory})"
