"""Round cost model for the MPC primitives (Section 2, "Sort and search").

The paper charges rounds for exactly three primitive operations, following
Goodrich et al. [29]:

* **sort** of ``N`` key-value pairs on machines with memory ``s``:
  ``O(log_s N)`` rounds;
* **search** (annotating queries against a key-value set): ``O(log_s N)``;
* a plain **shuffle** (each machine sends/receives at most ``s`` words):
  one round.

``MPCCostModel`` makes those charges concrete with constant 1 — i.e. we
report ``ceil(log_s N)`` rounds per sort, the value the paper's ``O(1/δ)``
terms hide when ``s = N^δ``.  Benches compare *measured* round counts built
from these charges against the theorems' predictions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_nonnegative_int, check_positive_int


@dataclass(frozen=True)
class MPCCostModel:
    """Round charges for MPC primitives on machines of ``machine_memory``.

    ``machine_memory`` is the paper's ``s``; with ``s = n^δ`` a sort costs
    ``ceil(log_s N) = ceil((1/δ) · log N / log n)`` rounds, matching the
    ``O(1/δ)`` factors in every lemma statement.
    """

    machine_memory: int

    def __post_init__(self) -> None:
        check_positive_int(self.machine_memory, "machine_memory")
        if self.machine_memory < 2:
            raise ValueError("machine_memory must be >= 2 for log_s to make sense")

    def machines_for(self, total_items: int) -> int:
        """Minimum number of machines holding ``total_items`` items."""
        total_items = check_nonnegative_int(total_items, "total_items")
        return max(1, math.ceil(total_items / self.machine_memory))

    def sort_rounds(self, total_items: int) -> int:
        """Rounds to sort ``total_items`` pairs: ``ceil(log_s N)`` [29]."""
        total_items = check_nonnegative_int(total_items, "total_items")
        if total_items <= self.machine_memory:
            return 1  # fits on one machine
        return max(1, math.ceil(math.log(total_items) / math.log(self.machine_memory)))

    def search_rounds(self, total_items: int) -> int:
        """Rounds for parallel search/annotation — same as sort [29]."""
        return self.sort_rounds(total_items)

    def shuffle_rounds(self) -> int:
        """One round: every machine sends/receives at most its memory."""
        return 1

    def broadcast_rounds(self, total_items: int) -> int:
        """Rounds to broadcast an O(1)-size message to all machines holding
        ``total_items`` items (an s-ary tree over machines)."""
        machines = self.machines_for(total_items)
        if machines <= 1:
            return 1
        return max(1, math.ceil(math.log(machines) / math.log(self.machine_memory)))

    def pointer_jumping_rounds(self, path_length: int) -> int:
        """Rounds for pointer doubling over paths of ``path_length`` hops:
        ``ceil(log2 t)`` iterations (each iteration is charged separately
        for its sort/search by the caller)."""
        path_length = check_positive_int(path_length, "path_length")
        return max(1, math.ceil(math.log2(path_length)))
