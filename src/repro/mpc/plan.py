"""The round-plan IR: explicit per-round op batches for every backend.

Before this module existed, the algorithm layer issued backend
operations *eagerly*, one call at a time, and only
:class:`~repro.mpc.process_backend.ProcessBackend` knew (privately, in
its ``_dispatch``) how to fuse kernel steps into a single barrier.  The
paper's headline bound is about *rounds*, so the unit the layers
exchange should be the round, not the op: a :class:`RoundPlan` is the
serializable description of everything one MPC round asks of the data
plane — backend operations plus the machine-local transforms between
them — built by the algorithm layer through a :class:`PlanBuilder` and
submitted once.

Three things fall out of making the plan a first-class value:

* **Fusion becomes a backend decision.**  Every backend executes plans
  through :meth:`~repro.mpc.backends.ExecutionBackend.run_plan`
  (default: sequential step execution, exactly the eager behaviour).
  The process backend overrides the *analysis* only: a step whose
  output feeds a later backend op in the same plan is pinned to the
  serial kernels (:func:`parent_local_steps`), because its result must
  be materialised in the parent anyway before the next dispatch can be
  planned — so the contract stage's search→reduce pair costs one
  dispatch barrier instead of two, with bit-identical results and
  model counters (all accounting stays in the public operations).
* **Rounds become traceable.**  :class:`PlanTrace` records every plan
  an engine executed — step graph, input arrays, and outputs — and
  serializes the stream to JSON (:meth:`PlanTrace.save`).
* **Rounds become replayable.**  :func:`replay` re-executes a captured
  stream against *any* backend and verifies the outputs bit-for-bit —
  the differential seam a future async/RPC executor will be certified
  through before it ever runs the live pipeline.

Transforms — the machine-local glue between backend ops (computing
contraction keys from endpoint labels, canonicalising a relabelling) —
are *named, registered functions* (:func:`register_transform`), never
lambdas, so a plan remains serializable and a replayed plan runs the
same code the capture ran.

Run ``python -m repro.mpc.plan`` for a self-contained capture→replay
smoke check (used by CI's differential job).
"""

from __future__ import annotations

import base64
import contextlib
import hashlib
import json
import pathlib
from dataclasses import dataclass, field

import numpy as np

#: JSON schema version of trace files written by :class:`PlanTrace`.
TRACE_SCHEMA = 1

#: Backend operations a plan step may invoke, mapped to the number of
#: values the operation returns (``reduce_by_key`` and
#: ``min_label_exchange`` return pairs).
BACKEND_OPS = {
    "scatter": 1,
    "sort": 1,
    "search": 1,
    "reduce_by_key": 2,
    "min_label_exchange": 2,
    "csr_min_label": 2,
}

#: Registry of named machine-local transforms (see
#: :func:`register_transform`).
TRANSFORMS: "dict[str, callable]" = {}

#: Output arity per registered transform name (filled by
#: :func:`register_transform`).
_TRANSFORM_ARITY: "dict[str, int]" = {}


class PlanError(ValueError):
    """A malformed plan: unknown op/transform, dangling slot, bad arity."""


def register_transform(name: str, *, n_out: int = 1):
    """Decorator: register a pure machine-local transform under ``name``.

    Transforms are the glue between backend operations inside one plan:
    pure functions of numpy arrays (plus JSON-scalar keyword
    parameters) that cost no rounds — they model computation a machine
    performs on data it already holds.  They must be registered by name
    so plans stay serializable and a replayed trace runs exactly the
    code the capture ran.  ``n_out`` declares how many arrays the
    function returns (as a tuple when more than one); it becomes the
    step's output arity in every plan that uses the transform.
    Registering a taken name raises :class:`ValueError`.
    """
    if n_out < 1:
        raise ValueError(f"n_out must be >= 1, got {n_out}")

    def decorator(fn):
        if name in TRANSFORMS:
            raise ValueError(f"transform {name!r} is already registered")
        TRANSFORMS[name] = fn
        _TRANSFORM_ARITY[name] = int(n_out)
        return fn

    return decorator


@dataclass(frozen=True)
class SlotRef:
    """A symbolic reference to one named value slot inside a plan."""

    name: str


@dataclass(frozen=True)
class OpStep:
    """One step of a :class:`RoundPlan`.

    ``op`` is either a backend operation name (a key of
    :data:`BACKEND_OPS`) or the literal ``"transform"``, in which case
    ``params["name"]`` selects the registered transform.  ``inputs``
    and ``outputs`` are slot names in the plan's environment; ``params``
    holds JSON-scalar keyword arguments (e.g. ``{"op": "min"}`` for a
    reduce) so every step round-trips through the trace format.
    """

    op: str
    inputs: "tuple[str, ...]"
    outputs: "tuple[str, ...]"
    params: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        """Plain-dict form for the trace file."""
        return {
            "op": self.op,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "params": dict(self.params),
        }


@dataclass(frozen=True)
class RoundPlan:
    """Everything one MPC round asks of the data plane, as a value.

    ``bindings`` maps input slot names to the concrete arrays the round
    operates on; ``steps`` is the op/transform sequence; ``outputs``
    names the slots whose values the round hands back to the algorithm
    layer.  Plans are immutable: build them with :class:`PlanBuilder`
    and execute them with :func:`execute_plan` (or
    ``engine.run_plan(plan)``, which also feeds the engine's trace).
    """

    name: str
    steps: "tuple[OpStep, ...]"
    bindings: "dict[str, np.ndarray]"
    outputs: "tuple[str, ...]"

    def backend_ops(self) -> "list[str]":
        """The backend operation names this plan invokes, in step order."""
        return [s.op for s in self.steps if s.op != "transform"]

    def validate(self) -> "RoundPlan":
        """Check ops, transforms, arities, and slot dataflow; returns self.

        Raises
        ------
        PlanError
            Unknown op or transform, wrong output arity, a step reading
            a slot no binding or earlier step defines, or a plan output
            that nothing defines.
        """
        defined = set(self.bindings)
        for step in self.steps:
            if step.op == "transform":
                tname = step.params.get("name")
                if tname not in TRANSFORMS:
                    raise PlanError(f"unknown transform {tname!r}")
                if len(step.outputs) != _TRANSFORM_ARITY[tname]:
                    raise PlanError(
                        f"transform {tname!r} returns "
                        f"{_TRANSFORM_ARITY[tname]} values, step declares "
                        f"{len(step.outputs)} outputs"
                    )
            elif step.op not in BACKEND_OPS:
                raise PlanError(f"unknown backend op {step.op!r}")
            elif len(step.outputs) != BACKEND_OPS[step.op]:
                raise PlanError(
                    f"{step.op} returns {BACKEND_OPS[step.op]} values, "
                    f"step declares {len(step.outputs)} outputs"
                )
            missing = [s for s in step.inputs if s not in defined]
            if missing:
                raise PlanError(
                    f"step {step.op!r} reads undefined slots {missing}"
                )
            defined.update(step.outputs)
        dangling = [s for s in self.outputs if s not in defined]
        if dangling:
            raise PlanError(f"plan outputs {dangling} are never defined")
        return self


class PlanBuilder:
    """Records one round's op sequence and builds the :class:`RoundPlan`.

    Each op method accepts concrete arrays (bound as plan inputs) or
    :class:`SlotRef`\\ s produced by earlier steps, and returns the
    :class:`SlotRef`\\ (s) for its outputs — so recording a round reads
    like the eager code it replaces::

        builder = PlanBuilder("contract")
        ep = builder.search(labels, batch.ravel())
        keys, values = builder.transform("contract_keys", ep, k=k)
        unique, rep = builder.reduce_by_key(keys, values, op="min")
        edges = builder.transform("unpack_pair_keys", unique, k=k)
        plan = builder.build([edges, rep])
    """

    def __init__(self, name: str):
        self.name = str(name)
        self._steps: "list[OpStep]" = []
        self._bindings: "dict[str, np.ndarray]" = {}
        self._counter = 0

    # -- slots ---------------------------------------------------------------

    def _slot(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def bind(self, array) -> SlotRef:
        """Bind a concrete array as a plan input; returns its slot ref.

        The array object itself is stored (not copied), so read-only
        arrays keep their identity and an arena-backed backend can
        still pin them across plans.
        """
        ref = SlotRef(self._slot("in"))
        self._bindings[ref.name] = array
        return ref

    def _ref(self, value) -> SlotRef:
        return value if isinstance(value, SlotRef) else self.bind(value)

    def _add(self, op, inputs, params, n_out, prefix) -> "tuple[SlotRef, ...]":
        refs = tuple(self._ref(v) for v in inputs)
        outs = tuple(SlotRef(self._slot(prefix)) for _ in range(n_out))
        self._steps.append(
            OpStep(
                op=op,
                inputs=tuple(r.name for r in refs),
                outputs=tuple(o.name for o in outs),
                params=dict(params),
            )
        )
        return outs

    # -- backend ops ---------------------------------------------------------

    def scatter(self, values) -> SlotRef:
        """Record a ``scatter`` step; returns the placed handle's slot."""
        return self._add("scatter", (values,), {}, 1, "scattered")[0]

    def sort(self, values, order_by=None) -> SlotRef:
        """Record a global stable ``sort`` (by ``order_by`` when given)."""
        inputs = (values,) if order_by is None else (values, order_by)
        return self._add("sort", inputs, {}, 1, "sorted")[0]

    def search(self, table, queries) -> SlotRef:
        """Record a parallel ``search`` (``table[queries]``)."""
        return self._add("search", (table, queries), {}, 1, "found")[0]

    def reduce_by_key(self, keys, values, op: str = "min"):
        """Record a ``reduce_by_key``; returns ``(unique_keys, reduced)``."""
        return self._add(
            "reduce_by_key", (keys, values), {"op": op}, 2, "reduced"
        )

    def min_label_exchange(self, labels, send, recv):
        """Record one min-label level; returns ``(new_labels, incoming)``."""
        return self._add(
            "min_label_exchange", (labels, send, recv), {}, 2, "labels"
        )

    def csr_min_label(self, labels, indptr, indices):
        """Record one CSR-gather min-label level; returns
        ``(new_labels, incoming)``.

        The indptr-sliced counterpart of :meth:`min_label_exchange`:
        binding the frozen CSR arrays keeps their identity, so an
        arena-backed backend pins them across every level of a broadcast
        loop and the RPC backend ships them once per content digest.
        """
        return self._add(
            "csr_min_label", (labels, indptr, indices), {}, 2, "labels"
        )

    # -- transforms ----------------------------------------------------------

    def transform(self, name: str, *inputs, **params):
        """Record a registered machine-local transform step.

        ``name`` must be registered (see :func:`register_transform`);
        ``params`` are JSON-scalar keyword arguments.  Returns one
        :class:`SlotRef` when the transform yields a single array, or a
        tuple of refs matching :func:`transform_arity`.
        """
        n_out = transform_arity(name)
        outs = self._add(
            "transform", inputs, {"name": name, **params}, n_out, "t"
        )
        return outs if n_out > 1 else outs[0]

    # -- build ---------------------------------------------------------------

    def build(self, outputs) -> RoundPlan:
        """Freeze the recorded steps into a validated :class:`RoundPlan`.

        ``outputs`` is one :class:`SlotRef` or a sequence of them — the
        values the round returns to the algorithm layer.
        """
        if isinstance(outputs, SlotRef):
            outputs = (outputs,)
        return RoundPlan(
            name=self.name,
            steps=tuple(self._steps),
            bindings=dict(self._bindings),
            outputs=tuple(ref.name for ref in outputs),
        ).validate()


def transform_arity(name: str) -> int:
    """Number of arrays the registered transform ``name`` returns
    (declared via ``register_transform(..., n_out=)``).

    Raises :class:`PlanError` for unregistered names.
    """
    if name not in TRANSFORMS:
        raise PlanError(f"unknown transform {name!r}")
    return _TRANSFORM_ARITY[name]


# ---------------------------------------------------------------------------
# Built-in transforms (the machine-local glue the pipeline rounds use)
# ---------------------------------------------------------------------------


@register_transform("contract_keys", n_out=2)
def _t_contract_keys(endpoint_labels: np.ndarray, *, k: int):
    """Contraction dedup keys from flat endpoint labels (Definition 2).

    ``endpoint_labels`` is the flat ``(2m,)`` result of searching the
    label table with ``batch.ravel()``; returns ``(keys, values)`` for
    the min-reduce: packed ``a * k + b`` pair keys of the cross-component
    edges and their original batch indices.
    """
    pairs = np.asarray(endpoint_labels).reshape(-1, 2)
    cu, cv = pairs[:, 0], pairs[:, 1]
    idx = np.flatnonzero(cu != cv)
    a = np.minimum(cu[idx], cv[idx])
    b = np.maximum(cu[idx], cv[idx])
    return a * int(k) + b, idx


@register_transform("unpack_pair_keys")
def _t_unpack_pair_keys(keys: np.ndarray, *, k: int) -> np.ndarray:
    """Inverse of the ``contract_keys`` packing: ``(m, 2)`` label pairs."""
    keys = np.asarray(keys)
    return np.stack([keys // int(k), keys % int(k)], axis=1)


@register_transform("canonical_labels")
def _t_canonical_labels(labels: np.ndarray) -> np.ndarray:
    """Canonicalise a labelling (first-occurrence order, 0..k-1)."""
    from repro.graph.components import canonical_labels

    return canonical_labels(labels)


@register_transform("build_csr", n_out=3)
def _t_build_csr(edges: np.ndarray, *, n: int):
    """Build the frozen CSR triple ``(indptr, indices, halfedges)``.

    Machine-local by the model's accounting: the scatter step that
    placed the edge list already paid the data movement, and the CSR
    arrays are a relayout of data each machine holds.  Registered so a
    replayed trace rebuilds the index with exactly the deterministic
    layout the capture used.
    """
    from repro.graph.csr import build_csr_arrays

    return build_csr_arrays(edges, int(n))


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def run_plan_steps(backend, plan: RoundPlan, serial_steps=frozenset()):
    """Execute ``plan`` on ``backend`` step by step; returns its outputs.

    This is the shared sequential executor behind every backend's
    :meth:`~repro.mpc.backends.ExecutionBackend.run_plan`: backend-op
    steps call the backend's *public* operations (so capacity
    enforcement and every exchange/byte counter behave exactly as the
    eager code did), transform steps call the registered function
    in-process.  ``serial_steps`` is a set of step indices the backend
    wants pinned to its serial kernels (see
    :func:`parent_local_steps`); it is honoured through the backend's
    ``_serial_kernels()`` context manager when one exists and is a
    no-op otherwise.

    Raises
    ------
    PlanError
        The plan is malformed (also raised by ``plan.validate()``).
    """
    plan.validate()
    env: dict = dict(plan.bindings)
    for index, step in enumerate(plan.steps):
        args = [env[name] for name in step.inputs]
        if step.op == "transform":
            params = {k: v for k, v in step.params.items() if k != "name"}
            result = TRANSFORMS[step.params["name"]](*args, **params)
        else:
            op = getattr(backend, step.op)
            scope = (
                backend._serial_kernels()
                if index in serial_steps and hasattr(backend, "_serial_kernels")
                else contextlib.nullcontext()
            )
            with scope:
                result = op(*args, **step.params)
        values = result if isinstance(result, tuple) else (result,)
        if len(values) != len(step.outputs):
            raise PlanError(
                f"step {step.op!r} produced {len(values)} values for "
                f"{len(step.outputs)} declared outputs"
            )
        env.update(zip(step.outputs, values))
    return tuple(env[name] for name in plan.outputs)


def execute_plan(backend, plan: RoundPlan):
    """Execute ``plan`` on ``backend`` (through its ``run_plan``).

    The single entry point the algorithm layer and :func:`replay` use:
    the backend chooses its own execution strategy (sequential steps by
    default; the process backend fuses), and its ``plans`` counter
    advances.  Returns the plan's output arrays as a tuple.
    """
    return backend.run_plan(plan)


def submit_plan(plan: RoundPlan, *, engine=None, backend=None):
    """Submit one recorded round: via the engine (traced) when present.

    Algorithm-layer helper: stages receive either a full
    :class:`~repro.mpc.engine.MPCEngine` (whose ``run_plan`` also feeds
    trace capture) or a bare backend; this routes the plan accordingly.

    Raises
    ------
    ValueError
        Neither ``engine`` nor ``backend`` was provided.
    """
    if engine is not None:
        return engine.run_plan(plan)
    if backend is not None:
        return execute_plan(backend, plan)
    raise ValueError("submit_plan needs an engine or a backend")


def parent_local_steps(plan: RoundPlan) -> frozenset:
    """Backend-op steps a fusing executor should run on serial kernels.

    A backend op whose output feeds a *later backend op* in the same
    plan (directly or through any chain of transforms) must be
    materialised in the parent before that later dispatch can be
    planned — its shared-memory round-trip buys nothing, so a fusing
    backend executes it serially and saves the barrier.  This is the
    analysis that fuses the contract stage's search→reduce pair into
    one dispatch.  Ops whose outputs only feed transforms or the plan's
    outputs keep their parallel dispatch.

    Returns the set of step indices to pin to serial kernels.
    """
    pinned = set()
    for i, step in enumerate(plan.steps):
        if step.op == "transform":
            continue
        frontier = set(step.outputs)
        for j in range(i + 1, len(plan.steps)):
            later = plan.steps[j]
            if not frontier.intersection(later.inputs):
                continue
            if later.op != "transform":
                pinned.add(i)
                break
            frontier.update(later.outputs)
    return frozenset(pinned)


# ---------------------------------------------------------------------------
# Trace capture
# ---------------------------------------------------------------------------


def _as_array(value) -> np.ndarray:
    """Coerce a plan value (ndarray or backend handle) to an ndarray."""
    return np.asarray(getattr(value, "data", value))


def _encode_array(array: np.ndarray) -> dict:
    """JSON-able encoding of one array (dtype + shape + base64 payload)."""
    array = np.ascontiguousarray(_as_array(array))
    return {
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def _decode_array(doc: dict) -> np.ndarray:
    """Inverse of :func:`_encode_array`."""
    raw = base64.b64decode(doc["data"].encode("ascii"))
    return np.frombuffer(raw, dtype=np.dtype(doc["dtype"])).reshape(
        doc["shape"]
    ).copy()


def content_digest(array) -> str:
    """Content digest of one array: dtype + shape + raw bytes, truncated.

    This is the identity every array-dedup layer shares: trace files
    store each distinct array once under its digest, the RPC backend
    ships an array to a worker only the first time a digest appears
    (:mod:`repro.mpc.rpc`), and the connectivity service keys its
    label cache by the digest of the resident edge array
    (:func:`graph_digest`).  Two arrays collide iff they are
    bit-identical in dtype, shape, and payload.
    """
    array = _as_array(array)
    if array.ndim:  # ascontiguousarray would flatten a 0-d to (1,)
        array = np.ascontiguousarray(array)
    h = hashlib.sha256()
    h.update(array.dtype.str.encode())
    h.update(repr(array.shape).encode())
    h.update(array.tobytes())
    return h.hexdigest()[:24]


#: Internal alias kept for the trace recorder's call sites.
_digest = content_digest


def graph_digest(n: int, edges) -> str:
    """Cache key for one concrete graph: vertex count + edge-array digest.

    The key is exact, not canonical: it hashes the edge array as given
    (order and multiplicity included), because every downstream compute
    — the pipeline's batches, the RNG consumption, the resulting label
    array — is a function of that exact array.  Two graphs share a key
    iff a cached result for one is bit-valid for the other.
    """
    edges = np.ascontiguousarray(np.asarray(edges, dtype=np.int64).reshape(-1, 2))
    return f"g{int(n)}-{content_digest(edges)}"


class PlanTrace:
    """Recorder for the plan stream one engine executes.

    Attach via ``MPCEngine(..., trace=path)`` (the engine records every
    ``run_plan`` and saves on ``close()``), or construct directly and
    call :meth:`record` yourself.  Arrays are stored once per content
    digest, so the loop-invariant incidence arrays of the broadcast
    stage do not bloat the file.  ``machine_memory`` and ``backend``
    are stamped by the engine so :func:`replay` can reconstruct an
    equivalent fleet (identical shard counts ⇒ identical exchange and
    byte counters).
    """

    def __init__(self, path: "str | pathlib.Path | None" = None):
        self.path = pathlib.Path(path) if path is not None else None
        self.machine_memory: "int | None" = None
        self.backend: "str | None" = None
        self.entries: "list[dict]" = []
        self._arrays: "dict[str, dict]" = {}

    def __len__(self) -> int:
        return len(self.entries)

    def _intern(self, value) -> str:
        digest = _digest(value)
        if digest not in self._arrays:
            self._arrays[digest] = _encode_array(value)
        return digest

    def record(self, plan: RoundPlan, outputs) -> None:
        """Append one executed plan and the outputs it produced."""
        self.entries.append(
            {
                "name": plan.name,
                "steps": [s.to_json() for s in plan.steps],
                "bindings": {
                    slot: self._intern(arr)
                    for slot, arr in plan.bindings.items()
                },
                "outputs": list(plan.outputs),
                "results": [self._intern(v) for v in outputs],
            }
        )

    def to_json(self) -> dict:
        """The full trace document (see :data:`TRACE_SCHEMA`)."""
        return {
            "schema": TRACE_SCHEMA,
            "machine_memory": self.machine_memory,
            "backend": self.backend,
            "arrays": dict(self._arrays),
            "plans": list(self.entries),
        }

    def save(self, path: "str | pathlib.Path | None" = None) -> pathlib.Path:
        """Write the trace JSON to ``path`` (default: the attach path).

        Raises
        ------
        ValueError
            No path was given here or at construction.
        """
        target = pathlib.Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("PlanTrace has no path; pass one to save()")
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_json()) + "\n")
        return target


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying a captured plan stream on a backend.

    ``outputs`` holds each replayed plan's output tuple (in stream
    order), ``recorded`` the outputs the capture stored, ``stats`` the
    replay backend's counter snapshot, and ``backend_name`` which
    backend executed the replay.  ``mismatches`` lists
    ``"plan-index/slot"`` strings for outputs that differed from the
    capture — empty on a faithful replay.
    """

    outputs: "list[tuple]"
    recorded: "list[tuple]"
    stats: object
    backend_name: str
    mismatches: "list[str]"

    @property
    def ok(self) -> bool:
        """True iff every replayed output matched the capture bit-for-bit."""
        return not self.mismatches


def load_trace(path: "str | pathlib.Path") -> dict:
    """Load and schema-check a trace file written by :class:`PlanTrace`.

    Raises
    ------
    ValueError
        Unsupported schema version or missing sections.
    """
    doc = json.loads(pathlib.Path(path).read_text())
    if doc.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"unsupported trace schema {doc.get('schema')!r} "
            f"(expected {TRACE_SCHEMA})"
        )
    for key in ("arrays", "plans"):
        if key not in doc:
            raise ValueError(f"trace file missing {key!r} section")
    return doc


def _plan_from_json(entry: dict, arrays: "dict[str, np.ndarray]") -> RoundPlan:
    """Rebuild one RoundPlan from a trace entry + decoded array table."""
    return RoundPlan(
        name=entry["name"],
        steps=tuple(
            OpStep(
                op=s["op"],
                inputs=tuple(s["inputs"]),
                outputs=tuple(s["outputs"]),
                params=dict(s["params"]),
            )
            for s in entry["steps"]
        ),
        bindings={
            slot: arrays[digest] for slot, digest in entry["bindings"].items()
        },
        outputs=tuple(entry["outputs"]),
    )


def replay(
    path: "str | pathlib.Path",
    backend=None,
    *,
    verify: bool = True,
) -> ReplayResult:
    """Re-execute a captured plan stream against ``backend``.

    Parameters
    ----------
    path:
        A trace file written by :class:`PlanTrace` / ``MPCEngine(trace=…)``.
    backend:
        Backend name, :class:`~repro.mpc.backends.ExecutionBackend`
        instance, or ``None`` to rebuild the backend the capture ran on.
        Named backends are constructed fresh, attached to the trace's
        ``machine_memory`` (so sharded fleets reproduce the captured
        exchange/byte counters exactly), and closed before returning;
        instances stay the caller's to manage.
    verify:
        When true (default), raise :class:`ValueError` on the first
        plan whose outputs differ bit-for-bit from the capture.  When
        false, differences are collected in ``ReplayResult.mismatches``.

    Returns
    -------
    ReplayResult
        Replayed outputs, recorded outputs, and the replay backend's
        counter snapshot.
    """
    from repro.mpc.backends import ExecutionBackend, make_backend

    doc = load_trace(path)
    arrays = {d: _decode_array(enc) for d, enc in doc["arrays"].items()}
    owns = not isinstance(backend, ExecutionBackend)
    resolved = make_backend(backend if backend is not None else doc["backend"])
    if resolved is None:  # trace predates backend stamping
        raise ValueError("trace names no backend; pass one explicitly")
    if doc.get("machine_memory"):
        resolved.attach(int(doc["machine_memory"]))
    outputs: "list[tuple]" = []
    recorded: "list[tuple]" = []
    mismatches: "list[str]" = []
    try:
        for index, entry in enumerate(doc["plans"]):
            plan = _plan_from_json(entry, arrays)
            replayed = execute_plan(resolved, plan)
            expected = tuple(arrays[d] for d in entry["results"])
            outputs.append(replayed)
            recorded.append(expected)
            for slot, got, want in zip(plan.outputs, replayed, expected):
                if not np.array_equal(_as_array(got), _as_array(want)):
                    label = f"{index}:{plan.name}/{slot}"
                    if verify:
                        raise ValueError(
                            f"replay diverged from capture at plan {label}"
                        )
                    mismatches.append(label)
        stats = resolved.stats()
    finally:
        if owns:
            resolved.close()
    return ReplayResult(
        outputs=outputs,
        recorded=recorded,
        stats=stats,
        backend_name=resolved.name,
        mismatches=mismatches,
    )


# ---------------------------------------------------------------------------
# Smoke entry point (CI: capture on one backend, replay on the others)
# ---------------------------------------------------------------------------


def _smoke(argv: "list[str] | None" = None) -> int:  # pragma: no cover
    """Capture a pipeline trace and replay it across backends (CI gate).

    Exercised by ``tools/trace_replay_smoke.py`` in CI's differential
    job rather than by the unit suite (which covers the same seam via
    ``tests/test_plan.py``).
    """
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(
        prog="python -m repro.mpc.plan",
        description="Trace capture + replay smoke check.",
    )
    parser.add_argument("--n", type=int, default=512, help="graph size")
    parser.add_argument(
        "--capture", default="sharded", help="backend to capture the trace on"
    )
    parser.add_argument(
        "--replay",
        nargs="+",
        default=["local", "process"],
        help="backends to replay the trace on",
    )
    parser.add_argument(
        "--out", default=None, help="trace path (default: a temp file)"
    )
    parser.add_argument(
        "--engine",
        default="paper",
        help="connectivity engine whose plan stream is captured "
        "(any repro.engines name; default: paper)",
    )
    parser.add_argument(
        "--csr",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="force the CSR fast path on/off for capture and replay "
        "(default: the engine default)",
    )
    args = parser.parse_args(argv)

    import repro
    from repro.bench.workloads import Workload
    from repro.engines import get_engine
    from repro.graph.csr import use_csr
    from repro.mpc import MPCEngine, make_backend

    graph = Workload("permutation_regular", args.n, {"degree": 6}).build(7)
    with contextlib.ExitStack() as stack:
        stack.enter_context(use_csr(args.csr))
        if args.out is not None:
            out = args.out
        else:
            tmpdir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-trace-")
            )
            out = str(pathlib.Path(tmpdir) / "trace.json")
        config = repro.PipelineConfig(
            delta=0.5, expander_degree=4, max_walk_length=32, oversample=4,
            max_phases=2,
        )
        backend = make_backend(args.capture)
        with MPCEngine.for_delta(
            graph.n + graph.m, config.delta, backend=backend, trace=out
        ) as engine:
            # Through the engine registry so any algorithm's plan stream
            # (paper pipeline, liu_tarjan, exponentiation) gets the same
            # capture/replay gate; "paper" is bit-identical to the legacy
            # mpc_connected_components(engine=MPCEngine) path.
            result = get_engine(args.engine).run(
                graph, 0.1, config=config, rng=7, mpc=engine
            )
            captured = engine.backend.stats()
        print(
            f"captured {len(engine.trace)} plans [{args.engine}] on "
            f"{args.capture!r} -> {out} "
            f"({result.rounds} rounds, {captured.exchanges} exchanges)"
        )
        for name in args.replay:
            if name == "rpc":
                # Force every op through the wire: the default
                # min_wire_items threshold would keep smoke-scale ops on
                # the serial kernels and certify nothing.
                from repro.mpc.rpc import RpcBackend

                rpc = RpcBackend(workers=2, min_wire_items=0)
                try:
                    replayed = replay(out, backend=rpc)
                finally:
                    rpc.close()
            else:
                replayed = replay(out, backend=name)
            assert replayed.ok
            # The accounting-only local backend legitimately reports zero
            # exchanges; every enforced backend must reproduce the
            # captured counters exactly.
            expected = 0 if name == "local" else captured.exchanges
            assert replayed.stats.exchanges == expected, (
                f"replay on {name!r}: {replayed.stats.exchanges} exchanges "
                f"vs {expected} expected"
            )
            print(
                f"replayed {len(replayed.outputs)} plans on {name!r}: "
                f"bit-identical outputs, {replayed.stats.exchanges} exchanges"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI step
    raise SystemExit(_smoke())
