"""Core per-round operations executed faithfully on the Cluster.

The production pipeline charges its engine 2 shuffles per leader election
and 1 per broadcast level.  These implementations certify those charges by
actually running the operations on memory-capped machines:

* :func:`distributed_leader_election` — 2 communication rounds, using
  shared randomness for the leader coins (every machine can evaluate any
  vertex's coin locally from the common seed, the standard MPC device also
  used by Prop. 8.1's sketches);
* :func:`distributed_min_label_round` — one exchange per broadcast level:
  edge copies are co-located with their endpoint's *home* machine, so
  label candidates are computed locally and shipped to the other
  endpoint's home.

Layout convention: vertex ``v``'s state lives on machine
``home(v) = v % machine_count``; each edge keeps a copy at both endpoint
homes.  Both operations preserve that layout, so they compose round by
round.

The one-exchange-per-level property certified here is what
:meth:`repro.mpc.backends.ShardedBackend.min_label_exchange` assumes when
the pipeline's broadcast stage runs one fused shipment per level on the
sharded data plane.
"""

from __future__ import annotations

import numpy as np

from repro.mpc.cluster import Cluster
from repro.sketch.hashing import KWiseHash
from repro.utils.validation import check_probability


def scatter_graph_state(
    cluster: Cluster, n: int, edges: np.ndarray, labels: "np.ndarray | None" = None
) -> None:
    """Place vertex labels and duplicated edge copies at endpoint homes."""
    if labels is None:
        labels = np.arange(n, dtype=np.int64)
    machine_count = cluster.machine_count
    items = []
    for v in range(n):
        items.append((v % machine_count, ("label", (v, int(labels[v])))))
    for u, v in np.asarray(edges, dtype=np.int64).reshape(-1, 2).tolist():
        items.append((u % machine_count, ("edge", (u, v))))
        items.append((v % machine_count, ("edge", (v, u))))
    # Initial placement round: deliver everything to homes.
    staged: "list[list]" = [[] for _ in range(machine_count)]
    for dest, payload in items:
        staged[dest].append(payload)
    for machine, payload in zip(cluster.machines, staged):
        machine.store_many(payload)


def distributed_leader_election(
    cluster: Cluster,
    n: int,
    edges: np.ndarray,
    leader_prob: float,
    seed: int,
) -> "dict[int, int]":
    """Run one ``LeaderElection`` on the cluster in exactly 2 rounds.

    Returns ``{non_leader: chosen_leader}`` for every matched non-leader.
    Leader coins come from the shared seed; candidate priorities from a
    second shared hash, so the uniform choice is reproducible.
    """
    leader_prob = check_probability(leader_prob, "leader_prob")
    machine_count = cluster.machine_count
    coin = KWiseHash(3, rng=seed)
    priority = KWiseHash(3, rng=seed + 1)

    def is_leader(v: int) -> bool:
        return coin.uniform_floats(np.array([v]))[0] < leader_prob

    scatter_graph_state(cluster, n, edges)

    # Round 1: for each edge copy (w, x) at home(w): if w is a non-leader
    # and x a leader, ship the candidate (w, x, priority) to home(w) —
    # it is already there, but state must be re-sent to survive the round.
    def propose(mid: int, local):
        out = []
        for tag, payload in local:
            out.append((mid, (tag, payload)))
            if tag == "edge":
                w, x = payload
                if w != x and not is_leader(w) and is_leader(x):
                    pri = int(priority.values(np.array([w * n + x]))[0])
                    out.append((w % machine_count, ("candidate", (w, x, pri))))
        return out

    cluster.round(propose)

    # Round 2: homes select the minimum-priority candidate per vertex.
    def select(mid: int, local):
        best: "dict[int, tuple[int, int]]" = {}
        passthrough = []
        for tag, payload in local:
            if tag == "candidate":
                w, x, pri = payload
                if w not in best or (pri, x) < best[w]:
                    best[w] = (pri, x)
            else:
                passthrough.append((mid, (tag, payload)))
        for w, (pri, x) in best.items():
            passthrough.append((mid, ("matched", (w, x))))
        return passthrough

    cluster.round(select)

    matches: "dict[int, int]" = {}
    for machine in cluster.machines:
        for tag, payload in machine.items:
            if tag == "matched":
                w, x = payload
                matches[w] = x
    return matches


def distributed_min_label_round(cluster: Cluster, n: int) -> "dict[int, int]":
    """One min-label broadcast level on pre-scattered graph state.

    Exactly 1 communication round: edge copies read their endpoint's label
    locally (co-located at the home) and ship it to the other endpoint's
    home, which takes the minimum.  Returns the updated labels.
    """
    machine_count = cluster.machine_count

    def level(mid: int, local):
        labels = {v: lab for tag, (v, lab) in
                  ((t, p) for t, p in local if t == "label")}
        out = []
        for tag, payload in local:
            if tag == "edge":
                w, x = payload
                out.append((mid, (tag, payload)))
                if w in labels:
                    out.append((x % machine_count, ("offer", (x, labels[w]))))
            elif tag == "label":
                out.append((mid, (tag, payload)))
        return out

    cluster.round(level)

    # Fold offers into labels locally (no communication).
    def fold(mid: int, local):
        labels: "dict[int, int]" = {}
        edges = []
        for tag, payload in local:
            if tag == "label":
                v, lab = payload
                labels[v] = min(labels.get(v, lab), lab)
            elif tag == "offer":
                v, lab = payload
                labels[v] = min(labels.get(v, lab), lab)
            else:
                edges.append((mid, (tag, payload)))
        out = edges
        out.extend((mid, ("label", (v, lab))) for v, lab in labels.items())
        return out

    cluster.round(fold)

    labels: "dict[int, int]" = {}
    for machine in cluster.machines:
        for tag, payload in machine.items:
            if tag == "label":
                v, lab = payload
                labels[v] = min(labels.get(v, lab), lab)
    return labels


def distributed_components(
    cluster_factory,
    n: int,
    edges: np.ndarray,
    *,
    max_levels: "int | None" = None,
) -> "tuple[np.ndarray, int]":
    """Full min-label connectivity on the faithful executor.

    ``cluster_factory()`` builds a fresh cluster per level (state is
    re-scattered so the memory accounting of every level is identical).
    Returns ``(labels, levels)``.
    """
    if max_levels is None:
        max_levels = n + 1
    labels = np.arange(n, dtype=np.int64)
    for level_index in range(max_levels):
        cluster = cluster_factory()
        scatter_graph_state(cluster, n, edges, labels)
        updated = distributed_min_label_round(cluster, n)
        new_labels = labels.copy()
        for v, lab in updated.items():
            new_labels[v] = lab
        if np.array_equal(new_labels, labels):
            return labels, level_index
        labels = new_labels
    raise RuntimeError("distributed components did not converge")
