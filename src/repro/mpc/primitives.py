"""MPC primitives executed faithfully on a :class:`Cluster`.

These are the building blocks the paper inherits from Goodrich et al. [29]
(Section 2: "Sort and search in the MPC model"):

* :func:`distributed_sort` — sample sort: O(1) exchanges when the machine
  count is at most the machine memory (the ``s = N^δ`` regime);
* :func:`distributed_search` — annotate queries with the key-value pairs
  they reference, via hash partitioning;
* :func:`reduce_by_key` — the shuffle underlying contractions and
  leader-election tallies.

The production algorithms charge these costs on an
:class:`~repro.mpc.engine.MPCEngine`; the versions here exist so the tests
can certify that each charged primitive actually executes within the
declared number of rounds under hard memory limits.

Each primitive has a vectorised counterpart on
:class:`~repro.mpc.backends.ShardedBackend` (``sort``, ``search``,
``reduce_by_key``) that runs the same operation over partitioned numpy
arrays with the same caps enforced — that is the layer the full pipeline
executes on; ``tests/test_mpc_cluster.py`` certifies the two against each
other.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Hashable, Iterable

from repro.mpc.cluster import Cluster


def _identity(x: Any) -> Any:
    return x


def distributed_sort(
    cluster: Cluster,
    items: Iterable[Any],
    *,
    key: Callable[[Any], Any] = _identity,
) -> "list[Any]":
    """Sort ``items`` across ``cluster`` with sample sort; returns the global
    order (machine 0's items, then machine 1's, ...).

    Executes exactly 3 communication rounds: sample collection, splitter
    broadcast, and routing.  Requires modest slack between total data and
    total capacity, as any sample sort does.
    """
    items = list(items)
    if not items:
        return []
    machine_count = cluster.machine_count
    cluster.scatter([("item", x) for x in items])

    # Round 1: local sort; send samples to machine 0, keep items.  The
    # sample budget is capped so machine 0's inbox (its own items plus all
    # samples) stays within memory.  Sample *positions* are random — with
    # deterministic quantile positions every machine would sample the same
    # global quantiles and the splitters would cluster.
    samples_per_machine = max(1, cluster.memory // (3 * machine_count))

    def sample_round(mid: int, local: "list[Any]") -> "list[tuple[int, Any]]":
        import numpy as _np

        values = sorted((x[1] for x in local), key=key)
        out = [(mid, ("item", v)) for v in values]
        if values:
            rng = _np.random.default_rng(0x5A17 + mid)
            count = min(samples_per_machine, len(values))
            positions = rng.choice(len(values), size=count, replace=False)
            out.extend((0, ("sample", key(values[p]))) for p in positions)
        return out

    cluster.round(sample_round)

    # Round 2: machine 0 picks splitters and broadcasts them.
    def splitter_round(mid: int, local: "list[Any]") -> "list[tuple[int, Any]]":
        out = [(mid, x) for x in local if x[0] == "item"]
        if mid == 0:
            samples = sorted(x[1] for x in local if x[0] == "sample")
            if samples:
                stride = max(1, len(samples) // machine_count)
                splitters = tuple(samples[stride::stride][: machine_count - 1])
            else:
                splitters = ()
            out.extend((dest, ("splitters", splitters)) for dest in range(machine_count))
        return out

    cluster.round(splitter_round)

    # Round 3: route each item to its bucket machine.
    def route_round(mid: int, local: "list[Any]") -> "list[tuple[int, Any]]":
        splitters: "tuple" = ()
        values = []
        for tag, payload in local:
            if tag == "splitters":
                splitters = payload
            else:
                values.append(payload)
        out = []
        for v in values:
            bucket = bisect.bisect_right(splitters, key(v)) if splitters else 0
            out.append((min(bucket, cluster.machine_count - 1), ("item", v)))
        return out

    cluster.round(route_round)

    result: "list[Any]" = []
    for machine in cluster.machines:
        result.extend(sorted((x[1] for x in machine.items), key=key))
    return result


def distributed_search(
    cluster: Cluster,
    data: Iterable["tuple[Hashable, Any]"],
    queries: Iterable[Hashable],
) -> "dict[Hashable, Any]":
    """Parallel search [29]: annotate each query key with its value in
    ``data``.  Returns ``{query_key: value}`` (missing keys omitted).

    Two communication rounds: route data and queries by key hash, then send
    each annotation to the coordinator (machine 0 collects the result here
    purely for returning it to the caller; in a real deployment annotations
    would flow back to the querying machines, also one round).
    """
    data = list(data)
    queries = list(queries)
    machine_count = cluster.machine_count

    def place(k: Hashable) -> int:
        return hash(k) % machine_count

    cluster.scatter(
        [("data", kv) for kv in data] + [("query", q) for q in queries]
    )

    def route_by_key(mid: int, local: "list[Any]") -> "list[tuple[int, Any]]":
        out = []
        for tag, payload in local:
            k = payload[0] if tag == "data" else payload
            out.append((place(k), (tag, payload)))
        return out

    cluster.round(route_by_key)

    def join_locally(mid: int, local: "list[Any]") -> "list[tuple[int, Any]]":
        table = {k: v for tag, (k, v) in
                 ((t, p) for t, p in local if t == "data")}
        out = []
        for tag, payload in local:
            if tag == "query" and payload in table:
                out.append((0, ("result", (payload, table[payload]))))
        return out

    cluster.round(join_locally)

    results: "dict[Hashable, Any]" = {}
    for tag, payload in cluster.machines[0].items:
        if tag == "result":
            key, value = payload
            results[key] = value
    return results


def reduce_by_key(
    cluster: Cluster,
    pairs: Iterable["tuple[Hashable, Any]"],
    reducer: Callable[[Any, Any], Any],
) -> "dict[Hashable, Any]":
    """Group ``pairs`` by key and fold each group with ``reducer``.

    One communication round (hash partitioning), then local reduction;
    results gathered for the caller.
    """
    pairs = list(pairs)
    machine_count = cluster.machine_count
    cluster.scatter([("pair", p) for p in pairs])

    def route(mid: int, local: "list[Any]") -> "list[tuple[int, Any]]":
        return [
            (hash(payload[0]) % machine_count, ("pair", payload))
            for _tag, payload in local
        ]

    cluster.round(route)

    results: "dict[Hashable, Any]" = {}
    for machine in cluster.machines:
        local: "dict[Hashable, Any]" = {}
        for _tag, (k, v) in machine.items:
            local[k] = reducer(local[k], v) if k in local else v
        results.update(local)
    return results
