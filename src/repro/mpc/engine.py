"""Round and resource accounting for MPC algorithms.

Every MPC-facing algorithm in this library takes an :class:`MPCEngine` and
*charges* it for each primitive it would execute on a real cluster: sorts,
searches, shuffles, broadcasts.  The engine is the experiment's measuring
device — benches report ``engine.rounds`` (the quantity bounded by the
paper's theorems) alongside the predicted values.

The engine is the control plane; the data plane behind it is a pluggable
:class:`~repro.mpc.backends.ExecutionBackend`.  With the default
:class:`~repro.mpc.backends.LocalBackend`, local computation runs as plain
vectorised numpy — the MPC model places no bound on per-machine
computation, only on memory and communication, so simulating machine-local
work faithfully is unnecessary for round counts.  What *is* tracked is the
peak number of machines needed (``total data / machine memory``), which the
theorems also bound.  With a
:class:`~repro.mpc.backends.ShardedBackend` (or its true-parallel
subclass :class:`~repro.mpc.process_backend.ProcessBackend`), the same
charges additionally *enforce* the fleet's capacity (every charge's data
volume is checked against the shard caps, raising
:class:`~repro.mpc.machine.MachineMemoryError` on a capped fleet) and
every charge records the materialised exchange barriers executed since
the previous charge, so pipeline-level tests can certify the charged
round counts are achievable.

Use :class:`repro.mpc.cluster.Cluster` for the faithful small-scale executor
that actually moves key-value pairs between memory-capped machines (the
primitives are validated against it in the tests).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass

from repro.mpc.backends import ExecutionBackend, LocalBackend
from repro.mpc.cost import MPCCostModel
from repro.mpc.plan import PlanTrace, RoundPlan
from repro.utils.validation import check_nonnegative_int, check_positive_int


@dataclass
class RoundCharge:
    """One accounting entry.

    ``exchanges`` counts the backend exchange barriers materialised since
    the previous charge — i.e. the real communication this charge pays
    for.  Always 0 on the accounting-only local backend.
    """

    label: str
    kind: str
    rounds: int
    items: int = 0
    phase: str = ""
    exchanges: int = 0


@dataclass
class PhaseSummary:
    """Aggregated charges of one top-level phase: total ``rounds``,
    number of ``charges``, and the backend ``exchanges`` they covered.
    """

    name: str
    rounds: int
    charges: int
    exchanges: int = 0

    def to_json(self) -> dict:
        """Plain-dict form for the ``BENCH_*.json`` artifacts."""
        return {
            "name": self.name,
            "rounds": self.rounds,
            "charges": self.charges,
            "exchanges": self.exchanges,
        }


class MPCEngine:
    """Accumulates MPC round charges for one algorithm execution.

    Parameters
    ----------
    machine_memory:
        The paper's ``s``.  Convenience constructors :meth:`for_delta`
        derive it as ``ceil(N^δ)``.
    backend:
        The :class:`~repro.mpc.backends.ExecutionBackend` executing the
        data plane (default: a fresh accounting-only
        :class:`~repro.mpc.backends.LocalBackend`).  A
        :class:`~repro.mpc.backends.ShardedBackend` without an explicit
        ``shard_memory`` is bound to ``machine_memory`` on attach.
    trace:
        Optional plan-stream capture: a path (the trace JSON is written
        by :meth:`close`) or a :class:`~repro.mpc.plan.PlanTrace` to
        record into.  Every :meth:`run_plan` appends the executed
        :class:`~repro.mpc.plan.RoundPlan` plus its outputs;
        :func:`repro.mpc.plan.replay` re-executes the stream against
        any backend.
    """

    def __init__(
        self,
        machine_memory: int,
        backend: "ExecutionBackend | None" = None,
        *,
        trace: "str | PlanTrace | None" = None,
    ):
        self.cost = MPCCostModel(machine_memory)
        self.backend = backend if backend is not None else LocalBackend()
        self.backend.attach(self.cost.machine_memory)
        if trace is None or isinstance(trace, PlanTrace):
            self.trace = trace
        else:
            self.trace = PlanTrace(trace)
        if self.trace is not None:
            self.trace.machine_memory = self.cost.machine_memory
            self.trace.backend = self.backend.name
        self._charges: list[RoundCharge] = []
        self._phase_stack: list[str] = []
        self._peak_items = 0

    # -- constructors --------------------------------------------------------

    @classmethod
    def for_delta(
        cls,
        total_items: int,
        delta: float,
        *,
        polylog_exponent: int = 2,
        backend: "ExecutionBackend | None" = None,
        trace: "str | PlanTrace | None" = None,
    ) -> "MPCEngine":
        """Engine with ``s = ceil(N^δ · log^2 N)`` — the paper's standing
        parameter choice: Theorem 1 runs on machines with
        ``O(n^δ · polylog(n))`` memory.  The polylog factor matters at
        laptop scale: it keeps the per-sort round charge ≈ ``1/δ`` even
        when intermediate data (the layered walk structure) exceeds the
        input size by ``polylog`` factors."""
        total_items = check_positive_int(total_items, "total_items")
        if not 0.0 < delta <= 1.0:
            raise ValueError(f"delta must be in (0, 1], got {delta}")
        polylog = max(1.0, math.log2(max(total_items, 2))) ** polylog_exponent
        memory = max(2, math.ceil(total_items**delta * polylog))
        return cls(memory, backend=backend, trace=trace)

    # -- properties ------------------------------------------------------------

    @property
    def machine_memory(self) -> int:
        """The model's per-machine memory ``s`` (words)."""
        return self.cost.machine_memory

    @property
    def rounds(self) -> int:
        """Total MPC rounds charged so far."""
        return sum(c.rounds for c in self._charges)

    @property
    def charges(self) -> "list[RoundCharge]":
        """A copy of every accounting entry, in charge order."""
        return list(self._charges)

    @property
    def peak_items(self) -> int:
        """Largest total data volume seen (drives the machine count)."""
        return self._peak_items

    @property
    def peak_machines(self) -> int:
        """Machines needed for the peak volume (``ceil(peak_items / s)``)."""
        return self.cost.machines_for(self._peak_items)

    # -- charging ---------------------------------------------------------------

    def _add(self, label: str, kind: str, rounds: int, items: int = 0) -> None:
        rounds = check_nonnegative_int(rounds, "rounds")
        items = check_nonnegative_int(items, "items")
        # The backend enforces fleet capacity for every charged data volume
        # (MachineMemoryError when a sharded fleet is capped) and attributes
        # the exchange barriers it materialised since the previous charge.
        exchanges = self.backend.take_exchange_delta()
        self.backend.ensure_capacity(items)
        self._peak_items = max(self._peak_items, items)
        phase = self._phase_stack[-1] if self._phase_stack else ""
        self._charges.append(
            RoundCharge(
                label=label,
                kind=kind,
                rounds=rounds,
                items=items,
                phase=phase,
                exchanges=exchanges,
            )
        )

    def charge_rounds(self, rounds: int, label: str = "custom") -> None:
        """Charge an explicit number of rounds (e.g. one BFS level)."""
        self._add(label, "explicit", rounds)

    def charge_sort(self, total_items: int, label: str = "sort") -> None:
        """Charge one Goodrich sort of ``total_items`` words."""
        self._add(label, "sort", self.cost.sort_rounds(total_items), total_items)

    def charge_search(self, total_items: int, label: str = "search") -> None:
        """Charge one parallel search over ``total_items`` words."""
        self._add(label, "search", self.cost.search_rounds(total_items), total_items)

    def charge_shuffle(self, total_items: int = 0, label: str = "shuffle") -> None:
        """Charge one all-to-all shuffle (O(1) rounds in the model)."""
        self._add(label, "shuffle", self.cost.shuffle_rounds(), total_items)

    def charge_broadcast(self, total_items: int, label: str = "broadcast") -> None:
        """Charge one broadcast tree over ``total_items`` words."""
        self._add(label, "broadcast", self.cost.broadcast_rounds(total_items), total_items)

    def run_plan(self, plan: "RoundPlan") -> tuple:
        """Execute one recorded round on the data plane; returns its outputs.

        This is the single seam every algorithm-layer round passes
        through: the backend chooses its execution strategy (sequential
        steps, or fused dispatch on the process backend), and when the
        engine was constructed with ``trace=...`` the plan and its
        outputs are appended to the capture.  Round *charges* stay
        separate — callers still charge the engine for the round, and
        the charge absorbs whatever exchanges the plan materialised.
        """
        outputs = self.backend.run_plan(plan)
        if self.trace is not None:
            self.trace.record(plan, outputs)
        return outputs

    def note_data_volume(self, total_items: int) -> None:
        """Record a data volume without charging rounds (memory accounting)."""
        total_items = check_nonnegative_int(total_items, "items")
        self.backend.ensure_capacity(total_items)
        self._peak_items = max(self._peak_items, total_items)

    # -- phases -----------------------------------------------------------------

    @contextmanager
    def phase(self, name: str):
        """Group subsequent charges under ``name`` (nesting joins with '/')."""
        full = f"{self._phase_stack[-1]}/{name}" if self._phase_stack else name
        self._phase_stack.append(full)
        try:
            yield self
        finally:
            self._phase_stack.pop()

    def phase_summaries(self) -> "list[PhaseSummary]":
        """Rounds per top-level phase, in first-charge order."""
        order: list[str] = []
        totals: dict[str, list[int]] = {}
        for charge in self._charges:
            top = charge.phase.split("/")[0] if charge.phase else "(none)"
            if top not in totals:
                totals[top] = [0, 0, 0]
                order.append(top)
            totals[top][0] += charge.rounds
            totals[top][1] += 1
            totals[top][2] += charge.exchanges
        return [
            PhaseSummary(
                name=name,
                rounds=totals[name][0],
                charges=totals[name][1],
                exchanges=totals[name][2],
            )
            for name in order
        ]

    def summary(self) -> dict:
        """Machine-readable run summary (JSON-serializable).

        ``phases`` keeps the historical name → rounds mapping;
        ``phase_breakdown`` carries the full per-phase records (rounds and
        charge counts, in first-charge order) that the benchmark artifacts
        embed; ``backend`` carries the data-plane counters (shard count,
        peak shard load, exchanges, bytes) of the attached backend.
        """
        return {
            "machine_memory": self.machine_memory,
            "rounds": self.rounds,
            "peak_items": self.peak_items,
            "peak_machines": self.peak_machines,
            "phases": {p.name: p.rounds for p in self.phase_summaries()},
            "phase_breakdown": [p.to_json() for p in self.phase_summaries()],
            "backend": self.backend.stats().to_json(),
        }

    def reset(self) -> None:
        """Clear charges, phases, peaks, and the backend's counters."""
        self._charges.clear()
        self._phase_stack.clear()
        self._peak_items = 0
        self.backend.reset()

    def close(self) -> None:
        """Release the backend's external resources (pool, arena segments).

        Engines owning a :class:`~repro.mpc.process_backend.ProcessBackend`
        hold OS resources — worker processes and shared-memory arena
        segments — that should be released deterministically rather than
        left to finalizers.  A trace attached with a path is saved here
        (first, so the capture survives even if the backend teardown
        raises).  Counters stay readable after closing and the
        backend restarts its resources on demand, so a closed engine
        remains usable.  Also available as a context manager::

            with MPCEngine(1024, backend=ProcessBackend()) as engine:
                ...
        """
        try:
            if self.trace is not None and self.trace.path is not None:
                self.trace.save()
        finally:
            # The backend must release its OS resources even when the
            # trace cannot be written (unwritable path, full disk).
            self.backend.close()

    def __enter__(self) -> "MPCEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MPCEngine(s={self.machine_memory}, rounds={self.rounds}, "
            f"machines={self.peak_machines})"
        )
