"""MPC simulator: round accounting engine, pluggable execution backends,
and the faithful memory-capped executor.

Four execution backends ship (see :mod:`repro.mpc.backends`): the
accounting-only :class:`LocalBackend`, the enforced serial
:class:`ShardedBackend`, the true-parallel :class:`ProcessBackend`
(:mod:`repro.mpc.process_backend`), which runs the same sharded kernels
on a pool of OS worker processes over shared memory, and the
wire-protocol :class:`RpcBackend` (:mod:`repro.mpc.rpc`), which runs
them across length-prefixed socket frames — the substrate of the
long-lived connectivity service in :mod:`repro.service`.  Select one
with ``mpc_connected_components(..., backend="local" | "sharded" |
"process" | "rpc")`` or construct it directly and pass it to
:class:`MPCEngine`.

Every backend speaks the round-plan IR of :mod:`repro.mpc.plan`: the
algorithm layer records each MPC round's op sequence in a
:class:`RoundPlan` (via :class:`PlanBuilder`) and submits it once
through ``engine.run_plan``; the process backend fuses plans into fewer
dispatch barriers, and ``MPCEngine(trace=...)`` +
:func:`repro.mpc.plan.replay` capture and re-execute the plan stream on
any backend.
"""

from repro.mpc.algorithms import (
    distributed_components,
    distributed_leader_election,
    distributed_min_label_round,
    scatter_graph_state,
)
from repro.mpc.arena import ArenaLease, ArenaLeaseError, ShmArena
from repro.mpc.backends import (
    BACKENDS,
    BackendStats,
    ExecutionBackend,
    LocalBackend,
    ShardedArray,
    ShardedBackend,
    backend_names,
    make_backend,
)
from repro.mpc.cluster import Cluster
from repro.mpc.cost import MPCCostModel
from repro.mpc.engine import MPCEngine, PhaseSummary, RoundCharge
from repro.mpc.machine import Machine, MachineMemoryError
from repro.mpc.plan import (
    OpStep,
    PlanBuilder,
    PlanError,
    PlanTrace,
    ReplayResult,
    RoundPlan,
    SlotRef,
    content_digest,
    execute_plan,
    graph_digest,
    parent_local_steps,
    register_transform,
    replay,
    submit_plan,
)
from repro.mpc.primitives import distributed_search, distributed_sort, reduce_by_key
from repro.mpc.process_backend import (
    ProcessBackend,
    default_arena,
    default_arena_enabled,
    default_worker_count,
    default_workers,
    usable_cpu_count,
)
from repro.mpc.rpc import (
    RpcBackend,
    RpcError,
    RpcProtocolError,
    RpcTimeoutError,
    RpcWorkerError,
)

__all__ = [
    "MPCCostModel",
    "MPCEngine",
    "RoundCharge",
    "PhaseSummary",
    "Machine",
    "MachineMemoryError",
    "Cluster",
    "BACKENDS",
    "BackendStats",
    "ExecutionBackend",
    "LocalBackend",
    "OpStep",
    "PlanBuilder",
    "PlanError",
    "PlanTrace",
    "ProcessBackend",
    "ReplayResult",
    "RoundPlan",
    "RpcBackend",
    "RpcError",
    "RpcProtocolError",
    "RpcTimeoutError",
    "RpcWorkerError",
    "SlotRef",
    "content_digest",
    "execute_plan",
    "graph_digest",
    "parent_local_steps",
    "register_transform",
    "replay",
    "submit_plan",
    "ArenaLease",
    "ArenaLeaseError",
    "ShmArena",
    "ShardedArray",
    "ShardedBackend",
    "backend_names",
    "default_arena",
    "default_arena_enabled",
    "default_worker_count",
    "default_workers",
    "make_backend",
    "usable_cpu_count",
    "distributed_sort",
    "distributed_leader_election",
    "distributed_min_label_round",
    "distributed_components",
    "scatter_graph_state",
    "distributed_search",
    "reduce_by_key",
]
