"""MPC simulator: round accounting engine, pluggable execution backends,
and the faithful memory-capped executor."""

from repro.mpc.algorithms import (
    distributed_components,
    distributed_leader_election,
    distributed_min_label_round,
    scatter_graph_state,
)
from repro.mpc.backends import (
    BACKENDS,
    BackendStats,
    ExecutionBackend,
    LocalBackend,
    ShardedArray,
    ShardedBackend,
    make_backend,
)
from repro.mpc.cluster import Cluster
from repro.mpc.cost import MPCCostModel
from repro.mpc.engine import MPCEngine, PhaseSummary, RoundCharge
from repro.mpc.machine import Machine, MachineMemoryError
from repro.mpc.primitives import distributed_search, distributed_sort, reduce_by_key

__all__ = [
    "MPCCostModel",
    "MPCEngine",
    "RoundCharge",
    "PhaseSummary",
    "Machine",
    "MachineMemoryError",
    "Cluster",
    "BACKENDS",
    "BackendStats",
    "ExecutionBackend",
    "LocalBackend",
    "ShardedArray",
    "ShardedBackend",
    "make_backend",
    "distributed_sort",
    "distributed_leader_election",
    "distributed_min_label_round",
    "distributed_components",
    "scatter_graph_state",
    "distributed_search",
    "reduce_by_key",
]
