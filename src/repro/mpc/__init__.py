"""MPC simulator: round accounting engine, pluggable execution backends,
and the faithful memory-capped executor.

Three execution backends ship (see :mod:`repro.mpc.backends`): the
accounting-only :class:`LocalBackend`, the enforced serial
:class:`ShardedBackend`, and the true-parallel :class:`ProcessBackend`
(:mod:`repro.mpc.process_backend`), which runs the same sharded kernels
on a pool of OS worker processes over shared memory.  Select one with
``mpc_connected_components(..., backend="local" | "sharded" | "process")``
or construct it directly and pass it to :class:`MPCEngine`.
"""

from repro.mpc.algorithms import (
    distributed_components,
    distributed_leader_election,
    distributed_min_label_round,
    scatter_graph_state,
)
from repro.mpc.arena import ArenaLease, ArenaLeaseError, ShmArena
from repro.mpc.backends import (
    BACKENDS,
    BackendStats,
    ExecutionBackend,
    LocalBackend,
    ShardedArray,
    ShardedBackend,
    backend_names,
    make_backend,
)
from repro.mpc.cluster import Cluster
from repro.mpc.cost import MPCCostModel
from repro.mpc.engine import MPCEngine, PhaseSummary, RoundCharge
from repro.mpc.machine import Machine, MachineMemoryError
from repro.mpc.primitives import distributed_search, distributed_sort, reduce_by_key
from repro.mpc.process_backend import (
    ProcessBackend,
    default_arena,
    default_arena_enabled,
    default_worker_count,
    default_workers,
    usable_cpu_count,
)

__all__ = [
    "MPCCostModel",
    "MPCEngine",
    "RoundCharge",
    "PhaseSummary",
    "Machine",
    "MachineMemoryError",
    "Cluster",
    "BACKENDS",
    "BackendStats",
    "ExecutionBackend",
    "LocalBackend",
    "ProcessBackend",
    "ArenaLease",
    "ArenaLeaseError",
    "ShmArena",
    "ShardedArray",
    "ShardedBackend",
    "backend_names",
    "default_arena",
    "default_arena_enabled",
    "default_worker_count",
    "default_workers",
    "make_backend",
    "usable_cpu_count",
    "distributed_sort",
    "distributed_leader_election",
    "distributed_min_label_round",
    "distributed_components",
    "scatter_graph_state",
    "distributed_search",
    "reduce_by_key",
]
