"""Predicted round-complexity formulas from the paper's theorem statements.

The benches print these next to the measured round counts so the *shape*
comparison (who wins, where curves flatten) is explicit.  All formulas are
asymptotic — the returned values carry a free constant ``c`` that benches
fit on their smallest data point, then extrapolate.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_in_range, check_positive_int


def theorem1_rounds(n: int, gap: float, *, delta: float = 0.25, c: float = 1.0) -> float:
    """Theorem 1/4: ``O((1/δ)(log log n + log(1/λ)))``."""
    n = check_positive_int(n, "n")
    gap = check_in_range(gap, "gap", 1e-12, 2.0)
    loglog = math.log2(max(2.0, math.log2(max(n, 4))))
    return c * (loglog + math.log2(1.0 / gap)) / delta


def theorem2_rounds(n: int, memory: int, *, c: float = 1.0) -> float:
    """Theorem 2: ``O(log log n + log(n/s))``."""
    n = check_positive_int(n, "n")
    memory = check_positive_int(memory, "memory")
    loglog = math.log2(max(2.0, math.log2(max(n, 4))))
    return c * (loglog + math.log2(max(2.0, n / memory)))


def corollary71_rounds(n: int, gap: float, *, delta: float = 0.25, c: float = 1.0) -> float:
    """Corollary 7.1: ``O((1/δ)(log log n · log log(1/λ) + log(1/λ)))``."""
    n = check_positive_int(n, "n")
    gap = check_in_range(gap, "gap", 1e-12, 1.0)
    loglog_n = math.log2(max(2.0, math.log2(max(n, 4))))
    log_inv = math.log2(max(2.0, 1.0 / gap))
    loglog_inv = math.log2(max(2.0, log_inv))
    return c * (loglog_n * loglog_inv + log_inv) / delta


def classical_pram_rounds(n: int, *, c: float = 1.0) -> float:
    """The Ω(log n) of three decades of PRAM algorithms [25, 30, 35, 49, 57]."""
    n = check_positive_int(n, "n")
    return c * math.log2(max(n, 2))


def lower_bound_rounds(n: int, memory: int, *, c: float = 1.0) -> float:
    """Theorem 5: ``Ω(log_s n)`` rounds for ExpanderConn with memory s."""
    n = check_positive_int(n, "n")
    memory = check_positive_int(memory, "memory")
    if memory < 2:
        raise ValueError("memory must be >= 2")
    return c * math.log(max(n, 2)) / math.log(memory)


def lower_bound_queries(n: int, *, c: float = 1.0) -> float:
    """Lemma 9.3: ``DT(ExpanderConn) = Ω(n / log n)``."""
    n = check_positive_int(n, "n")
    return c * n / math.log2(max(n, 4))


def dt_to_approx_degree(decision_tree_complexity: float) -> float:
    """Proposition 9.2 (Beals et al. / Nisan–Szegedy):
    ``deg̃_{1/3}(f) = Ω(DT(f)^{1/6})``."""
    if decision_tree_complexity < 0:
        raise ValueError("decision tree complexity must be >= 0")
    return decision_tree_complexity ** (1.0 / 6.0)


def approx_degree_to_mpc_rounds(approx_degree: float, memory: int) -> float:
    """Proposition 9.1 (Roughgarden–Vassilvitskii–Wang), inverted: an
    r-round, s-memory MPC algorithm computes only functions with
    ``deg̃ ≤ s^{Θ(r)}``, so ``r = Ω(log_s(deg̃))``."""
    memory = check_positive_int(memory, "memory")
    if memory < 2:
        raise ValueError("memory must be >= 2")
    if approx_degree < 1:
        return 0.0
    return math.log(approx_degree) / math.log(memory)


def expander_conn_round_lower_bound(n: int, memory: int) -> float:
    """Theorem 5's full chain: ``DT(ExpanderConn) = Ω(n/log n)``
    (Lemma 9.3) → ``deg̃ = Ω((n/log n)^{1/6})`` (Prop 9.2) →
    ``rounds = Ω(log_s n)`` (Prop 9.1).  Returns the chained numeric
    value (the 1/6 shows up as a constant inside the Ω)."""
    n = check_positive_int(n, "n")
    dt = lower_bound_queries(n)
    return approx_degree_to_mpc_rounds(dt_to_approx_degree(dt), memory)


def pram_lower_bound_rounds(n: int, *, c: float = 1.0) -> float:
    """Remark 9.5: ExpanderConn is a critical function of
    ``k = Ω(n/log n)`` variables (one per hard-family expander), so EREW
    PRAM needs ``Ω(log k) = Ω(log n)`` steps (Cook–Dwork–Reischuk,
    Parberry–Yan)."""
    n = check_positive_int(n, "n")
    k = max(2.0, n / math.log2(max(n, 4)))
    return c * math.log2(k)


def fit_constant(measured: "list[float]", predicted: "list[float]") -> float:
    """Least-squares scale ``c`` minimising ``Σ (m - c·p)²``."""
    if len(measured) != len(predicted) or not measured:
        raise ValueError("need equal-length nonempty series")
    num = sum(m * p for m, p in zip(measured, predicted))
    den = sum(p * p for p in predicted)
    if den == 0:
        raise ValueError("predicted series is identically zero")
    return num / den
