"""Random-number-generator discipline.

Every stochastic routine in this library accepts either a seed or a
``numpy.random.Generator``.  Nothing reads numpy's global RNG state, so any
experiment is reproducible from its seed alone.  ``spawn_rngs`` derives
statistically independent child generators, which the paper's algorithms need
when a computation is split into phases that must use "fresh random seeds"
(e.g. the per-phase edge batches of ``GrowComponents``, Section 6).
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def ensure_rng(rng: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``rng``.

    Accepts ``None`` (fresh OS-seeded generator), an integer seed, a
    ``SeedSequence``, or an existing ``Generator`` (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"expected None, int, SeedSequence or numpy Generator, got {type(rng).__name__}"
    )


def spawn_rngs(rng: "int | np.random.Generator | None", count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    The children are produced through ``SeedSequence.spawn`` semantics (via
    ``Generator.spawn``) so streams do not overlap.  Used wherever the paper
    requires independent randomness per phase or per repetition.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    return list(parent.spawn(count))
