"""Shared utilities: RNG discipline and argument validation."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_in_range,
    check_nonnegative_int,
    check_positive_int,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_in_range",
    "check_nonnegative_int",
    "check_positive_int",
    "check_probability",
]
