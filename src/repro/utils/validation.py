"""Small argument validators shared across the library.

These raise ``ValueError``/``TypeError`` with messages naming the offending
argument, so failures at the public API surface are self-explanatory.
"""

from __future__ import annotations

import numbers


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer ``>= 1`` and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def check_nonnegative_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer ``>= 0`` and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` and return it as ``float``."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_range(value: float, name: str, low: float, high: float) -> float:
    """Validate that ``value`` lies in the closed interval ``[low, high]``."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value
