"""Diameter-parametrized connectivity via graph exponentiation.

Section 1.3 of the paper compares against Andoni–Stein–Song–Wang–Zhong
(concurrent work, [6]): an algorithm whose round complexity is governed by
the largest component *diameter* D — ``O(log D · log log n)`` — rather
than the spectral gap.  The two parametrisations are incomparable:
``D = O(log n / λ)`` always, so a *dumbbell* (two expanders joined by an
edge: tiny gap, tiny diameter) favours the diameter algorithm, while the
gap algorithm wins whenever ``λ`` is large (it avoids [6]'s
``Ω((log log n)²)`` floor on the random graphs this paper reduces to).

This module implements the standard core of the diameter-based approach —
*graph exponentiation* interleaved with min-label contraction: each phase
squares the (contracted, degree-capped) adjacency, halving the effective
diameter, so ``O(log D)`` phases suffice.  The per-vertex neighbourhood
cap models [6]'s per-machine memory budget; squaring charges one sort +
one shuffle per phase, as the paper's Section 1.3 accounting assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.components import canonical_labels
from repro.graph.graph import Graph
from repro.mpc.engine import MPCEngine
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class ExponentiationResult:
    labels: np.ndarray
    rounds: int
    phases: int


def _dedup(edges: np.ndarray, n: int) -> np.ndarray:
    """Deduplicate an edge array (drop self-loops, canonical orientation)."""
    if edges.shape[0] == 0:
        return edges
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    if lo.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    keys = np.unique(lo * n + hi)
    return np.stack([keys // n, keys % n], axis=1)


def _cap_degrees(edges: np.ndarray, n: int, cap: int) -> np.ndarray:
    """Cap per-vertex degree at ``cap`` (smallest-partner edges kept — a
    deterministic memory-budget rule).  Applied only to *augmentation*
    edges; the base graph is never thinned, so correctness is unaffected."""
    if edges.shape[0] == 0:
        return edges
    lo, hi = edges[:, 0], edges[:, 1]
    order = np.lexsort((hi, lo))
    lo, hi = lo[order], hi[order]
    counts_lo = np.zeros(n, dtype=np.int64)
    counts_hi = np.zeros(n, dtype=np.int64)
    keep_mask = np.zeros(lo.size, dtype=bool)
    for i in range(lo.size):
        a, b = lo[i], hi[i]
        if counts_lo[a] < cap and counts_hi[b] < cap:
            keep_mask[i] = True
            counts_lo[a] += 1
            counts_hi[b] += 1
    return np.stack([lo[keep_mask], hi[keep_mask]], axis=1)


def _square(edges: np.ndarray, n: int, cap: int) -> np.ndarray:
    """One exponentiation step: the 2-hop pairs (u, v) through shared
    wedges, deduplicated and degree-capped (the memory budget applies to
    these *augmentation* edges only)."""
    if edges.shape[0] == 0:
        return edges
    # Group half-edges by their midpoint.
    mid = np.concatenate([edges[:, 0], edges[:, 1]])
    other = np.concatenate([edges[:, 1], edges[:, 0]])
    order = np.argsort(mid, kind="stable")
    mid, other = mid[order], other[order]
    starts = np.searchsorted(mid, np.arange(n))
    ends = np.searchsorted(mid, np.arange(n) + 1)
    new_pairs = []
    for w in range(n):
        span = other[starts[w] : ends[w]]
        if span.size < 2:
            continue
        # Budget: connect each neighbour to up to `cap` others through w.
        take = span[: cap + 1]
        left = np.repeat(take, take.size)
        right = np.tile(take, take.size)
        mask = left < right
        if mask.any():
            new_pairs.append(np.stack([left[mask], right[mask]], axis=1))
    if not new_pairs:
        return np.empty((0, 2), dtype=np.int64)
    combined = _dedup(np.concatenate(new_pairs, axis=0), n)
    return _cap_degrees(combined, n, cap)


def exponentiation_components(
    graph: Graph,
    *,
    engine: "MPCEngine | None" = None,
    degree_cap: "int | None" = None,
    max_phases: "int | None" = None,
) -> ExponentiationResult:
    """Connectivity in ``O(log D)`` exponentiation phases ([6]-style).

    Each phase: (1) square the contracted graph's adjacency under the
    degree cap (one sort + one shuffle), (2) one min-label step (one
    shuffle), (3) contract.  Labels stabilise once the squared reach
    covers each component — after ``ceil(log2 D) + O(1)`` phases.
    """
    n = graph.n
    if degree_cap is None:
        degree_cap = max(8, int(np.ceil(np.sqrt(max(n, 4)))))
    check_positive_int(degree_cap, "degree_cap")
    if max_phases is None:
        max_phases = 2 * max(1, int(np.ceil(np.log2(max(n, 2))))) + 8

    labels = np.arange(n, dtype=np.int64)
    base = _dedup(np.asarray(graph.edges, dtype=np.int64), n)
    augmentation = np.empty((0, 2), dtype=np.int64)
    phases = 0
    while phases < max_phases:
        edges = (
            np.concatenate([base, augmentation], axis=0)
            if augmentation.shape[0]
            else base
        )
        # Min-label step over base + augmentation edges.
        new_labels = labels.copy()
        if edges.shape[0]:
            np.minimum.at(new_labels, edges[:, 1], labels[edges[:, 0]])
            np.minimum.at(new_labels, edges[:, 0], labels[edges[:, 1]])
        new_labels = np.minimum(new_labels, new_labels[new_labels])
        changed = not np.array_equal(new_labels, labels)
        labels = new_labels
        if engine is not None:
            engine.charge_shuffle(edges.shape[0], label="min-label step")
        if not changed:
            break
        # Exponentiate the contracted graph; the cap bounds only the new
        # augmentation edges, the (contracted) base is always kept whole.
        base = _dedup(labels[base], n)
        quotient = (
            _dedup(labels[edges], n) if edges.shape[0] else edges
        )
        augmentation = _square(quotient, n, degree_cap)
        if engine is not None:
            engine.charge_sort(max(augmentation.shape[0], 1), label="square adjacency")
            engine.charge_shuffle(augmentation.shape[0], label="emit squared edges")
        phases += 1
    else:
        raise RuntimeError("graph exponentiation did not converge")

    return ExponentiationResult(
        labels=canonical_labels(labels),
        rounds=engine.rounds if engine is not None else phases,
        phases=phases,
    )
