"""Baseline connectivity algorithms: the paper's round-complexity comparators."""

from repro.baselines.graph_exponentiation import (
    ExponentiationResult,
    exponentiation_components,
)
from repro.baselines.label_propagation import (
    PropagationResult,
    min_label_propagation,
    pointer_jumping_propagation,
)
from repro.baselines.random_mate import RandomMateResult, random_mate_components
from repro.baselines.shiloach_vishkin import (
    ShiloachVishkinResult,
    shiloach_vishkin_components,
)

__all__ = [
    "ExponentiationResult",
    "exponentiation_components",
    "PropagationResult",
    "min_label_propagation",
    "pointer_jumping_propagation",
    "RandomMateResult",
    "random_mate_components",
    "ShiloachVishkinResult",
    "shiloach_vishkin_components",
]
