"""Label-propagation baselines.

These are the ``O(log n)``- and ``O(diameter)``-round comparators the paper
positions itself against ([36, 37, 48] and three decades of PRAM work).

* :func:`min_label_propagation` — the folklore algorithm: every round each
  vertex adopts the minimum label in its closed neighbourhood.  One MPC
  round per iteration; converges in (min-vertex eccentricity) ≤ diameter
  rounds.
* :func:`pointer_jumping_propagation` — the Rastogi-et-al-style
  acceleration (hash-to-min family): besides neighbour minima, every
  vertex also jumps to its current label's label.  Label trees halve in
  depth per round, giving ``O(log n)`` rounds on any graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.components import canonical_labels
from repro.graph.graph import Graph
from repro.mpc.engine import MPCEngine
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class PropagationResult:
    labels: np.ndarray
    rounds: int


def min_label_propagation(
    graph: Graph,
    *,
    engine: "MPCEngine | None" = None,
    max_rounds: "int | None" = None,
) -> PropagationResult:
    """Pure neighbourhood-minimum propagation: Θ(diameter) rounds."""
    n = check_positive_int(graph.n, "graph.n")
    if max_rounds is None:
        max_rounds = n + 1
    labels = np.arange(n, dtype=np.int64)
    edges = graph.edges
    if edges.shape[0] == 0:
        return PropagationResult(labels=labels, rounds=0)
    u, v = edges[:, 0], edges[:, 1]
    rounds = 0
    while rounds < max_rounds:
        new = labels.copy()
        np.minimum.at(new, v, labels[u])
        np.minimum.at(new, u, labels[v])
        if np.array_equal(new, labels):
            break
        labels = new
        rounds += 1
        if engine is not None:
            engine.charge_shuffle(edges.shape[0], label="min-label round")
    else:
        raise RuntimeError("min-label propagation did not converge")
    return PropagationResult(labels=canonical_labels(labels), rounds=rounds)


def pointer_jumping_propagation(
    graph: Graph,
    *,
    engine: "MPCEngine | None" = None,
    max_rounds: "int | None" = None,
) -> PropagationResult:
    """Min-label propagation + pointer jumping: Θ(log n) rounds on any
    graph (each round: gather neighbour minima, then compress label chains
    by one doubling step — two shuffles charged per round)."""
    n = check_positive_int(graph.n, "graph.n")
    if max_rounds is None:
        max_rounds = 4 * max(1, int(np.ceil(np.log2(max(n, 2))))) + 8
    labels = np.arange(n, dtype=np.int64)
    edges = graph.edges
    if edges.shape[0] == 0:
        return PropagationResult(labels=labels, rounds=0)
    u, v = edges[:, 0], edges[:, 1]
    rounds = 0
    while rounds < max_rounds:
        new = labels.copy()
        np.minimum.at(new, v, labels[u])
        np.minimum.at(new, u, labels[v])
        new = np.minimum(new, new[new])  # pointer jump
        if np.array_equal(new, labels):
            break
        labels = new
        rounds += 1
        if engine is not None:
            engine.charge_shuffle(edges.shape[0], label="hash-to-min round")
            engine.charge_search(n, label="pointer jump")
    else:
        raise RuntimeError("pointer-jumping propagation did not converge")
    return PropagationResult(labels=canonical_labels(labels), rounds=rounds)
