"""Shiloach–Vishkin PRAM connectivity [57] — the three-decade-old
O(log n)-step comparator the paper's introduction cites.

Standard formulation with a parent forest ``D``:

1. *conditional hooking*: a root-star may hook onto a smaller-labelled
   neighbour root;
2. *shortcutting*: one pointer-jumping step ``D[v] = D[D[v]]``;

iterated until nothing changes.  Each iteration is O(1) PRAM steps (and
would be O(1) MPC shuffles), and the classical analysis gives O(log n)
iterations.  The implementation is vectorised; correctness is validated
against the sequential reference in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.components import canonical_labels
from repro.graph.graph import Graph
from repro.mpc.engine import MPCEngine


@dataclass(frozen=True)
class ShiloachVishkinResult:
    labels: np.ndarray
    iterations: int


def shiloach_vishkin_components(
    graph: Graph,
    *,
    engine: "MPCEngine | None" = None,
    max_iterations: "int | None" = None,
) -> ShiloachVishkinResult:
    """Connected components via hook-and-shortcut (O(log n) iterations)."""
    n = graph.n
    if max_iterations is None:
        max_iterations = 8 * max(1, int(np.ceil(np.log2(max(n, 2))))) + 16
    parent = np.arange(n, dtype=np.int64)
    edges = graph.edges
    if edges.shape[0] == 0:
        return ShiloachVishkinResult(labels=parent, iterations=0)
    u = np.concatenate([edges[:, 0], edges[:, 1]])
    v = np.concatenate([edges[:, 1], edges[:, 0]])

    iterations = 0
    while iterations < max_iterations:
        before = parent.copy()

        # Conditional hooking: for edge (u, v), if u's parent is a root
        # and v's parent is smaller, hook.  np.minimum.at resolves write
        # conflicts by taking the smallest candidate (a valid CRCW rule).
        pu = parent[u]
        pv = parent[v]
        is_root = parent[pu] == pu
        candidates = is_root & (pv < pu)
        if candidates.any():
            np.minimum.at(parent, pu[candidates], pv[candidates])

        # Shortcutting (pointer jumping).
        parent = parent[parent]

        iterations += 1
        if engine is not None:
            engine.charge_shuffle(edges.shape[0], label="SV hook")
            engine.charge_search(n, label="SV shortcut")
        if np.array_equal(parent, before):
            break
    else:
        raise RuntimeError("Shiloach-Vishkin did not converge")

    # Final compression to roots.
    for _ in range(max_iterations):
        compressed = parent[parent]
        if np.array_equal(compressed, parent):
            break
        parent = compressed
    return ShiloachVishkinResult(
        labels=canonical_labels(parent), iterations=iterations
    )
