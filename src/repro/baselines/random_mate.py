"""Random-mate contraction: the classical Θ(log n) leader-election CC.

This is the "typical leader-election algorithm" of Section 3 whose growth
rate is only a constant factor per round — each round elects leaders with
probability 1/2 and contracts non-leader→leader stars, shrinking the
number of live components by a constant factor in expectation.  It serves
two roles in the benches: the Θ(log n) round baseline of experiment E1,
and the constant-vs-quadratic growth ablation of E14 (same code path as
``GrowComponents`` but with a flat growth target of 2 and edge reuse).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.grow import contract_batch
from repro.core.leader_election import leader_election
from repro.graph.components import canonical_labels
from repro.graph.graph import Graph
from repro.mpc.engine import MPCEngine
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class RandomMateResult:
    labels: np.ndarray
    rounds: int
    iterations: int
    components_per_iteration: "list[int]"


def random_mate_components(
    graph: Graph,
    rng=None,
    *,
    engine: "MPCEngine | None" = None,
    leader_prob: float = 0.5,
    max_iterations: "int | None" = None,
) -> RandomMateResult:
    """Contract with p = 1/2 leader election until no cross edges remain.

    Each iteration costs one contraction sort plus the two election
    shuffles — the same charges as one ``GrowComponents`` phase, so round
    comparisons against the pipeline are apples-to-apples.
    """
    rng = ensure_rng(rng)
    n = graph.n
    if max_iterations is None:
        max_iterations = 8 * max(1, int(np.ceil(np.log2(max(n, 2))))) + 16
    labels = np.arange(n, dtype=np.int64)
    edges = graph.edges
    history: "list[int]" = []
    iterations = 0
    while iterations < max_iterations:
        contracted, _ = contract_batch(labels, edges)
        if engine is not None:
            engine.charge_sort(edges.shape[0], label="random-mate contraction")
        if contracted.shape[0] == 0:
            break
        k = int(labels.max()) + 1
        result = leader_election(k, contracted, leader_prob, rng, engine=engine)
        labels = canonical_labels(result.groups[labels])
        history.append(int(labels.max()) + 1)
        iterations += 1
    else:
        raise RuntimeError("random mate did not converge")
    rounds = engine.rounds if engine is not None else iterations
    return RandomMateResult(
        labels=labels,
        rounds=rounds,
        iterations=iterations,
        components_per_iteration=history,
    )
