"""The zig-zag product ``G z H`` on non-regular base graphs (Appendix C).

Same vertex set as the replacement product; ``(u, i)`` is joined to
``(v, j)`` whenever the replacement product contains the length-3 path
cloud-step, inter-cloud step, cloud-step between them.  The result is
``d²``-regular on ``2m`` vertices, and Proposition C.1 gives
``λ₂(G z H) ≥ λ₂(G) · λ_H²``.

The zig-zag product is used by the paper only as the analysis vehicle for
Proposition 4.2 (the replacement-product gap bound is derived from it via
``W_r³``); it is implemented here so that both appendix propositions can be
verified empirically (bench E4 and the product tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph


@dataclass(frozen=True)
class ZigZagProduct:
    graph: Graph
    cloud_of: np.ndarray
    cloud_degree: int


def zigzag_product(base: Graph, clouds: "dict[int, Graph]") -> ZigZagProduct:
    """Construct ``G z H`` (Appendix C definition).

    Same cloud conventions as
    :func:`repro.products.replacement.replacement_product`.  Quadratic in
    the cloud degree per base edge (``d²`` product edges each), so intended
    for the appendix verification experiments, not the pipeline.
    """
    from repro.products.replacement import replacement_product

    rp = replacement_product(base, clouds)
    d = rp.cloud_degree
    degrees = np.asarray(base.degrees)
    offsets = np.zeros(base.n + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])

    # Cloud adjacency lookup per distinct degree: neighbour lists in port
    # order, as a (size, d) matrix.
    cloud_neighbors: "dict[int, np.ndarray]" = {}
    for size in np.unique(degrees):
        size = int(size)
        cloud = clouds[size]
        mat = np.empty((size, d), dtype=np.int64)
        for vertex in range(size):
            mat[vertex] = cloud.neighbors(vertex)
        cloud_neighbors[size] = mat

    # Middle (inter-cloud) edges, one per base edge: slot pairs (a, b) with
    # a < b = twin(a); product vertices are the slot indices themselves.
    twins = base.twin_slot
    slots = np.flatnonzero(np.arange(twins.size) < twins)
    ends_a = slots
    ends_b = twins[slots]

    owner = np.repeat(np.arange(base.n, dtype=np.int64), degrees)

    blocks = []
    for a, b in zip(ends_a.tolist(), ends_b.tolist()):
        u, v = int(owner[a]), int(owner[b])
        neigh_u = cloud_neighbors[int(degrees[u])][a - offsets[u]] + offsets[u]
        neigh_v = cloud_neighbors[int(degrees[v])][b - offsets[v]] + offsets[v]
        left = np.repeat(neigh_u, d)
        right = np.tile(neigh_v, d)
        blocks.append(np.stack([left, right], axis=1))

    edges = (
        np.concatenate(blocks, axis=0) if blocks else np.empty((0, 2), dtype=np.int64)
    )
    graph = Graph(int(offsets[-1]), edges)
    return ZigZagProduct(graph=graph, cloud_of=rp.cloud_of, cloud_degree=d)
