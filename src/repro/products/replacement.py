"""The replacement product ``G r H`` on non-regular base graphs (Section 4).

Every vertex ``v`` of ``G`` (degree ``d_v``) is replaced by a "cloud": a copy
of a ``d``-regular graph on ``d_v`` vertices.  Cloud vertex ``(v, i)``
represents the ``i``-th incidence (port) of ``v``; intra-cloud edges are the
cloud graph's, and for every edge of ``G`` where ``v`` is the ``i``-th
neighbour of ``u`` and ``u`` the ``j``-th neighbour of ``v``, the product
joins ``(u, i)`` to ``(v, j)``.  The result is ``(d+1)``-regular on ``2m``
vertices, its components correspond 1-1 to those of ``G``, and by
Proposition 4.2 its spectral gap is ``Ω(d⁻¹ λ₂(G) λ_H²)``.

The construction is fully vectorised over the port (rotation) maps exposed
by :class:`repro.graph.Graph` and charges the ``O(1/δ)`` MPC rounds of
Lemma 4.6 when given an engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.mpc.engine import MPCEngine
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class ReplacementProduct:
    """Result of ``G r H``.

    Attributes
    ----------
    graph:
        The ``(d+1)``-regular product graph on ``2m`` vertices.
    cloud_of:
        For each product vertex, the base vertex whose cloud contains it —
        the projection used to pull component labels of the product back to
        ``G`` (Lemma 4.1, part 2).
    port_of:
        For each product vertex, its port index within the cloud.
    cloud_degree:
        The cloud regularity ``d`` (product graph is ``(d+1)``-regular).
    """

    graph: Graph
    cloud_of: np.ndarray
    port_of: np.ndarray
    cloud_degree: int

    def project_labels(self, product_labels: np.ndarray) -> np.ndarray:
        """Pull product-vertex labels back to base-graph vertices.

        All cloud vertices of a base vertex always share a component (clouds
        are connected), so projecting via any representative is sound; we
        take the first port of each base vertex.
        """
        product_labels = np.asarray(product_labels)
        if product_labels.shape[0] != self.graph.n:
            raise ValueError("label array does not match product graph size")
        n_base = int(self.cloud_of.max()) + 1 if self.cloud_of.size else 0
        first_port = np.full(n_base, -1, dtype=np.int64)
        # Iterate in reverse so the first occurrence wins.
        first_port[self.cloud_of[::-1]] = np.arange(self.graph.n - 1, -1, -1)
        return product_labels[first_port]


def replacement_product(
    base: Graph,
    clouds: "dict[int, Graph]",
    *,
    engine: "MPCEngine | None" = None,
) -> ReplacementProduct:
    """Construct ``G r H`` (Section 4, ``ReplacementProduct``).

    Parameters
    ----------
    base:
        The graph ``G``; must have no isolated vertices (the paper's
        standing assumption ``d_v ≥ 1``, Section 2).
    clouds:
        One ``d``-regular graph per distinct degree of ``base``
        (from :func:`repro.products.expanders.regular_graph_construction`);
        ``clouds[k]`` must have exactly ``k`` vertices.
    """
    if base.n == 0:
        raise ValueError("replacement product of an empty graph")
    degrees = np.asarray(base.degrees)
    if int(degrees.min()) == 0:
        raise ValueError(
            "base graph has isolated vertices; the paper assumes d_v >= 1 "
            "(strip isolated vertices before regularizing)"
        )

    cloud_degree = None
    for size in np.unique(degrees):
        size = int(size)
        if size not in clouds:
            raise ValueError(f"no cloud provided for degree {size}")
        cloud = clouds[size]
        if cloud.n != size:
            raise ValueError(
                f"cloud for degree {size} has {cloud.n} vertices, expected {size}"
            )
        if not cloud.is_regular():
            raise ValueError(f"cloud for degree {size} is not regular")
        d = cloud.degree(0) if cloud.n > 0 else 0
        if cloud_degree is None:
            cloud_degree = d
        elif cloud_degree != d:
            raise ValueError(
                f"clouds disagree on degree: {cloud_degree} vs {d} (size {size})"
            )
    cloud_degree = check_positive_int(int(cloud_degree), "cloud degree")

    # Product vertex (v, i) -> offset[v] + i, with offset = prefix degrees.
    offsets = np.zeros(base.n + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    total = int(offsets[-1])  # = 2m

    cloud_of = np.repeat(np.arange(base.n, dtype=np.int64), degrees)
    port_of = np.arange(total, dtype=np.int64) - offsets[cloud_of]

    # Intra-cloud edges: tile each degree class's cloud edges over its
    # vertices (vectorised per distinct degree).
    intra_blocks = []
    for size in np.unique(degrees):
        size = int(size)
        cloud_edges = clouds[size].edges
        members = np.flatnonzero(degrees == size)
        if cloud_edges.shape[0] == 0 or members.size == 0:
            continue
        tiled = np.tile(cloud_edges, (members.size, 1))
        shift = np.repeat(offsets[members], cloud_edges.shape[0])
        intra_blocks.append(tiled + shift[:, None])

    # Inter-cloud edges: one product edge per base edge, joining the two
    # ports via the rotation map.  CSR slot s (owned by u at port p) and its
    # twin t (owned by v at port q) give the product edge
    # (offset[u]+p, offset[v]+q); keep each base edge once via s < twin.
    twins = base.twin_slot
    slots = np.flatnonzero(np.arange(twins.size) < twins)
    end_a = slots  # slot index == offset[u] + port by CSR construction
    end_b = twins[slots]
    inter = np.stack([end_a, end_b], axis=1).astype(np.int64)

    edge_blocks = intra_blocks + ([inter] if inter.size else [])
    edges = (
        np.concatenate(edge_blocks, axis=0)
        if edge_blocks
        else np.empty((0, 2), dtype=np.int64)
    )
    product = Graph(total, edges)

    if engine is not None:
        with engine.phase("ReplacementProduct"):
            # Lemma 4.6: annotate each base edge with both endpoints' cloud
            # offsets (a parallel search), then one shuffle to materialise
            # the product edges next to their clouds.
            engine.charge_search(2 * base.m, label="annotate ports")
            engine.charge_shuffle(2 * base.m + edges.shape[0], label="emit product edges")
            engine.note_data_volume(edges.shape[0] + total)

    return ReplacementProduct(
        graph=product,
        cloud_of=cloud_of,
        port_of=port_of,
        cloud_degree=cloud_degree,
    )
