"""Parallel expander construction (Section 4, ``RegularGraphConstruction``).

The regularization step replaces a degree-``d_v`` vertex with a ``d``-regular
expander on ``d_v`` vertices.  The paper constructs these as unions of
``d/2`` random permutations (the space ``G_{n,d}`` of Eq. 1), resampling
until the spectral gap passes the Friedman threshold (Prop. 4.3 / Cor. 4.4:
``λ₂ ≥ 4/5`` w.h.p. for ``d = 100``); graphs too large for one machine are
built in parallel with a sort-based permutation sampler.

Scale substitutions (recorded in DESIGN.md):

* the paper fixes ``d = 100``; we default to smaller even degrees, with the
  acceptance threshold adapted per Friedman's bound
  ``λ₂ ≳ 1 - 2 sqrt(d-1)/d`` (:func:`friedman_gap_threshold`, which for
  ``d = 100`` reproduces the paper's ``4/5``);
* for cloud sizes ``n ≤ d`` (the paper assumes ``d_v ≥ d``) we fall back to
  a circulant multigraph, which is complete-graph-like at those sizes and
  has a large gap — preserving the only property used downstream
  (``λ₂(H_v) = Ω(1)``).
"""

from __future__ import annotations

import numpy as np

from repro.graph.components import component_count
from repro.graph.generators import permutation_regular_graph
from repro.graph.graph import Graph
from repro.graph.spectral import spectral_gap
from repro.mpc.engine import MPCEngine
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

#: Paper's expander degree (Section 4); library default is smaller for scale.
PAPER_EXPANDER_DEGREE = 100
DEFAULT_EXPANDER_DEGREE = 8

#: Never try more than this many resamples before giving up loudly.
_MAX_RESAMPLE_TRIES = 200


def friedman_gap_threshold(d: int) -> float:
    """Acceptance threshold for a random ``d``-regular graph's gap.

    Friedman's theorem (Prop. 4.3, [24]) gives
    ``λ₂ ≥ 1 - (2 sqrt(d-1) + o(1))/d`` w.h.p.; we accept at
    ``1 - 2.2 sqrt(d-1)/d`` (slack for the o(1)), floored at 0.05.
    For ``d = 100`` this evaluates to ≈ 0.78, matching the paper's
    Corollary 4.4 choice of ``4/5``.
    """
    d = check_positive_int(d, "d")
    if d < 3:
        return 0.05
    return max(0.05, 1.0 - 2.2 * np.sqrt(d - 1.0) / d)


def circulant_multigraph(n: int, d: int) -> Graph:
    """The ``d``-regular circulant: vertex ``i`` joined to ``i ± j (mod n)``
    for ``j = 1..d/2``.  Well-defined for every ``n ≥ 1`` (small ``n`` wraps
    into parallel edges / self-loops); for ``n ≤ d`` it is complete-graph
    dense, hence strongly expanding — the fallback for tiny clouds."""
    n = check_positive_int(n, "n")
    d = check_positive_int(d, "d")
    if d % 2 != 0:
        raise ValueError(f"circulant construction needs even d, got {d}")
    base = np.arange(n, dtype=np.int64)
    blocks = []
    for j in range(1, d // 2 + 1):
        blocks.append(np.stack([base, (base + j) % n], axis=1))
    return Graph(n, np.concatenate(blocks, axis=0))


def build_expander(
    n: int,
    d: int = DEFAULT_EXPANDER_DEGREE,
    *,
    gap_threshold: "float | None" = None,
    rng=None,
) -> "tuple[Graph, float]":
    """A ``d``-regular expander on ``n`` vertices with ``λ₂ ≥ gap_threshold``.

    Implements step 1 of ``RegularGraphConstruction``: sample from
    ``G_{n,d}`` and retry until the gap test passes.  Returns the graph and
    its measured gap.  For ``n ≤ d + 1`` uses the circulant fallback
    (measured gap still returned and checked to be positive).
    """
    n = check_positive_int(n, "n")
    d = check_positive_int(d, "d")
    if d % 2 != 0:
        raise ValueError(f"expander degree must be even, got {d}")
    rng = ensure_rng(rng)
    if gap_threshold is None:
        gap_threshold = friedman_gap_threshold(d)

    if n <= d + 1:
        graph = circulant_multigraph(n, d)
        gap = spectral_gap(graph) if n > 1 else 1.0
        return graph, gap

    for _ in range(_MAX_RESAMPLE_TRIES):
        candidate = permutation_regular_graph(n, d, rng)
        if component_count(candidate) != 1:
            continue
        gap = spectral_gap(candidate)
        if gap >= gap_threshold:
            return candidate, gap
    raise RuntimeError(
        f"failed to sample a d={d} expander on n={n} vertices with "
        f"gap >= {gap_threshold} in {_MAX_RESAMPLE_TRIES} tries"
    )


def regular_graph_construction(
    sizes: "list[int]",
    d: int = DEFAULT_EXPANDER_DEGREE,
    *,
    gap_threshold: "float | None" = None,
    rng=None,
    engine: "MPCEngine | None" = None,
) -> "dict[int, Graph]":
    """``RegularGraphConstruction`` (Section 4): one ``d``-regular expander
    per *distinct* requested size.

    The paper builds ``H_{n_i}`` for the degree sequence of the input graph;
    each vertex's cloud is then a copy of the expander for its degree
    (Lemma 4.6), so only distinct sizes need construction.  MPC cost
    (Lemma 4.5): sizes up to the machine memory are built locally in O(1)
    rounds (packed many-per-machine); larger ones via the parallel
    sort-based permutation sampler in ``O(1/δ)`` rounds — charged on
    ``engine`` when provided.
    """
    rng = ensure_rng(rng)
    distinct = sorted({check_positive_int(s, "size") for s in sizes})
    total_work = sum(distinct) * d

    if engine is not None:
        with engine.phase("RegularGraphConstruction"):
            small = [s for s in distinct if s * d <= engine.machine_memory]
            large = [s for s in distinct if s * d > engine.machine_memory]
            if small:
                # Step 1: local construction, one shuffle to place them.
                engine.charge_shuffle(sum(small) * d, label="pack small expanders")
            if large:
                # Step 2: all large expanders are built by ONE parallel
                # sort over the union of their permutation keys (keys are
                # tagged by (size, permutation index), Lemma 4.5).
                large_work = sum(large) * d
                engine.charge_shuffle(large_work, label="sample permutation keys")
                engine.charge_sort(large_work, label="sort permutation keys")
            engine.note_data_volume(total_work)

    return {
        s: build_expander(s, d, gap_threshold=gap_threshold, rng=rng)[0]
        for s in distinct
    }
