"""Graph products: parallel expander construction, replacement, zig-zag."""

from repro.products.expanders import (
    DEFAULT_EXPANDER_DEGREE,
    PAPER_EXPANDER_DEGREE,
    build_expander,
    circulant_multigraph,
    friedman_gap_threshold,
    regular_graph_construction,
)
from repro.products.replacement import ReplacementProduct, replacement_product
from repro.products.zigzag import ZigZagProduct, zigzag_product

__all__ = [
    "DEFAULT_EXPANDER_DEGREE",
    "PAPER_EXPANDER_DEGREE",
    "friedman_gap_threshold",
    "circulant_multigraph",
    "build_expander",
    "regular_graph_construction",
    "ReplacementProduct",
    "replacement_product",
    "ZigZagProduct",
    "zigzag_product",
]
