"""Pipeline configuration: every constant in one place, paper values noted.

The paper's constants guarantee ``1 - 1/poly(n)`` success for asymptotic
``n`` and are astronomically large (Eq. 3 sets the oversampling factor to
``s = 10⁶ log n / ε²`` with ``ε = (100 log n)⁻²``, i.e. ``s ≈ 10¹⁴`` at
``n = 10⁵``).  The library defaults reproduce the *structure* of the
algorithm — the same phases, the same growth schedule, the same failure
handling — at laptop scale, and every scaled constant is recorded here next
to its paper counterpart.  Failures that the paper's constants would make
vanishingly rare are handled by honest counted fallback rounds (see
``repro.core.grow``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.utils.validation import check_in_range, check_positive_int


@dataclass(frozen=True)
class PipelineConfig:
    """Tunable constants for the Theorem 4 pipeline.

    Attributes
    ----------
    delta:
        Memory exponent: machines have ``s = N^delta`` memory.  Paper:
        any constant ``δ > 0``.
    expander_degree:
        Cloud degree ``d`` for the regularization step.  Paper: 100
        (Cor. 4.4); default 8 — the acceptance gap threshold adapts via
        Friedman's bound.
    gamma:
        Total-variation target for the mixing walks.  Paper: ``n^{-10}``
        (Lemma 5.1); default ``10^{-3}`` (float64-scale substitute).
    gap_retention:
        Calibrated fraction of the base spectral gap that survives the
        replacement product — used to size walk lengths from the *input*
        gap bound.  Paper: the Prop. 4.2 constant ``Ω(d⁻¹ λ_H²)``
        (orders of magnitude pessimistic).  Default ``None`` computes
        ``0.8/(expander_degree+1)`` — a walk spends ``≈ d/(d+1)`` of its
        steps inside clouds, which dilutes the base gap by that factor
        (validated by the regularization tests and bench E4).
    max_walk_length:
        Safety cap on the walk length ``T``.
    oversample:
        The concentration factor ``s`` of Eq. 3 (there ``10⁶ log n/ε²``);
        default 8: expected leader-neighbour counts per non-leader.
    growth:
        The base growth factor ``Δ/s`` — components grow by
        ``growth^{2^{i-1}}`` in phase ``i`` (Lemma 6.7); the paper's
        ``Δ = 100 s`` corresponds to growth 100.
    max_phases:
        Cap on ``F`` (paper: ``F = argmin Δ^{2^i} ≥ n^{1/100}``,
        always ``O(log log n)``).
    target_size_exponent:
        Stop growing when components reach ``n^exponent`` (paper: 1/100
        with their constants; default 1/3 so the final contraction graph
        is small at laptop scale).
    walk_rounds_cap:
        Cap on parallel repetitions of ``SimpleRandomWalk`` when using the
        layered-graph walker (paper: Θ(log n)).
    leader_floor:
        Lower bound on the leader probability, guarding degenerate
        schedules at tiny ``n``.
    """

    delta: float = 0.25
    expander_degree: int = 8            # paper: 100
    gamma: float = 1e-3                 # paper: n^{-10}
    gap_retention: "float | None" = None  # paper: Prop 4.2 constant
    max_walk_length: int = 1024
    oversample: int = 8                 # paper: 1e6 log n / eps^2 (Eq. 3)
    growth: int = 4                     # paper: Delta = 100 s
    max_phases: int = 4                 # paper: F = O(log log n)
    target_size_exponent: float = 1 / 3  # paper: 1/100
    walk_rounds_cap: int = 24           # paper: Theta(log n)
    leader_floor: float = 1e-4
    broadcast_budget: int = 8           # paper: O(1) rounds (Claim 6.14)

    def __post_init__(self) -> None:
        check_in_range(self.delta, "delta", 1e-6, 1.0)
        check_positive_int(self.expander_degree, "expander_degree")
        if self.expander_degree % 2 != 0:
            raise ValueError("expander_degree must be even")
        check_in_range(self.gamma, "gamma", 1e-300, 0.5)
        if self.gap_retention is not None:
            check_in_range(self.gap_retention, "gap_retention", 1e-6, 1.0)
        check_positive_int(self.broadcast_budget, "broadcast_budget")
        check_positive_int(self.max_walk_length, "max_walk_length")
        check_positive_int(self.oversample, "oversample")
        check_positive_int(self.growth, "growth")
        if self.growth < 2:
            raise ValueError("growth must be >= 2")
        check_positive_int(self.max_phases, "max_phases")
        check_in_range(self.target_size_exponent, "target_size_exponent", 0.01, 1.0)

    # -- derived schedules -----------------------------------------------------

    @property
    def batch_half_degree(self) -> int:
        """Out-edges per vertex per phase batch (= ``Δ·s/2`` in Eq. 3 terms)."""
        return max(2, self.growth * self.oversample // 2)

    def phase_count(self, n: int) -> int:
        """``F``: smallest number of quadratic phases reaching components of
        ``n^target_size_exponent`` vertices, capped at ``max_phases``.

        Component size after phase ``i`` is ``growth^{2^i - 1}``
        (Lemma 6.7 with ``Δ_i = Δ^{2^{i-1}}``).
        """
        n = check_positive_int(n, "n")
        target = max(2.0, n**self.target_size_exponent)
        phases = 1
        while self.growth ** (2**phases - 1) < target and phases < self.max_phases:
            phases += 1
        return phases

    def growth_schedule(self, n: int) -> "list[int]":
        """Per-phase growth factors ``Δ_i = growth^{2^{i-1}}`` (Eq. 3)."""
        return [self.growth ** (2 ** (i - 1)) for i in range(1, self.phase_count(n) + 1)]

    def walk_count(self, n: int) -> int:
        """Walk targets needed per vertex: ``F`` batches of
        ``batch_half_degree`` each (paper: ``50 log n`` per Lemma 5.1
        invocation, repeated ``F·Δ·s/(100 log n)`` times — same product)."""
        return self.phase_count(n) * self.batch_half_degree

    @property
    def effective_gap_retention(self) -> float:
        """``gap_retention`` or the degree-aware default ``0.8/(d+1)``."""
        if self.gap_retention is not None:
            return self.gap_retention
        return 0.8 / (self.expander_degree + 1)

    def walk_length(self, n: int, gap_bound: float) -> int:
        """Walk length ``T`` from a spectral-gap bound on the *input* graph:
        Prop. 2.2 applied to the regularized graph, whose gap is modelled as
        ``effective_gap_retention · gap_bound``."""
        from repro.graph.walks import mixing_time_bound

        effective_gap = max(1e-9, self.effective_gap_retention * gap_bound)
        t = mixing_time_bound(n, min(effective_gap, 2.0), self.gamma)
        return min(self.max_walk_length, max(4, t))

    def with_overrides(self, **kwargs) -> "PipelineConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


#: The constants the paper itself uses (Eq. 3 and Section 4/5) — kept for
#: documentation and for tests that check our schedule formulas degrade to
#: the paper's in the appropriate regime.
def paper_constants(n: int) -> dict:
    """Evaluate the paper's constant choices at a given ``n`` (Eq. 3)."""
    n = check_positive_int(n, "n")
    log_n = math.log(n) if n > 1 else 1.0
    eps = (100.0 * log_n) ** -2
    oversample = 1e6 * log_n / eps**2
    delta_value = 100.0 * oversample
    phases = 1
    while delta_value ** (2**phases) < n ** (1 / 100):
        phases += 1
    return {
        "eps": eps,
        "oversample": oversample,
        "delta": delta_value,
        "phases": phases,
        "expander_degree": 100,
        "gamma": float(n) ** -10 if n > 1 else 0.1,
        "walks_per_vertex": 50.0 * log_n,
    }
