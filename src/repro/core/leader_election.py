"""The leader-election primitive (Section 6, ``LeaderElection``).

On an (almost) ``d·s``-regular graph, electing each vertex a leader with
probability ``1/d`` gives every non-leader ``≈ s`` leader neighbours
(concentrated, since ``s`` is the oversampling factor); each non-leader
joins a uniformly random leader neighbour, and the resulting stars are
components of size ``≈ d`` (Lemma 6.4, the "equipartition" lemma).

The implementation is vectorised over an edge array of the contraction
graph.  Non-leaders with no leader neighbour keep ``M(v) = ⊥`` (returned as
-1) and survive as their own components — the paper ignores them because
its constants make them vanishingly rare; at library scale they simply are
handled by later phases or the final broadcast stage, with the extra rounds
counted honestly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpc.engine import MPCEngine
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_nonnegative_int, check_probability


@dataclass(frozen=True)
class LeaderElectionResult:
    """Outcome of one ``LeaderElection`` round.

    Attributes
    ----------
    is_leader:
        Boolean per vertex.
    leader_of:
        For a matched non-leader, the chosen leader ``M(v)``; for a leader,
        itself; -1 for unmatched non-leaders (``M(v) = ⊥``).
    chosen_edge:
        For matched non-leaders, the index (into the input edge array) of
        the edge used to join the leader; -1 otherwise.  These edges are
        the spanning-tree certificates of Claim 6.12.
    """

    is_leader: np.ndarray
    leader_of: np.ndarray
    chosen_edge: np.ndarray

    @property
    def groups(self) -> np.ndarray:
        """Component representative per vertex: the leader for matched
        vertices, self for everyone else (leaders and unmatched)."""
        fallback = np.arange(self.leader_of.shape[0], dtype=np.int64)
        return np.where(self.leader_of >= 0, self.leader_of, fallback)

    def component_sizes(self) -> np.ndarray:
        """Sizes of the returned star components (Lemma 6.4's ``|S_i|``)."""
        return np.bincount(self.groups, minlength=self.leader_of.shape[0])[
            np.unique(self.groups)
        ]


def leader_election(
    n: int,
    edges: np.ndarray,
    leader_prob: float,
    rng=None,
    *,
    engine: "MPCEngine | None" = None,
) -> LeaderElectionResult:
    """``LeaderElection`` on the graph ``([n], edges)``.

    ``edges`` is an ``(m, 2)`` array (self-loops allowed but never used for
    matching; parallel edges bias the uniform choice the same way parallel
    edges would in the paper's contraction graph, so callers deduplicate
    first as Definition 2 requires).

    MPC cost: two shuffles — one to broadcast leader flags along edges, one
    for the non-leaders' choices (Claim 6.5's O(1) rounds).
    """
    n = check_nonnegative_int(n, "n")
    leader_prob = check_probability(leader_prob, "leader_prob")
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    rng = ensure_rng(rng)

    is_leader = rng.random(n) < leader_prob
    leader_of = np.full(n, -1, dtype=np.int64)
    leader_of[is_leader] = np.flatnonzero(is_leader)
    chosen_edge = np.full(n, -1, dtype=np.int64)

    if edges.shape[0]:
        u, v = edges[:, 0], edges[:, 1]
        not_loop = u != v
        # Candidate incidences: non-leader endpoint -> leader endpoint.
        forward = not_loop & ~is_leader[u] & is_leader[v]
        backward = not_loop & is_leader[u] & ~is_leader[v]
        src = np.concatenate([u[forward], v[backward]])
        dst = np.concatenate([v[forward], u[backward]])
        eid = np.concatenate([np.flatnonzero(forward), np.flatnonzero(backward)])
        if src.size:
            # Uniform choice per non-leader: random priorities, keep the
            # first occurrence of each source in priority order.
            priority = rng.random(src.size)
            order = np.lexsort((priority, src))
            src_sorted = src[order]
            first = np.ones(src_sorted.size, dtype=bool)
            first[1:] = src_sorted[1:] != src_sorted[:-1]
            winners = order[first]
            leader_of[src[winners]] = dst[winners]
            chosen_edge[src[winners]] = eid[winners]

    if engine is not None:
        with engine.phase("LeaderElection"):
            engine.charge_shuffle(edges.shape[0], label="broadcast leader flags")
            engine.charge_shuffle(edges.shape[0], label="choose leaders")

    return LeaderElectionResult(
        is_leader=is_leader, leader_of=leader_of, chosen_edge=chosen_edge
    )
