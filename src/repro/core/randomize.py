"""Step 2 — Randomization (Section 5, Lemma 5.1).

Transforms each connected component of a regular graph into (a close
approximation of) a sample from the random-graph distribution ``G(n_i, 2k)``
on the same vertex set: every vertex acquires ``k`` out-neighbours drawn
from ``k`` mutually independent lazy random walks of length ``T ≥ T_mix``.
Because a walk cannot leave its component, components are exactly preserved;
because ``T`` exceeds the mixing time, each target is ``γ``-close to uniform
over the component (the regularized graph's stationary distribution is
uniform), so the component's distribution is ``n·γ``-close in total
variation to ``G(n_i, 2k)`` — the Lemma 5.1 guarantee.

The walk targets are additionally partitioned into *batches* whose
randomness is disjoint: ``GrowComponents`` (Section 6) consumes one fresh
batch per phase to keep contraction decisions independent of the remaining
edges (the "fresh random seed" device discussed in Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.walk_engine import direct_walk_targets, independent_random_walks
from repro.graph.graph import Graph
from repro.mpc.engine import MPCEngine
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class RandomizedGraph:
    """Output of the randomization step.

    Attributes
    ----------
    graph:
        The union of all batch edges — the graph ``H`` of Lemma 5.1
        (``V(H) = V(G)``, per-vertex out-degree = ``walks_per_vertex``).
    batches:
        Edge arrays ``(n·k_b, 2)``, one per phase batch, disjoint randomness.
    walk_length:
        The length ``T`` actually walked.
    """

    graph: Graph
    batches: "list[np.ndarray]"
    walk_length: int

    @property
    def batch_count(self) -> int:
        """Number of independent per-phase edge batches."""
        return len(self.batches)


def randomize_components(
    regular_graph: Graph,
    walk_length: int,
    *,
    batches: int,
    batch_half_degree: int,
    rng=None,
    engine: "MPCEngine | None" = None,
    walk_mode: str = "direct",
) -> RandomizedGraph:
    """Lemma 5.1, batched for the Section 6 preprocessing.

    Parameters
    ----------
    regular_graph:
        The ``Δ``-regular graph from the regularization step.
    walk_length:
        ``T`` — at least the ``γ``-mixing time of every component.
    batches, batch_half_degree:
        ``batches`` independent edge batches are produced, each giving every
        vertex ``batch_half_degree`` out-edges (so each batch is
        distributed as ``G(n_i, 2·batch_half_degree)`` per component).
    walk_mode:
        ``"direct"`` — vectorised independent walkers (the scale mode;
        identical output distribution, see DESIGN.md);
        ``"layered"`` — the full Theorem 3 layered-graph data structure
        with independence detection (one walk per vertex per run; slower,
        faithful to the MPC data flow).
    """
    walk_length = check_positive_int(walk_length, "walk_length")
    batches = check_positive_int(batches, "batches")
    batch_half_degree = check_positive_int(batch_half_degree, "batch_half_degree")
    rng = ensure_rng(rng)
    n = regular_graph.n
    total_walks = batches * batch_half_degree

    if walk_mode == "direct":
        targets = direct_walk_targets(
            regular_graph,
            walk_length,
            total_walks,
            rng,
            lazy=True,
            engine=engine,
        )
    elif walk_mode == "layered":
        # Laziness via self-loops (Section 5.2): Δ loops double the degree
        # and make the plain walk of the augmented graph the lazy walk of
        # the original.
        lazy_graph = regular_graph.with_self_loops(regular_graph.degree(0))
        columns = []
        charged_engine = engine
        for _ in range(total_walks):
            columns.append(
                independent_random_walks(
                    lazy_graph, walk_length, rng, engine=charged_engine
                )
            )
            charged_engine = None  # parallel invocations: charge rounds once
        targets = np.stack(columns, axis=1)
    else:
        raise ValueError(f"unknown walk_mode {walk_mode!r}")

    sources = np.arange(n, dtype=np.int64)
    batch_arrays = []
    for b in range(batches):
        cols = targets[:, b * batch_half_degree : (b + 1) * batch_half_degree]
        batch_edges = np.stack(
            [np.repeat(sources, batch_half_degree), cols.ravel()], axis=1
        )
        batch_arrays.append(batch_edges)

    all_edges = np.concatenate(batch_arrays, axis=0)
    graph = Graph(n, all_edges)

    if engine is not None:
        engine.charge_shuffle(all_edges.shape[0], label="materialize H edges")

    return RandomizedGraph(graph=graph, batches=batch_arrays, walk_length=walk_length)
