"""Parallel random-walk machinery (Section 5.1, Theorem 3).

``simple_random_walk`` implements ``SimpleRandomWalk(G, t)`` over the
sampled layered graph: every vertex obtains a walk target distributed as
``D_RW(v, t)``, and ``detect_independence`` (the ``Mark`` /
``DetectIndependence`` procedures) flags the ``Ω(n)`` starts whose paths are
vertex-disjoint — whose targets are therefore *mutually independent*
(Observation 5.2).  ``independent_random_walks`` repeats the construction
Θ(log n) times in parallel and keeps, for each vertex, the target from the
first run in which its path was disjoint (Theorem 3's proof).

``direct_walk_targets`` is the scale substitute recorded in DESIGN.md: it
samples the *same* product distribution ``⊗_v D_RW(v, t)`` directly (one
independent walker per vertex, vectorised), and charges the engine the same
round costs — used by the pipeline for large inputs where materialising the
``O(n t²)`` layered graph is wasteful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.layered import (
    JumpTables,
    SampledLayeredGraph,
    build_jump_tables,
    is_power_of_two,
    paths_from_starts,
    sample_layered_graph,
)
from repro.graph.graph import Graph
from repro.mpc.engine import MPCEngine
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


def next_power_of_two(x: int) -> int:
    """Smallest power of two ``>= x`` (``x`` must be positive)."""
    x = check_positive_int(x, "x")
    return 1 << (x - 1).bit_length()


@dataclass(frozen=True)
class WalkRun:
    """Output of one ``SimpleRandomWalk`` execution.

    ``targets[v]`` is the endpoint of a ``t``-step walk from ``v`` (always
    valid, always distributed ``D_RW(v, t)``); ``independent[v]`` flags the
    vertices whose walks are mutually independent of every other walk in
    this run (disjoint paths).
    """

    targets: np.ndarray
    independent: np.ndarray
    t: int


def simple_random_walk(
    graph: Graph,
    t: int,
    rng=None,
    *,
    engine: "MPCEngine | None" = None,
) -> WalkRun:
    """``SimpleRandomWalk(G, t)`` + ``DetectIndependence`` (Section 5.1).

    ``graph`` must be regular; ``t`` is rounded up to a power of two
    (walking longer than the mixing time is harmless).  MPC costs
    (Theorem 3): ``O(log t)`` doubling iterations, each a parallel search
    over the ``O(n t²)`` layered vertices, plus the marking pass.
    """
    rng = ensure_rng(rng)
    t = next_power_of_two(t)
    sampled = sample_layered_graph(graph, t, rng)
    jumps = build_jump_tables(sampled)
    starts = sampled.distinguished_starts()
    paths = paths_from_starts(sampled, jumps, starts)
    endpoints = paths[:, -1]
    targets = sampled.base_vertex(endpoints)
    independent = detect_independence(paths)

    if engine is not None:
        with engine.phase("SimpleRandomWalk"):
            layered_size = sampled.vertex_count
            engine.charge_shuffle(layered_size, label="sample G_S")
            for _ in range(jumps.doubling_steps):
                engine.charge_search(layered_size, label="pointer double")
            for _ in range(jumps.doubling_steps):
                engine.charge_search(layered_size, label="mark paths")
            engine.charge_sort(graph.n * (t + 1), label="detect collisions")
    return WalkRun(targets=targets, independent=independent, t=t)


def detect_independence(paths: np.ndarray) -> np.ndarray:
    """``DetectIndependence``: keep starts whose paths share no layered
    vertex with any other start's path.

    ``paths`` is the ``(k, t+1)`` matrix from ``paths_from_starts``.  A
    layered vertex visited by two different paths disqualifies *both*
    (conservative, as in the paper: any multiply-marked vertex removes
    every path through it).  Within-path repeats are impossible (layers
    strictly increase), so counting occurrences suffices.
    """
    k, _ = paths.shape
    flat = paths.ravel()
    order = np.argsort(flat, kind="stable")
    sorted_vertices = flat[order]
    # Boundaries of equal runs.
    new_run = np.empty(sorted_vertices.size, dtype=bool)
    new_run[0] = True
    np.not_equal(sorted_vertices[1:], sorted_vertices[:-1], out=new_run[1:])
    run_ids = np.cumsum(new_run) - 1
    run_sizes = np.bincount(run_ids)
    shared = run_sizes[run_ids] > 1  # this occurrence lies in a shared vertex
    owner = order // paths.shape[1]  # row (start) of each occurrence
    bad_owner = np.zeros(k, dtype=bool)
    np.logical_or.at(bad_owner, owner, shared)
    return ~bad_owner


def independent_random_walks(
    graph: Graph,
    t: int,
    rng=None,
    *,
    max_runs: int = 24,
    engine: "MPCEngine | None" = None,
) -> np.ndarray:
    """Theorem 3: one independent ``t``-step walk target per vertex.

    Runs ``simple_random_walk`` repeatedly (the paper does Θ(log n) runs in
    parallel — rounds are charged for one run, data volume for all) and
    takes each vertex's target from the first run where its path was
    disjoint.  Raises if some vertex never succeeds within ``max_runs``
    (probability ``2^{-max_runs}`` per vertex by Lemma 5.3).
    """
    rng = ensure_rng(rng)
    targets = np.full(graph.n, -1, dtype=np.int64)
    pending = np.ones(graph.n, dtype=bool)
    runs = 0
    charged_engine = engine
    while pending.any():
        if runs >= max_runs:
            raise RuntimeError(
                f"{int(pending.sum())} vertices lack independent walks "
                f"after {max_runs} runs (Lemma 5.3 gives p>=1/2 per run)"
            )
        run = simple_random_walk(graph, t, rng, engine=charged_engine)
        charged_engine = None  # parallel runs: rounds charged once
        adopt = pending & run.independent
        targets[adopt] = run.targets[adopt]
        pending &= ~run.independent
        runs += 1
    if engine is not None:
        # Data volume scales with the number of parallel repetitions.
        engine.note_data_volume(graph.n * (2 * t) * (t + 1) * runs)
    return targets


def direct_walk_targets(
    graph: Graph,
    t: int,
    walks_per_vertex: int,
    rng=None,
    *,
    lazy: bool = True,
    engine: "MPCEngine | None" = None,
) -> np.ndarray:
    """Sample ``walks_per_vertex`` mutually independent ``t``-step walk
    endpoints from every vertex of a regular graph, vectorised.

    This draws from exactly the product distribution Theorem 3's data
    structure produces (independence per walker is by construction), so the
    pipeline can use it interchangeably at scale; the MPC rounds charged
    match ``independent_random_walks``.  ``lazy=True`` walks the lazy chain
    (the paper implements laziness by adding Δ self-loops — Section 5.2 —
    which is distribution-identical to flipping a stay coin per step).
    """
    t = check_positive_int(t, "t")
    walks_per_vertex = check_positive_int(walks_per_vertex, "walks_per_vertex")
    if not graph.is_regular():
        raise ValueError("direct walker requires a regular graph")
    degree = graph.degree(0)
    if degree == 0:
        raise ValueError("graph must have positive degree")
    rng = ensure_rng(rng)

    n = graph.n
    neighbors = graph.heads.reshape(n, degree)
    walkers = np.tile(np.arange(n, dtype=np.int64), walks_per_vertex)
    for _ in range(t):
        ports = rng.integers(0, degree, size=walkers.size)
        stepped = neighbors[walkers, ports]
        if lazy:
            stay = rng.random(walkers.size) < 0.5
            walkers = np.where(stay, walkers, stepped)
        else:
            walkers = stepped

    if engine is not None:
        t_pow = next_power_of_two(t)
        with engine.phase("SimpleRandomWalk"):
            layered_size = n * (2 * t_pow) * (t_pow + 1)
            engine.charge_shuffle(layered_size, label="sample G_S")
            doublings = int(np.log2(t_pow))
            for _ in range(doublings):
                engine.charge_search(layered_size, label="pointer double")
            for _ in range(doublings):
                engine.charge_search(layered_size, label="mark paths")
            engine.charge_sort(n * (t_pow + 1), label="detect collisions")
            engine.note_data_volume(layered_size * walks_per_vertex)

    return walkers.reshape(walks_per_vertex, n).T
