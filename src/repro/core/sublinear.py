"""Theorem 2 — ``SublinearConn``: connectivity on *arbitrary* graphs with
mildly sublinear memory.

For machines of memory ``s = n^{Ω(1)}``:

1. **Walk**: run a random walk of length ``t = Õ(d³)`` from every vertex
   (``SimpleRandomWalk`` works unchanged on irregular graphs — the walks
   are just not independent, which this algorithm never needs) and connect
   each vertex to the distinct vertices its walk visited.  By the
   Barnes–Feige bound, every walk either covers its whole component or
   visits ``≥ d`` distinct vertices, so the resulting graph ``G̃`` has
   minimum "effective degree" ``d ≈ Õ(n)/s``.  O(log t) rounds.
2. **Contract**: one ``LeaderElection`` with leader probability
   ``Θ(log n / d)`` — components of size ``≈ d/log n`` collapse, leaving
   ``H`` with ``Õ(n/d) = O(s/polylog)`` vertices.  O(1) rounds.
3. **Sketch**: every vertex of ``H`` emits an ``O(log³)``-bit AGM sketch
   (Prop. 8.1) to one coordinator machine, which decodes all components
   locally.  O(1) rounds.

Scale substitutions (DESIGN.md): ``d = ceil(c·n/s)`` (the paper's
``n log⁴n / s`` polylog factor is meaningless at laptop ``n``), and the
walk budget ``t = min(cap, c_t · d³ log n)`` — the cubic Barnes–Feige
exponent is kept, the cap only guards wall-clock time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.leader_election import leader_election
from repro.graph.components import canonical_labels
from repro.graph.graph import Graph
from repro.mpc.engine import MPCEngine
from repro.sketch.agm import AGMSketch, agm_connected_components
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class SublinearConnResult:
    """Output and telemetry of ``SublinearConn``."""

    labels: np.ndarray
    rounds: int
    engine: MPCEngine
    degree_target: int
    walk_length: int
    contracted_vertices: int
    sketch_words_per_vertex: int

    @property
    def component_count(self) -> int:
        """Number of components in the returned labelling."""
        return int(self.labels.max()) + 1 if self.labels.size else 0


def degree_target(n: int, machine_memory: int, *, boost: float = 1.0) -> int:
    """The paper's ``d = n·polylog/s`` with the polylog dropped for scale."""
    n = check_positive_int(n, "n")
    machine_memory = check_positive_int(machine_memory, "machine_memory")
    return max(2, math.ceil(boost * n / machine_memory))


def walk_budget(d: int, n: int, *, factor: float = 1.0, cap: int = 20_000) -> int:
    """Barnes–Feige walk length ``t = Θ(d³ log n)`` (Section 8), capped."""
    d = check_positive_int(d, "d")
    n = check_positive_int(n, "n")
    return int(min(cap, max(4, math.ceil(factor * d**3 * math.log(max(n, 2))))))


def _walk_visits(
    graph: Graph, t: int, keep: int, rng
) -> "tuple[np.ndarray, np.ndarray]":
    """Walk ``t`` steps from every vertex simultaneously; return edge
    endpoints ``(source, visited)`` for up to ``keep`` distinct visited
    vertices per walk (degree boosting needs only ``d`` of them)."""
    n = graph.n
    indptr, heads = graph.indptr, graph.heads
    degrees = np.asarray(graph.degrees)
    if degrees.min() == 0:
        raise ValueError("walks undefined with isolated vertices (strip first)")

    current = np.arange(n, dtype=np.int64)
    visits = np.empty((t + 1, n), dtype=np.int64)
    visits[0] = current
    for step in range(1, t + 1):
        offsets = (rng.random(n) * degrees[current]).astype(np.int64)
        current = heads[indptr[current] + offsets]
        visits[step] = current

    # Distinct visits per walk, truncated to `keep`.
    sources = []
    targets = []
    columns = visits.T  # (n, t+1)
    sorted_cols = np.sort(columns, axis=1)
    for v in range(n):
        row = sorted_cols[v]
        distinct = row[np.concatenate(([True], row[1:] != row[:-1]))]
        distinct = distinct[distinct != v][:keep]
        if distinct.size:
            sources.append(np.full(distinct.size, v, dtype=np.int64))
            targets.append(distinct)
    if not sources:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    return np.concatenate(sources), np.concatenate(targets)


def sublinear_connectivity(
    graph: Graph,
    machine_memory: int,
    rng=None,
    *,
    engine: "MPCEngine | None" = None,
    walk_factor: float = 1.0,
    walk_cap: int = 20_000,
    leader_boost: float = 2.0,
) -> SublinearConnResult:
    """Theorem 2: components of an arbitrary graph in
    ``O(log log n + log(n/s))`` rounds with memory ``s``.

    Always exact: the AGM stage decodes the contracted graph completely,
    and contraction never crosses true components.
    """
    machine_memory = check_positive_int(machine_memory, "machine_memory")
    rng = ensure_rng(rng)
    if engine is None:
        engine = MPCEngine(machine_memory)

    n = graph.n
    if graph.m == 0:
        return SublinearConnResult(
            labels=np.arange(n, dtype=np.int64),
            rounds=engine.rounds,
            engine=engine,
            degree_target=0,
            walk_length=0,
            contracted_vertices=n,
            sketch_words_per_vertex=0,
        )

    degrees = np.asarray(graph.degrees)
    isolated = np.flatnonzero(degrees == 0)
    core_idx = np.flatnonzero(degrees > 0)
    core, _ = graph.subgraph(core_idx)

    d = degree_target(n, machine_memory)
    t = walk_budget(d, n, factor=walk_factor, cap=walk_cap)

    # Step 1: walks boost the minimum degree (SimpleRandomWalk semantics;
    # O(log t) MPC rounds via pointer doubling, Claim 5.7).
    with engine.phase("Walk"):
        src, dst = _walk_visits(core, t, keep=4 * d, rng=rng)
        layered = core.n * (2 * t) * (t + 1)
        engine.charge_shuffle(layered, label="sample G_S")
        doublings = max(1, math.ceil(math.log2(t)))
        for _ in range(doublings):
            engine.charge_search(layered, label="pointer double")
        engine.charge_sort(core.n * (t + 1), label="collect visited (Mark)")
        engine.note_data_volume(core.n * t)

    walk_edges = np.stack([src, dst], axis=1) if src.size else np.empty((0, 2), np.int64)
    boosted_edges = np.concatenate([core.edges, walk_edges], axis=0)

    # Step 2: one leader election with p = Θ(log n / d).
    with engine.phase("Contract"):
        p = min(1.0, leader_boost * math.log(max(core.n, 2)) / d)
        election = leader_election(core.n, boosted_edges, p, rng, engine=engine)
        groups = canonical_labels(election.groups)
        engine.charge_sort(boosted_edges.shape[0], label="contract to H")

    contracted = Graph(int(groups.max()) + 1, groups[core.edges]).simplify()

    # Step 3: AGM sketches to a coordinator (Prop. 8.1).
    with engine.phase("Sketch"):
        sketch = AGMSketch.from_graph(contracted, rng)
        engine.charge_shuffle(contracted.n, label="send sketches to coordinator")
        engine.charge_broadcast(contracted.n, label="shared randomness")
        h_labels, _ = agm_connected_components(contracted, rng, sketch=sketch)

    core_labels = h_labels[groups]
    labels = np.full(n, -1, dtype=np.int64)
    labels[core_idx] = core_labels
    if isolated.size:
        offset = int(core_labels.max()) + 1 if core_labels.size else 0
        labels[isolated] = offset + np.arange(isolated.size)

    return SublinearConnResult(
        labels=canonical_labels(labels),
        rounds=engine.rounds,
        engine=engine,
        degree_target=d,
        walk_length=t,
        contracted_vertices=contracted.n,
        sketch_words_per_vertex=sketch.words_per_vertex(),
    )
