"""The layered graph ``G(G, t)`` of Definition 1 and its sampled subgraph.

For a ``Δ``-regular graph ``G`` and walk length ``t``, the layered graph has
vertex set ``V × [2t] × [t+1]`` — ``2t`` copies of every vertex in each of
``t+1`` layers — with complete bipartite "bundles" of directed edges from
``(u, i, j)`` to ``(v, *, j+1)`` for every edge ``(u, v)`` of ``G``.

The *sampled* layered graph ``G_S`` keeps exactly one uniformly random
outgoing edge per vertex (a random neighbour of ``v`` in ``G`` and a random
copy index).  Because out-degrees are 1, each first-layer vertex ``α`` roots
a unique path ``P_α`` whose projection onto ``G`` is a ``t``-step random
walk; *vertex-disjoint* paths share no randomness, hence carry mutually
independent walks (Observation 5.2).  The ``2t`` copies per layer are what
makes disjointness likely: Lemma 5.3 shows each path started at the
distinguished copies ``V₁* = {(v, 1, 1)}`` is disjoint from all the others
with probability ≥ 1/2.

Layered vertices are flattened to integers:
``index(v, copy, layer) = layer · (n · 2t) + copy · n + v``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


def is_power_of_two(x: int) -> bool:
    """True iff ``x`` is a positive power of two."""
    return x >= 1 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class SampledLayeredGraph:
    """A 1-out sample ``G_S`` of the layered graph ``G(G, t)``.

    Attributes
    ----------
    n:
        Vertices of the base graph.
    t:
        Walk length (a power of two so that pointer doubling lands exactly
        on the last layer).
    successor:
        ``successor[idx]`` is the flattened index of the unique out-neighbour
        of layered vertex ``idx`` (-1 on the last layer).
    """

    n: int
    t: int
    successor: np.ndarray

    @property
    def copies(self) -> int:
        """Copies per base vertex within one layer (``2t``)."""
        return 2 * self.t

    @property
    def layer_size(self) -> int:
        """Layered vertices per layer (``n · copies``)."""
        return self.n * self.copies

    @property
    def vertex_count(self) -> int:
        """Total layered vertices (``layer_size · (t + 1)``)."""
        return self.layer_size * (self.t + 1)

    # -- index helpers -----------------------------------------------------

    def index(self, v: np.ndarray, copy: np.ndarray, layer: np.ndarray) -> np.ndarray:
        """Flattened index of layered vertex ``(v, copy, layer)``."""
        return (
            np.asarray(layer, dtype=np.int64) * self.layer_size
            + np.asarray(copy, dtype=np.int64) * self.n
            + np.asarray(v, dtype=np.int64)
        )

    def base_vertex(self, idx: np.ndarray) -> np.ndarray:
        """``v(α)`` — project a layered vertex back to the base graph."""
        return np.asarray(idx, dtype=np.int64) % self.n

    def layer_of(self, idx: np.ndarray) -> np.ndarray:
        """Layer number of a flattened layered-vertex index."""
        return np.asarray(idx, dtype=np.int64) // self.layer_size

    def distinguished_starts(self) -> np.ndarray:
        """``V₁* = {(v, copy 0, layer 0)}`` — flattened indices ``0..n-1``."""
        return np.arange(self.n, dtype=np.int64)


def sample_layered_graph(graph: Graph, t: int, rng=None) -> SampledLayeredGraph:
    """Sample ``G_S`` (step 1 of ``SimpleRandomWalk``).

    ``graph`` must be regular (the paper's independence analysis, and the
    memory bound O(Δ) per vertex, both require it).  ``t`` must be a power
    of two — callers round up, which only walks past the mixing time.
    """
    t = check_positive_int(t, "t")
    if not is_power_of_two(t):
        raise ValueError(f"walk length t must be a power of two, got {t}")
    if graph.n == 0:
        raise ValueError("cannot sample walks on the empty graph")
    if not graph.is_regular():
        raise ValueError("sampled layered graph requires a regular base graph")
    degree = graph.degree(0)
    if degree == 0:
        raise ValueError("base graph must have positive degree")
    rng = ensure_rng(rng)

    n = graph.n
    copies = 2 * t
    layer_size = n * copies
    total = layer_size * (t + 1)

    # Neighbour lookup matrix: row v lists the Δ neighbours of v.
    neighbors = graph.heads.reshape(n, degree)

    successor = np.full(total, -1, dtype=np.int64)
    active = layer_size * t  # all vertices below the last layer
    # For every (v, i, j), j <= t-1: pick a neighbour port and a copy.
    ports = rng.integers(0, degree, size=active)
    copy_choice = rng.integers(0, copies, size=active)
    base = np.tile(np.arange(n, dtype=np.int64), copies * t)
    layer = np.arange(active, dtype=np.int64) // layer_size
    targets = neighbors[base, ports]
    successor[:active] = (layer + 1) * layer_size + copy_choice * n + targets
    return SampledLayeredGraph(n=n, t=t, successor=successor)


@dataclass(frozen=True)
class JumpTables:
    """Pointer-doubling tables ``N_0 .. N_K`` over a sampled layered graph.

    ``tables[k][idx]`` is the layered vertex ``2^k`` steps down the unique
    path from ``idx`` (-1 if the path leaves the last layer).  ``K = log2 t``,
    so ``tables[-1]`` maps layer-0 vertices to their walk endpoints.
    """

    t: int
    tables: "list[np.ndarray]"

    @property
    def doubling_steps(self) -> int:
        """Pointer-doubling iterations performed (``log2 t``)."""
        return len(self.tables) - 1


def build_jump_tables(sampled: SampledLayeredGraph) -> JumpTables:
    """Steps 2–3 of ``SimpleRandomWalk``: ``N_i(α) = N_{i-1}(N_{i-1}(α))``.

    ``log2 t`` doubling iterations, each a parallel search in MPC
    (Claim 5.5 proves ``N_{log t}`` reaches the path endpoint).
    """
    levels = int(np.log2(sampled.t))
    tables = [sampled.successor]
    current = sampled.successor
    for _ in range(levels):
        nxt = np.where(current >= 0, current, 0)
        jumped = current[nxt]
        jumped = np.where(current >= 0, jumped, -1)
        tables.append(jumped)
        current = jumped
    return JumpTables(t=sampled.t, tables=tables)


def paths_from_starts(
    sampled: SampledLayeredGraph,
    jumps: JumpTables,
    starts: np.ndarray,
) -> np.ndarray:
    """All ``t+1`` layered vertices of each path ``P_α`` (the ``Mark``
    procedure, vectorised).

    Returns an ``(len(starts), t+1)`` matrix; column ``j`` holds the
    distance-``j`` vertex.  Built by binary doubling: the distance range
    ``[2^k, 2^{k+1})`` is the range ``[0, 2^k)`` shifted through ``N_k``.
    """
    starts = np.asarray(starts, dtype=np.int64)
    path = starts[:, None]
    for k in range(jumps.doubling_steps):
        shifted = jumps.tables[k][path]
        path = np.concatenate([path, shifted], axis=1)
    endpoints = jumps.tables[-1][starts][:, None]
    return np.concatenate([path, endpoints], axis=1)
