"""The paper's core contribution: the three-step connectivity pipeline."""

from repro.core.bfs_tree import BroadcastResult, broadcast_components
from repro.core.config import PipelineConfig, paper_constants
from repro.core.grow import (
    GrowResult,
    PhaseTelemetry,
    contract_batch,
    grow_components,
)
from repro.core.layered import (
    JumpTables,
    SampledLayeredGraph,
    build_jump_tables,
    paths_from_starts,
    sample_layered_graph,
)
from repro.core.leader_election import LeaderElectionResult, leader_election
from repro.core.pipeline import (
    AdaptiveIteration,
    AdaptiveResult,
    PipelineResult,
    mpc_connected_components,
    mpc_connected_components_adaptive,
)
from repro.core.random_graph_cc import RandomGraphCCResult, random_graph_components
from repro.core.randomize import RandomizedGraph, randomize_components
from repro.core.regularize import RegularizedGraph, regularize
from repro.core.sublinear import (
    SublinearConnResult,
    degree_target,
    sublinear_connectivity,
    walk_budget,
)
from repro.core.walk_engine import (
    WalkRun,
    detect_independence,
    direct_walk_targets,
    independent_random_walks,
    next_power_of_two,
    simple_random_walk,
)

__all__ = [
    "PipelineConfig",
    "paper_constants",
    # step 1
    "RegularizedGraph",
    "regularize",
    # walks / step 2
    "SampledLayeredGraph",
    "JumpTables",
    "sample_layered_graph",
    "build_jump_tables",
    "paths_from_starts",
    "WalkRun",
    "simple_random_walk",
    "detect_independence",
    "independent_random_walks",
    "direct_walk_targets",
    "next_power_of_two",
    "RandomizedGraph",
    "randomize_components",
    # step 3
    "LeaderElectionResult",
    "leader_election",
    "GrowResult",
    "PhaseTelemetry",
    "contract_batch",
    "grow_components",
    "BroadcastResult",
    "broadcast_components",
    "RandomGraphCCResult",
    "random_graph_components",
    # pipeline
    "PipelineResult",
    "mpc_connected_components",
    "AdaptiveIteration",
    "AdaptiveResult",
    "mpc_connected_components_adaptive",
    # theorem 2
    "SublinearConnResult",
    "sublinear_connectivity",
    "degree_target",
    "walk_budget",
]
