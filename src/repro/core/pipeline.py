"""The full Theorem 4 pipeline and the Corollary 7.1 adaptive variant.

``mpc_connected_components`` chains the three transformations:

1. **Regularize** (Lemma 4.1) — replacement product with expander clouds;
2. **Randomize** (Lemma 5.1) — independent mixing-length walks turn every
   component into a random graph, pre-split into fresh per-phase batches;
3. **Random-graph connectivity** (Lemma 6.1) — quadratic leader election
   (``GrowComponents``) plus the O(1)-diameter broadcast.

Total rounds: ``O((1/δ)(log log n + log(1/λ)))`` — the regularization is
O(1) sorts, the walk structure costs ``O(log T) = O(log log n + log(1/λ))``
searches, growing costs ``O(log log n)`` phases, and the final broadcast
O(1) levels.  A last *verification* pass contracts the original edges by
the computed labels and broadcasts to stabilisation: with the paper's
constants it is a no-op costing one sort; at library scale it doubles as
the honest fallback, so the returned labels are always exactly the true
components and any extra work is visible in the round count.

``mpc_connected_components_adaptive`` implements Corollary 7.1: geometric
gap guessing ``λ'_{j+1} = (λ'_j)^{1.1}`` with a growability check between
iterations, for inputs whose spectral gap is unknown.

Both entry points take a ``backend`` argument selecting the execution data
plane (see :mod:`repro.mpc.backends`): ``"local"`` runs the historical
accounting-only numpy path; ``"sharded"`` runs the same pipeline end to end
on numpy shards with enforced per-shard memory and per-round communication
caps, producing bit-identical labels plus shard-level resource counters in
``engine.summary()["backend"]``; ``"process"`` executes those sharded
kernels on a pool of OS worker processes over shared memory
(:class:`~repro.mpc.process_backend.ProcessBackend`) — bit-identical
labels, rounds, and counters, with real wall-clock parallelism on
multi-core hosts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bfs_tree import broadcast_components
from repro.core.config import PipelineConfig
from repro.core.grow import contract_batch
from repro.core.random_graph_cc import RandomGraphCCResult, random_graph_components
from repro.core.randomize import RandomizedGraph, randomize_components
from repro.core.regularize import RegularizedGraph, regularize
from repro.graph.components import canonical_labels
from repro.graph.graph import Graph
from repro.mpc.backends import ExecutionBackend, make_backend
from repro.mpc.engine import MPCEngine
from repro.mpc.plan import PlanBuilder
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_range


@dataclass(frozen=True)
class PipelineResult:
    """Everything a bench needs from one pipeline execution."""

    labels: np.ndarray
    rounds: int
    engine: MPCEngine
    walk_length: int
    phase_count: int
    verify_rounds: int
    regularized: "RegularizedGraph | None" = None
    randomized: "RandomizedGraph | None" = None
    cc: "RandomGraphCCResult | None" = None

    @property
    def component_count(self) -> int:
        """Number of components in the returned labelling."""
        return int(self.labels.max()) + 1 if self.labels.size else 0


def _finalize_against_graph(
    graph: Graph,
    labels: np.ndarray,
    engine: MPCEngine,
) -> "tuple[np.ndarray, int]":
    """Contract ``graph`` by ``labels`` and broadcast to stabilisation.

    Returns exact component labels and the number of broadcast rounds
    (0 when the pipeline's labels were already maximal).
    """
    edges, _ = contract_batch(labels, graph.edges, engine=engine)
    engine.charge_sort(graph.m, label="growability check")
    if edges.shape[0] == 0:
        return canonical_labels(labels), 0
    k = int(labels.max()) + 1
    result = broadcast_components(k, edges, engine=engine)
    return canonical_labels(result.labels[labels]), result.rounds


def mpc_connected_components(
    graph: Graph,
    spectral_gap_bound: float,
    *,
    config: "PipelineConfig | None" = None,
    rng=None,
    engine: "MPCEngine | str | object | None" = None,
    backend: "str | ExecutionBackend | None" = None,
    walk_mode: str = "direct",
    finalize: bool = True,
) -> PipelineResult:
    """Theorem 4: find all connected components of ``graph``, given a lower
    bound on the spectral gap of each component.

    Parameters
    ----------
    graph:
        Input (sparse) undirected graph.
    spectral_gap_bound:
        The paper's ``λ ∈ (0, 1]``: a lower bound on ``λ₂`` of every
        connected component.  Smaller bounds mean longer walks
        (``T = O(log(n/γ)/λ)``) and more rounds.
    config, rng:
        Tuning constants and randomness.
    engine:
        Either the accounting :class:`~repro.mpc.engine.MPCEngine` (a
        fresh ``MPCEngine.for_delta`` is created from ``config.delta``
        if absent) or an *algorithm engine* selector — the name or
        instance of a registered :mod:`repro.engines` connectivity
        engine (``"paper"``, ``"liu_tarjan"``, ``"exponentiation"``,
        ``"portfolio"``).  An algorithm engine runs on a fresh
        accounting engine built from ``config.delta`` over the
        ``backend`` argument; to combine a named engine with your own
        ``MPCEngine`` (e.g. for trace capture), call
        ``repro.engines.get_engine(name).run(..., mpc=...)`` directly.
    backend:
        Execution backend for the data plane: ``"local"`` (accounting
        only, the default), ``"sharded"`` (numpy shards with enforced
        per-shard memory and per-round communication caps), ``"process"``
        (the sharded kernels on a worker-process pool), or an
        :class:`~repro.mpc.backends.ExecutionBackend` instance.  When an
        ``engine`` is supplied its attached backend is used instead and
        this argument must stay ``None`` (:class:`ValueError` otherwise).
    walk_mode:
        Passed to the randomization step ("direct" or "layered").
    finalize:
        Run the verification/fallback broadcast (always on for end users;
        the adaptive variant disables it between guesses).
    """
    config = config or PipelineConfig()
    spectral_gap_bound = check_in_range(
        spectral_gap_bound, "spectral_gap_bound", 1e-12, 2.0
    )
    rng = ensure_rng(rng)
    if engine is not None and not isinstance(engine, MPCEngine):
        # Algorithm-engine dispatch: a registered connectivity engine
        # (by name or instance) runs on a fresh accounting engine over
        # the requested backend.  Lazy import — repro.engines depends
        # on this module.
        from repro.engines import resolve_engine

        algorithm = resolve_engine(engine)
        owns_backend = not isinstance(backend, ExecutionBackend)
        mpc = MPCEngine.for_delta(
            max(graph.n + graph.m, 2), config.delta, backend=make_backend(backend)
        )
        try:
            return algorithm.run(
                graph, spectral_gap_bound, config=config, rng=rng, mpc=mpc,
                walk_mode=walk_mode, finalize=finalize,
            )
        finally:
            if owns_backend:
                mpc.backend.close()
    # When the engine (and therefore its backend) is built here from a
    # string spec, this call owns it and must release any external
    # resources (e.g. a ProcessBackend's worker pool) before returning;
    # counters stay readable and a closed backend restarts on demand.
    owns_backend = engine is None and not isinstance(backend, ExecutionBackend)
    if engine is None:
        engine = MPCEngine.for_delta(
            max(graph.n + graph.m, 2), config.delta, backend=make_backend(backend)
        )
    elif backend is not None:
        raise ValueError(
            "pass the backend through the engine when supplying one "
            "(MPCEngine(..., backend=...))"
        )
    try:
        return _run_stages(
            graph, spectral_gap_bound, config, rng, engine,
            walk_mode=walk_mode, finalize=finalize,
        )
    finally:
        if owns_backend:
            engine.backend.close()


def _run_stages(
    graph: Graph,
    spectral_gap_bound: float,
    config: PipelineConfig,
    rng,
    engine: MPCEngine,
    *,
    walk_mode: str,
    finalize: bool,
) -> PipelineResult:
    """The three Theorem 4 stages plus verification, on a ready engine."""
    if graph.m == 0:
        # Every vertex is isolated: nothing to do.
        labels = np.arange(graph.n, dtype=np.int64)
        return PipelineResult(
            labels=labels,
            rounds=engine.rounds,
            engine=engine,
            walk_length=0,
            phase_count=0,
            verify_rounds=0,
        )

    # Place the input on the data plane: a sharded backend checks the edge
    # list fits its fleet before any stage runs (and counts the placement).
    # Recorded as a plan so a captured trace replays the placement too.
    builder = PlanBuilder("scatter-input")
    engine.run_plan(builder.build(builder.scatter(graph.edges)))

    with engine.phase("Step1-Regularize"):
        reg = regularize(
            graph, expander_degree=config.expander_degree, rng=rng, engine=engine
        )
    product_graph = reg.graph
    n_product = product_graph.n

    walk_length = config.walk_length(n_product, spectral_gap_bound)
    phases = config.phase_count(n_product)
    schedule = config.growth_schedule(n_product)

    with engine.phase("Step2-Randomize"):
        rand = randomize_components(
            product_graph,
            walk_length,
            batches=phases,
            batch_half_degree=config.batch_half_degree,
            rng=rng,
            engine=engine,
            walk_mode=walk_mode,
        )

    with engine.phase("Step3-RandomGraphCC"):
        cc = random_graph_components(
            n_product,
            rand.batches,
            schedule,
            rng,
            engine=engine,
            # finalize: run the broadcast to stabilisation (exactness);
            # otherwise enforce the paper's O(1)-round budget (Claim 6.14)
            # so oversized gap guesses visibly fail (Corollary 7.1).
            broadcast_budget=None if finalize else config.broadcast_budget,
        )

    labels = reg.lift_labels(cc.labels)
    verify_rounds = 0
    if finalize:
        with engine.phase("Verify"):
            labels, verify_rounds = _finalize_against_graph(graph, labels, engine)

    return PipelineResult(
        labels=labels,
        rounds=engine.rounds,
        engine=engine,
        walk_length=walk_length,
        phase_count=phases,
        verify_rounds=verify_rounds,
        regularized=reg,
        randomized=rand,
        cc=cc,
    )


@dataclass(frozen=True)
class AdaptiveIteration:
    """Telemetry for one gap guess of Corollary 7.1."""

    gap_guess: float
    walk_length: int
    rounds: int
    finished_vertices: int
    active_vertices: int


@dataclass(frozen=True)
class AdaptiveResult:
    """Outcome of the Corollary 7.1 adaptive pipeline: exact component
    ``labels``, total ``rounds``, the accounting ``engine``, and per-guess
    ``iterations`` telemetry.
    """

    labels: np.ndarray
    rounds: int
    engine: MPCEngine
    iterations: "list[AdaptiveIteration]"


def mpc_connected_components_adaptive(
    graph: Graph,
    *,
    config: "PipelineConfig | None" = None,
    rng=None,
    engine: "MPCEngine | None" = None,
    backend: "str | ExecutionBackend | None" = None,
    initial_gap: float = 0.5,
    gap_exponent: float = 1.1,
    min_gap: "float | None" = None,
    walk_mode: str = "direct",
) -> AdaptiveResult:
    """Corollary 7.1: components without knowing the spectral gap.

    Runs the pipeline with guesses ``λ'_1 = 1/2``, ``λ'_{j+1} = (λ'_j)^{1.1}``
    on the still-unfinished part of the graph.  After each run, a component
    is *final* iff no input edge leaves it (the growability post-check,
    one sort); others are retried with the smaller guess.  Components with
    gap ``λ₂(G_i)`` finish once ``λ'_j ≤ λ₂(G_i)``, after
    ``O(log log(1/λ₂(G_i)))`` guesses.
    """
    config = config or PipelineConfig()
    rng = ensure_rng(rng)
    owns_backend = engine is None and not isinstance(backend, ExecutionBackend)
    if engine is None:
        engine = MPCEngine.for_delta(
            max(graph.n + graph.m, 2), config.delta, backend=make_backend(backend)
        )
    elif backend is not None:
        raise ValueError(
            "pass the backend through the engine when supplying one "
            "(MPCEngine(..., backend=...))"
        )
    if min_gap is None:
        min_gap = 1.0 / max(graph.n**2, 4)
    # Same ownership contract as mpc_connected_components: a backend built
    # here from a string spec must be released even when an exception
    # escapes a guess iteration mid-run — relying on the ProcessBackend
    # finalizer instead can race pool shutdown at interpreter exit and
    # leaves arena segments linked until garbage collection.
    try:
        return _run_adaptive(
            graph, config, rng, engine,
            initial_gap=initial_gap, gap_exponent=gap_exponent,
            min_gap=min_gap, walk_mode=walk_mode,
        )
    finally:
        if owns_backend:
            engine.backend.close()


def _run_adaptive(
    graph: Graph,
    config: PipelineConfig,
    rng,
    engine: MPCEngine,
    *,
    initial_gap: float,
    gap_exponent: float,
    min_gap: float,
    walk_mode: str,
) -> AdaptiveResult:
    """The Corollary 7.1 guess loop, on a ready engine."""
    n = graph.n
    final_labels = np.full(n, -1, dtype=np.int64)
    next_label = 0
    active = np.ones(n, dtype=bool)
    iterations: "list[AdaptiveIteration]" = []
    gap_guess = initial_gap

    while active.any():
        active_idx = np.flatnonzero(active)
        sub, vertex_list = graph.subgraph(active_idx)
        rounds_before = engine.rounds
        exhausted = gap_guess < min_gap

        result = mpc_connected_components(
            sub,
            max(gap_guess, min_gap),
            config=config,
            rng=rng,
            engine=engine,
            walk_mode=walk_mode,
            # On the last allowed guess, finalize so termination is certain.
            finalize=exhausted,
        )
        labels = result.labels

        # Growability check (one sort): a label is final iff no edge of the
        # active subgraph crosses out of it.
        engine.charge_sort(sub.m, label="growability check")
        if sub.m:
            lu = labels[sub.edges[:, 0]]
            lv = labels[sub.edges[:, 1]]
            crossing = np.unique(np.concatenate([lu[lu != lv], lv[lu != lv]]))
        else:
            crossing = np.empty(0, dtype=np.int64)
        growable = np.zeros(int(labels.max()) + 1, dtype=bool)
        growable[crossing] = True

        finished_mask = ~growable[labels]
        finished_vertices = vertex_list[finished_mask]
        if finished_mask.any():
            parts = np.unique(labels[finished_mask])
            rank = np.searchsorted(parts, labels[finished_mask])
            final_labels[finished_vertices] = next_label + rank
            next_label += int(parts.size)
        active[finished_vertices] = False

        iterations.append(
            AdaptiveIteration(
                gap_guess=gap_guess,
                walk_length=result.walk_length,
                rounds=engine.rounds - rounds_before,
                finished_vertices=int(finished_vertices.size),
                active_vertices=int(active.sum()),
            )
        )
        gap_guess = gap_guess**gap_exponent

    return AdaptiveResult(
        labels=canonical_labels(final_labels),
        rounds=engine.rounds,
        engine=engine,
        iterations=iterations,
    )
