"""``GrowComponents`` (Section 6.1): quadratic component growth.

Phase ``i`` consumes a *fresh* batch ``G̃_i`` of random-graph edges, builds
the contraction graph of that batch with respect to the current component
partition (Definition 2), and runs ``LeaderElection`` with leader
probability ``1/Δ_i`` where ``Δ_i = Δ^{2^{i-1}}`` — so components grow from
``Δ_{i}/Δ`` to ``Δ_{i+1}/Δ`` vertices, i.e. *quadratically* per phase
(Lemma 6.7), as opposed to the constant factor of classical leader-election
connectivity.  Fresh batches keep the edges used in phase ``i`` independent
of all earlier contraction decisions, which is what lets the almost-
regularity invariant (Claims 6.9/6.10) recurse.

Telemetry captures everything Lemma 6.7 asserts per phase — component-size
intervals, contraction-graph degree statistics, vertex counts — so the E7
bench can print measured-vs-claimed tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.leader_election import leader_election
from repro.graph.components import canonical_labels
from repro.mpc.engine import MPCEngine
from repro.mpc.plan import PlanBuilder, submit_plan
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class PhaseTelemetry:
    """Measurements of one grow phase (the quantities in Lemma 6.7)."""

    phase: int
    growth_target: int
    leader_prob: float
    components_before: int
    components_after: int
    contraction_vertices: int
    contraction_edges: int
    mean_contraction_degree: float
    min_contraction_degree: int
    max_contraction_degree: int
    mean_component_size: float
    max_component_size: int
    unmatched: int


@dataclass(frozen=True)
class GrowResult:
    """Outcome of ``GrowComponents``.

    ``labels`` is a component-partition of the batch-union graph (never
    merges true components; possibly finer).  ``tree_edges`` are original
    vertex pairs certifying every merge (Claim 6.12: their union with
    later stages' certificates is a spanning forest).
    """

    labels: np.ndarray
    tree_edges: np.ndarray
    telemetry: "list[PhaseTelemetry]"


def contract_plan(labels: np.ndarray, batch: np.ndarray):
    """Record the contraction round (Definition 2) as a
    :class:`~repro.mpc.plan.RoundPlan`.

    One search (endpoint relabelling) feeding one reduce-by-key (dedup:
    min edge index per component pair), glued by the registered
    ``contract_keys`` / ``unpack_pair_keys`` transforms; outputs are
    ``(edges, representative)``.  Because the search's output feeds the
    later reduce, a fusing backend executes the whole round in a single
    dispatch barrier.
    """
    builder = PlanBuilder("contract")
    k = int(labels.max()) + 1
    endpoint_labels = builder.search(labels, batch.ravel())
    keys, values = builder.transform("contract_keys", endpoint_labels, k=k)
    unique_keys, representative = builder.reduce_by_key(keys, values, op="min")
    edges = builder.transform("unpack_pair_keys", unique_keys, k=k)
    return builder.build([edges, representative])


def contract_batch(
    labels: np.ndarray, batch: np.ndarray, backend=None, *, engine=None
) -> "tuple[np.ndarray, np.ndarray]":
    """Contraction graph of ``batch`` w.r.t. ``labels`` (Definition 2).

    Returns ``(edges, representative)``: deduplicated cross-component edges
    in component ids, and for each one the index of an original batch edge
    realising it (the certificate used for spanning trees).

    With an ``engine`` (preferred — the submitted plan lands in the
    engine's trace) or a bare
    :class:`~repro.mpc.backends.ExecutionBackend`, the round is recorded
    by :func:`contract_plan` and submitted once: the endpoint
    relabelling runs as one backend search and the dedup as one
    reduce-by-key (min edge index per component pair — identical to the
    ``np.unique`` first-occurrence semantics), so a sharded backend
    enforces its caps and counts the communication, and the process
    backend fuses the pair into a single dispatch barrier.
    """
    labels = np.asarray(labels, dtype=np.int64)
    batch = np.asarray(batch, dtype=np.int64).reshape(-1, 2)
    if batch.shape[0] == 0:
        return np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.int64)
    if engine is not None or backend is not None:
        return submit_plan(
            contract_plan(labels, batch), engine=engine, backend=backend
        )
    cu = labels[batch[:, 0]]
    cv = labels[batch[:, 1]]
    cross = cu != cv
    idx = np.flatnonzero(cross)
    if idx.size == 0:
        return np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.int64)
    a = np.minimum(cu[idx], cv[idx])
    b = np.maximum(cu[idx], cv[idx])
    keys = a * (int(labels.max()) + 1) + b
    _, first = np.unique(keys, return_index=True)
    return np.stack([a[first], b[first]], axis=1), idx[first]


def grow_components(
    n: int,
    batches: "list[np.ndarray]",
    growth_schedule: "list[int]",
    rng=None,
    *,
    engine: "MPCEngine | None" = None,
    leader_floor: float = 1e-4,
) -> GrowResult:
    """Run ``GrowComponents`` over ``batches`` with the given per-phase
    growth targets (``Δ_i`` values).

    MPC cost per phase (Claim 6.6): one sort for the contraction/dedup, the
    two ``LeaderElection`` shuffles, and one search to re-label — all
    ``O(1/δ)`` rounds.
    """
    n = check_positive_int(n, "n")
    if len(batches) != len(growth_schedule):
        raise ValueError(
            f"need one growth target per batch: {len(batches)} batches, "
            f"{len(growth_schedule)} targets"
        )
    rng = ensure_rng(rng)

    labels = np.arange(n, dtype=np.int64)
    tree_parts: "list[np.ndarray]" = []
    telemetry: "list[PhaseTelemetry]" = []
    backend = engine.backend if engine is not None else None

    for phase_index, (batch, growth) in enumerate(zip(batches, growth_schedule), 1):
        growth = check_positive_int(growth, "growth target")
        components_before = int(labels.max()) + 1

        # Work first, charge second: the charge absorbs the backend
        # exchanges the contraction just materialised.
        edges, representative = contract_batch(
            labels, batch, backend=backend, engine=engine
        )
        if engine is not None:
            engine.charge_sort(batch.shape[0], label=f"contract phase {phase_index}")
        k = components_before
        degrees = np.zeros(k, dtype=np.int64)
        if edges.shape[0]:
            np.add.at(degrees, edges[:, 0], 1)
            np.add.at(degrees, edges[:, 1], 1)

        leader_prob = float(min(1.0, max(leader_floor, 1.0 / growth)))
        result = leader_election(k, edges, leader_prob, rng, engine=engine)

        groups = result.groups
        matched = result.chosen_edge >= 0
        if matched.any():
            tree_parts.append(batch[representative[result.chosen_edge[matched]]])

        if backend is not None:
            # One recorded round: search the leader table, canonicalise.
            builder = PlanBuilder("relabel")
            raw = builder.search(groups, labels)
            out = builder.transform("canonical_labels", raw)
            (new_labels,) = submit_plan(
                builder.build(out), engine=engine, backend=backend
            )
        else:
            new_labels = canonical_labels(groups[labels])

        if engine is not None:
            engine.charge_search(n, label=f"relabel phase {phase_index}")

        sizes = np.bincount(new_labels)
        telemetry.append(
            PhaseTelemetry(
                phase=phase_index,
                growth_target=growth,
                leader_prob=leader_prob,
                components_before=components_before,
                components_after=int(new_labels.max()) + 1,
                contraction_vertices=k,
                contraction_edges=int(edges.shape[0]),
                mean_contraction_degree=float(degrees.mean()) if k else 0.0,
                min_contraction_degree=int(degrees.min()) if k else 0,
                max_contraction_degree=int(degrees.max()) if k else 0,
                mean_component_size=float(sizes.mean()),
                max_component_size=int(sizes.max()),
                unmatched=int(np.sum(~result.is_leader & (result.leader_of < 0))),
            )
        )
        labels = new_labels

    tree_edges = (
        np.concatenate(tree_parts, axis=0)
        if tree_parts
        else np.empty((0, 2), dtype=np.int64)
    )
    return GrowResult(labels=labels, tree_edges=tree_edges, telemetry=telemetry)
