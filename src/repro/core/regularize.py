"""Step 1 — Regularization (Section 4, Lemma 4.1).

Turns an arbitrary graph ``G`` into a ``(d+1)``-regular graph ``H`` on
``2m`` vertices with a one-to-one component correspondence and (by
Proposition 4.2) mixing time ``O(log(n/γ)/λ₂(G_i))`` per component: every
vertex is replaced by a ``d``-regular expander cloud via the replacement
product, using the parallel expander construction for the clouds.

Isolated vertices (degree 0) are split off first — the paper assumes
``d_v ≥ 1`` throughout (Section 2); each isolated vertex is trivially its
own component and is re-attached by :meth:`RegularizedGraph.lift_labels`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.components import canonical_labels
from repro.graph.graph import Graph
from repro.mpc.engine import MPCEngine
from repro.products.expanders import regular_graph_construction
from repro.products.replacement import ReplacementProduct, replacement_product
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class RegularizedGraph:
    """Output of the regularization step.

    Attributes
    ----------
    graph:
        The ``Δ``-regular product graph ``H`` (``Δ = cloud degree + 1``).
    product:
        The underlying :class:`ReplacementProduct` (projection maps).
    core_vertices:
        Original vertex ids of the non-isolated vertices, in the order the
        product's base graph numbers them.
    isolated_vertices:
        Original ids of degree-0 vertices, excluded from ``graph``.
    original_n:
        Vertex count of the input graph.
    """

    graph: Graph
    product: ReplacementProduct
    core_vertices: np.ndarray
    isolated_vertices: np.ndarray
    original_n: int

    @property
    def regular_degree(self) -> int:
        """Uniform degree of the replacement product (cloud degree + 1)."""
        return self.product.cloud_degree + 1

    def lift_labels(self, product_labels: np.ndarray) -> np.ndarray:
        """Map product-vertex component labels to original-graph labels,
        re-attaching isolated vertices as singleton components."""
        core_labels = self.product.project_labels(product_labels)
        labels = np.full(self.original_n, -1, dtype=np.int64)
        labels[self.core_vertices] = core_labels
        if self.isolated_vertices.size:
            offset = int(core_labels.max()) + 1 if core_labels.size else 0
            labels[self.isolated_vertices] = offset + np.arange(
                self.isolated_vertices.size, dtype=np.int64
            )
        return canonical_labels(labels)


def regularize(
    graph: Graph,
    *,
    expander_degree: int = 8,
    rng=None,
    engine: "MPCEngine | None" = None,
) -> RegularizedGraph:
    """Lemma 4.1: build the ``(expander_degree+1)``-regular graph ``H``.

    MPC cost: the expander construction (Lemma 4.5) plus the product
    wiring (Lemma 4.6), both ``O(1/δ)`` rounds, charged on ``engine``.
    """
    rng = ensure_rng(rng)
    degrees = np.asarray(graph.degrees)
    isolated = np.flatnonzero(degrees == 0)
    core = np.flatnonzero(degrees > 0)
    if core.size == 0:
        raise ValueError("graph has no edges; nothing to regularize")

    base, vertex_list = graph.subgraph(core)
    distinct_degrees = np.unique(np.asarray(base.degrees)).tolist()

    clouds = regular_graph_construction(
        distinct_degrees, expander_degree, rng=rng, engine=engine
    )
    product = replacement_product(base, clouds, engine=engine)

    return RegularizedGraph(
        graph=product.graph,
        product=product,
        core_vertices=vertex_list,
        isolated_vertices=isolated,
        original_n=graph.n,
    )
