"""Step 3 — Connectivity on (unions of) random graphs (Lemmas 6.1/6.2).

``random_graph_components`` chains the two stages of Section 6:

1. ``GrowComponents`` over ``F`` fresh batches — components reach
   ``n^{Ω(1)}`` size in ``O(log log n)`` rounds;
2. the Claim 6.14 broadcast on the final contraction graph — ``O(1)``
   diameter by Claim 6.13, hence ``O(1)`` rounds when the random-graph
   analysis holds; run to stabilisation, so the output labels are exactly
   the components of the union of all batches regardless.

Spanning-forest certificates from both stages combine into a spanning
forest of the batch-union graph (Claim 6.12 + the BFS tree).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bfs_tree import broadcast_components
from repro.core.grow import GrowResult, contract_batch, grow_components
from repro.graph.components import canonical_labels
from repro.mpc.engine import MPCEngine
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class RandomGraphCCResult:
    """Labels + spanning forest + stage telemetry for Lemma 6.1."""

    labels: np.ndarray
    tree_edges: np.ndarray
    grow: GrowResult
    broadcast_rounds: int
    final_contraction_vertices: int
    final_contraction_edges: int


def random_graph_components(
    n: int,
    batches: "list[np.ndarray]",
    growth_schedule: "list[int]",
    rng=None,
    *,
    engine: "MPCEngine | None" = None,
    broadcast_budget: "int | None" = None,
) -> RandomGraphCCResult:
    """Find the components of the union of ``batches`` (Lemma 6.1).

    Each batch is an ``(k, 2)`` edge array on vertices ``[0, n)`` sampled
    (per true component) from the random-graph distribution ``G``; the
    schedule provides the per-phase growth targets ``Δ_i``.

    ``broadcast_budget=None`` (the default) runs the final broadcast to
    stabilisation — exact output, honest extra rounds on bad luck.  A
    finite budget enforces the paper's O(1)-round broadcast (Claim 6.14),
    leaving components unfinished when the random-graph analysis failed —
    the behaviour Corollary 7.1's growability check detects.
    """
    rng = ensure_rng(rng)

    if engine is not None:
        with engine.phase("GrowComponents"):
            grow = grow_components(
                n, batches, growth_schedule, rng, engine=engine
            )
    else:
        grow = grow_components(n, batches, growth_schedule, rng)

    # Final contraction graph over the union of all batches.
    union = (
        np.concatenate(batches, axis=0)
        if batches
        else np.empty((0, 2), dtype=np.int64)
    )
    edges, representative = contract_batch(grow.labels, union, engine=engine)
    k = int(grow.labels.max()) + 1 if grow.labels.size else 0

    if engine is not None:
        engine.charge_sort(union.shape[0], label="final contraction")
        with engine.phase("Broadcast"):
            result = broadcast_components(
                max(k, 1), edges, engine=engine, stop_after=broadcast_budget
            )
    else:
        result = broadcast_components(max(k, 1), edges, stop_after=broadcast_budget)

    final_labels = canonical_labels(result.labels[grow.labels])

    tree_parts = [grow.tree_edges]
    if result.tree_edges.size:
        tree_parts.append(union[representative[result.tree_edges]])
    tree_edges = np.concatenate([p for p in tree_parts if p.size] or
                                [np.empty((0, 2), dtype=np.int64)], axis=0)

    return RandomGraphCCResult(
        labels=final_labels,
        tree_edges=tree_edges,
        grow=grow,
        broadcast_rounds=result.rounds,
        final_contraction_vertices=k,
        final_contraction_edges=int(edges.shape[0]),
    )
