"""Low-diameter broadcast connectivity (Claim 6.14).

After ``GrowComponents``, the contracted graph has ``O(1)`` diameter
(Claim 6.13); components are finished by a label broadcast that costs one
MPC round per BFS level: every vertex repeatedly adopts the minimum label
among itself and its neighbours.  The wave from each component's minimum
vertex reaches distance-``j`` vertices in round ``j``, so the process
stabilises in ``max-component-diameter`` rounds — each counted on the
engine — and the final parent pointers form a BFS spanning tree.

Running to stabilisation also makes this the pipeline's honest fallback:
even if the earlier probabilistic phases under-merged (possible at library
scale, where the paper's astronomically safe constants are scaled down),
the broadcast finishes the job with correctness guaranteed, paying the
extra rounds openly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.components import canonical_labels
from repro.graph.csr import CSRIndex, csr_enabled
from repro.mpc.engine import MPCEngine
from repro.mpc.plan import PlanBuilder, submit_plan
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class BroadcastResult:
    """Outcome of the broadcast stage.

    ``labels`` are canonical component labels; ``tree_edges`` is one parent
    edge per non-root vertex (indices into the input edge array);
    ``rounds`` is the number of propagation rounds executed (= the largest
    BFS eccentricity of a component minimum, Claim 6.14's ``O(D)``).
    """

    labels: np.ndarray
    tree_edges: np.ndarray
    rounds: int


def broadcast_components(
    n: int,
    edges: np.ndarray,
    *,
    engine: "MPCEngine | None" = None,
    max_rounds: "int | None" = None,
    stop_after: "int | None" = None,
) -> BroadcastResult:
    """Min-label broadcast until stabilisation (Claim 6.14).

    ``edges`` is an ``(m, 2)`` array on vertices ``[0, n)``; self-loops are
    ignored.  ``max_rounds`` guards runaway inputs (default ``n``) and
    raises when exceeded; ``stop_after`` instead *stops* after that many
    rounds and returns the (possibly non-maximal) labels — this is the
    paper's O(1)-round regime of Claim 6.14, used by the adaptive variant,
    where an unconverged broadcast means "this gap guess was too large".
    """
    n = check_positive_int(n, "n")
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if max_rounds is None:
        max_rounds = n

    labels = np.arange(n, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)

    if edges.shape[0] == 0:
        return BroadcastResult(
            labels=labels, tree_edges=np.empty(0, dtype=np.int64), rounds=0
        )

    backend = engine.backend if engine is not None else None
    m = edges.shape[0]
    use_gather = backend is not None and csr_enabled()
    if use_gather:
        # CSR fast path: one frozen index replaces the send/recv/eid
        # orientation arrays.  Its read-only owning buffers satisfy the
        # arena pinning contract (one shared-memory upload for the whole
        # broadcast) and the wire digest cache (shipped once per worker).
        index = CSRIndex.from_edges(n, edges)
        backend.note_csr_build()
        owner = index.slot_owners()
        half = index.halfedges
        # Sort-layout incidence position of each CSR slot: half-edge
        # 2e + 1 sits in row u receiving v -> u, which the orientation
        # arrays place at position e; half-edge 2e is received at v,
        # position m + e.  Recovering the positions keeps the recorded
        # parent edges bit-identical to the sort path's last-write-wins
        # fancy assignment (= max delivering position per vertex).
        pos = np.where(half & 1, half >> 1, m + (half >> 1))
        runs = index.degrees > 0
        starts = index.indptr[:-1][runs]
    else:
        u, v = edges[:, 0], edges[:, 1]
        # Both orientations: receiving endpoint, sending endpoint, edge id.
        recv = np.concatenate([v, u])
        send = np.concatenate([u, v])
        eid = np.tile(np.arange(m, dtype=np.int64), 2)
        # The incidence arrays are loop-invariant; marking them read-only
        # lets an arena-backed process backend pin them in shared memory
        # once and lease the same buffers to every broadcast level instead
        # of re-copying ~4m words per round (see repro.mpc.arena.ShmArena).
        send.setflags(write=False)
        recv.setflags(write=False)

    rounds = 0
    while rounds < max_rounds:
        if stop_after is not None and rounds >= stop_after:
            break
        if use_gather:
            # Same recorded round, gather-shaped: each vertex folds the
            # minimum over its contiguous CSR slot run instead of a
            # scatter over the sorted orientation arrays.
            builder = PlanBuilder("broadcast-level")
            outs = builder.csr_min_label(labels, index.indptr, index.indices)
            new_labels, incoming = submit_plan(
                builder.build(outs), engine=engine
            )
        elif backend is not None:
            # One recorded round per level: edge copies read the sending
            # endpoint's label locally and ship it to the receiving home
            # (one exchange barrier on the data plane).
            builder = PlanBuilder("broadcast-level")
            outs = builder.min_label_exchange(labels, send, recv)
            new_labels, incoming = submit_plan(
                builder.build(outs), engine=engine
            )
        else:
            incoming = labels[send]
            new_labels = labels.copy()
            np.minimum.at(new_labels, recv, incoming)
        improved = new_labels < labels
        if not improved.any():
            break
        rounds += 1
        if engine is not None:
            engine.charge_shuffle(edges.shape[0], label="broadcast level")
        # Record a delivering edge for every improved vertex: an incidence
        # whose incoming label equals the new minimum.  The final recording
        # (the wave from the component minimum) forms the BFS tree.
        if use_gather:
            cand = np.where(incoming == new_labels[owner], pos, -1)
            best = np.full(n, -1, dtype=np.int64)
            if starts.size:
                best[runs] = np.maximum.reduceat(cand, starts)
            sel = improved & (best >= 0)
            parent_edge[sel] = best[sel] % m
        else:
            delivering = np.flatnonzero(incoming == new_labels[recv])
            targets = recv[delivering]
            hit = improved[targets]
            parent_edge[targets[hit]] = eid[delivering[hit]]
        labels = new_labels
    else:
        raise RuntimeError(f"broadcast did not stabilise within {max_rounds} rounds")

    tree_edges = parent_edge[parent_edge >= 0]
    return BroadcastResult(
        labels=canonical_labels(labels), tree_edges=tree_edges, rounds=rounds
    )
