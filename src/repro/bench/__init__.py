"""repro.bench — the unified benchmark subsystem.

One registry (:func:`register_benchmark`), one workload abstraction
(:class:`Workload`), one runner (:func:`run_case`), one reporter
(tables + ``BENCH_<name>.json`` artifacts).  The sixteen experiments of
the paper's evaluation live in :mod:`repro.bench.experiments`; the
pytest shims under ``benchmarks/`` and the CI smoke job both execute
them through this package, so there is exactly one copy of every sweep.

Run ``python -m repro.bench --help`` for the CLI.
"""

from repro.bench.registry import (
    BenchmarkSpec,
    get_benchmark,
    iter_benchmarks,
    load_experiments,
    register_benchmark,
    registered_names,
    unregister_benchmark,
)
from repro.bench.report import (
    REQUIRED_KEYS,
    SCHEMA_VERSION,
    artifact_path,
    case_to_json,
    compare_bench_files,
    compare_cases,
    format_comparison,
    format_table,
    load_case_json,
    render_case,
    validate_case_json,
    write_case_json,
)
from repro.bench.runner import (
    BenchCheckError,
    BenchContext,
    CaseResult,
    Timing,
    run_case,
)
from repro.bench.workloads import Workload, family_names, register_family

__all__ = [
    "BenchCheckError",
    "BenchContext",
    "BenchmarkSpec",
    "CaseResult",
    "REQUIRED_KEYS",
    "SCHEMA_VERSION",
    "Timing",
    "Workload",
    "artifact_path",
    "case_to_json",
    "compare_bench_files",
    "compare_cases",
    "family_names",
    "format_comparison",
    "format_table",
    "get_benchmark",
    "iter_benchmarks",
    "load_case_json",
    "load_experiments",
    "register_benchmark",
    "register_family",
    "registered_names",
    "render_case",
    "run_case",
    "unregister_benchmark",
    "validate_case_json",
    "write_case_json",
]
