"""The benchmark registry: named experiments with per-suite parameters.

Every experiment in :mod:`repro.bench.experiments` registers itself with
:func:`register_benchmark`, declaring a human title, table headers, and
one parameter dict per suite (``smoke`` for CI-sized runs, ``full`` for
the paper-shape sweeps).  The runner and CLI only ever talk to the
registry — adding a workload is writing one decorated function.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field

SUITES = ("smoke", "full")

_EXPERIMENTS_MODULE = "repro.bench.experiments"


@dataclass(frozen=True)
class BenchmarkSpec:
    """One registered experiment."""

    name: str
    func: "callable"
    title: str
    headers: "tuple[str, ...]"
    suites: "dict[str, dict]"
    notes: str = ""
    tags: "tuple[str, ...]" = field(default_factory=tuple)

    def params_for(self, suite: str) -> dict:
        if suite not in self.suites:
            raise KeyError(
                f"benchmark {self.name!r} has no {suite!r} suite "
                f"(available: {sorted(self.suites)})"
            )
        return dict(self.suites[suite])


_REGISTRY: "dict[str, BenchmarkSpec]" = {}


def register_benchmark(
    name: str,
    *,
    title: str,
    headers: "list[str]",
    smoke: dict,
    full: dict,
    notes: str = "",
    tags: "tuple[str, ...]" = (),
):
    """Decorator: add an experiment function to the registry.

    The decorated function receives a :class:`repro.bench.runner.BenchContext`
    and reports through ``ctx.record`` / ``ctx.timeit`` / ``ctx.check``.
    Registering the same name twice is an error — benches are identities
    that JSON artifacts refer to across commits.
    """

    def decorator(func):
        if name in _REGISTRY:
            raise ValueError(f"benchmark {name!r} is already registered")
        _REGISTRY[name] = BenchmarkSpec(
            name=name,
            func=func,
            title=title,
            headers=tuple(headers),
            suites={"smoke": dict(smoke), "full": dict(full)},
            notes=notes,
            tags=tuple(tags),
        )
        return func

    return decorator


def unregister_benchmark(name: str) -> None:
    """Remove one registration (test isolation helper)."""
    _REGISTRY.pop(name, None)


def get_benchmark(name: str) -> BenchmarkSpec:
    load_experiments()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def registered_names() -> "list[str]":
    load_experiments()
    return sorted(_REGISTRY)


def iter_benchmarks(filters: "list[str] | None" = None) -> "list[BenchmarkSpec]":
    """All registered specs whose name matches any filter substring."""
    load_experiments()
    specs = [_REGISTRY[name] for name in sorted(_REGISTRY)]
    if not filters:
        return specs
    return [s for s in specs if any(f in s.name for f in filters)]


def load_experiments() -> "list[str]":
    """Import the bundled experiment modules (idempotent)."""
    module = importlib.import_module(_EXPERIMENTS_MODULE)
    return list(getattr(module, "__all__", []))
