"""The ``Workload`` abstraction: graph family × size × gap parameters.

A workload is a declarative recipe for a benchmark input graph, built on
:mod:`repro.graph.generators`.  Experiments declare workloads in their
suite parameters (so smoke and full runs differ only in numbers), and the
JSON artifacts carry ``workload.label`` as the stable record key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph import generators
from repro.utils.rng import ensure_rng

_FAMILIES: "dict[str, callable]" = {}


def register_family(name: str):
    """Decorator: register a ``builder(n, rng, **params) -> Graph``."""

    def decorator(builder):
        if name in _FAMILIES:
            raise ValueError(f"graph family {name!r} is already registered")
        _FAMILIES[name] = builder
        return builder

    return decorator


def family_names() -> "list[str]":
    return sorted(_FAMILIES)


@dataclass(frozen=True)
class Workload:
    """A reproducible benchmark input: ``family`` at size ``n``.

    ``params`` carries the family's knobs — degree, bridge count, segment
    count — i.e. everything that shapes the spectral gap at a given size.
    """

    family: str
    n: int
    params: "dict" = field(default_factory=dict)

    def __post_init__(self):
        if self.family not in _FAMILIES:
            raise KeyError(
                f"unknown graph family {self.family!r}; "
                f"available: {family_names()}"
            )
        if self.n <= 0:
            raise ValueError(f"workload size must be positive, got {self.n}")

    @property
    def label(self) -> str:
        knobs = "".join(f",{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.family}(n={self.n}{knobs})"

    def build(self, rng=None):
        """Materialise the graph (deterministic for a seeded ``rng``)."""
        return _FAMILIES[self.family](self.n, ensure_rng(rng), **self.params)

    def to_json(self) -> dict:
        return {"family": self.family, "n": self.n, "params": dict(self.params)}

    @classmethod
    def from_json(cls, doc: dict) -> "Workload":
        return cls(doc["family"], int(doc["n"]), dict(doc.get("params", {})))


# -- the families ------------------------------------------------------------


@register_family("path")
def _path(n, rng):
    return generators.path_graph(n)


@register_family("cycle")
def _cycle(n, rng):
    return generators.cycle_graph(n)


@register_family("star")
def _star(n, rng):
    return generators.star_graph(n)


@register_family("complete")
def _complete(n, rng):
    return generators.complete_graph(n)


@register_family("grid")
def _grid(n, rng):
    side = max(2, int(round(n**0.5)))
    return generators.grid_graph(side, side)


@register_family("hypercube")
def _hypercube(n, rng):
    dim = max(1, (n - 1).bit_length())
    return generators.hypercube_graph(dim)


@register_family("paper_random")
def _paper_random(n, rng, degree=8):
    return generators.paper_random_graph(n, degree, rng=rng)


@register_family("permutation_regular")
def _permutation_regular(n, rng, degree=6):
    return generators.permutation_regular_graph(n, degree, rng=rng)


@register_family("erdos_renyi")
def _erdos_renyi(n, rng, p=0.05):
    return generators.erdos_renyi(n, p, rng=rng)


@register_family("dumbbell")
def _dumbbell(n, rng, degree=8, bridges=1):
    # Floor like the other composite families: n = 1 must still build
    # (two one-vertex halves), not crash on a zero-sized half.
    return generators.dumbbell_graph(
        max(1, n // 2), degree, bridges=bridges, rng=rng
    )


@register_family("expander_path")
def _expander_path(n, rng, count=8, degree=8):
    return generators.expander_path(count, max(4, n // count), degree, rng=rng)


@register_family("ring_of_expanders")
def _ring_of_expanders(n, rng, count=8, degree=8):
    return generators.ring_of_expanders(count, max(4, n // count), degree, rng=rng)
