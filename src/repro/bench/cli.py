"""``python -m repro.bench`` — run benchmark suites, emit JSON artifacts.

Examples::

    python -m repro.bench --suite smoke --json-dir bench-artifacts
    python -m repro.bench --suite full --filter e07
    python -m repro.bench --list
    python -m repro.bench --compare old/BENCH_e01_rounds_vs_n.json \
                                    new/BENCH_e01_rounds_vs_n.json
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback

from repro.bench.registry import iter_benchmarks
from repro.bench.report import (
    compare_bench_files,
    format_comparison,
    render_case,
    write_case_json,
)
from repro.bench.runner import run_case
from repro.engines import engine_names
from repro.mpc.backends import backend_names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the registered paper-reproduction benchmarks.",
    )
    parser.add_argument(
        "--suite",
        choices=("smoke", "full"),
        default="smoke",
        help="parameter tier: 'smoke' finishes in under a minute for CI; "
        "'full' runs the paper-shape sweeps (default: smoke)",
    )
    parser.add_argument(
        "--filter",
        action="append",
        default=None,
        metavar="SUBSTR",
        help="only run benchmarks whose name contains SUBSTR (repeatable)",
    )
    parser.add_argument(
        "--json-dir",
        default=".",
        metavar="DIR",
        help="directory for BENCH_<name>.json artifacts (default: .)",
    )
    parser.add_argument(
        "--backend",
        choices=("local", "sharded", "process", "rpc"),
        default="local",
        help="execution backend for pipeline experiments: 'local' charges "
        "rounds on plain vectorised numpy (default); 'sharded' runs the "
        "data plane on numpy shards with enforced per-shard memory and "
        "per-round communication caps and reports shard-level counters "
        "(shard_count, peak_shard_load, bytes_exchanged) in the artifacts; "
        "'process' runs the same sharded kernels on a pool of worker "
        "processes over shared memory (true wall-clock parallelism, "
        "bit-identical labels and counters); 'rpc' runs them on worker "
        "processes reached over length-prefixed socket frames "
        "(bit-identical, plus gated transport counters)",
    )
    parser.add_argument(
        "--engine",
        choices=tuple(engine_names()),
        default="paper",
        help="connectivity engine threaded into pipeline experiments "
        "through the mpc_connected_components(..., engine=) dispatch "
        "seam: the paper's Theorem 4 pipeline (default), the Liu-Tarjan "
        "or graph-exponentiation plan-IR engines, or the feature-driven "
        "portfolio dispatcher",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker-process pool size for the 'process' backend "
        "(default: min(4, usable CPUs); e18 sweeps {1, N} when given)",
    )
    parser.add_argument(
        "--arena",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="persistent shared-memory arena for the 'process' backend: "
        "--arena (the default) allocates segments once per run and "
        "recycles them across operations; --no-arena restores transient "
        "per-operation segments — the baseline e19_arena_overhead "
        "measures against",
    )
    parser.add_argument(
        "--csr",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="CSR gather fast path in the engines: --csr (the default) "
        "runs min-label rounds as indptr-sliced gathers over a frozen "
        "CSRIndex; --no-csr restores the sort-based exchange path — "
        "bit-identical labels, rounds, and gated counters either way "
        "(e24_csr_gather measures the difference)",
    )
    parser.add_argument(
        "--sketch-shards",
        type=int,
        default=None,
        metavar="K",
        help="shard-count override for streaming experiments that maintain "
        "a sharded AGM sketch (e25_parallel_sketch): edge updates are "
        "range-partitioned by owner vertex into K per-shard partials, "
        "updated through the selected backend's ingest seam and merged by "
        "linearity only at decode time (default: each experiment picks "
        "its own sweep)",
    )
    parser.add_argument(
        "--no-json", action="store_true", help="skip writing JSON artifacts"
    )
    parser.add_argument("--seed", type=int, default=None, help="override base seed")
    parser.add_argument(
        "--warmup", type=int, default=None, help="kernel warmup iterations"
    )
    parser.add_argument(
        "--repeat", type=int, default=None, help="kernel timed iterations"
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list registered benchmarks (with their suites and tags, for "
        "picking --filter targets) and exit",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        help="diff two BENCH_*.json artifacts and exit "
        "(exit 1 on counter regressions)",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)

    if args.compare:
        try:
            diff = compare_bench_files(args.compare[0], args.compare[1])
        except (OSError, ValueError) as exc:
            print(f"cannot compare: {exc}", file=sys.stderr)
            return 2
        print(format_comparison(diff))
        return 0 if diff["ok"] else 1

    specs = iter_benchmarks(args.filter)
    if not specs:
        print(f"no benchmarks match filters {args.filter!r}", file=sys.stderr)
        return 2

    if args.list:
        for spec in specs:
            suites = ",".join(sorted(spec.suites))
            tags = ",".join(spec.tags) if spec.tags else "-"
            print(f"{spec.name:28s} [{suites}] tags={tags:24s} {spec.title}")
        print()
        print(f"engines:  {', '.join(engine_names())}  (--engine)")
        print(f"backends: {', '.join(backend_names())}  (--backend)")
        return 0

    failures = []
    started = time.perf_counter()
    for spec in specs:
        print(f"=== {spec.name} [{args.suite}] ===", flush=True)
        try:
            result = run_case(
                spec.name,
                suite=args.suite,
                seed=args.seed,
                warmup=args.warmup,
                repeat=args.repeat,
                backend=args.backend,
                engine=args.engine,
                workers=args.workers,
                arena=args.arena,
                csr=args.csr,
                sketch_shards=args.sketch_shards,
            )
        except Exception as exc:  # noqa: BLE001 - report every failing case
            failures.append((spec.name, exc))
            traceback.print_exc()
            continue
        print(render_case(result))
        if not args.no_json:
            path = write_case_json(result, args.json_dir)
            print(f"wrote {path}")
        print(flush=True)

    elapsed = time.perf_counter() - started
    print(
        f"ran {len(specs) - len(failures)}/{len(specs)} benchmarks "
        f"[{args.suite}] in {elapsed:.1f}s"
    )
    if failures:
        for name, exc in failures:
            print(f"FAILED {name}: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
