"""Execute registered benchmarks with warmup/repeat timing.

The runner owns everything an experiment body should not: wall-clock
measurement (``BenchContext.timeit`` with warmup and repeat), MPC engine
accounting capture (``BenchContext.account``), table-row and record
collection, and shape-check bookkeeping.  Experiment functions stay pure
"run the sweep, report what you saw" code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.registry import BenchmarkSpec, get_benchmark
from repro.engines import engine_names
from repro.graph.csr import use_csr
from repro.mpc.backends import backend_names
from repro.mpc.process_backend import default_arena, default_workers
from repro.utils.rng import ensure_rng

#: suite -> (warmup, repeat) for ``BenchContext.timeit`` kernels.  Smoke
#: kernels are tiny, so they can afford a warmup plus repeats; full-suite
#: kernels are the paper-scale runs and are timed single-shot.
DEFAULT_TIMING = {"smoke": (1, 3), "full": (0, 1)}


class BenchCheckError(AssertionError):
    """A paper-shape check failed during a benchmark run."""


@dataclass
class Timing:
    """Warmup/repeat wall-clock measurement of one kernel."""

    label: str
    warmup: int
    repeat: int
    seconds: "list[float]"

    @property
    def best(self) -> float:
        return min(self.seconds)

    @property
    def mean(self) -> float:
        return sum(self.seconds) / len(self.seconds)

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "warmup": self.warmup,
            "repeat": self.repeat,
            "seconds_best": self.best,
            "seconds_mean": self.mean,
            "seconds_all": list(self.seconds),
        }


@dataclass
class CaseResult:
    """Everything one benchmark execution produced."""

    name: str
    title: str
    suite: str
    seed: int
    backend: str
    engine: str
    workers: "int | None"
    arena: "bool | None"
    csr: "bool | None"
    sketch_shards: "int | None"
    params: dict
    headers: "tuple[str, ...]"
    rows: "list[list]"
    records: "list[dict]"
    timings: "list[Timing]"
    checks: "list[dict]"
    notes: "list[str]"
    total_seconds: float

    @property
    def rounds_by_key(self) -> "dict[str, int]":
        """Record key → total MPC rounds, for quick regression eyeballing."""
        out = {}
        for record in self.records:
            for name, value in record.items():
                if name.endswith("rounds") and isinstance(value, (int, float)):
                    out[f"{record.get('key', '?')}.{name}"] = value
        return out


class BenchContext:
    """What an experiment function sees while it runs.

    ``backend`` is the execution-backend name selected for this run
    (``--backend`` on the CLI); experiments that execute the pipeline
    thread it into ``mpc_connected_components(..., backend=ctx.backend)``
    so one registered case can be measured on any data plane.  ``engine``
    is the connectivity-engine name selected with ``--engine`` (default
    ``"paper"``); pipeline experiments thread it the same way
    (``engine=ctx.engine``) so one registered case can race any
    registered algorithm through the dispatch seam.  ``workers``
    is the ``--workers`` pool-size override for the ``process`` backend
    (``None`` means each experiment picks its own default); ``arena`` is
    the ``--arena``/``--no-arena`` toggle for that backend's persistent
    shared-memory arena (``None`` leaves the default — arena on);
    ``csr`` is the ``--csr``/``--no-csr`` toggle for the engines' CSR
    gather fast path (``None`` leaves the default — CSR on);
    ``sketch_shards`` is the ``--sketch-shards`` override for streaming
    experiments that maintain a sharded AGM sketch (``None`` means each
    experiment picks its own sweep of shard counts).
    """

    def __init__(
        self,
        spec: BenchmarkSpec,
        suite: str,
        seed: int,
        warmup: int,
        repeat: int,
        backend: str = "local",
        engine: str = "paper",
        workers: "int | None" = None,
        arena: "bool | None" = None,
        csr: "bool | None" = None,
        sketch_shards: "int | None" = None,
    ):
        if backend not in backend_names():
            raise ValueError(
                f"unknown backend {backend!r}; available: {backend_names()}"
            )
        if engine not in engine_names():
            raise ValueError(
                f"unknown engine {engine!r}; available: {engine_names()}"
            )
        if workers is not None and int(workers) < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if sketch_shards is not None and int(sketch_shards) < 1:
            raise ValueError(f"sketch_shards must be >= 1, got {sketch_shards}")
        self.spec = spec
        self.suite = suite
        self.seed = int(seed)
        self.backend = backend
        self.engine = engine
        self.workers = None if workers is None else int(workers)
        self.arena = None if arena is None else bool(arena)
        self.csr = None if csr is None else bool(csr)
        self.sketch_shards = None if sketch_shards is None else int(sketch_shards)
        self.params = spec.params_for(suite)
        self.warmup = int(warmup)
        self.repeat = int(repeat)
        self.rows: "list[list]" = []
        self.records: "list[dict]" = []
        self.timings: "list[Timing]" = []
        self.checks: "list[dict]" = []
        self.notes: "list[str]" = []

    # -- randomness ----------------------------------------------------------

    def rng(self, salt: int = 0):
        """A fresh deterministic generator (stable across re-runs)."""
        return ensure_rng(self.seed + salt)

    # -- reporting -----------------------------------------------------------

    def record(self, key: str, row: "list | None" = None, **fields) -> dict:
        """Add one machine-readable record (and optionally a table row).

        ``key`` is the stable identity used when two JSON artifacts are
        diffed — keep it deterministic (workload label, sweep point).
        """
        if any(r.get("key") == key for r in self.records):
            raise ValueError(f"duplicate record key {key!r} in {self.spec.name}")
        record = {"key": key, **fields}
        self.records.append(record)
        if row is not None:
            self.rows.append(list(row))
        return record

    def account(self, engine) -> dict:
        """Serialize an :class:`~repro.mpc.engine.MPCEngine`'s accounting."""
        return engine.summary()

    def note(self, text: str) -> None:
        self.notes.append(text)

    # -- timing --------------------------------------------------------------

    def timeit(self, label: str, fn, *args, **kwargs):
        """Time ``fn(*args, **kwargs)`` with this run's warmup/repeat policy.

        Returns the result of the final timed call, so experiments can time
        their representative kernel and use its output in the same sweep.
        """
        for _ in range(self.warmup):
            fn(*args, **kwargs)
        seconds = []
        result = None
        for _ in range(max(1, self.repeat)):
            start = time.perf_counter()
            result = fn(*args, **kwargs)
            seconds.append(time.perf_counter() - start)
        self.timings.append(
            Timing(label=label, warmup=self.warmup, repeat=max(1, self.repeat),
                   seconds=seconds)
        )
        return result

    # -- shape checks --------------------------------------------------------

    def check(self, name: str, ok, detail: str = "") -> None:
        """Record a paper-shape assertion; failure aborts the case."""
        entry = {"name": name, "ok": bool(ok)}
        if detail:
            entry["detail"] = detail
        self.checks.append(entry)
        if not ok:
            raise BenchCheckError(
                f"[{self.spec.name}] shape check failed: {name}"
                + (f" ({detail})" if detail else "")
            )

    @property
    def is_full(self) -> bool:
        return self.suite == "full"


def run_case(
    name: str,
    *,
    suite: str = "smoke",
    seed: "int | None" = None,
    warmup: "int | None" = None,
    repeat: "int | None" = None,
    backend: str = "local",
    engine: str = "paper",
    workers: "int | None" = None,
    arena: "bool | None" = None,
    csr: "bool | None" = None,
    sketch_shards: "int | None" = None,
) -> CaseResult:
    """Run one registered benchmark and return its :class:`CaseResult`.

    Parameters
    ----------
    name:
        A registered benchmark name (see :func:`repro.bench.iter_benchmarks`).
    suite:
        Parameter tier, ``"smoke"`` or ``"full"``.
    seed, warmup, repeat:
        Overrides for the suite's base seed and kernel timing policy.
    backend:
        Execution-backend name threaded into the experiment context.
    engine:
        Connectivity-engine name threaded into the experiment context
        (the ``--engine`` flag; default ``"paper"``).
    workers:
        Optional ``process``-backend pool size (the ``--workers`` flag).
    arena:
        Optional ``process``-backend arena toggle (``--arena`` /
        ``--no-arena``); ``None`` keeps the default (arena on).
    csr:
        Optional engine CSR fast-path toggle (``--csr`` / ``--no-csr``);
        ``None`` keeps the default (CSR on).
    sketch_shards:
        Optional sharded-sketch shard-count override for streaming
        experiments (the ``--sketch-shards`` flag); ``None`` lets each
        experiment pick its own sweep.

    Raises
    ------
    KeyError
        ``name`` is not a registered benchmark.
    ValueError
        Unknown backend or engine name, or non-positive ``workers``.
    """
    spec = get_benchmark(name)
    default_warmup, default_repeat = DEFAULT_TIMING.get(suite, (0, 1))
    ctx = BenchContext(
        spec,
        suite,
        seed=spec.params_for(suite).get("seed", 0) if seed is None else seed,
        warmup=default_warmup if warmup is None else warmup,
        repeat=default_repeat if repeat is None else repeat,
        backend=backend,
        engine=engine,
        workers=workers,
        arena=arena,
        csr=csr,
        sketch_shards=sketch_shards,
    )
    start = time.perf_counter()
    # Scope the --workers / --arena / --csr overrides so every backend
    # and engine the experiment constructs by name (including inside the
    # pipeline) honours them.
    with default_workers(ctx.workers), default_arena(ctx.arena), \
            use_csr(ctx.csr):
        spec.func(ctx)
    total = time.perf_counter() - start
    return CaseResult(
        name=spec.name,
        title=spec.title,
        suite=suite,
        seed=ctx.seed,
        backend=ctx.backend,
        engine=ctx.engine,
        workers=ctx.workers,
        arena=ctx.arena,
        csr=ctx.csr,
        sketch_shards=ctx.sketch_shards,
        params=dict(ctx.params),
        headers=spec.headers,
        rows=ctx.rows,
        records=ctx.records,
        timings=ctx.timings,
        checks=ctx.checks,
        notes=([spec.notes] if spec.notes else []) + list(ctx.notes),
        total_seconds=total,
    )
