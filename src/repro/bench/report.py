"""Reporting: human tables and the stable ``BENCH_<name>.json`` schema.

The JSON artifact is the machine-readable performance trajectory of the
repo: one file per benchmark, one record per sweep point, annotated with
the git SHA that produced it.  ``compare_bench_files`` diffs two
artifacts of the same benchmark so CI (or a human) can spot round-count
regressions and wall-clock drift across commits.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import subprocess
import time

from repro.bench.runner import CaseResult

SCHEMA_VERSION = 1

#: Keys every BENCH_*.json must carry (the round-trip contract).
REQUIRED_KEYS = (
    "schema_version",
    "name",
    "title",
    "suite",
    "seed",
    "git_sha",
    "created_unix",
    "python",
    "total_seconds",
    "params",
    "headers",
    "rows",
    "records",
    "timings",
    "checks",
    "notes",
)


# -- human tables ------------------------------------------------------------


def format_table(title: str, headers: "list[str]", rows: "list[list]") -> str:
    """Right-aligned ASCII table (the format the former benches printed)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_case(result: CaseResult) -> str:
    """The full human-readable report for one benchmark run."""
    text = format_table(
        f"[{result.name}] {result.title}", list(result.headers), result.rows
    )
    for note in result.notes:
        text += f"\n\n{note}"
    if result.timings:
        timed = "; ".join(
            f"{t.label}: {t.best:.4f}s (best of {t.repeat})" for t in result.timings
        )
        text += f"\n\nkernels — {timed}"
    text += (
        f"\n[{result.suite}] total {result.total_seconds:.2f}s, "
        f"{len(result.records)} records, "
        f"{sum(1 for c in result.checks if c['ok'])}/{len(result.checks)} "
        "checks ok"
    )
    return text


# -- JSON artifacts ----------------------------------------------------------


def git_sha(cwd: "str | None" = None) -> str:
    """The commit being measured: git HEAD, then $GITHUB_SHA, else unknown."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return os.environ.get("GITHUB_SHA", "unknown")


def case_to_json(result: CaseResult, *, sha: "str | None" = None) -> dict:
    """Serialize one run into the stable artifact schema."""
    return {
        "schema_version": SCHEMA_VERSION,
        "name": result.name,
        "title": result.title,
        "suite": result.suite,
        "seed": result.seed,
        # Optional on load (older artifacts predate execution backends).
        "backend": result.backend,
        # Optional on load (older artifacts predate the engine axis).
        "engine": result.engine,
        # Optional on load (older artifacts predate the process backend);
        # null unless --workers was passed.
        "workers": result.workers,
        # Optional on load (older artifacts predate the shm arena); null
        # unless --arena/--no-arena was passed.
        "arena": result.arena,
        # Optional on load (older artifacts predate the CSR fast path);
        # null unless --csr/--no-csr was passed.
        "csr": result.csr,
        # Optional on load (older artifacts predate sharded sketches);
        # null unless --sketch-shards was passed.
        "sketch_shards": result.sketch_shards,
        "git_sha": git_sha() if sha is None else sha,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "total_seconds": result.total_seconds,
        "params": _jsonable(result.params),
        "headers": list(result.headers),
        "rows": [[str(c) for c in row] for row in result.rows],
        "records": [_jsonable(r) for r in result.records],
        "timings": [t.to_json() for t in result.timings],
        "checks": list(result.checks),
        "notes": list(result.notes),
    }


def _jsonable(value):
    """Coerce numpy scalars / tuples into plain JSON types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and callable(value.item) and getattr(
        value, "shape", None
    ) == ():
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    return value


def artifact_path(json_dir: "str | pathlib.Path", name: str) -> pathlib.Path:
    return pathlib.Path(json_dir) / f"BENCH_{name}.json"


def write_case_json(
    result: CaseResult,
    json_dir: "str | pathlib.Path",
    *,
    sha: "str | None" = None,
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` under ``json_dir`` and return its path."""
    path = artifact_path(json_dir, result.name)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = case_to_json(result, sha=sha)
    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return path


def load_case_json(path: "str | pathlib.Path") -> dict:
    """Load and validate one artifact (raises on schema violations)."""
    doc = json.loads(pathlib.Path(path).read_text())
    validate_case_json(doc)
    return doc


def validate_case_json(doc: dict) -> dict:
    """Check the round-trip contract; returns ``doc`` for chaining."""
    missing = [key for key in REQUIRED_KEYS if key not in doc]
    if missing:
        raise ValueError(f"BENCH artifact missing required keys: {missing}")
    if doc["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {doc['schema_version']!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    for record in doc["records"]:
        if "key" not in record:
            raise ValueError(f"record without a stable key: {record!r}")
    return doc


# -- regression compare ------------------------------------------------------


def compare_cases(
    old: dict,
    new: dict,
    *,
    time_tolerance: float = 0.25,
) -> dict:
    """Diff two artifacts of the same benchmark.

    Integer performance counters (fields named ``*rounds``, ``*machines``,
    ``*phases``, ``*iterations``) are compared exactly; any increase is a
    regression and clears ``ok``.  Wall-clock drifts with the host, so the
    per-case ``total_seconds`` is only *flagged* (beyond ``time_tolerance``
    fractional slowdown) — informational, never a gate: two artifacts from
    different machines must not fail on speed alone.
    """
    validate_case_json(old)
    validate_case_json(new)
    if old["name"] != new["name"]:
        raise ValueError(
            f"comparing different benchmarks: {old['name']!r} vs {new['name']!r}"
        )

    old_records = {r["key"]: r for r in old["records"]}
    new_records = {r["key"]: r for r in new["records"]}
    # "exchanges" also matches bytes_exchanged; shard occupancy counters are
    # gated so a backend change that inflates communication fails --compare;
    # "segments" gates shared-memory segment allocations so the arena's
    # O(1)-allocations-per-run property cannot silently regress; "barriers"
    # gates dispatch-barrier counts so plan fusion (one barrier per round
    # plan, not one per op) cannot silently unfuse; "frames"/"wire_bytes"
    # gate the RPC transport (op frames shipped and their serialized
    # sizes — deterministic per plan, unlike heartbeats/retries) so a
    # codec or dedup change that inflates wire traffic fails --compare;
    # "words" gates sketch memory footprints (partial_words /
    # sketch_words — "words_per_vertex" stays ungated by its suffix) so
    # a sharding change that inflates resident sketch state fails
    # --compare.
    counter_suffixes = (
        "rounds",
        "machines",
        "phases",
        "iterations",
        "exchanges",
        "shard_count",
        "shard_load",
        "segments",
        "barriers",
        "frames",
        "wire_bytes",
        "words",
    )

    regressions, improvements, unchanged = [], [], []
    for key in sorted(old_records.keys() & new_records.keys()):
        before, after = old_records[key], new_records[key]
        for fname in sorted(before.keys() & after.keys()):
            b, a = before[fname], after[fname]
            if not fname.endswith(counter_suffixes):
                continue
            if not isinstance(b, (int, float)) or not isinstance(a, (int, float)):
                continue
            entry = {"key": key, "field": fname, "old": b, "new": a}
            if a > b:
                regressions.append(entry)
            elif a < b:
                improvements.append(entry)
            else:
                unchanged.append(entry)

    old_t, new_t = old["total_seconds"], new["total_seconds"]
    slower = old_t > 0 and (new_t - old_t) / old_t > time_tolerance

    return {
        "name": old["name"],
        "old_sha": old["git_sha"],
        "new_sha": new["git_sha"],
        "regressions": regressions,
        "improvements": improvements,
        "unchanged": len(unchanged),
        "added_keys": sorted(new_records.keys() - old_records.keys()),
        "removed_keys": sorted(old_records.keys() - new_records.keys()),
        "total_seconds": {"old": old_t, "new": new_t, "flagged_slower": slower},
        "ok": not regressions,
    }


def compare_bench_files(
    old_path: "str | pathlib.Path",
    new_path: "str | pathlib.Path",
    *,
    time_tolerance: float = 0.25,
) -> dict:
    """:func:`compare_cases` on two ``BENCH_*.json`` files."""
    return compare_cases(
        load_case_json(old_path),
        load_case_json(new_path),
        time_tolerance=time_tolerance,
    )


def format_comparison(diff: dict) -> str:
    lines = [
        f"[{diff['name']}] {diff['old_sha'][:12]} -> {diff['new_sha'][:12]}: "
        + ("OK" if diff["ok"] else "REGRESSED")
    ]
    for entry in diff["regressions"]:
        lines.append(
            f"  REGRESSION {entry['key']}.{entry['field']}: "
            f"{entry['old']} -> {entry['new']}"
        )
    for entry in diff["improvements"]:
        lines.append(
            f"  improved   {entry['key']}.{entry['field']}: "
            f"{entry['old']} -> {entry['new']}"
        )
    t = diff["total_seconds"]
    lines.append(
        f"  wall time  {t['old']:.2f}s -> {t['new']:.2f}s"
        + ("  (flagged slower)" if t["flagged_slower"] else "")
    )
    if diff["added_keys"]:
        lines.append(f"  new records: {', '.join(diff['added_keys'])}")
    if diff["removed_keys"]:
        lines.append(f"  dropped records: {', '.join(diff['removed_keys'])}")
    return "\n".join(lines)
