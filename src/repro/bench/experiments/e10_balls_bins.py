"""E10 — Proposition B.1: balls-and-bins concentration.

Paper claim: throwing N ≤ εB balls into B near-uniform bins leaves
``J(1±2ε)NK`` non-empty bins except with probability ``exp(-ε²N/2)``.
This is the engine behind Claim 6.9 (out-edges of a contracted component
hit almost-distinct components).  The table compares empirical deviation
frequencies with the bound at several (N, ε).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    nonempty_bins_interval,
    prop_b1_failure_bound,
    throw_balls,
)
from repro.bench.registry import register_benchmark


def _deviation_rate(balls: int, eps: float, trials: int, seed: int):
    rng = np.random.default_rng(seed)
    bins = int(balls / eps)
    interval = nonempty_bins_interval(balls, eps)
    failures = 0
    total_ratio = 0.0
    for _ in range(trials):
        result = throw_balls(balls, bins, eps=eps / 2, rng=rng)
        total_ratio += result.ratio
        if not interval.contains(result.nonempty):
            failures += 1
    return failures / trials, total_ratio / trials


@register_benchmark(
    "e10_balls_bins",
    title="Balls and bins: non-empty bins in J(1±2ε)NK (Prop. B.1)",
    headers=["balls N", "ε", "bins B", "mean nonempty/N", "deviation rate",
             "exp(-ε²N/2) bound"],
    smoke={"cases": [[500, 0.10], [2_000, 0.05]], "trials": 60,
           "slack": 0.05, "seed": 0},
    full={"cases": [[500, 0.10], [2_000, 0.10], [2_000, 0.05],
                    [8_000, 0.05]], "trials": 300, "slack": 0.02, "seed": 0},
    notes=(
        "Expected shape: mean non-empty/N ≈ 1 (N ≪ B loses few balls to "
        "collisions); empirical deviation frequency below the Prop B.1 "
        "bound in every regime."
    ),
    tags=("analysis",),
)
def e10_balls_bins(ctx):
    trials = ctx.params["trials"]
    for balls, eps in ctx.params["cases"]:
        seed = ctx.seed + balls
        if [balls, eps] == ctx.params["cases"][0]:
            rate, mean_ratio = ctx.timeit(
                "throws", _deviation_rate, balls, eps, trials, seed
            )
        else:
            rate, mean_ratio = _deviation_rate(balls, eps, trials, seed)
        bound = prop_b1_failure_bound(balls, eps)
        ctx.record(
            f"N={balls},eps={eps}",
            row=[balls, f"{eps:.2f}", int(balls / eps), f"{mean_ratio:.4f}",
                 f"{rate:.4f}", f"{bound:.2e}"],
            balls=balls,
            eps=eps,
            bins=int(balls / eps),
            mean_ratio=float(mean_ratio),
            deviation_rate=float(rate),
            failure_bound=float(bound),
        )
        ctx.check(f"deviation-N{balls}-eps{eps}",
                  rate <= bound + ctx.params["slack"],
                  f"{rate:.4f} vs {bound:.2e}")
