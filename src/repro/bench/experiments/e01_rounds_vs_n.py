"""E1 — Theorem 1/4 headline: rounds vs n on well-connected graphs.

Paper claim: ``O(log log n)`` MPC rounds for graphs whose components have
constant spectral gap, against the ``Θ(log n)`` of classical leader
election / label propagation.  Expected shape: the pipeline column is
(nearly) flat across the sweep; every baseline column climbs.
"""

from __future__ import annotations

import repro
from repro import theory
from repro.baselines import pointer_jumping_propagation, random_mate_components
from repro.bench.registry import register_benchmark
from repro.bench.workloads import Workload
from repro.graph import components_agree, connected_components
from repro.mpc import MPCEngine

CONFIG = repro.PipelineConfig(
    delta=0.5, expander_degree=4, max_walk_length=160, oversample=6
)
GAP_BOUND = 0.25
DEGREE = 6


def _pipeline(
    workload: Workload, seed: int, backend: str = "local", engine: str = "paper"
):
    # Through the dispatch seam, not the hardcoded paper pipeline:
    # --engine races any registered connectivity engine over this sweep.
    graph = workload.build(seed)
    result = repro.mpc_connected_components(
        graph, spectral_gap_bound=GAP_BOUND, config=CONFIG, rng=seed,
        backend=backend, engine=engine,
    )
    assert components_agree(result.labels, connected_components(graph))
    return result


def _baselines(workload: Workload, seed: int) -> "tuple[int, int]":
    graph = workload.build(seed)
    engine_h = MPCEngine.for_delta(graph.n + graph.m, 0.5)
    pointer_jumping_propagation(graph, engine=engine_h)
    engine_r = MPCEngine.for_delta(graph.n + graph.m, 0.5)
    random_mate_components(graph, rng=seed, engine=engine_r)
    return engine_h.rounds, engine_r.rounds


@register_benchmark(
    "e01_rounds_vs_n",
    title="MPC rounds vs n on constant-gap expanders (Theorem 1)",
    headers=["n", "pipeline", "hash-to-min", "random-mate", "Thm1 shape",
             "log n shape"],
    smoke={"sizes": [256, 1024], "seed": 3},
    full={"sizes": [256, 1024, 4096, 16384], "seed": 3},
    notes=(
        "Expected shape: pipeline ~flat (log log n); baselines climb "
        "(log n). Absolute crossover lies beyond laptop n — the paper's "
        "win is asymptotic; the shape is the reproduced result."
    ),
    tags=("pipeline", "baselines"),
)
def e01_rounds_vs_n(ctx):
    sizes = ctx.params["sizes"]
    ours, mates = {}, {}
    for n in sizes:
        workload = Workload("permutation_regular", n, {"degree": DEGREE})
        if n == sizes[-1]:
            result = ctx.timeit(
                "pipeline", _pipeline, workload, ctx.seed, ctx.backend, ctx.engine
            )
        else:
            result = _pipeline(workload, ctx.seed, ctx.backend, ctx.engine)
        ours[n] = result.rounds
        htm, mates[n] = _baselines(workload, ctx.seed)
        ctx.record(
            workload.label,
            row=[n, ours[n], htm, mates[n],
                 f"{theory.theorem1_rounds(n, GAP_BOUND, delta=0.5):.1f}",
                 f"{theory.classical_pram_rounds(n):.1f}"],
            n=n,
            pipeline_rounds=ours[n],
            hash_to_min_rounds=htm,
            random_mate_rounds=mates[n],
            pipeline_engine=ctx.account(result.engine),
        )

    # Shape: the pipeline may not grow faster than the doubly-log budget,
    # while random-mate must keep climbing with log n.
    first, last = sizes[0], sizes[-1]
    ctx.check("pipeline-nearly-flat", ours[last] - ours[first] <= 8,
              f"{ours[first]} -> {ours[last]}")
    if ctx.is_full:
        ctx.check("random-mate-climbs", mates[last] >= mates[first] + 8,
                  f"{mates[first]} -> {mates[last]}")
    else:
        ctx.check("random-mate-climbs", mates[last] > mates[first],
                  f"{mates[first]} -> {mates[last]}")
