"""E19 — arena-backed executor: segment allocations and dispatch cost.

The Theorem 4 pipeline runs twice on the true-parallel
:class:`~repro.mpc.ProcessBackend` — once with the persistent
shared-memory arena (the default) and once with transient per-operation
segments (``arena=False``, the PR 3 baseline) — against a serial
``ShardedBackend`` reference.  Expected shape:

* labels, round counts, and every model counter (``exchanges``,
  ``bytes_exchanged``, ``shard_count``, ``peak_shard_load``) bit-identical
  across all three runs — the arena changes dispatch cost, never results
  or accounting;
* cold-run segment allocations drop from O(ops) without the arena to
  O(size classes) with it (``shm_segments``, regression-gated via the
  ``*segments`` counter suffix);
* *warm* runs on a live arena allocate **zero** new segments
  (``warm_segments``, gated at 0 for the arena mode) — every buffer is a
  recycled lease, plus pinned-input cache hits for the loop-invariant
  broadcast incidence arrays.

This case always exercises the process backend regardless of
``--backend``; ``--workers N`` resizes the pool (default 2), and the
sweep constructs its backends with explicit ``arena=`` flags, so
``--arena``/``--no-arena`` (which steers backends built by name) does
not collapse the two modes into one.
"""

from __future__ import annotations

import numpy as np

import repro
from repro.bench.registry import register_benchmark
from repro.bench.workloads import Workload
from repro.graph import components_agree, connected_components
from repro.mpc import MPCEngine, ProcessBackend, ShardedBackend

DEGREE = 6
GAP_BOUND = 0.25
DELTA = 0.3

#: Ceiling on cold-run segment allocations in arena mode: the arena
#: allocates one segment per (size class × concurrent lease), which is
#: independent of how many operations the pipeline executes.
MAX_ARENA_SEGMENTS = 24


def _config(params: dict) -> "repro.PipelineConfig":
    return repro.PipelineConfig(
        delta=DELTA,
        expander_degree=4,
        max_walk_length=params["max_walk_length"],
        oversample=params["oversample"],
        max_phases=params["max_phases"],
    )


def _run(graph, seed: int, config, backend):
    """One pipeline execution on ``backend`` with a fresh engine.

    The backend is reset first so repeated timing runs do not accumulate
    exchange/byte counters (arena segments survive resets by design —
    that persistence is what this experiment measures).
    """
    backend.reset()
    engine = MPCEngine.for_delta(
        max(graph.n + graph.m, 2), DELTA, backend=backend
    )
    result = repro.mpc_connected_components(
        graph, spectral_gap_bound=GAP_BOUND, config=config, rng=seed, engine=engine
    )
    return result, engine


@register_benchmark(
    "e19_arena_overhead",
    title="Process backend: shm arena vs transient per-op segments",
    headers=["n", "arena", "seconds", "rounds", "cold segs", "warm segs",
             "recycled", "pinned", "per-op ms"],
    smoke={
        "n": 4096,
        "workers": 2,
        "seed": 13,
        "max_walk_length": 64,
        "oversample": 6,
        "max_phases": 4,
    },
    full={
        "n": 100000,
        "workers": 2,
        "seed": 13,
        "max_walk_length": 32,
        "oversample": 4,
        "max_phases": 2,
    },
    notes=(
        "Expected shape: labels/rounds/model counters bit-identical with "
        "and without the arena; cold-run segment allocations O(size "
        "classes) with the arena vs O(ops) without; warm arena runs "
        "allocate zero new segments (every buffer is a recycled lease) "
        "and hit the pinned-input cache for the broadcast incidence "
        "arrays."
    ),
    tags=("pipeline", "backends", "arena"),
)
def e19_arena_overhead(ctx):
    config = _config(ctx.params)
    n = ctx.params["n"]
    workers = ctx.workers or ctx.params["workers"]
    graph = Workload("permutation_regular", n, {"degree": DEGREE}).build(ctx.seed)
    truth = connected_components(graph)

    sharded_backend = ShardedBackend()
    sharded_result, _ = _run(graph, ctx.seed, config, sharded_backend)
    reference = sharded_backend.stats()
    ctx.check("reference-labels-correct",
              components_agree(sharded_result.labels, truth))

    cold_segments = {}
    for use_arena in (True, False):
        mode = "on" if use_arena else "off"
        # fuse_plans=False holds dispatch semantics at the per-op baseline
        # so this experiment isolates the arena variable (and its segment
        # counts stay comparable across commits); e20_plan_fusion owns the
        # fusion axis.
        backend = ProcessBackend(
            workers=workers, min_parallel_items=0, arena=use_arena,
            fuse_plans=False,
        )
        try:
            # Cold run: the arena sizes itself (allocations happen here).
            result, _ = _run(graph, ctx.seed, config, backend)
            cold = backend.arena_stats()
            cold_segments[mode] = cold["segments"]

            # Warm runs: a live arena must serve everything from recycled
            # leases — zero new segments.
            result, engine = ctx.timeit(
                f"pipeline-arena-{mode}", _run, graph, ctx.seed, config, backend
            )
            seconds = ctx.timings[-1].best
            warm = backend.arena_stats()
            stats = backend.stats()
            ops = sum(stats.op_counts.values())
            warm_segments = warm["segments"] - cold["segments"]

            ctx.check(
                f"labels-identical-arena-{mode}",
                np.array_equal(result.labels, sharded_result.labels),
                "arena toggle must not change results",
            )
            ctx.check(
                f"rounds-identical-arena-{mode}",
                result.rounds == sharded_result.rounds,
                f"{result.rounds} vs {sharded_result.rounds}",
            )
            ctx.check(
                f"counters-match-sharded-arena-{mode}",
                (stats.exchanges, stats.bytes_exchanged, stats.shard_count,
                 stats.peak_shard_load)
                == (reference.exchanges, reference.bytes_exchanged,
                    reference.shard_count, reference.peak_shard_load),
                "buffer management must not change the model accounting",
            )
            if use_arena:
                ctx.check(
                    "arena-cold-segments-bounded",
                    cold["segments"] <= MAX_ARENA_SEGMENTS,
                    f"{cold['segments']} segments for {ops} ops",
                )
                ctx.check(
                    "arena-warm-segments-zero",
                    warm_segments == 0,
                    f"warm runs allocated {warm_segments} new segments",
                )
                ctx.check(
                    "arena-recycles-leases",
                    warm["recycled"] > 0 and warm["pinned_hits"] > 0,
                )

            ctx.record(
                f"arena={mode}",
                row=[n, mode, f"{seconds:.3f}", result.rounds,
                     cold["segments"], warm_segments, warm["recycled"],
                     warm["pinned_hits"],
                     f"{1000.0 * seconds / max(ops, 1):.2f}"],
                n=n,
                arena=use_arena,
                workers=workers,
                seconds=seconds,
                pipeline_rounds=result.rounds,
                backend_ops=ops,
                per_op_dispatch_ms=1000.0 * seconds / max(ops, 1),
                shm_segments=cold["segments"],
                warm_segments=warm_segments,
                leases_issued=warm["leases"],
                leases_recycled=warm["recycled"],
                pinned_hits=warm["pinned_hits"],
                dispatch_barriers=stats.dispatch["barriers"],
                dispatch_messages=stats.dispatch["messages"],
                dispatch_steps=stats.dispatch["steps"],
                shm_mbytes_copied=stats.dispatch["shm_bytes_copied"] / 1e6,
                exchanges=stats.exchanges,
                bytes_exchanged=stats.bytes_exchanged,
                shard_count=stats.shard_count,
                peak_shard_load=stats.peak_shard_load,
                engine=ctx.account(engine),
            )
        finally:
            backend.close()

    ctx.check(
        "arena-cuts-segment-allocations",
        cold_segments["on"] * 2 <= cold_segments["off"],
        f"arena {cold_segments['on']} vs transient {cold_segments['off']} "
        "segment allocations per cold run",
    )
    ctx.note(
        f"cold-run segment allocations: {cold_segments['on']} (arena) vs "
        f"{cold_segments['off']} (transient) for the same op sequence"
    )
