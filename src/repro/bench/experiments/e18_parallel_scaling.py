"""E18 — parallel scaling of the true-parallel ``ProcessBackend``.

The Theorem 4 pipeline runs on the :class:`~repro.mpc.ProcessBackend`
with an increasing worker-process pool, timing each configuration against
the single-worker baseline and differential-checking every run against
the ``LocalBackend`` and ``ShardedBackend`` references.  Expected shape:

* labels and round counts bit-identical to both reference backends for
  every worker count (the kernels are exact, not approximate);
* shard/communication counters (``exchanges``, ``bytes_exchanged``,
  ``shard_count``, ``peak_shard_load``) identical to the serial sharded
  backend — the pool changes wall-clock, never the model accounting;
* wall-time speedup over ``workers=1`` that grows with the pool on
  multi-core hosts.  The ``min_speedup`` shape check (1.5× in the full
  tier) is enforced only when the host exposes at least two usable CPUs —
  on a single-core machine process parallelism cannot beat its own
  dispatch overhead and the speedup is recorded without gating.

This case always exercises the process backend regardless of
``--backend`` (that flag steers the single-backend pipeline cases);
``--workers N`` changes the sweep to ``{1, N}``.
"""

from __future__ import annotations

import numpy as np

import repro
from repro.bench.registry import register_benchmark
from repro.bench.workloads import Workload
from repro.graph import components_agree, connected_components
from repro.mpc import LocalBackend, MPCEngine, ProcessBackend, ShardedBackend
from repro.mpc.process_backend import usable_cpu_count

DEGREE = 6
GAP_BOUND = 0.25
DELTA = 0.3


def _config(params: dict) -> "repro.PipelineConfig":
    return repro.PipelineConfig(
        delta=DELTA,
        expander_degree=4,
        max_walk_length=params["max_walk_length"],
        oversample=params["oversample"],
        max_phases=params["max_phases"],
    )


def _run(graph, seed: int, config, backend):
    """One pipeline execution on ``backend`` with a fresh engine.

    The backend is reset first so repeated timing runs do not accumulate
    exchange/byte counters.
    """
    backend.reset()
    engine = MPCEngine.for_delta(
        max(graph.n + graph.m, 2), DELTA, backend=backend
    )
    result = repro.mpc_connected_components(
        graph, spectral_gap_bound=GAP_BOUND, config=config, rng=seed, engine=engine
    )
    return result, engine


@register_benchmark(
    "e18_parallel_scaling",
    title="Process backend: wall-time scaling vs worker count",
    headers=["n", "workers", "seconds", "speedup", "rounds", "shards",
             "exchanges"],
    smoke={
        "n": 4096,
        "workers": [1, 2],
        "seed": 11,
        "max_walk_length": 64,
        "oversample": 6,
        "max_phases": 4,
        "min_speedup": 0.0,
    },
    full={
        "n": 100000,
        "workers": [1, 2, 4],
        "seed": 11,
        "max_walk_length": 32,
        "oversample": 4,
        "max_phases": 2,
        "min_speedup": 1.5,
    },
    notes=(
        "Expected shape: labels, rounds, and shard counters bit-identical "
        "to the local and sharded references at every worker count; "
        "speedup over workers=1 grows with the pool on multi-core hosts "
        "(the min_speedup gate is skipped on single-CPU machines, where "
        "process parallelism cannot win by construction)."
    ),
    tags=("pipeline", "backends", "scaling"),
)
def e18_parallel_scaling(ctx):
    config = _config(ctx.params)
    n = ctx.params["n"]
    graph = Workload("permutation_regular", n, {"degree": DEGREE}).build(ctx.seed)
    truth = connected_components(graph)

    local_result, _ = _run(graph, ctx.seed, config, LocalBackend())
    sharded_backend = ShardedBackend()
    sharded_result, sharded_engine = _run(graph, ctx.seed, config, sharded_backend)
    reference = sharded_backend.stats()
    ctx.check(
        "reference-backends-agree",
        np.array_equal(local_result.labels, sharded_result.labels)
        and local_result.rounds == sharded_result.rounds,
    )

    workers_sweep = sorted({1, ctx.workers}) if ctx.workers else ctx.params["workers"]
    cpus = usable_cpu_count()
    ctx.note(f"host exposes {cpus} usable CPU(s); sweep: workers={workers_sweep}")

    baseline_seconds = None
    best_speedup = 0.0
    for workers in workers_sweep:
        backend = ProcessBackend(workers=workers, min_parallel_items=0)
        try:
            result, engine = ctx.timeit(
                f"pipeline-w{workers}", _run, graph, ctx.seed, config, backend
            )
            seconds = ctx.timings[-1].best
            stats = backend.stats()

            ctx.check(
                f"labels-identical-w{workers}",
                np.array_equal(result.labels, local_result.labels)
                and np.array_equal(result.labels, sharded_result.labels),
                "process labels must be bit-identical to both references",
            )
            ctx.check(
                f"labels-correct-w{workers}",
                components_agree(result.labels, truth),
            )
            ctx.check(
                f"rounds-identical-w{workers}",
                result.rounds == sharded_result.rounds,
                f"{result.rounds} vs {sharded_result.rounds}",
            )
            ctx.check(
                f"counters-match-sharded-w{workers}",
                (stats.exchanges, stats.bytes_exchanged, stats.shard_count,
                 stats.peak_shard_load)
                == (reference.exchanges, reference.bytes_exchanged,
                    reference.shard_count, reference.peak_shard_load),
                "worker pools must not change the model accounting",
            )

            if baseline_seconds is None:
                baseline_seconds = seconds
            speedup = baseline_seconds / seconds if seconds > 0 else 0.0
            if workers > 1:
                best_speedup = max(best_speedup, speedup)

            ctx.record(
                f"workers={workers}",
                row=[n, workers, f"{seconds:.3f}", f"{speedup:.2f}x",
                     result.rounds, stats.shard_count, stats.exchanges],
                n=n,
                workers=workers,
                seconds=seconds,
                speedup_vs_one_worker=speedup,
                pipeline_rounds=result.rounds,
                shard_count=stats.shard_count,
                peak_shard_load=stats.peak_shard_load,
                exchanges=stats.exchanges,
                bytes_exchanged=stats.bytes_exchanged,
                engine=ctx.account(engine),
            )
        finally:
            backend.close()

    min_speedup = ctx.params["min_speedup"]
    if min_speedup > 0 and max(workers_sweep) > 1 and cpus >= 2:
        ctx.check(
            f"speedup-at-least-{min_speedup}x",
            best_speedup > min_speedup,
            f"best speedup {best_speedup:.2f}x over workers=1",
        )
    else:
        ctx.note(
            f"best speedup over workers=1: {best_speedup:.2f}x "
            "(gate skipped: "
            + ("single-CPU host" if cpus < 2 else "record-only tier")
            + ")"
        )
