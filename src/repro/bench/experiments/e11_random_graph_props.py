"""E11 — Propositions 2.3–2.5: properties of the G(n, d) model.

Paper claims: (2.3) almost-regularity with discrepancy
``ε = sqrt(4 log n / d)``; (2.4) connectivity w.p. ``1 - n^{-c/4}`` at
``d = c log n``; (2.5) expansion / mixing time ``O(d² log(n/γ))``.
Expected shape: a connectivity phase transition around ``d ≈ log n``, and
mixing far below the (loose) d² bound.
"""

from __future__ import annotations

import numpy as np

from repro.bench.registry import register_benchmark
from repro.graph import (
    component_count,
    empirical_mixing_time,
    paper_random_graph,
    spectral_gap,
)


def _connectivity_rate(n: int, d: int, trials: int, seed: int) -> float:
    rng = np.random.default_rng(seed)
    hits = 0
    for _ in range(trials):
        if component_count(paper_random_graph(n, d, rng)) == 1:
            hits += 1
    return hits / trials


@register_benchmark(
    "e11_connectivity_threshold",
    title="G(n,d) connectivity phase transition (Prop. 2.4)",
    headers=["c (d = c·log n)", "d", "connected rate"],
    smoke={"n": 256, "factors": [0.25, 1.0, 4.0, 8.0], "trials": 8,
           "seed": 0},
    full={"n": 512, "factors": [0.25, 0.5, 1.0, 2.0, 4.0, 8.0],
          "trials": 20, "seed": 0},
    notes=(
        "Expected shape: rate ≈ 0 well below the log n threshold, → 1 "
        "above it (Prop 2.4's 1 - n^{-c/4})."
    ),
    tags=("random-graph",),
)
def e11_connectivity_threshold(ctx):
    n = ctx.params["n"]
    trials = ctx.params["trials"]
    log_n = np.log(n)
    rates = []
    for c in ctx.params["factors"]:
        d = max(2, int(c * log_n))
        seed = ctx.seed + int(c * 100)
        if c == ctx.params["factors"][0]:
            rate = ctx.timeit(
                "connectivity", _connectivity_rate, n, d, trials, seed
            )
        else:
            rate = _connectivity_rate(n, d, trials, seed)
        rates.append(rate)
        ctx.record(
            f"c={c}",
            row=[f"{c:.2f}", d, f"{rate:.2f}"],
            factor=c,
            degree=d,
            connected_rate=float(rate),
        )
    ctx.check("subcritical-disconnected", rates[0] < 0.5, str(rates))
    ctx.check("supercritical-connected", rates[-1] == 1.0, str(rates))


@register_benchmark(
    "e11b_regularity_mixing",
    title="G(n,d) almost-regularity (Prop 2.3) and mixing (Prop 2.5)",
    headers=["d", "ε predicted", "ε observed", "λ₂", "T_mix(0.01)",
             "d²log(n/γ) bound"],
    smoke={"n": 128, "factors": [4, 8], "seed": 0},
    full={"n": 256, "factors": [4, 8, 16], "seed": 0},
    notes=(
        "Expected shape: observed discrepancy within the predicted "
        "sqrt(4 log n/d); mixing time far below the loose d² bound "
        "(footnote 4 concedes the d² is an artifact of the simple proof)."
    ),
    tags=("random-graph",),
)
def e11b_regularity_mixing(ctx):
    n = ctx.params["n"]
    for c in ctx.params["factors"]:
        d = int(c * np.log(n))
        g = paper_random_graph(n, d, rng=ctx.seed + c)
        eps_pred = float(np.sqrt(4 * np.log(n) / d))
        degrees = np.asarray(g.degrees)
        eps_seen = float(np.abs(degrees - d).max() / d)
        gap = spectral_gap(g)
        if c == ctx.params["factors"][0]:
            t_mix = ctx.timeit("mixing", empirical_mixing_time, g, 1e-2)
        else:
            t_mix = empirical_mixing_time(g, 1e-2)
        bound = d**2 * np.log(n / 1e-2)  # Prop 2.5's (loose) bound
        ctx.record(
            f"c={c}",
            row=[d, f"{eps_pred:.3f}", f"{eps_seen:.3f}", f"{gap:.3f}",
                 t_mix, f"{bound:.0f}"],
            factor=c,
            degree=d,
            eps_predicted=eps_pred,
            eps_observed=eps_seen,
            gap=float(gap),
            mixing_time=int(t_mix),
            mixing_bound=float(bound),
        )
        ctx.check(f"regularity-c{c}", eps_seen <= 2 * eps_pred,
                  f"{eps_seen:.3f} vs {eps_pred:.3f}")
        ctx.check(f"mixing-c{c}", t_mix <= bound, f"{t_mix} vs {bound:.0f}")
