"""E24 — CSR gathers vs sort-based exchanges: wall time and copies.

The same Theorem 4 pipeline runs with the CSR fast path on (the
default: min-label rounds as indptr-sliced gathers over a frozen
:class:`~repro.graph.CSRIndex`) and off (``use_csr(False)``, the
sort-based orientation-array path), on a serial ``ShardedBackend``
reference and on the true-parallel ``ProcessBackend``.  Expected shape:

* labels, round counts, and every gated model counter (``exchanges``,
  ``bytes_exchanged``, ``shard_count``, ``peak_shard_load``)
  bit-identical across all four runs — the CSR path changes kernel
  shape, never results or accounting;
* the CSR run copies **fewer** bytes into shared memory per pipeline
  run: its pinned inputs are ``indptr`` (n + 1 words) + ``indices``
  (2m words) where the sort path pins ``send`` + ``recv`` (4m words),
  and the ``csr`` counters (``csr_builds``, ``csr_gathers``,
  ``argsorts_avoided``) prove the fast path actually engaged;
* an isolated round-step microbenchmark (one ``csr_min_label`` vs one
  ``min_label_exchange`` on a warm ``ProcessBackend``) shows the ≥1.3×
  speedup of the indptr-partitioned fold at smoke scale: a CSR worker
  reads exactly the contiguous slot range its label block owns, where
  the sort-based fold must mask-scan *all* ``2m`` incidences per
  worker to find the ones landing in its range.  The full tier's
  ``n = 10^6`` scaling point only pins "CSR never loses" — at that
  scale the random label gathers miss cache in both kernels and the
  margin compresses toward the shared bandwidth bound, and wall-clock
  is never hard-gated across hosts.

This case always exercises both the sharded and process backends
regardless of ``--backend``; ``--workers N`` resizes the pool
(default 2).
"""

from __future__ import annotations

import numpy as np

import repro
from repro.bench.registry import register_benchmark
from repro.bench.workloads import Workload
from repro.graph import components_agree, connected_components
from repro.graph.csr import CSRIndex, use_csr
from repro.mpc import MPCEngine, ProcessBackend, ShardedBackend

DEGREE = 6
GAP_BOUND = 0.25
DELTA = 0.3

#: Speedup the gather round step must show over the sort round step at
#: smoke scale (the acceptance gate; measured margins are larger).
MIN_ROUNDSTEP_SPEEDUP = 1.3

#: Floor for the full tier's n = 10^6 scaling point.  At that scale the
#: random label gathers miss cache in *both* kernels and the relative
#: margin compresses toward the shared bandwidth bound, so the full
#: tier only pins "CSR never loses" — cross-host wall-clock is too
#: noisy to hard-gate a ratio there (same policy as the compare gates,
#: which never fail on speed alone).
FULL_ROUNDSTEP_FLOOR = 1.0


def _config(params: dict) -> "repro.PipelineConfig":
    return repro.PipelineConfig(
        delta=DELTA,
        expander_degree=4,
        max_walk_length=params["max_walk_length"],
        oversample=params["oversample"],
        max_phases=params["max_phases"],
    )


def _run(graph, seed: int, config, backend):
    """One pipeline execution on ``backend`` with a fresh engine."""
    backend.reset()
    engine = MPCEngine.for_delta(
        max(graph.n + graph.m, 2), DELTA, backend=backend
    )
    result = repro.mpc_connected_components(
        graph, spectral_gap_bound=GAP_BOUND, config=config, rng=seed,
        engine=engine,
    )
    return result, engine


@register_benchmark(
    "e24_csr_gather",
    title="CSR gather fast path vs sort-based exchanges",
    headers=["n", "csr", "backend", "seconds", "rounds", "gathers",
             "shm-copied", "segments", "barriers"],
    smoke={
        "n": 4096,
        "workers": 2,
        "seed": 19,
        "max_walk_length": 64,
        "oversample": 6,
        "max_phases": 4,
        "roundstep_n": 500000,
    },
    full={
        "n": 100000,
        "workers": 2,
        "seed": 19,
        "max_walk_length": 32,
        "oversample": 4,
        "max_phases": 2,
        "roundstep_n": 1000000,
    },
    notes=(
        "Expected shape: labels/rounds/model counters bit-identical with "
        "the CSR fast path on and off, on both the sharded and process "
        "backends; the CSR run pins fewer bytes into shared memory "
        "(indptr + indices vs send + recv) and the isolated round step "
        "on a warm process pool is >= 1.3x faster at smoke scale (each "
        "CSR worker folds only its own contiguous slot range, where the "
        "sort-based fold mask-scans all 2m incidences per worker); the "
        "full tier's n = 10^6 point gates never-slower, since the margin "
        "compresses toward the shared bandwidth bound at cache-missing "
        "scale."
    ),
    tags=("pipeline", "backends", "csr"),
)
def e24_csr_gather(ctx):
    config = _config(ctx.params)
    n = ctx.params["n"]
    workers = ctx.workers or ctx.params["workers"]
    graph = Workload("permutation_regular", n, {"degree": DEGREE}).build(
        ctx.seed
    )
    truth = connected_components(graph)

    # -- serial reference: both modes on the sharded backend ----------------
    reference = {}
    for enabled in (False, True):
        mode = "on" if enabled else "off"
        backend = ShardedBackend()
        with use_csr(enabled):
            result, _ = _run(graph, ctx.seed, config, backend)
        reference[mode] = (result, backend.stats())
    ref_result, ref_stats = reference["off"]
    ctx.check(
        "reference-labels-correct",
        components_agree(ref_result.labels, truth),
    )
    on_result, on_stats = reference["on"]
    ctx.check(
        "sharded-labels-identical",
        np.array_equal(on_result.labels, ref_result.labels),
        "the CSR path must not change results",
    )
    ctx.check(
        "sharded-counters-identical",
        (on_result.rounds, on_stats.exchanges, on_stats.bytes_exchanged,
         on_stats.shard_count, on_stats.peak_shard_load)
        == (ref_result.rounds, ref_stats.exchanges,
            ref_stats.bytes_exchanged, ref_stats.shard_count,
            ref_stats.peak_shard_load),
        "the CSR path must not change the model accounting",
    )
    ctx.check(
        "csr-counters-engage",
        on_stats.csr["csr_builds"] > 0
        and on_stats.csr["csr_gathers"] > 0
        and on_stats.csr["argsorts_avoided"] > 0
        and all(v == 0 for v in ref_stats.csr.values()),
        f"on: {on_stats.csr}, off: {ref_stats.csr}",
    )

    # -- process backend: timed runs, both modes ----------------------------
    shm_copied = {}
    for enabled in (True, False):
        mode = "on" if enabled else "off"
        backend = ProcessBackend(workers=workers, min_parallel_items=0)
        try:
            with use_csr(enabled):
                # Cold run first (pool spawn, arena sizing, page faults),
                # so the timed runs compare kernel shapes on equal
                # footing — the same discipline as e19/e20.
                _run(graph, ctx.seed, config, backend)
                result, engine = ctx.timeit(
                    f"pipeline-csr-{mode}", _run, graph, ctx.seed, config,
                    backend,
                )
            seconds = ctx.timings[-1].best
            stats = backend.stats()
            dispatch = stats.dispatch
            arena = stats.arena
            shm_copied[mode] = dispatch["shm_bytes_copied"]

            ctx.check(
                f"process-labels-identical-csr-{mode}",
                np.array_equal(result.labels, ref_result.labels),
                "the CSR path must not change results",
            )
            ctx.check(
                f"process-counters-identical-csr-{mode}",
                (result.rounds, stats.exchanges, stats.bytes_exchanged,
                 stats.shard_count, stats.peak_shard_load)
                == (ref_result.rounds, ref_stats.exchanges,
                    ref_stats.bytes_exchanged, ref_stats.shard_count,
                    ref_stats.peak_shard_load),
                "the CSR path must not change the model accounting",
            )

            ctx.record(
                f"csr={mode}",
                row=[n, mode, "process", f"{seconds:.3f}", result.rounds,
                     stats.csr["csr_gathers"], dispatch["shm_bytes_copied"],
                     arena["segments"], dispatch["barriers"]],
                n=n,
                csr=enabled,
                workers=workers,
                seconds=seconds,
                pipeline_rounds=result.rounds,
                csr_builds=stats.csr["csr_builds"],
                csr_gathers=stats.csr["csr_gathers"],
                argsorts_avoided=stats.csr["argsorts_avoided"],
                shm_bytes_copied=dispatch["shm_bytes_copied"],
                arena_segments=arena["segments"],
                pinned_hits=arena["pinned_hits"],
                dispatch_barriers=dispatch["barriers"],
                exchanges=stats.exchanges,
                bytes_exchanged=stats.bytes_exchanged,
                shard_count=stats.shard_count,
                peak_shard_load=stats.peak_shard_load,
                engine=ctx.account(engine),
            )
        finally:
            backend.close()

    ctx.check(
        "csr-copies-fewer-shm-bytes",
        shm_copied["on"] < shm_copied["off"],
        f"csr on copied {shm_copied['on']} bytes into shared memory vs "
        f"{shm_copied['off']} with the sort path (indptr + indices pins "
        "replace the wider send + recv pins)",
    )

    # -- isolated round step: gather vs sort fold on a warm process pool ----
    rs_n = ctx.params["roundstep_n"]
    rs_graph = Workload(
        "permutation_regular", rs_n, {"degree": DEGREE}
    ).build(ctx.seed + 1)
    index = CSRIndex.from_graph(rs_graph)
    edges = rs_graph.edges
    send = np.concatenate([edges[:, 0], edges[:, 1]])
    recv = np.concatenate([edges[:, 1], edges[:, 0]])
    # Read-only so the arena pins them, exactly like the engines do —
    # the timed calls then measure the kernels, not first-time uploads.
    send.setflags(write=False)
    recv.setflags(write=False)
    labels = np.arange(rs_n, dtype=np.int64)
    pool = ProcessBackend(
        shard_memory=rs_n + 2 * rs_graph.m,
        workers=workers,
        min_parallel_items=0,
    )
    try:
        # Warm run each shape once (pool spawn, pinned uploads).
        pool.min_label_exchange(labels, send, recv)
        pool.csr_min_label(labels, index.indptr, index.indices)
        sort_labels = ctx.timeit(
            "roundstep-sort",
            lambda: pool.min_label_exchange(labels, send, recv)[0],
        )
        sort_seconds = ctx.timings[-1].best
        csr_labels = ctx.timeit(
            "roundstep-csr",
            lambda: pool.csr_min_label(
                labels, index.indptr, index.indices
            )[0],
        )
        csr_seconds = ctx.timings[-1].best
    finally:
        pool.close()
    ctx.check(
        "roundstep-labels-identical",
        np.array_equal(sort_labels, csr_labels),
        "one gather round must equal one sort round bit for bit",
    )
    speedup = sort_seconds / csr_seconds if csr_seconds > 0 else float("inf")
    floor = FULL_ROUNDSTEP_FLOOR if ctx.is_full else MIN_ROUNDSTEP_SPEEDUP
    ctx.check(
        "roundstep-speedup",
        speedup >= floor,
        f"csr round step {csr_seconds:.4f}s vs sort {sort_seconds:.4f}s "
        f"({speedup:.2f}x, need >= {floor}x)",
    )
    ctx.record(
        "roundstep",
        row=[rs_n, "both", "process", f"{csr_seconds:.4f}", "-",
             1, "-", "-", "-"],
        n=rs_n,
        incidences=int(index.indices.size),
        workers=workers,
        sort_seconds=sort_seconds,
        csr_seconds=csr_seconds,
        speedup=speedup,
    )
    ctx.note(
        f"round step at {rs_n} vertices / {index.indices.size} incidences "
        f"({workers} workers): sort {sort_seconds * 1e3:.1f} ms vs csr "
        f"{csr_seconds * 1e3:.1f} ms ({speedup:.2f}x); pipeline shm bytes "
        f"copied {shm_copied['off']} -> {shm_copied['on']}"
    )
