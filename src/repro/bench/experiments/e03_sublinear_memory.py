"""E3 — Theorem 2: rounds vs machine memory on arbitrary graphs.

Paper claim: ``SublinearConn`` finds components of *any* graph in
``O(log log n + log(n/s))`` rounds with memory ``s = n^{Ω(1)}``.  Expected
shape: rounds fall as ``s`` grows (through the shorter degree-boosting
walks), on workloads with no spectral-gap structure at all.
"""

from __future__ import annotations

from repro import theory
from repro.bench.registry import register_benchmark
from repro.bench.workloads import Workload
from repro.core import sublinear_connectivity
from repro.graph import components_agree, connected_components


def _run_one(workload: Workload, memory: int, seed: int, walk_cap: int):
    graph = workload.build(seed)
    result = sublinear_connectivity(
        graph, machine_memory=memory, rng=seed, walk_cap=walk_cap
    )
    assert components_agree(result.labels, connected_components(graph))
    return result


@register_benchmark(
    "e03_sublinear_memory",
    title="SublinearConn rounds vs machine memory (Theorem 2)",
    headers=["workload", "s", "d", "walk t", "|V(H)|", "rounds", "Thm2 shape"],
    smoke={"n": 256, "memories": [16, 64, 256], "walk_cap": 2000, "seed": 17},
    full={"n": 1024, "memories": [32, 64, 128, 256, 512], "walk_cap": 4000,
          "seed": 17},
    notes=(
        "Expected shape: rounds fall as s grows — log(n/s) through the "
        "walk length; exactness holds on every workload (no gap "
        "assumptions)."
    ),
    tags=("sublinear",),
)
def e03_sublinear_memory(ctx):
    n = ctx.params["n"]
    memories = ctx.params["memories"]
    walk_cap = ctx.params["walk_cap"]
    workloads = [
        Workload("path", n),
        Workload("grid", n),
        Workload("paper_random", n, {"degree": 4}),
    ]
    for workload in workloads:
        series = []
        for memory in memories:
            if workload.family == "path" and memory == memories[0]:
                result = ctx.timeit(
                    "sublinear", _run_one, workload, memory, ctx.seed, walk_cap
                )
            else:
                result = _run_one(workload, memory, ctx.seed, walk_cap)
            series.append(result.rounds)
            ctx.record(
                f"{workload.label},s={memory}",
                row=[workload.family, memory, result.degree_target,
                     result.walk_length, result.contracted_vertices,
                     result.rounds,
                     f"{theory.theorem2_rounds(n, memory):.1f}"],
                workload=workload.family,
                n=n,
                memory=memory,
                degree_target=result.degree_target,
                walk_length=result.walk_length,
                contracted_vertices=result.contracted_vertices,
                sublinear_rounds=result.rounds,
            )
        ctx.check(f"{workload.family}-rounds-fall", series[-1] <= series[0],
                  str(series))
        inversions = sum(1 for a, b in zip(series, series[1:]) if b > a)
        ctx.check(f"{workload.family}-weak-monotone", inversions <= 1,
                  str(series))
