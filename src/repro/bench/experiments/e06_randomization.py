"""E6 — Lemma 5.1: the randomization step's output distribution.

Paper claims: after walks of mixing length, every component becomes (TV-
close to) a sample of ``G(n_i, Θ(log n))`` on its own vertex set — walk
targets near-uniform within the component, never crossing components, and
the resulting graph connected per component w.h.p. (Prop. 2.4).
"""

from __future__ import annotations

import numpy as np

from repro.bench.registry import register_benchmark
from repro.core import randomize_components
from repro.graph import (
    components_agree,
    connected_components,
    disjoint_union,
    permutation_regular_graph,
)

DEGREE = 6


def _build(sizes, seed: int):
    parts = [
        permutation_regular_graph(s, DEGREE, rng=seed + i)
        for i, s in enumerate(sizes)
    ]
    return disjoint_union(parts)


def _run_one(sizes, walk_length: int, seed: int):
    graph, offsets = _build(sizes, seed)
    result = randomize_components(
        graph, walk_length, batches=2, batch_half_degree=8, rng=seed
    )
    return graph, offsets, result


@register_benchmark(
    "e06_randomization",
    title="Randomization (Lemma 5.1): uniformity, containment, connectivity",
    headers=["component", "n_i", "targets", "TV to uniform"],
    smoke={"sizes": [48, 96], "walk_length": 64, "num_seeds": 3,
           "tv_limit": 0.2, "seed": 40},
    full={"sizes": [48, 96], "walk_length": 64, "num_seeds": 10,
          "tv_limit": 0.2, "seed": 40},
    tags=("randomize",),
)
def e06_randomization(ctx):
    sizes = ctx.params["sizes"]
    walk_length = ctx.params["walk_length"]
    seeds = list(range(ctx.seed, ctx.seed + ctx.params["num_seeds"]))

    connected_successes = 0
    crossing_edges = 0
    for seed in seeds:
        if seed == seeds[0]:
            graph, offsets, result = ctx.timeit(
                "randomize", _run_one, sizes, walk_length, seed
            )
        else:
            graph, offsets, result = _run_one(sizes, walk_length, seed)
        truth = connected_components(graph)
        if components_agree(connected_components(result.graph), truth):
            connected_successes += 1
        for batch in result.batches:
            crossing_edges += int(
                np.sum(truth[batch[:, 0]] != truth[batch[:, 1]])
            )

    # Distributional detail on one held-out seed: per-component uniformity.
    graph, offsets, result = _run_one(sizes, walk_length, ctx.seed + 59)
    all_targets = np.concatenate([b[:, 1] for b in result.batches])
    all_sources = np.concatenate([b[:, 0] for b in result.batches])
    for comp, (lo, hi) in enumerate(zip(offsets[:-1], offsets[1:])):
        in_comp = (all_sources >= lo) & (all_sources < hi)
        targets = all_targets[in_comp]
        counts = np.bincount(targets - lo, minlength=hi - lo)
        freq = counts / counts.sum()
        tv = 0.5 * np.abs(freq - 1.0 / (hi - lo)).sum()
        ctx.record(
            f"component-{comp}",
            row=[f"component {comp}", int(hi - lo), int(counts.sum()),
                 f"{tv:.4f}"],
            component=comp,
            size=int(hi - lo),
            targets=int(counts.sum()),
            tv_to_uniform=float(tv),
        )
        ctx.check(f"component-{comp}-tv", tv < ctx.params["tv_limit"],
                  f"{tv:.4f}")

    ctx.note(
        f"Across {len(seeds)} seeds: components preserved+connected in "
        f"{connected_successes}/{len(seeds)} runs; cross-component walk "
        f"edges: {crossing_edges} (must be 0 — walks cannot escape)."
    )
    ctx.check("no-crossing-edges", crossing_edges == 0, str(crossing_edges))
    ctx.check("connected-per-component",
              connected_successes >= len(seeds) - 1,
              f"{connected_successes}/{len(seeds)}")
