"""The experiments of the paper's evaluation (plus library-level ones), as
registrations.

Importing this package populates the benchmark registry.  Each module
holds one experiment (plus its companion sub-experiments, e.g. E5b) with
``smoke`` and ``full`` parameter tiers — the sweep/table/JSON plumbing
all lives in :mod:`repro.bench`.
"""

from repro.bench.experiments import (  # noqa: F401  (imported for registration)
    e01_rounds_vs_n,
    e02_rounds_vs_gap,
    e03_sublinear_memory,
    e04_regularization,
    e05_random_walks,
    e06_randomization,
    e07_grow_components,
    e08_diameter,
    e09_lower_bound,
    e10_balls_bins,
    e11_random_graph_props,
    e12_unknown_gap,
    e13_sketch,
    e14_ablation_growth,
    e15_ablation_walk_length,
    e16_gap_vs_diameter,
    e17_backend_comparison,
    e18_parallel_scaling,
    e19_arena_overhead,
    e20_plan_fusion,
    e21_engine_race,
    e22_streaming_updates,
    e23_rpc_service,
    e24_csr_gather,
    e25_parallel_sketch,
)

__all__ = [
    "e01_rounds_vs_n",
    "e02_rounds_vs_gap",
    "e03_sublinear_memory",
    "e04_regularization",
    "e05_random_walks",
    "e06_randomization",
    "e07_grow_components",
    "e08_diameter",
    "e09_lower_bound",
    "e10_balls_bins",
    "e11_random_graph_props",
    "e12_unknown_gap",
    "e13_sketch",
    "e14_ablation_growth",
    "e15_ablation_walk_length",
    "e16_gap_vs_diameter",
    "e17_backend_comparison",
    "e18_parallel_scaling",
    "e19_arena_overhead",
    "e20_plan_fusion",
    "e21_engine_race",
    "e22_streaming_updates",
    "e23_rpc_service",
    "e24_csr_gather",
    "e25_parallel_sketch",
]
