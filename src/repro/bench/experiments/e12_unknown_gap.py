"""E12 — Corollary 7.1: unknown spectral gap.

Paper claim: geometric gap-guessing (λ' → λ'^1.1) with a growability check
finds each component after O(log log (1/λ₂)) guesses, for a total of
``O(log log n · log log(1/λ) + log(1/λ))`` rounds — without ever being
told λ.  Expected shape: well-connected components finish in the first
guess; weakly connected ones need further iterations; totals stay near
the Cor 7.1 budget.
"""

from __future__ import annotations

import repro
from repro import theory
from repro.bench.registry import register_benchmark
from repro.graph import (
    components_agree,
    connected_components,
    disjoint_union,
    expander_path,
    min_component_spectral_gap,
    permutation_regular_graph,
)


def _build_mixed(params: dict, seed: int):
    strong = permutation_regular_graph(params["strong_n"], 8, rng=seed)
    weak = expander_path(
        params["weak_count"], params["weak_size"], 8, rng=seed
    )  # long chain: tiny gap
    graph, _ = disjoint_union([strong, weak])
    return graph


def _run_adaptive(params: dict, seed: int, backend: str = "local"):
    graph = _build_mixed(params, seed)
    config = repro.PipelineConfig(
        delta=0.5, expander_degree=4,
        max_walk_length=params["max_walk_length"], oversample=6,
        broadcast_budget=3,
    )
    result = repro.mpc_connected_components_adaptive(
        graph, config=config, rng=seed, backend=backend,
        gap_exponent=params["gap_exponent"],
    )
    assert components_agree(result.labels, connected_components(graph))
    return graph, result


@register_benchmark(
    "e12_unknown_gap",
    title="Adaptive pipeline with unknown gap (Corollary 7.1)",
    headers=["iter", "guess λ'", "walk T", "rounds", "finished",
             "still active"],
    smoke={"strong_n": 192, "weak_count": 16, "weak_size": 16,
           "max_walk_length": 512, "gap_exponent": 1.7, "seed": 71},
    full={"strong_n": 512, "weak_count": 24, "weak_size": 32,
          "max_walk_length": 1024, "gap_exponent": 1.7, "seed": 71},
    tags=("pipeline", "adaptive"),
)
def e12_unknown_gap(ctx):
    graph, result = ctx.timeit("adaptive", _run_adaptive, ctx.params,
                               ctx.seed, ctx.backend)

    walk_lengths = []
    for i, it in enumerate(result.iterations, 1):
        walk_lengths.append(it.walk_length)
        ctx.record(
            f"iteration-{i}",
            row=[i, f"{it.gap_guess:.4f}", it.walk_length, it.rounds,
                 it.finished_vertices, it.active_vertices],
            iteration=i,
            gap_guess=float(it.gap_guess),
            walk_length=it.walk_length,
            iteration_rounds=it.rounds,
            finished_vertices=it.finished_vertices,
            active_vertices=it.active_vertices,
        )

    true_gap = min_component_spectral_gap(graph)
    predicted = theory.corollary71_rounds(graph.n, max(true_gap, 1e-6),
                                          delta=0.5)
    ctx.note(
        f"True minimum component gap: {true_gap:.5f}. Total rounds: "
        f"{result.rounds}; Cor 7.1 shape (c=1): {predicted:.0f}. "
        "Expected shape: the expander finishes at iteration 1; the weak "
        "chain keeps failing its growability check until the guess sinks "
        "below its gap (or the guard floor forces finalization)."
    )

    ctx.check("multiple-iterations", len(result.iterations) >= 2,
              str(len(result.iterations)))
    # The strong expander must be done after the first guess.
    ctx.check("expander-finishes-first",
              result.iterations[0].finished_vertices >= ctx.params["strong_n"],
              str(result.iterations[0].finished_vertices))
    ctx.check("all-finish", result.iterations[-1].active_vertices == 0)
    # Walk lengths grow as the guess shrinks (until the cap).
    ctx.check("walks-grow", walk_lengths[-1] >= walk_lengths[0],
              str(walk_lengths))
