"""E7 — Lemmas 6.4/6.7: quadratic component growth.

Paper claims: phase ``i`` of ``GrowComponents`` on fresh ``G(n, Δ·s)``
batches produces components of size ``J(1±ε)Δ_i/ΔK`` with the contraction
graph ``J(1±ε)Δ_{i+1}·sK``-almost-regular — sizes square each phase
(``Δ_i = Δ^{2^{i-1}}``), against the constant factor of classical leader
election.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Interval
from repro.bench.registry import register_benchmark
from repro.core import grow_components, leader_election
from repro.graph import paper_random_graph, paper_random_graph_edges
from repro.utils.rng import spawn_rngs

GROWTH = 4
OVERSAMPLE = 10
PHASES = 2


def _run_grow(n: int, seed: int):
    rngs = spawn_rngs(seed, PHASES)
    half = GROWTH * OVERSAMPLE // 2
    batches = [paper_random_graph_edges(n, half, rng) for rng in rngs]
    schedule = [GROWTH ** (2 ** (i - 1)) for i in range(1, PHASES + 1)]
    return grow_components(n, batches, schedule, rng=seed)


@register_benchmark(
    "e07_quadratic_growth",
    title="GrowComponents: per-phase growth (Lemma 6.7; Δ_i = Δ^{2^{i-1}})",
    headers=["phase", "Δ_i", "p_i", "comps before", "comps after",
             "mean size", "target Δ^{2^i-1}", "in J(1±.5)K",
             "contraction deg", "unmatched"],
    smoke={"n": 8_000, "seed": 51},
    full={"n": 20_000, "seed": 51},
    notes=(
        "Expected shape: mean component size ≈ 4 after phase 1 and ≈ 64 "
        "after phase 2 (squared growth); contraction degree multiplies by "
        "≈ Δ between phases (Claims 6.9/6.10)."
    ),
    tags=("grow",),
)
def e07_quadratic_growth(ctx):
    result = ctx.timeit("grow", _run_grow, ctx.params["n"], ctx.seed)

    for t in result.telemetry:
        target_size = GROWTH ** (2**t.phase - 1)
        size_interval = Interval.one_pm(0.5) * target_size
        ctx.record(
            f"phase-{t.phase}",
            row=[t.phase, t.growth_target, f"{t.leader_prob:.4f}",
                 t.components_before, t.components_after,
                 f"{t.mean_component_size:.1f}", target_size,
                 "yes" if size_interval.contains(t.mean_component_size)
                 else "NO",
                 f"{t.mean_contraction_degree:.1f}", t.unmatched],
            phase=t.phase,
            growth_target=t.growth_target,
            components_before=t.components_before,
            components_after=t.components_after,
            mean_component_size=float(t.mean_component_size),
            mean_contraction_degree=float(t.mean_contraction_degree),
            unmatched=t.unmatched,
        )

    t1, t2 = result.telemetry
    ctx.check("phase1-size",
              Interval.one_pm(0.5).scale(GROWTH).contains(
                  t1.mean_component_size),
              f"{t1.mean_component_size:.1f}")
    ctx.check("phase2-size",
              Interval.one_pm(0.6).scale(GROWTH**3).contains(
                  t2.mean_component_size),
              f"{t2.mean_component_size:.1f}")
    # Degree roughly squares (ratio ≈ Δ within 2x slack).
    ratio = t2.mean_contraction_degree / t1.mean_contraction_degree
    ctx.check("degree-squares", GROWTH / 2 <= ratio <= GROWTH * 2,
              f"ratio {ratio:.2f}")


@register_benchmark(
    "e07b_equipartition",
    title="LeaderElection equipartition (Lemma 6.4)",
    headers=["n", "degree d·s", "p=1/d", "mean |S_i|", "frac in J(1±0.4)dK",
             "matched"],
    smoke={"n": 2_000, "d": 25, "s": 30, "inside_floor": 0.80, "seed": 53},
    full={"n": 6_000, "d": 25, "s": 60, "inside_floor": 0.85, "seed": 53},
    notes="Lemma 6.4 head-on: star sizes concentrate in J(1±3ε)dK.",
    tags=("grow",),
)
def e07b_equipartition(ctx):
    n, d, s = ctx.params["n"], ctx.params["d"], ctx.params["s"]

    def _run():
        rng = np.random.default_rng(ctx.seed)
        g = paper_random_graph(n, d * s, rng=rng)
        edges = g.simplify().edges
        return leader_election(n, edges, 1.0 / d, rng=rng)

    result = ctx.timeit("leader-election", _run)
    sizes = result.component_sizes()
    interval = Interval.one_pm(0.4) * d
    inside = float(np.mean([interval.low <= x <= interval.high
                            for x in sizes]))
    matched = float(np.mean(result.leader_of >= 0))
    ctx.record(
        f"n={n},d={d},s={s}",
        row=[n, d * s, f"{1 / d:.3f}", f"{sizes.mean():.1f}",
             f"{inside:.3f}", f"{matched:.4f}"],
        n=n,
        degree=d * s,
        mean_star_size=float(sizes.mean()),
        inside_fraction=inside,
        matched_fraction=matched,
    )
    ctx.check("matched", matched > 0.99, f"{matched:.4f}")
    ctx.check("equipartition", inside > ctx.params["inside_floor"],
              f"{inside:.3f}")
