"""E22 — streaming updates: sketch-maintained connectivity vs the oracle.

The dynamic-graph workload: every registered stream pattern
(insert-heavy, delete-heavy, churn, and the component-split adversary)
runs over a sweep of generator families through
:class:`~repro.streaming.StreamingConnectivity` — batched insert/delete
events applied as signed AGM-sketch updates, with component queries
answered between batches.  Expected shape:

* **staleness vs oracle is zero** — at every checkpoint the streamed
  labels are bit-identical (canonical form) to a from-scratch
  ``mpc_connected_components`` run on the materialised multiset, for
  every family × pattern;
* **update throughput** clears the suite floor (events/second through
  the signed sketch scatter) and **query latency** stays under the
  ceiling — both deliberately generous so only order-of-magnitude
  regressions trip in CI;
* **sketch health**: decode fallbacks per stream and the forced final
  oracle recompute's MPC rounds are recorded per family × pattern
  (``oracle_rounds`` is regression-gated by ``--compare``), so a sketch
  change that silently degrades decoding shows up as a counter diff.

The oracle recompute runs through the engine/backend dispatch seam, so
``--engine``/``--backend`` race the fallback path like any pipeline
experiment.
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro.bench.registry import register_benchmark
from repro.core.pipeline import mpc_connected_components
from repro.graph import canonical_labels
from repro.streaming import StreamingConnectivity, StreamWorkload, stream_pattern_names

GAP_BOUND = 0.1

#: Dense/structured families stay small so every stream finishes fast.
SIZE_OVERRIDES = {"complete": 48, "hypercube": 64}


def _config(params: dict) -> "repro.PipelineConfig":
    return repro.PipelineConfig(
        delta=0.5,
        expander_degree=4,
        max_walk_length=params["max_walk_length"],
        oversample=params["oversample"],
        max_phases=params["max_phases"],
    )


@register_benchmark(
    "e22_streaming_updates",
    title="Streaming insert/delete connectivity on the AGM sketch layer",
    headers=["family", "pattern", "n", "events", "checkpoints", "events/s",
             "query ms", "fallbacks", "oracle rounds"],
    smoke={
        "families": ["path", "star", "dumbbell", "erdos_renyi"],
        "n": 96,
        "batches": 5,
        "seed": 23,
        "min_events_per_sec": 200.0,
        "max_query_seconds": 0.5,
        "max_walk_length": 32,
        "oversample": 4,
        "max_phases": 2,
    },
    full={
        "families": ["complete", "cycle", "dumbbell", "erdos_renyi",
                     "expander_path", "grid", "hypercube", "paper_random",
                     "path", "permutation_regular", "ring_of_expanders",
                     "star"],
        "n": 384,
        "batches": 8,
        "seed": 23,
        "min_events_per_sec": 200.0,
        "max_query_seconds": 2.0,
        "max_walk_length": 64,
        "oversample": 6,
        "max_phases": 4,
    },
    notes=(
        "Expected shape: zero label staleness vs the from-scratch oracle "
        "at every checkpoint for every family x pattern (incl. the "
        "component-split adversary, whose exact cancellations are the "
        "hard case); throughput/latency floors are generous "
        "order-of-magnitude guards; oracle_rounds is regression-gated."
    ),
    tags=("sketch", "streaming", "pipeline"),
)
def e22_streaming_updates(ctx):
    config = _config(ctx.params)
    base_n = ctx.params["n"]
    batches = ctx.params["batches"]

    for family in ctx.params["families"]:
        size = SIZE_OVERRIDES.get(family, base_n)
        for pattern in stream_pattern_names():
            stream = StreamWorkload(family, size, pattern, batches=batches).build(
                ctx.seed
            )
            conn = StreamingConnectivity(
                stream.n,
                rng=ctx.seed,
                spectral_gap_bound=GAP_BOUND,
                config=config,
                engine=ctx.engine,
                backend=ctx.backend,
            )

            update_seconds = 0.0
            query_seconds = []
            mismatches = 0
            for batch in stream:
                start = time.perf_counter()
                conn.apply(batch)
                update_seconds += time.perf_counter() - start

                start = time.perf_counter()
                streamed = conn.query()
                query_seconds.append(time.perf_counter() - start)

                scratch = mpc_connected_components(
                    conn.current_graph(), GAP_BOUND, config=config,
                    rng=ctx.seed, engine=ctx.engine, backend=ctx.backend,
                ).labels
                if not np.array_equal(streamed, canonical_labels(scratch)):
                    mismatches += 1

            # Forced oracle pass: records gated MPC rounds for the
            # fallback path and must agree with the final streamed labels.
            final_streamed = conn.query()
            oracle = conn.recompute()
            ctx.check(
                f"oracle-agrees-{family}-{pattern}",
                np.array_equal(final_streamed, oracle),
                "forced oracle recompute must reproduce the streamed labels",
            )
            ctx.check(
                f"zero-staleness-{family}-{pattern}",
                mismatches == 0,
                f"{mismatches}/{len(stream)} checkpoints diverged from the "
                "from-scratch oracle",
            )

            events_per_sec = (
                stream.total_events / update_seconds if update_seconds else 0.0
            )
            worst_query = max(query_seconds)
            ctx.check(
                f"throughput-floor-{family}-{pattern}",
                events_per_sec >= ctx.params["min_events_per_sec"],
                f"{events_per_sec:.0f} events/s",
            )
            ctx.check(
                f"query-latency-ceiling-{family}-{pattern}",
                worst_query <= ctx.params["max_query_seconds"],
                f"{worst_query * 1e3:.1f} ms",
            )

            fallbacks = conn.stats.decode_failures
            ctx.record(
                f"{family}/{pattern}",
                row=[family, pattern, stream.n, stream.total_events,
                     len(stream), f"{events_per_sec:.0f}",
                     f"{1e3 * sum(query_seconds) / len(query_seconds):.1f}",
                     fallbacks, conn.stats.oracle_rounds],
                family=family,
                pattern=pattern,
                n=stream.n,
                events=stream.total_events,
                checkpoints=len(stream),
                stale_checkpoints=mismatches,
                events_per_sec=events_per_sec,
                query_seconds_mean=sum(query_seconds) / len(query_seconds),
                query_seconds_max=worst_query,
                decode_fallbacks=fallbacks,
                sketch_rebuilds=conn.stats.sketch_rebuilds,
                oracle_rounds=conn.stats.oracle_rounds,
            )

    ctx.note(
        "Streamed labels stayed bit-identical to the from-scratch oracle "
        "at every checkpoint; deletes are plain -1 sketch updates "
        "(linearity, Prop. 8.1), so the component-split adversary's exact "
        "cancellations are the load-bearing case."
    )
