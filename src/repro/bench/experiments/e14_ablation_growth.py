"""E14 — Remark 1.1 ablation: quadratic vs constant-factor growth.

Paper's central design choice: ``GrowComponents`` squares component
sizes per phase by exploiting the entropy of fresh random-graph batches,
where classical leader election (random mate, p = 1/2) shrinks the
component count by only a constant factor per round.  Same input family,
same election primitive, same round charges per phase — only the schedule
differs.  Expected shape: phases-to-finish Θ(log log n) vs Θ(log n).
"""

from __future__ import annotations

import numpy as np

from repro.baselines import random_mate_components
from repro.bench.registry import register_benchmark
from repro.core import random_graph_components
from repro.graph import Graph, paper_random_graph_edges
from repro.mpc import MPCEngine
from repro.utils.rng import spawn_rngs

GROWTH = 4
HALF = 20


def _quadratic(n: int, seed: int) -> "tuple[int, int]":
    rngs = spawn_rngs(seed, 2)
    batches = [paper_random_graph_edges(n, HALF, rng) for rng in rngs]
    engine = MPCEngine.for_delta(n * HALF * 2, 0.5)
    result = random_graph_components(
        n, batches, [GROWTH, GROWTH**2], rng=seed, engine=engine
    )
    assert np.all(result.labels == 0)  # a connected random graph
    phases = len(result.grow.telemetry) + (1 if result.broadcast_rounds else 0)
    return phases, engine.rounds


def _constant(n: int, seed: int) -> "tuple[int, int]":
    rng = spawn_rngs(seed, 1)[0]
    graph = Graph(n, paper_random_graph_edges(n, HALF * 2, rng))
    engine = MPCEngine.for_delta(n * HALF * 2, 0.5)
    result = random_mate_components(graph, rng=seed, engine=engine)
    assert np.all(result.labels == 0)
    return result.iterations, engine.rounds


@register_benchmark(
    "e14_growth_ablation",
    title="Ablation: quadratic (GrowComponents) vs constant (random-mate) "
          "growth",
    headers=["n", "quad phases", "quad rounds", "const phases",
             "const rounds", "loglog n", "log n"],
    smoke={"sizes": [1_000, 4_000], "const_factor": 2, "seed": 81},
    full={"sizes": [2_000, 8_000, 32_000], "const_factor": 3, "seed": 81},
    notes=(
        "Same random-graph inputs, same leader-election primitive, same "
        "per-phase round charges. Expected shape: quadratic finishes in "
        "~loglog n phases at every n; constant growth needs ~log n "
        "iterations and keeps climbing."
    ),
    tags=("grow", "ablation"),
)
def e14_growth_ablation(ctx):
    quad_phases, const_phases = [], []
    for n in ctx.params["sizes"]:
        if n == ctx.params["sizes"][0]:
            qp, qr = ctx.timeit("quadratic", _quadratic, n, ctx.seed)
        else:
            qp, qr = _quadratic(n, ctx.seed)
        cp, cr = _constant(n, ctx.seed)
        quad_phases.append(qp)
        const_phases.append(cp)
        ctx.record(
            f"n={n}",
            row=[n, qp, qr, cp, cr, f"{np.log2(np.log2(n)):.1f}",
                 f"{np.log2(n):.1f}"],
            n=n,
            quadratic_phases=qp,
            quadratic_rounds=qr,
            constant_phases=cp,
            constant_rounds=cr,
        )

    ctx.check("quadratic-loglog", max(quad_phases) <= 4, str(quad_phases))
    ctx.check("constant-climbs", const_phases[-1] >= const_phases[0],
              str(const_phases))
    ctx.check(
        "quadratic-wins",
        const_phases[-1] >= ctx.params["const_factor"] * max(quad_phases),
        f"{const_phases[-1]} vs {ctx.params['const_factor']}x "
        f"{max(quad_phases)}",
    )
