"""E15 — ablation: why Step 2 walks to the mixing time.

The pipeline's central tuning knob is the walk length T.  The paper sets
``T ≥ T_mix`` so each component becomes a *bona fide* random graph, buying
Claim 6.13's O(1)-diameter contraction.  This ablation under-walks on
purpose: with short walks the overlay is only locally random, the final
contraction graph inherits the input's long-range structure, and the
closing broadcast pays for it — while long walks shift cost into the
O(log T) walk-building term.  Exactness holds at every setting (the
broadcast runs to stabilisation); only the round *distribution* moves.
"""

from __future__ import annotations

import repro
from repro.bench.registry import register_benchmark
from repro.bench.workloads import Workload
from repro.graph import components_agree, connected_components
from repro.mpc import MPCEngine, make_backend

BASE = repro.PipelineConfig(delta=0.5, expander_degree=4, oversample=6)


def _run_one(workload: Workload, cap: int, seed: int, backend: str = "local"):
    graph = workload.build(seed)
    config = BASE.with_overrides(max_walk_length=cap)
    engine = MPCEngine(4096, backend=make_backend(backend))
    result = repro.mpc_connected_components(
        graph, 1e-4, config=config, rng=seed, engine=engine
    )
    assert components_agree(result.labels, connected_components(graph))
    return result


@register_benchmark(
    "e15_walk_length_ablation",
    title="Ablation: walk length vs where the rounds go (chain of expanders)",
    headers=["walk T", "total rounds", "step-3 broadcast", "verify fallback",
             "exact"],
    smoke={"count": 8, "size": 24, "caps": [4, 32, 256],
           "broadcast_factor": 1, "seed": 5},
    full={"count": 16, "size": 48, "caps": [4, 16, 64, 256, 1024],
          "broadcast_factor": 3, "seed": 5},
    notes=(
        "Expected shape: under-walking (T ≪ T_mix) leaves long-range "
        "structure in the contraction graph — the broadcast stage pays "
        "more rounds; walking to the mixing time collapses it to the "
        "Claim 6.13 constant. Exact answers at every T (the stabilising "
        "broadcast is the honest fallback)."
    ),
    tags=("pipeline", "ablation"),
)
def e15_walk_length_ablation(ctx):
    count, size = ctx.params["count"], ctx.params["size"]
    workload = Workload("expander_path", count * size,
                        {"count": count, "degree": 8})
    broadcast_series = []
    for cap in ctx.params["caps"]:
        if cap == ctx.params["caps"][0]:
            result = ctx.timeit("pipeline", _run_one, workload, cap, ctx.seed,
                                ctx.backend)
        else:
            result = _run_one(workload, cap, ctx.seed, ctx.backend)
        broadcast_series.append(result.cc.broadcast_rounds)
        ctx.record(
            f"cap={cap}",
            row=[result.walk_length, result.rounds,
                 result.cc.broadcast_rounds, result.verify_rounds, "yes"],
            cap=cap,
            walk_length=result.walk_length,
            pipeline_rounds=result.rounds,
            broadcast_rounds=result.cc.broadcast_rounds,
            verify_rounds=result.verify_rounds,
        )

    # Under-walked broadcast must cost more than the well-walked one.
    ctx.check(
        "underwalk-pays-broadcast",
        broadcast_series[0]
        >= ctx.params["broadcast_factor"] * broadcast_series[-1]
        and broadcast_series[0] > broadcast_series[-1],
        str(broadcast_series),
    )
    # And broadcast rounds decrease (weakly) as T grows.
    violations = sum(
        1 for a, b in zip(broadcast_series, broadcast_series[1:]) if b > a
    )
    ctx.check("broadcast-weakly-decreasing", violations <= 1,
              str(broadcast_series))
