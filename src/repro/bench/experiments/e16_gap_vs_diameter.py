"""E16 — Section 1.3: spectral-gap vs diameter parametrisation.

Paper claim: this paper's ``O(log log n + log(1/λ))`` and Andoni et al.'s
``O(log D · log log n)`` are *incomparable* — ``D = O(log n/λ)`` always,
but a dumbbell (two expanders + one bridge) has tiny gap with tiny
diameter (diameter algorithm wins), while on well-connected graphs the
gap algorithm's parameter is the stronger one.  Expected shape: each
algorithm's cost tracks *its own* parameter across the instance family —
exponentiation phases follow ``log D`` and ignore λ; pipeline walk lengths
follow ``log(1/λ)`` and ignore D.
"""

from __future__ import annotations

import repro
from repro.baselines import exponentiation_components
from repro.bench.registry import register_benchmark
from repro.bench.workloads import Workload
from repro.graph import (
    components_agree,
    connected_components,
    diameter,
    spectral_gap,
)
from repro.mpc import MPCEngine, make_backend


def _instances(params: dict) -> "dict[str, Workload]":
    n = params["n"]
    return {
        "expander (λ big, D small)": Workload(
            "permutation_regular", n, {"degree": 8}
        ),
        "dumbbell (λ tiny, D small)": Workload(
            "dumbbell", n, {"degree": 8, "bridges": 1}
        ),
        "chain (λ tiny, D big)": Workload(
            "expander_path", n, {"count": params["short_chain"], "degree": 8}
        ),
        "long chain (λ tinier, D bigger)": Workload(
            "expander_path", n, {"count": params["long_chain"], "degree": 8}
        ),
    }


def _run_both(workload: Workload, seed: int, max_walk_length: int,
              backend: str = "local"):
    graph = workload.build(seed)
    gap = spectral_gap(graph)
    diam = diameter(graph, rng=seed)
    config = repro.PipelineConfig(
        delta=0.5, expander_degree=4, max_walk_length=max_walk_length,
        oversample=6,
    )

    engine = MPCEngine(4096)
    exp_result = exponentiation_components(graph, engine=engine)
    assert components_agree(exp_result.labels, connected_components(graph))
    exp_rounds = engine.rounds

    engine = MPCEngine(4096, backend=make_backend(backend))
    pipe_result = repro.mpc_connected_components(
        graph, gap, config=config, rng=seed, engine=engine
    )
    assert components_agree(pipe_result.labels, connected_components(graph))
    return gap, diam, exp_result.phases, exp_rounds, pipe_result


@register_benchmark(
    "e16_gap_vs_diameter",
    title="Gap vs diameter parametrisation (Section 1.3 comparison with [6])",
    headers=["instance", "gap λ", "diam D", "[6] phases", "[6] rounds",
             "pipeline walk T", "pipeline rounds"],
    smoke={"n": 192, "short_chain": 4, "long_chain": 8,
           "max_walk_length": 2048, "walk_factor": 2, "seed": 19},
    full={"n": 384, "short_chain": 8, "long_chain": 16,
          "max_walk_length": 2048, "walk_factor": 3, "seed": 19},
    notes=(
        "Expected shape: exponentiation phases follow log D and are blind "
        "to λ (dumbbell as cheap as the expander); the pipeline's walk "
        "length follows log(1/λ) and is blind to D (the dumbbell is its "
        "worst case despite D = O(log n)). The parametrisations are "
        "incomparable, exactly as Section 1.3 argues."
    ),
    tags=("pipeline", "baselines"),
)
def e16_gap_vs_diameter(ctx):
    stats = {}
    instances = _instances(ctx.params)
    for name, workload in instances.items():
        if name == "dumbbell (λ tiny, D small)":
            gap, diam, phases, exp_rounds, pipe = ctx.timeit(
                "both", _run_both, workload, ctx.seed,
                ctx.params["max_walk_length"], ctx.backend,
            )
        else:
            gap, diam, phases, exp_rounds, pipe = _run_both(
                workload, ctx.seed, ctx.params["max_walk_length"], ctx.backend
            )
        stats[name] = (gap, diam, phases, pipe.walk_length)
        ctx.record(
            name,
            row=[name, f"{gap:.4f}", diam, phases, exp_rounds,
                 pipe.walk_length, pipe.rounds],
            instance=name,
            gap=float(gap),
            graph_diameter=diam,
            exponentiation_phases=phases,
            exponentiation_rounds=exp_rounds,
            pipeline_walk_length=pipe.walk_length,
            pipeline_rounds=pipe.rounds,
        )

    expander = stats["expander (λ big, D small)"]
    dumbbell = stats["dumbbell (λ tiny, D small)"]
    long_chain = stats["long chain (λ tinier, D bigger)"]
    # [6]'s cost ignores λ: dumbbell no more expensive than the expander +1.
    ctx.check("exponentiation-blind-to-gap", dumbbell[2] <= expander[2] + 1,
              f"{dumbbell[2]} vs {expander[2]}")
    # [6]'s cost follows D: the long chain needs more phases than dumbbell.
    ctx.check("exponentiation-follows-diameter", long_chain[2] > dumbbell[2],
              f"{long_chain[2]} vs {dumbbell[2]}")
    # The pipeline's cost follows λ: dumbbell walks far longer than the
    # expander (up to the configured cap).
    ctx.check(
        "pipeline-follows-gap",
        dumbbell[3] >= ctx.params["walk_factor"] * expander[3],
        f"{dumbbell[3]} vs {ctx.params['walk_factor']}x {expander[3]}",
    )
