"""E25 — parallel sketch ingest: sharded AGM partials vs the monolith.

The tentpole measurement for :class:`~repro.sketch.ShardedAGMSketch`:
edge updates range-partitioned by owner vertex into per-shard partials,
updated through an execution backend's sketch-ingest seam and merged (by
linearity — elementwise sum, fingerprints mod P) only at decode time.
Expected shape:

* **bit-identity** — for every generator family, the merged sharded
  sketch is bit-identical (totals, moments, fingerprints, every round)
  to the monolithic :class:`~repro.sketch.AGMSketch` drawn from the same
  seed, for every shard count in the sweep;
* **zero staleness on parallel backends** — streamed labels from a
  sharded-ingest :class:`~repro.streaming.StreamingConnectivity` match
  the from-scratch oracle at every checkpoint on the ``process`` and
  ``rpc`` backends (worker-resident partials, true parallelism);
* **ingest throughput** — a warm process pool clears the configured
  speedup floor over the single-thread monolithic scatter (gate armed
  only on multi-CPU hosts; single-CPU runs record the ratio and skip);
* **footprint counters** — ``partial_words`` (total resident partial
  state) is regression-gated by ``--compare``, so a sharding change
  that silently inflates sketch memory fails CI.
"""

from __future__ import annotations

import numpy as np

from repro.bench.registry import register_benchmark
from repro.bench.workloads import Workload
from repro.graph import canonical_labels, connected_components
from repro.mpc.backends import ShardedBackend
from repro.mpc.process_backend import ProcessBackend, usable_cpu_count
from repro.sketch import AGMSketch, ShardedAGMSketch, SketchStats
from repro.streaming import StreamingConnectivity, StreamWorkload

#: Dense/structured families stay small so every build finishes fast.
SIZE_OVERRIDES = {"complete": 48, "hypercube": 64}


def _sketches_equal(mono: AGMSketch, merged: AGMSketch) -> bool:
    """Bit-identity across every round's totals / moments / fingerprints."""
    if len(mono.rounds) != len(merged.rounds):
        return False
    for a, b in zip(mono.rounds, merged.rounds):
        if not (
            np.array_equal(a.totals, b.totals)
            and np.array_equal(a.moments, b.moments)
            and np.array_equal(a.fingers, b.fingers)
        ):
            return False
    return True


@register_benchmark(
    "e25_parallel_sketch",
    title="Sharded AGM sketch ingest: partials merged by linearity",
    headers=["part", "case", "n", "shards", "events/s", "speedup",
             "partial words", "detail"],
    smoke={
        "families": ["path", "star", "dumbbell", "erdos_renyi"],
        "n": 96,
        "shards": [2, 3],
        "stream_patterns": ["churn", "component_split"],
        "stream_n": 96,
        "batches": 4,
        "workers": 2,
        "throughput_n": 256,
        "throughput_edges": 20000,
        "min_speedup": 2.0,
        "seed": 29,
    },
    full={
        "families": ["complete", "cycle", "dumbbell", "erdos_renyi",
                     "expander_path", "grid", "hypercube", "paper_random",
                     "path", "permutation_regular", "ring_of_expanders",
                     "star"],
        "n": 192,
        "shards": [2, 4],
        "stream_patterns": ["churn", "component_split"],
        "stream_n": 192,
        "batches": 6,
        "workers": 2,
        "throughput_n": 384,
        "throughput_edges": 60000,
        "min_speedup": 2.0,
        "seed": 29,
    },
    notes=(
        "Expected shape: merged sharded partials bit-identical to the "
        "monolithic sketch for every family x shard count (linearity: "
        "int64 wraparound sums commute, fingerprints reduce mod P); zero "
        "label staleness vs the oracle on process/rpc ingest; warm-pool "
        "ingest speedup gated only on multi-CPU hosts; partial_words is "
        "regression-gated."
    ),
    tags=("sketch", "streaming", "parallel"),
)
def e25_parallel_sketch(ctx):
    shards_sweep = (
        [ctx.sketch_shards] if ctx.sketch_shards else ctx.params["shards"]
    )
    cpus = usable_cpu_count()
    ctx.note(
        f"host exposes {cpus} usable CPU(s); shard sweep: {shards_sweep}"
    )

    # -- Part A: bit-identity per generator family ---------------------------
    base_n = ctx.params["n"]
    for family in ctx.params["families"]:
        size = SIZE_OVERRIDES.get(family, base_n)
        graph = Workload(family, size).build(ctx.seed)
        mono = AGMSketch.empty(graph.n, ctx.rng(1))
        if graph.m:
            mono.update_edges(graph.edges)
        for shards in shards_sweep:
            backend = ShardedBackend()
            stats = SketchStats()
            sharded = ShardedAGMSketch.empty(
                graph.n, ctx.rng(1), shards=shards, backend=backend,
                stats=stats,
            )
            try:
                if graph.m:
                    sharded.update_edges(graph.edges)
                merged = sharded.merge()
            finally:
                sharded.close()
            ctx.check(
                f"bit-identical-{family}-s{shards}",
                _sketches_equal(mono, merged),
                "merged sharded partials must equal the monolithic sketch",
            )
            ctx.record(
                f"identity/{family}/shards={shards}",
                row=["identity", family, graph.n, shards, "-", "-",
                     stats.partial_words, f"m={graph.m}"],
                part="identity",
                family=family,
                n=graph.n,
                m=graph.m,
                shards=shards,
                partial_words=stats.partial_words,
                shard_updates=stats.shard_updates,
                merges=stats.merges,
                sketch_exchanges=backend.stats().exchanges,
            )

    # -- Part B: zero staleness on parallel ingest backends ------------------
    stream_n = ctx.params["stream_n"]
    batches = ctx.params["batches"]
    workers = ctx.workers or ctx.params["workers"]
    for backend_name in ("process", "rpc"):
        for pattern in ctx.params["stream_patterns"]:
            stream = StreamWorkload(
                "erdos_renyi", stream_n, pattern, batches=batches
            ).build(ctx.seed)
            conn = StreamingConnectivity(
                stream.n,
                rng=ctx.seed,
                engine=ctx.engine,
                backend=backend_name,
                sketch_shards=max(shards_sweep),
                workers=workers,
            )
            mismatches = 0
            try:
                for batch in stream:
                    conn.apply(batch)
                    streamed = conn.query()
                    oracle = canonical_labels(
                        connected_components(conn.current_graph())
                    )
                    if not np.array_equal(streamed, oracle):
                        mismatches += 1
                sketch_stats = conn.stats.to_json()["sketch"]
                fallbacks = conn.stats.decode_failures
            finally:
                conn.close()
            ctx.check(
                f"zero-staleness-{backend_name}-{pattern}",
                mismatches == 0,
                f"{mismatches}/{len(stream)} checkpoints diverged from "
                "the from-scratch oracle",
            )
            ctx.record(
                f"stream/{backend_name}/{pattern}",
                row=["stream", f"{backend_name}/{pattern}", stream.n,
                     max(shards_sweep), "-", "-",
                     sketch_stats["partial_words"],
                     f"fallbacks={fallbacks}"],
                part="stream",
                ingest_backend=backend_name,
                pattern=pattern,
                n=stream.n,
                events=stream.total_events,
                shards=max(shards_sweep),
                stale_checkpoints=mismatches,
                decode_fallbacks=fallbacks,
                partial_words=sketch_stats["partial_words"],
                shard_updates=sketch_stats["shard_updates"],
                merges=sketch_stats["merges"],
            )

    # -- Part C: warm-pool ingest throughput ---------------------------------
    n_t = ctx.params["throughput_n"]
    m_t = ctx.params["throughput_edges"]
    rng = ctx.rng(7)
    edges = rng.integers(0, n_t, size=(m_t, 2), dtype=np.int64)
    keep = edges[:, 0] != edges[:, 1]
    edges = edges[keep]
    weights = np.ones(edges.shape[0], dtype=np.int64)

    mono = AGMSketch.empty(n_t, ctx.rng(11))
    ctx.timeit("ingest-single", mono.update_edges, edges, weights)
    single_seconds = ctx.timings[-1].best

    backend = ProcessBackend(workers=workers, min_parallel_items=0)
    stats = SketchStats()
    sharded = ShardedAGMSketch.empty(
        n_t, ctx.rng(11), shards=workers, backend=backend, stats=stats
    )
    try:
        # One untimed update warms the pool (fork + arena attach), then
        # the timed runs measure steady-state ingest only.  The warm
        # update is replayed on the monolith, so both sketches see the
        # same number of identical updates (warmup + repeat + 1) and stay
        # comparable bit-for-bit.
        sharded.update_edges(edges, weights)
        mono.update_edges(edges, weights)
        ctx.timeit(
            f"ingest-sharded-w{workers}", sharded.update_edges, edges, weights
        )
        parallel_seconds = ctx.timings[-1].best
        merged = sharded.merge()
    finally:
        sharded.close()
        backend.close()

    ctx.check(
        "throughput-run-bit-identical",
        _sketches_equal(mono, merged),
        "timed parallel ingest must still merge to the monolithic sketch",
    )
    speedup = single_seconds / parallel_seconds if parallel_seconds > 0 else 0.0
    events_single = edges.shape[0] / single_seconds if single_seconds else 0.0
    events_parallel = (
        edges.shape[0] / parallel_seconds if parallel_seconds else 0.0
    )
    min_speedup = ctx.params["min_speedup"]
    if min_speedup > 0 and cpus >= 2:
        ctx.check(
            f"ingest-speedup-at-least-{min_speedup}x",
            speedup >= min_speedup,
            f"warm-pool speedup {speedup:.2f}x over single-thread",
        )
    else:
        ctx.note(
            f"warm-pool ingest speedup: {speedup:.2f}x "
            "(gate skipped: "
            + ("single-CPU host" if cpus < 2 else "record-only tier")
            + ")"
        )
    ctx.record(
        f"throughput/workers={workers}",
        row=["throughput", f"workers={workers}", n_t, workers,
             f"{events_parallel:.0f}", f"{speedup:.2f}x",
             stats.partial_words, f"single={events_single:.0f}/s"],
        part="throughput",
        n=n_t,
        edges=edges.shape[0],
        workers=workers,
        shards=workers,
        seconds_single=single_seconds,
        seconds_parallel=parallel_seconds,
        speedup_vs_single=speedup,
        events_per_sec_single=events_single,
        events_per_sec_parallel=events_parallel,
        partial_words=stats.partial_words,
        shard_updates=stats.shard_updates,
        merges=stats.merges,
    )

    ctx.note(
        "Merged sharded partials stayed bit-identical to the monolithic "
        "sketch everywhere: linearity makes the range-partition a free "
        "choice, so parallel ingest changes wall-clock only, never a "
        "single sketch word."
    )
