"""E20 — round-plan fusion: dispatch barriers per pipeline stage.

The Theorem 4 pipeline runs twice on the true-parallel
:class:`~repro.mpc.ProcessBackend` — once with plan fusion (the
default: steps whose outputs feed a later backend op in the same
:class:`~repro.mpc.RoundPlan` are pinned to the serial kernels, saving
their dispatch barrier) and once executing plans step-by-eager-step
(``fuse_plans=False``, the PR 4 baseline) — against a serial
``ShardedBackend`` reference.  Expected shape:

* labels, round counts, and every model counter (``exchanges``,
  ``bytes_exchanged``, ``shard_count``, ``peak_shard_load``)
  bit-identical across all three runs — fusion changes dispatch cost,
  never results or accounting;
* the fused run's total dispatch-barrier count is **strictly lower**
  (regression-gated via the ``*barriers`` counter suffix), with the
  saving concentrated in the contract stage, whose search→reduce pair
  costs one barrier instead of two;
* per-stage barrier counts (``contract``, ``relabel``,
  ``broadcast-level``, ``scatter-input`` plan shapes) are reported for
  both modes so a future fusion change shows exactly which stage moved.

This case always exercises the process backend regardless of
``--backend``; ``--workers N`` resizes the pool (default 2).
"""

from __future__ import annotations

import numpy as np

import repro
from repro.bench.registry import register_benchmark
from repro.bench.workloads import Workload
from repro.graph import components_agree, connected_components
from repro.mpc import MPCEngine, ProcessBackend, ShardedBackend

DEGREE = 6
GAP_BOUND = 0.25
DELTA = 0.3

#: Plan shapes the pipeline submits, mapped to stable record-field stems
#: (record keys must not contain the compare-gated suffix accidentally).
PLAN_SHAPES = {
    "scatter-input": "scatter",
    "contract": "contract",
    "relabel": "relabel",
    "broadcast-level": "broadcast",
}


def _config(params: dict) -> "repro.PipelineConfig":
    return repro.PipelineConfig(
        delta=DELTA,
        expander_degree=4,
        max_walk_length=params["max_walk_length"],
        oversample=params["oversample"],
        max_phases=params["max_phases"],
    )


def _run(graph, seed: int, config, backend):
    """One pipeline execution on ``backend`` with a fresh engine."""
    backend.reset()
    engine = MPCEngine.for_delta(
        max(graph.n + graph.m, 2), DELTA, backend=backend
    )
    result = repro.mpc_connected_components(
        graph, spectral_gap_bound=GAP_BOUND, config=config, rng=seed,
        engine=engine,
    )
    return result, engine


@register_benchmark(
    "e20_plan_fusion",
    title="Process backend: plan fusion vs per-op dispatch barriers",
    headers=["n", "fusion", "seconds", "rounds", "barriers", "contract",
             "relabel", "broadcast", "serial-fused"],
    smoke={
        "n": 4096,
        "workers": 2,
        "seed": 17,
        "max_walk_length": 64,
        "oversample": 6,
        "max_phases": 4,
    },
    full={
        "n": 100000,
        "workers": 2,
        "seed": 17,
        "max_walk_length": 32,
        "oversample": 4,
        "max_phases": 2,
    },
    notes=(
        "Expected shape: labels/rounds/model counters bit-identical with "
        "and without plan fusion; the fused run pays strictly fewer "
        "dispatch barriers, with the drop concentrated in the contract "
        "stage (search→reduce fused into one barrier per contraction)."
    ),
    tags=("pipeline", "backends", "plans"),
)
def e20_plan_fusion(ctx):
    config = _config(ctx.params)
    n = ctx.params["n"]
    workers = ctx.workers or ctx.params["workers"]
    graph = Workload("permutation_regular", n, {"degree": DEGREE}).build(ctx.seed)
    truth = connected_components(graph)

    sharded_backend = ShardedBackend()
    sharded_result, _ = _run(graph, ctx.seed, config, sharded_backend)
    reference = sharded_backend.stats()
    ctx.check("reference-labels-correct",
              components_agree(sharded_result.labels, truth))

    barriers = {}
    for fused in (True, False):
        mode = "on" if fused else "off"
        backend = ProcessBackend(
            workers=workers, min_parallel_items=0, fuse_plans=fused
        )
        try:
            # Cold run first (pool spawn, arena sizing, page faults), so
            # the timed runs compare dispatch strategies on equal footing
            # — the same discipline as e19.
            _run(graph, ctx.seed, config, backend)
            result, engine = ctx.timeit(
                f"pipeline-fusion-{mode}", _run, graph, ctx.seed, config,
                backend,
            )
            seconds = ctx.timings[-1].best
            stats = backend.stats()
            dispatch = stats.dispatch
            by_stage = {
                PLAN_SHAPES.get(name, name): count
                for name, count in dispatch["plan_barriers"].items()
            }
            barriers[mode] = dispatch["barriers"]

            ctx.check(
                f"labels-identical-fusion-{mode}",
                np.array_equal(result.labels, sharded_result.labels),
                "plan fusion must not change results",
            )
            ctx.check(
                f"rounds-identical-fusion-{mode}",
                result.rounds == sharded_result.rounds,
                f"{result.rounds} vs {sharded_result.rounds}",
            )
            ctx.check(
                f"counters-match-sharded-fusion-{mode}",
                (stats.exchanges, stats.bytes_exchanged, stats.shard_count,
                 stats.peak_shard_load)
                == (reference.exchanges, reference.bytes_exchanged,
                    reference.shard_count, reference.peak_shard_load),
                "dispatch fusion must not change the model accounting",
            )

            ctx.record(
                f"fusion={mode}",
                row=[n, mode, f"{seconds:.3f}", result.rounds,
                     dispatch["barriers"], by_stage.get("contract", 0),
                     by_stage.get("relabel", 0), by_stage.get("broadcast", 0),
                     dispatch["serial_fused"]],
                n=n,
                fused=fused,
                workers=workers,
                seconds=seconds,
                pipeline_rounds=result.rounds,
                plans_run=stats.plans,
                dispatch_barriers=dispatch["barriers"],
                dispatch_messages=dispatch["messages"],
                dispatch_steps=dispatch["steps"],
                serial_fused_steps=dispatch["serial_fused"],
                contract_barriers=by_stage.get("contract", 0),
                relabel_barriers=by_stage.get("relabel", 0),
                broadcast_barriers=by_stage.get("broadcast", 0),
                scatter_barriers=by_stage.get("scatter", 0),
                exchanges=stats.exchanges,
                bytes_exchanged=stats.bytes_exchanged,
                shard_count=stats.shard_count,
                peak_shard_load=stats.peak_shard_load,
                engine=ctx.account(engine),
            )
        finally:
            backend.close()

    ctx.check(
        "fusion-strictly-cuts-barriers",
        barriers["on"] < barriers["off"],
        f"fused {barriers['on']} vs per-op {barriers['off']} dispatch "
        "barriers for the same plan stream",
    )
    ctx.note(
        f"dispatch barriers per full pipeline run: {barriers['on']} fused "
        f"vs {barriers['off']} per-op (the contract stage's search→reduce "
        "pair is the saving)"
    )
