"""E17 — execution backends: accounting-only vs sharded data plane.

The Theorem 4 pipeline runs twice per size with identical seeds: once on
the historical accounting-only ``LocalBackend`` and once on the
``ShardedBackend``, whose numpy shards enforce the per-shard memory cap
``s`` and the per-round communication cap of the MPC model while counting
exchange barriers and bytes moved.  Expected shape: bit-identical labels,
identical round charges (the control plane is deterministic in the data
sizes), materialised exchanges within the charged round budget, and a
shard fleet that matches ``peak_machines`` — i.e. the rounds the engine
reports are *achievable* under hard resource bounds, at sizes far beyond
the per-item ``Cluster`` executor.

The ``full`` tier runs ``n = 10^5`` (walk length capped — the honest
verification broadcast guarantees exactness regardless), demonstrating the
end-to-end sharded pipeline at a scale where the old Python-list path is
unusable.
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro.bench.registry import register_benchmark
from repro.bench.workloads import Workload
from repro.engines import get_engine
from repro.graph import components_agree, connected_components
from repro.mpc import LocalBackend, MPCEngine, ShardedBackend

DEGREE = 6
GAP_BOUND = 0.25
DELTA = 0.35


def _config(params: dict) -> "repro.PipelineConfig":
    return repro.PipelineConfig(
        delta=DELTA,
        expander_degree=4,
        max_walk_length=params["max_walk_length"],
        oversample=params["oversample"],
        max_phases=params["max_phases"],
    )


def _run(
    workload: Workload, seed: int, config, backend_factory, engine_name: str
) -> "tuple":
    graph = workload.build(seed)
    # A fresh backend per run: timeit repeats must not accumulate counters.
    engine = MPCEngine.for_delta(
        max(graph.n + graph.m, 2), DELTA, backend=backend_factory()
    )
    # Through the engine dispatch seam (not the hardcoded paper
    # pipeline): --engine certifies any registered algorithm on both
    # data planes.
    result = get_engine(engine_name).run(
        graph, GAP_BOUND, config=config, rng=seed, mpc=engine
    )
    return graph, result, engine


@register_benchmark(
    "e17_backend_comparison",
    title="Execution backends: local accounting vs enforced numpy shards",
    headers=["n", "rounds", "shards", "peak load", "exchanges", "KB moved",
             "local s", "sharded s"],
    smoke={
        "sizes": [256, 1024],
        "seed": 7,
        "max_walk_length": 64,
        "oversample": 6,
        "max_phases": 4,
    },
    full={
        "sizes": [20000, 100000],
        "seed": 7,
        "max_walk_length": 32,
        "oversample": 4,
        "max_phases": 2,
    },
    notes=(
        "Expected shape: identical labels and round counts on both "
        "backends; sharded exchanges stay within the charged rounds; "
        "shard fleet == engine peak_machines. The sharded counters "
        "(shard_count, peak_shard_load, bytes_exchanged, exchanges) are "
        "regression-gated by --compare."
    ),
    tags=("pipeline", "backends"),
)
def e17_backend_comparison(ctx):
    config = _config(ctx.params)
    for n in ctx.params["sizes"]:
        workload = Workload("permutation_regular", n, {"degree": DEGREE})

        start = time.perf_counter()
        graph, local_result, local_engine = _run(
            workload, ctx.seed, config, LocalBackend, ctx.engine
        )
        local_seconds = time.perf_counter() - start

        if n == ctx.params["sizes"][-1]:
            _, sharded_result, sharded_engine = ctx.timeit(
                "sharded-pipeline", _run, workload, ctx.seed, config,
                ShardedBackend, ctx.engine,
            )
            sharded_seconds = ctx.timings[-1].best
        else:
            start = time.perf_counter()
            _, sharded_result, sharded_engine = _run(
                workload, ctx.seed, config, ShardedBackend, ctx.engine
            )
            sharded_seconds = time.perf_counter() - start

        stats = sharded_engine.backend.stats()
        charges = sharded_engine.charges

        ctx.check(
            f"labels-identical-n{n}",
            np.array_equal(local_result.labels, sharded_result.labels),
            "both backends must produce bit-identical components",
        )
        ctx.check(
            f"labels-correct-n{n}",
            components_agree(sharded_result.labels, connected_components(graph)),
        )
        ctx.check(
            f"rounds-identical-n{n}",
            local_result.rounds == sharded_result.rounds,
            f"{local_result.rounds} vs {sharded_result.rounds}",
        )
        ctx.check(
            f"exchanges-within-rounds-n{n}",
            stats.exchanges <= sharded_result.rounds,
            f"{stats.exchanges} exchanges vs {sharded_result.rounds} rounds",
        )
        ctx.check(
            f"exchanges-attributed-n{n}",
            stats.exchanges - sum(c.exchanges for c in charges) <= 1,
            "at most the trailing stabilisation probe may be unattributed",
        )
        ctx.check(
            f"fleet-matches-accounting-n{n}",
            stats.shard_count == sharded_engine.peak_machines,
            f"{stats.shard_count} shards vs {sharded_engine.peak_machines} machines",
        )

        ctx.record(
            workload.label,
            row=[n, sharded_result.rounds, stats.shard_count,
                 stats.peak_shard_load, stats.exchanges,
                 f"{stats.bytes_exchanged / 1024:.0f}",
                 f"{local_seconds:.2f}", f"{sharded_seconds:.2f}"],
            n=n,
            pipeline_rounds=sharded_result.rounds,
            shard_count=stats.shard_count,
            peak_shard_load=stats.peak_shard_load,
            exchanges=stats.exchanges,
            bytes_exchanged=stats.bytes_exchanged,
            local_seconds=local_seconds,
            sharded_seconds=sharded_seconds,
            sharded_engine=ctx.account(sharded_engine),
        )
