"""E23 — the long-lived connectivity service over the RPC wire backend.

The deployment shape :mod:`repro.service` exists for: one resident
:class:`~repro.service.ServiceServer` holds the graph store and the
digest-keyed label cache, its pipeline runs execute on a
:class:`~repro.mpc.rpc.RpcBackend` fleet (every op shipped through the
length-prefixed frames), and a pack of concurrent clients hammers it
with interleaved connectivity queries.  Expected shape:

* **bit-identical responses** — every label vector, component count,
  and pairwise-connectivity answer from every concurrent client matches
  a single-client ``mpc_connected_components`` run exactly, for every
  family;
* **throughput floor and latency ceilings** — cached queries clear the
  suite's queries/second floor and stay under the p50/p95 ceilings
  (deliberately generous: only order-of-magnitude regressions trip);
* **cache economics** — exactly one pipeline compute per distinct
  graph digest no matter how many clients ask (the hit-rate counter is
  recorded per run), and the fleet finishes with zero worker restarts;
* **gated wire counters** — the compute's model exchanges plus the
  transport's op frames and serialized wire bytes are recorded per
  family (``*_exchanges`` / ``*_frames`` / ``*_wire_bytes`` are
  regression-gated by ``--compare``), so a codec or digest-dedup change
  that inflates RPC traffic fails CI.

The service side is pinned to the ``rpc`` backend — the wire is the
subject under test — while the single-client reference runs through the
``--engine`` dispatch seam like any pipeline experiment.
"""

from __future__ import annotations

import threading
import time

import numpy as np

import repro
from repro.bench.registry import register_benchmark
from repro.bench.workloads import Workload
from repro.core.pipeline import mpc_connected_components
from repro.mpc.rpc import RpcBackend
from repro.service import ServiceClient, ServiceServer

GAP_BOUND = 0.1

#: Dense families stay small so every cold compute finishes fast.
SIZE_OVERRIDES = {"complete": 64, "hypercube": 64}


def _config(params: dict) -> "repro.PipelineConfig":
    return repro.PipelineConfig(
        delta=0.5,
        expander_degree=4,
        max_walk_length=params["max_walk_length"],
        oversample=params["oversample"],
        max_phases=params["max_phases"],
    )


def _hammer(address, digest, reference, queries, latencies, failures):
    """One client's query loop: interleaved ops, per-call latency."""
    pairs = np.column_stack(
        [np.arange(16) % reference.shape[0],
         np.arange(1, 17) % reference.shape[0]]
    )
    expected_connected = reference[pairs[:, 0]] == reference[pairs[:, 1]]
    expected_count = int(reference.max()) + 1
    try:
        with ServiceClient(address) as client:
            for turn in range(queries):
                start = time.perf_counter()
                if turn % 3 == 0:
                    ok = np.array_equal(client.components(digest), reference)
                elif turn % 3 == 1:
                    ok = np.array_equal(
                        client.connected(digest, pairs), expected_connected
                    )
                else:
                    ok = client.component_count(digest) == expected_count
                latencies.append(time.perf_counter() - start)
                if not ok:
                    failures.append(f"{digest}:turn{turn}")
    except Exception as exc:  # noqa: BLE001 - surfaced as a check
        failures.append(repr(exc))


@register_benchmark(
    "e23_rpc_service",
    title="Long-lived connectivity service over the RPC wire backend",
    headers=["family", "n", "queries", "q/s", "p50 ms", "p95 ms",
             "hit rate", "op frames", "wire KiB"],
    smoke={
        "families": ["dumbbell", "cycle", "grid", "star"],
        "n": 96,
        "clients": 4,
        "queries_per_client": 6,
        "min_queries_per_sec": 50.0,
        "max_p50_seconds": 0.05,
        "max_p95_seconds": 0.25,
        "max_walk_length": 32,
        "oversample": 4,
        "max_phases": 2,
    },
    full={
        "families": ["complete", "cycle", "dumbbell", "erdos_renyi",
                     "expander_path", "grid", "hypercube", "paper_random",
                     "path", "permutation_regular", "ring_of_expanders",
                     "star"],
        "n": 256,
        "clients": 8,
        "queries_per_client": 12,
        "min_queries_per_sec": 50.0,
        "max_p50_seconds": 0.10,
        "max_p95_seconds": 0.50,
        "max_walk_length": 64,
        "oversample": 6,
        "max_phases": 4,
    },
    notes=(
        "Expected shape: every concurrent client's responses bit-identical "
        "to the single-client pipeline for every family; one compute per "
        "distinct graph digest (hit rate recorded); cached-query "
        "throughput/latency clear generous order-of-magnitude guards; "
        "compute exchanges + RPC op frames + wire bytes are "
        "regression-gated; zero worker restarts."
    ),
    tags=("service", "rpc", "pipeline"),
)
def e23_rpc_service(ctx):
    config = _config(ctx.params)
    base_n = ctx.params["n"]
    clients = ctx.params["clients"]
    queries_per_client = ctx.params["queries_per_client"]

    backend = RpcBackend(workers=ctx.workers or 2, min_wire_items=0)
    try:
        with ServiceServer(
            engine=ctx.engine, backend=backend,
            spectral_gap_bound=GAP_BOUND, config=config, seed=ctx.seed,
        ) as server:
            for family in ctx.params["families"]:
                size = SIZE_OVERRIDES.get(family, base_n)
                graph = Workload(family, size).build(ctx.seed)
                reference = mpc_connected_components(
                    graph, GAP_BOUND, config=config, rng=ctx.seed,
                    engine=ctx.engine,
                ).labels

                model_before = backend.stats()
                wire_before = dict(backend.transport_stats())
                with ServiceClient(server.address) as primer:
                    digest = primer.put_graph(graph.n, graph.edges)
                    cold = primer.components(digest)
                model_after = backend.stats()
                wire_after = backend.transport_stats()
                ctx.check(
                    f"bit-identical-compute-{family}",
                    np.array_equal(cold, reference),
                    "service compute over rpc must match the local pipeline",
                )

                latencies: "list[float]" = []
                failures: "list[str]" = []
                threads = [
                    threading.Thread(
                        target=_hammer,
                        args=(server.address, digest, reference,
                              queries_per_client, latencies, failures),
                    )
                    for _ in range(clients)
                ]
                start = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                wall = time.perf_counter() - start

                total_queries = clients * queries_per_client
                queries_per_sec = total_queries / wall if wall else 0.0
                p50, p95 = np.percentile(latencies, [50, 95])
                ctx.check(
                    f"bit-identical-concurrent-{family}",
                    not failures,
                    f"{len(failures)} divergent/failed responses: "
                    f"{failures[:3]}",
                )
                ctx.check(
                    f"throughput-floor-{family}",
                    queries_per_sec >= ctx.params["min_queries_per_sec"],
                    f"{queries_per_sec:.0f} queries/s",
                )
                ctx.check(
                    f"latency-p50-ceiling-{family}",
                    p50 <= ctx.params["max_p50_seconds"],
                    f"{p50 * 1e3:.1f} ms",
                )
                ctx.check(
                    f"latency-p95-ceiling-{family}",
                    p95 <= ctx.params["max_p95_seconds"],
                    f"{p95 * 1e3:.1f} ms",
                )

                hit_rate = server.stats()["hit_rate"]
                frames = wire_after["op_frames"] - wire_before["op_frames"]
                wire_bytes = (
                    wire_after["op_wire_bytes"] - wire_before["op_wire_bytes"]
                )
                ctx.record(
                    family,
                    row=[family, graph.n, total_queries,
                         f"{queries_per_sec:.0f}", f"{p50 * 1e3:.2f}",
                         f"{p95 * 1e3:.2f}", f"{hit_rate:.3f}", frames,
                         f"{wire_bytes / 1024:.0f}"],
                    family=family,
                    n=graph.n,
                    queries=total_queries,
                    queries_per_sec=queries_per_sec,
                    p50_seconds=float(p50),
                    p95_seconds=float(p95),
                    hit_rate=hit_rate,
                    compute_exchanges=(
                        model_after.exchanges - model_before.exchanges
                    ),
                    compute_op_frames=frames,
                    compute_wire_bytes=wire_bytes,
                )

            stats = server.stats()
            families = ctx.params["families"]
            ctx.check(
                "one-compute-per-digest",
                stats["computes"] == len(families),
                f"{stats['computes']} computes for {len(families)} graphs",
            )
            ctx.check(
                "no-worker-restarts",
                backend.workers_restarted == 0 and not backend.dead_workers(),
                f"restarts={backend.workers_restarted}, "
                f"dead={backend.dead_workers()}",
            )
    finally:
        backend.close()

    ctx.note(
        "Every concurrent client saw bit-identical responses; one pipeline "
        "compute per distinct graph digest (all later queries served from "
        "the label cache); the RPC fleet finished with zero restarts and "
        "its gated wire counters (frames/bytes) are deterministic per plan."
    )
