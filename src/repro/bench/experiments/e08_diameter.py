"""E8 — Claim 6.13: the final contraction graph has O(1) diameter.

Paper claim: after the F growth phases, the contracted graph (components
of size n^{Ω(1)} over the union of random batches) has constant diameter,
so the closing broadcast costs O(1) rounds.  Expected shape: both the
diameter and the broadcast round count stay flat as n grows.
"""

from __future__ import annotations

import numpy as np

from repro.bench.registry import register_benchmark
from repro.core import random_graph_components
from repro.graph import (
    Graph,
    component_count,
    diameter,
    paper_random_graph_edges,
)
from repro.utils.rng import spawn_rngs

GROWTH = 4
HALF = 20  # Δ·s/2


def _run_one(n: int, seed: int):
    rngs = spawn_rngs(seed, 2)
    batches = [paper_random_graph_edges(n, HALF, rng) for rng in rngs]
    schedule = [GROWTH, GROWTH**2]
    result = random_graph_components(n, batches, schedule, rng=seed)

    # Rebuild the final contraction graph to measure its diameter.
    grow_labels = result.grow.labels
    union = np.concatenate(batches, axis=0)
    contracted = Graph(int(grow_labels.max()) + 1, grow_labels[union]).simplify()
    diam = (
        diameter(contracted, rng=seed)
        if component_count(contracted) == 1
        else -1
    )
    return diam, result.broadcast_rounds, contracted.n


@register_benchmark(
    "e08_contraction_diameter",
    title="Final contraction graph diameter (Claim 6.13) and broadcast rounds",
    headers=["n", "|V(H_F)|", "diameter", "broadcast rounds"],
    smoke={"sizes": [2_000, 8_000], "seed": 61},
    full={"sizes": [2_000, 8_000, 32_000], "seed": 61},
    notes=(
        "Expected shape: diameter stays O(1) (the contracted graph is a "
        "dense random graph), so the Claim 6.14 broadcast is O(1) rounds "
        "at every n."
    ),
    tags=("grow",),
)
def e08_contraction_diameter(ctx):
    diameters = []
    for n in ctx.params["sizes"]:
        if n == ctx.params["sizes"][0]:
            diam, broadcast_rounds, contracted_n = ctx.timeit(
                "contract", _run_one, n, ctx.seed
            )
        else:
            diam, broadcast_rounds, contracted_n = _run_one(n, ctx.seed)
        diameters.append(diam)
        ctx.record(
            f"n={n}",
            row=[n, contracted_n, diam, broadcast_rounds],
            n=n,
            contracted_vertices=contracted_n,
            diameter=diam,
            broadcast_rounds=broadcast_rounds,
        )
    ctx.check("diameter-constant", all(0 <= d <= 4 for d in diameters),
              str(diameters))
