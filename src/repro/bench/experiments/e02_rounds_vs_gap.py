"""E2 — Theorem 1/4: rounds grow as log(1/λ).

Paper claim: the pipeline costs ``O(log log n + log(1/λ))`` rounds.  We
hold n fixed and sweep the spectral gap downward by thinning the bridge
between two expanders (a dumbbell: gap ∝ bridge count), and check that
the walk length tracks ``1/λ`` and the round count tracks ``log(1/λ)``.
The engine's machine memory is held fixed across the sweep so
per-primitive costs don't drift with anything but the walk structure.
"""

from __future__ import annotations

import numpy as np

import repro
from repro import theory
from repro.bench.registry import register_benchmark
from repro.bench.workloads import Workload
from repro.graph import components_agree, connected_components, spectral_gap
from repro.mpc import MPCEngine, make_backend

DEGREE = 8


def _run_one(workload: Workload, seed: int, max_walk_length: int,
             engine_memory: int, backend: str = "local"):
    graph = workload.build(seed)
    gap = spectral_gap(graph)
    config = repro.PipelineConfig(
        delta=0.5, expander_degree=4, max_walk_length=max_walk_length,
        oversample=6,
    )
    engine = MPCEngine(engine_memory, backend=make_backend(backend))
    result = repro.mpc_connected_components(
        graph, spectral_gap_bound=gap, config=config, rng=seed, engine=engine
    )
    assert components_agree(result.labels, connected_components(graph))
    return gap, result


@register_benchmark(
    "e02_rounds_vs_gap",
    title="MPC rounds vs spectral gap (dumbbell bridge sweep; Theorem 1)",
    headers=["bridges", "gap λ", "log2(1/λ)", "walk T", "rounds", "Thm1 shape"],
    smoke={"half": 96, "bridges": [192, 12], "max_walk_length": 4096,
           "engine_memory": 2048, "seed": 11},
    full={"half": 192, "bridges": [384, 96, 24, 6], "max_walk_length": 8192,
          "engine_memory": 4096, "seed": 11},
    notes=(
        "Expected shape: each quartering of λ doubles the walk length T "
        "and adds ~O(1/δ) rounds (one extra pointer-doubling level); n is "
        "fixed so the log log n term is constant."
    ),
    tags=("pipeline",),
)
def e02_rounds_vs_gap(ctx):
    half = ctx.params["half"]
    gaps, walks, rounds_series = [], [], []
    for bridges in ctx.params["bridges"]:
        workload = Workload("dumbbell", 2 * half,
                            {"degree": DEGREE, "bridges": bridges})
        if bridges == ctx.params["bridges"][-1]:
            gap, result = ctx.timeit(
                "pipeline", _run_one, workload, ctx.seed,
                ctx.params["max_walk_length"], ctx.params["engine_memory"],
                ctx.backend,
            )
        else:
            gap, result = _run_one(
                workload, ctx.seed, ctx.params["max_walk_length"],
                ctx.params["engine_memory"], ctx.backend,
            )
        gaps.append(gap)
        walks.append(result.walk_length)
        rounds_series.append(result.rounds)
        ctx.record(
            workload.label,
            row=[bridges, f"{gap:.5f}", f"{np.log2(1 / gap):.1f}",
                 result.walk_length, result.rounds,
                 f"{theory.theorem1_rounds(2 * half, gap, delta=0.5):.1f}"],
            bridges=bridges,
            gap=float(gap),
            walk_length=result.walk_length,
            pipeline_rounds=result.rounds,
            pipeline_engine=ctx.account(result.engine),
        )

    ctx.check("gap-decreases",
              all(b < a for a, b in zip(gaps, gaps[1:])), str(gaps))
    ctx.check("walks-nondecreasing",
              all(b >= a for a, b in zip(walks, walks[1:])), str(walks))
    ctx.check("walks-grow", walks[-1] > walks[0], str(walks))
    ctx.check("rounds-grow", rounds_series[-1] > rounds_series[0],
              str(rounds_series))
