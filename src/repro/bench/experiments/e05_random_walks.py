"""E5 — Theorem 3 / Lemma 5.3: the layered-graph walk structure.

Paper claims: (i) walks of length t for *all* vertices cost O(log t)
rounds (pointer doubling over the sampled layered graph); (ii) each
distinguished start's path survives the disjointness test with
probability ≥ 1/2, so Θ(log n) parallel repetitions give every vertex an
independent walk.
"""

from __future__ import annotations

import numpy as np

from repro.bench.registry import register_benchmark
from repro.bench.workloads import Workload
from repro.core import independent_random_walks, simple_random_walk
from repro.mpc import MPCEngine

DEGREE = 4


def _rounds_for_length(workload, t: int, seed: int):
    graph = workload.build(seed)
    engine = MPCEngine.for_delta(workload.n * t * t, 0.5)
    run = simple_random_walk(graph, t, rng=seed, engine=engine)
    return engine, float(run.independent.mean())


@register_benchmark(
    "e05_walk_rounds",
    title="SimpleRandomWalk: rounds vs walk length + path survival (Thm 3)",
    headers=["walk t", "log2 t", "MPC rounds", "survival rate"],
    smoke={"n": 64, "lengths": [8, 32, 128], "seed": 29},
    full={"n": 128, "lengths": [8, 32, 128, 512], "seed": 29},
    notes=(
        "Expected shape: rounds grow with log t (pointer doubling), not "
        "t; survival ≥ 1/2 at every length (Lemma 5.3), so Θ(log n) "
        "parallel runs suffice for full independence."
    ),
    tags=("walks",),
)
def e05_walk_rounds(ctx):
    workload = Workload("permutation_regular", ctx.params["n"],
                        {"degree": DEGREE})
    rounds_series = []
    for t in ctx.params["lengths"]:
        if t == ctx.params["lengths"][0]:
            engine, survival = ctx.timeit(
                "walk", _rounds_for_length, workload, t, ctx.seed
            )
        else:
            engine, survival = _rounds_for_length(workload, t, ctx.seed)
        rounds_series.append(engine.rounds)
        ctx.record(
            f"{workload.label},t={t}",
            row=[t, int(np.log2(t)), engine.rounds, f"{survival:.3f}"],
            walk_length=t,
            walk_rounds=engine.rounds,
            survival=float(survival),
            engine=ctx.account(engine),
        )
        ctx.check(f"survival-t{t}", survival >= 0.5,
                  f"Lemma 5.3: {survival:.3f}")

    # Rounds grow ~linearly in log t: each step of the sweep adds a
    # bounded number of rounds, far sublinear in t itself.
    deltas = [b - a for a, b in zip(rounds_series, rounds_series[1:])]
    ctx.check("rounds-deltas-bounded", max(deltas) <= 16, str(rounds_series))
    ctx.check("rounds-sublinear",
              rounds_series[-1] < rounds_series[0] * 8, str(rounds_series))


@register_benchmark(
    "e05b_walk_independence",
    title="Independent walks for every vertex (Theorem 3 wrapper)",
    headers=["n", "walk t", "all vertices served"],
    smoke={"n": 64, "walk_length": 8, "max_runs": 24, "seed": 31},
    full={"n": 128, "walk_length": 16, "max_runs": 24, "seed": 31},
    notes="All vertices obtain independent walks within the Θ(log n) budget.",
    tags=("walks",),
)
def e05b_walk_independence(ctx):
    workload = Workload("permutation_regular", ctx.params["n"],
                        {"degree": DEGREE})
    graph = workload.build(ctx.seed)
    t = ctx.params["walk_length"]
    targets = ctx.timeit(
        "independent-walks", independent_random_walks, graph, t,
        rng=ctx.seed, max_runs=ctx.params["max_runs"],
    )
    served = bool(np.all(targets >= 0))
    ctx.record(
        workload.label,
        row=[workload.n, t, "yes" if served else "NO"],
        n=workload.n,
        walk_length=t,
        all_served=served,
    )
    ctx.check("all-vertices-served", served)
