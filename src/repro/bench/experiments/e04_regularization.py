"""E4 — Lemma 4.1 / Proposition 4.2: the regularization step.

Paper claims: the replacement product yields a Δ-regular graph on 2m
vertices, with a one-to-one component correspondence, and preserves the
spectral gap up to constants (so mixing time stays O(log(n/γ)/λ₂(G))).
The table reports measured gap retention per workload, against both the
library's calibrated constant and the (very pessimistic) Prop 4.2 bound.
"""

from __future__ import annotations

import numpy as np

from repro.bench.registry import register_benchmark
from repro.bench.workloads import Workload
from repro.core import PipelineConfig, regularize
from repro.graph import (
    components_agree,
    connected_components,
    spectral_gap,
    two_sided_spectral_gap,
)
from repro.products import regular_graph_construction

DEGREE = 8


def _workloads(params: dict) -> "list[Workload]":
    n = params["n"]
    out = [
        Workload("paper_random", n, {"degree": DEGREE}),
        Workload("star", max(16, n * 2 // 3)),
        Workload("dumbbell", n, {"degree": DEGREE, "bridges": 2}),
    ]
    if params.get("hypercube_dim"):
        out.append(Workload("hypercube", 2 ** params["hypercube_dim"]))
    return out


@register_benchmark(
    "e04_regularization",
    title="Regularization: Lemma 4.1 structure + Prop 4.2 gap retention",
    headers=["workload", "2m", "regular", "components kept", "λ₂(G)",
             "λ₂(GrH)", "retention", "Prop4.2 floor"],
    smoke={"n": 96, "hypercube_dim": 0, "seed": 23},
    full={"n": 120, "hypercube_dim": 7, "seed": 23},
    notes=(
        "Library calibration: retention ≈ 0.8/(d+1); the Prop 4.2 floor "
        "is orders of magnitude below the measured retention, as expected "
        "of the worst-case constant."
    ),
    tags=("regularize",),
)
def e04_regularization(ctx):
    config = PipelineConfig(expander_degree=DEGREE)
    retention_floor = config.effective_gap_retention
    for workload in _workloads(ctx.params):
        graph = workload.build(ctx.seed)
        base_gap = spectral_gap(graph)
        if workload.family == "paper_random":
            reg = ctx.timeit(
                "regularize", regularize, graph, expander_degree=DEGREE,
                rng=ctx.seed,
            )
        else:
            reg = regularize(graph, expander_degree=DEGREE, rng=ctx.seed)
        product_gap = spectral_gap(reg.graph)
        lifted = reg.lift_labels(connected_components(reg.graph))
        preserved = components_agree(lifted, connected_components(graph))
        clouds = regular_graph_construction(
            np.unique(np.asarray(graph.degrees)).tolist(), DEGREE, rng=ctx.seed
        )
        lam_h = min(two_sided_spectral_gap(c) for c in clouds.values())
        prop42_bound = (
            (DEGREE**2 / (DEGREE + 1) ** 3) * base_gap * lam_h**2 / 6
        )
        retention = product_gap / base_gap
        ctx.record(
            workload.label,
            row=[workload.family, reg.graph.n,
                 f"{reg.regular_degree}-reg: "
                 f"{reg.graph.is_regular(reg.regular_degree)}",
                 "yes" if preserved else "NO",
                 f"{base_gap:.4f}", f"{product_gap:.4f}",
                 f"{retention:.3f}", f"{prop42_bound:.6f}"],
            workload=workload.family,
            doubled_edges=reg.graph.n,
            base_gap=float(base_gap),
            product_gap=float(product_gap),
            retention=float(retention),
            prop42_bound=float(prop42_bound),
        )
        ctx.check(f"{workload.family}-2m-vertices", reg.graph.n == 2 * graph.m)
        ctx.check(f"{workload.family}-components-kept", preserved)
        ctx.check(f"{workload.family}-above-prop42-floor",
                  product_gap >= prop42_bound)
        # The calibration constant is a central estimate; individual
        # workloads scatter around it (dumbbells sit a little below).
        ctx.check(f"{workload.family}-retention",
                  retention >= retention_floor * 0.6,
                  f"{retention:.3f} vs floor {retention_floor:.3f}")
