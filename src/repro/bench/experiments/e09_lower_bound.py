"""E9 — Theorem 5 / Lemma 9.3: the Ω(n / log n) query lower bound.

Paper claim: any decision tree for ExpanderConn needs Ω(n/log n) edge
queries — the adversary keeps ≥ 1 hard-family member alive until
``k / max-multiplicity`` queries have been spent.  We play probers
against the adversary across a range of n; every one is forced past the
counting bound, and the bound itself grows like n / log n.
"""

from __future__ import annotations

from repro import theory
from repro.bench.registry import register_benchmark
from repro.lower_bound import (
    AdversaryGame,
    build_hard_family,
    family_edge_strategy,
    greedy_multiplicity_strategy,
    play_until_resolved,
)

DEGREE = 6


def _resolve_with(family, strategy):
    game = AdversaryGame.fresh(family)
    return play_until_resolved(game, strategy)


@register_benchmark(
    "e09_query_lower_bound",
    title="ExpanderConn query complexity vs adversary (Lemma 9.3)",
    headers=["n", "family k", "max mult", "k/mult floor", "greedy queries",
             "edge-prober queries", "Ω(n/log n) shape"],
    smoke={"sizes": [128, 256], "seed": 0},
    full={"sizes": [128, 256, 512, 1024], "seed": 0},
    notes=(
        "Expected shape: every strategy's query count sits on or above "
        "the k/multiplicity floor, which grows ~ n/log n; Theorem 5 "
        "converts this to Ω(log_s n) MPC rounds via [53]."
    ),
    tags=("lower-bound",),
)
def e09_query_lower_bound(ctx):
    bounds = []
    for n in ctx.params["sizes"]:
        family = build_hard_family(n, DEGREE, rng=ctx.seed + n)
        bound = family.query_lower_bound()
        bounds.append(bound)
        if n == ctx.params["sizes"][0]:
            greedy = ctx.timeit(
                "adversary", _resolve_with, family,
                greedy_multiplicity_strategy(),
            )
        else:
            greedy = _resolve_with(family, greedy_multiplicity_strategy())
        edges = _resolve_with(family, family_edge_strategy(ctx.seed + n + 1))
        ctx.record(
            f"n={n}",
            row=[n, family.size, family.max_multiplicity, bound,
                 greedy["queries"], edges["queries"],
                 f"{theory.lower_bound_queries(n, c=family.size / n):.0f}"],
            n=n,
            family_size=family.size,
            max_multiplicity=family.max_multiplicity,
            query_floor=bound,
            greedy_queries=greedy["queries"],
            edge_prober_queries=edges["queries"],
        )
        ctx.check(f"greedy-above-floor-n{n}", greedy["queries"] >= bound,
                  f"{greedy['queries']} vs {bound}")
        ctx.check(f"edges-above-floor-n{n}", edges["queries"] >= bound,
                  f"{edges['queries']} vs {bound}")

    # The floor must grow superlinearly in n/log n terms.
    growth = ctx.params["sizes"][-1] // ctx.params["sizes"][0]
    ctx.check("floor-grows", bounds[-1] >= (growth // 2) * bounds[0],
              f"{bounds[0]} -> {bounds[-1]} over {growth}x n")
