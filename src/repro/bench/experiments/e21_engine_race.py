"""E21 — engine race: paper pipeline vs Liu–Tarjan vs exponentiation.

Every registered connectivity engine answers the same question on the
same generator families through the same dispatch seam
(``mpc_connected_components(..., engine=)``), on the true-parallel
:class:`~repro.mpc.ProcessBackend` — so the race compares *algorithms*,
never data planes.  Per family and engine the artifact records MPC
rounds, algorithm phases, dispatch barriers (plan-fusion quality),
materialised exchanges, bytes moved, and wall-clock seconds, all under
the ``--compare`` counter gates.  Expected shape:

* labels bit-identical across all three engines on every family (each
  engine is differentially certified against union-find truth in
  ``tests/test_engines.py``; here the cross-engine equality is asserted
  end-to-end on the process data plane);
* on the designated low-diameter families the exponentiation engine's
  ``O(log D)`` bound beats the paper pipeline's round count outright —
  the headline acceptance claim of the engine subsystem;
* the portfolio dispatcher's per-family pick is reported so a feature or
  threshold change shows up as a diff, not a silent re-route.

This case always exercises the process backend regardless of
``--backend``; ``--workers N`` resizes the pool (default 2).  The
``--engine`` axis is deliberately ignored: the race *is* the sweep over
engines.
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro.bench.registry import register_benchmark
from repro.bench.workloads import Workload
from repro.engines import choose_engine, estimate_features
from repro.graph import components_agree, connected_components
from repro.mpc import ProcessBackend

GAP_BOUND = 0.1
DELTA = 0.5

#: Engines raced head-to-head (the portfolio dispatcher is reported as a
#: per-family pick rather than re-run — it delegates to one of these).
RACE = ("paper", "liu_tarjan", "exponentiation")

#: Families whose components have low diameter at these sizes — the
#: regime where exponentiation's O(log D) rounds must beat the paper
#: pipeline's O(log log n) pipeline outright.
LOW_DIAMETER = ("star", "complete", "hypercube", "dumbbell")

#: Dense/structured families stay small so the race finishes in seconds.
SIZE_OVERRIDES = {"complete": 64, "hypercube": 64}


def _config(params: dict) -> "repro.PipelineConfig":
    return repro.PipelineConfig(
        delta=DELTA,
        expander_degree=4,
        max_walk_length=params["max_walk_length"],
        oversample=params["oversample"],
        max_phases=params["max_phases"],
    )


def _race_once(graph, seed: int, config, engine_name: str, backend):
    """One engine run through the public dispatch seam, with timing."""
    backend.reset()
    start = time.perf_counter()
    result = repro.mpc_connected_components(
        graph, spectral_gap_bound=GAP_BOUND, config=config, rng=seed,
        backend=backend, engine=engine_name,
    )
    seconds = time.perf_counter() - start
    return result, backend.stats(), seconds


@register_benchmark(
    "e21_engine_race",
    title="Connectivity engines raced head-to-head per generator family",
    headers=["family", "engine", "n", "rounds", "phases", "barriers",
             "exchanges", "KB moved", "seconds"],
    smoke={
        "families": ["star", "complete", "hypercube", "dumbbell",
                     "permutation_regular", "path"],
        "n": 192,
        "workers": 2,
        "seed": 23,
        "max_walk_length": 32,
        "oversample": 4,
        "max_phases": 2,
    },
    full={
        "families": ["complete", "cycle", "dumbbell", "erdos_renyi",
                     "expander_path", "grid", "hypercube", "paper_random",
                     "path", "permutation_regular", "ring_of_expanders",
                     "star"],
        "n": 2048,
        "workers": 2,
        "seed": 23,
        "max_walk_length": 64,
        "oversample": 6,
        "max_phases": 4,
    },
    notes=(
        "Expected shape: bit-identical labels across every engine and "
        "family; exponentiation strictly beats the paper pipeline's "
        "round count on the low-diameter families (star, complete, "
        "hypercube, dumbbell); rounds/phases/barriers/exchanges are all "
        "regression-gated by --compare."
    ),
    tags=("pipeline", "engines", "backends"),
)
def e21_engine_race(ctx):
    config = _config(ctx.params)
    n = ctx.params["n"]
    workers = ctx.workers or ctx.params["workers"]

    # One pool per engine, reused across families (reset() per run keeps
    # the counters attributable); a throwaway warm-up run per pool so the
    # seconds column compares algorithms, not process spawns.
    warmup = Workload("path", 32).build(ctx.seed)
    backends = {}
    picks = []
    try:
        for engine_name in RACE:
            backends[engine_name] = ProcessBackend(
                workers=workers, min_parallel_items=0
            )
            _race_once(warmup, ctx.seed, config, engine_name,
                       backends[engine_name])

        for family in ctx.params["families"]:
            size = SIZE_OVERRIDES.get(family, n)
            graph = Workload(family, size).build(ctx.seed)
            truth = connected_components(graph)

            features = estimate_features(graph, GAP_BOUND)
            pick = choose_engine(features)
            ctx.check(
                f"portfolio-pick-registered-{family}",
                pick in RACE,
                f"portfolio chose unknown engine {pick!r}",
            )
            picks.append(f"{family}→{pick}")
            ctx.record(
                f"{family}/portfolio-pick",
                family=family,
                n=size,
                pick=pick,
                est_diameter=features.est_diameter,
            )

            rounds = {}
            paper_labels = None
            for engine_name in RACE:
                result, stats, seconds = _race_once(
                    graph, ctx.seed, config, engine_name,
                    backends[engine_name],
                )
                rounds[engine_name] = result.rounds

                ctx.check(
                    f"labels-correct-{family}-{engine_name}",
                    components_agree(result.labels, truth),
                    "engine must reproduce union-find components",
                )
                if engine_name == "paper":
                    paper_labels = result.labels
                else:
                    ctx.check(
                        f"labels-identical-{family}-{engine_name}",
                        np.array_equal(result.labels, paper_labels),
                        "engines must agree bit-for-bit, not just up to "
                        "relabelling",
                    )

                ctx.record(
                    f"{family}/{engine_name}",
                    row=[family, engine_name, size, result.rounds,
                         result.phase_count, stats.dispatch["barriers"],
                         stats.exchanges,
                         f"{stats.bytes_exchanged / 1024:.0f}",
                         f"{seconds:.3f}"],
                    family=family,
                    n=size,
                    pipeline_rounds=result.rounds,
                    engine_phases=result.phase_count,
                    dispatch_barriers=stats.dispatch["barriers"],
                    plans_run=stats.plans,
                    exchanges=stats.exchanges,
                    bytes_exchanged=stats.bytes_exchanged,
                    seconds=seconds,
                    mpc=ctx.account(result.engine),
                )

            if family in LOW_DIAMETER:
                ctx.check(
                    f"exponentiation-beats-paper-{family}",
                    rounds["exponentiation"] < rounds["paper"],
                    f"O(log D) must win on low-diameter input: "
                    f"{rounds['exponentiation']} vs {rounds['paper']} rounds",
                )
    finally:
        for backend in backends.values():
            backend.close()

    ctx.note("portfolio picks: " + ", ".join(picks))
