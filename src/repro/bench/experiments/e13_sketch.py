"""E13 — Proposition 8.1: the AGM sketch.

Paper claim: O(log³ n)-bit per-vertex messages let a single coordinator
output all connected components w.h.p.  Expected shape: decode success
≈ 1 across seeds and workloads; message size grows polylogarithmically
while n grows 16x.
"""

from __future__ import annotations

from repro.bench.registry import register_benchmark
from repro.graph import (
    community_graph,
    components_agree,
    connected_components,
    cycle_graph,
    paper_random_graph,
)
from repro.sketch import AGMSketch, agm_connected_components

WORKLOADS = {
    "cycle": lambda n, seed: cycle_graph(n),
    "sparse random": lambda n, seed: paper_random_graph(n, 4, rng=seed),
    "communities": lambda n, seed: community_graph(
        [n // 2, n // 4, n // 4], 6, rng=seed
    )[0],
}


def _decode_success_rate(make_graph, n: int, seeds: int, base_seed: int) -> float:
    hits = 0
    for seed in range(base_seed, base_seed + seeds):
        g = make_graph(n, seed)
        try:
            labels, _ = agm_connected_components(g, rng=seed)
        except RuntimeError:
            continue
        if components_agree(labels, connected_components(g)):
            hits += 1
    return hits / seeds


@register_benchmark(
    "e13_sketch",
    title="AGM sketch: decode success and message size (Prop. 8.1)",
    headers=["n", "workload", "success rate", "words/vertex", "bytes/vertex"],
    smoke={"sizes": [64, 128], "seeds_per_case": 4, "success_floor": 0.75,
           "seed": 0},
    full={"sizes": [64, 256, 1024], "seeds_per_case": 10,
          "success_floor": 0.9, "seed": 0},
    tags=("sketch",),
)
def e13_sketch(ctx):
    sizes = ctx.params["sizes"]
    seeds_per_case = ctx.params["seeds_per_case"]
    for n in sizes:
        words = AGMSketch.from_graph(
            cycle_graph(n), rng=ctx.seed
        ).words_per_vertex()
        for name, make in WORKLOADS.items():
            if n == sizes[0] and name == "sparse random":
                rate = ctx.timeit(
                    "decode", _decode_success_rate, make, n, seeds_per_case,
                    ctx.seed,
                )
            else:
                rate = _decode_success_rate(make, n, seeds_per_case, ctx.seed)
            ctx.record(
                f"n={n},{name}",
                row=[n, name, f"{rate:.2f}", words, 8 * words],
                n=n,
                workload=name,
                success_rate=float(rate),
                words_per_vertex=words,
            )
            ctx.check(f"decode-n{n}-{name}",
                      rate >= ctx.params["success_floor"], f"{rate:.2f}")

    small_words = AGMSketch.from_graph(
        cycle_graph(sizes[0]), rng=ctx.seed
    ).words_per_vertex()
    large_words = AGMSketch.from_graph(
        cycle_graph(sizes[-1]), rng=ctx.seed
    ).words_per_vertex()
    ctx.note(
        f"Message growth: {small_words} → {large_words} words while n grew "
        f"{sizes[-1] // sizes[0]}x — polylog, consistent with O(log³ n) "
        "bits."
    )
    ctx.check("polylog-message-growth", large_words <= 4 * small_words,
              f"{small_words} -> {large_words}")
