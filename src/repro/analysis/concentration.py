"""Concentration inequalities used throughout the paper (Appendix A).

These return *failure-probability upper bounds*; the benches and tests use
them both to pick sample sizes and to check that empirical deviation
frequencies stay below the stated bounds (Proposition A.1, A.2).
"""

from __future__ import annotations

import math

from repro.utils.validation import check_in_range, check_positive_int


def chernoff_multiplicative_bound(expectation: float, eps: float) -> float:
    """Proposition A.1: ``Pr(X ∉ J(1±ε)E[X]K) ≤ 2 exp(-ε² E[X] / 2)``.

    ``X`` must be a sum of independent ``[0, 1]``-valued random variables
    with mean ``expectation``.
    """
    if expectation < 0:
        raise ValueError(f"expectation must be >= 0, got {expectation}")
    eps = check_in_range(eps, "eps", 0.0, 1.0)
    return min(1.0, 2.0 * math.exp(-(eps**2) * expectation / 2.0))


def hoeffding_bound(n: int, t: float) -> float:
    """Two-sided Hoeffding bound for n i.i.d. ``[0,1]`` variables:
    ``Pr(|X̄ - E[X̄]| ≥ t) ≤ 2 exp(-2 n t²)``."""
    n = check_positive_int(n, "n")
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    return min(1.0, 2.0 * math.exp(-2.0 * n * t * t))


def mcdiarmid_bound(n: int, lipschitz: float, t: float) -> float:
    """Proposition A.2 (method of bounded differences):

    ``Pr(|f(X) - E[f(X)]| > t) ≤ exp(-2 t² / (n d²))`` for an
    ``d``-Lipschitz function of ``n`` independent variables.
    """
    n = check_positive_int(n, "n")
    if lipschitz <= 0:
        raise ValueError(f"lipschitz must be > 0, got {lipschitz}")
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    return min(1.0, math.exp(-2.0 * t * t / (n * lipschitz * lipschitz)))


def chernoff_sample_bound(eps: float, failure_probability: float) -> int:
    """Smallest expectation ``μ`` such that the Proposition A.1 bound is
    at most ``failure_probability`` for relative error ``eps``.

    Used to pick oversampling factors: the paper's scaling factor
    ``s = 10⁶ log n / ε²`` (Eq. 3) is exactly this computation with the
    failure probability set to ``n^{-Θ(1)}``.
    """
    eps = check_in_range(eps, "eps", 1e-12, 1.0)
    failure_probability = check_in_range(
        failure_probability, "failure_probability", 1e-300, 1.0
    )
    mu = 2.0 * math.log(2.0 / failure_probability) / (eps**2)
    return max(1, math.ceil(mu))
