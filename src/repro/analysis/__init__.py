"""Analysis substrates: the paper's concise-range calculus, concentration
bounds (Appendix A) and the balls-and-bins experiment (Appendix B)."""

from repro.analysis.balls_bins import (
    BallsBinsResult,
    nonempty_bins_interval,
    prop_b1_failure_bound,
    throw_balls,
)
from repro.analysis.concentration import (
    chernoff_multiplicative_bound,
    chernoff_sample_bound,
    hoeffding_bound,
    mcdiarmid_bound,
)
from repro.analysis.intervals import Interval

__all__ = [
    "Interval",
    "chernoff_multiplicative_bound",
    "chernoff_sample_bound",
    "hoeffding_bound",
    "mcdiarmid_bound",
    "BallsBinsResult",
    "throw_balls",
    "nonempty_bins_interval",
    "prop_b1_failure_bound",
]
