"""The paper's concise range notation ``Jx ± δK`` as interval arithmetic.

Section 2 of the paper defines ``Jx ± δK := [x - δ, x + δ]`` and extends it to
numerical expressions ``E`` containing ``±`` operators: ``JEK := [E⁻, E⁺]``
where the signs are chosen to minimise/maximise the expression.  For the
expression forms the paper actually uses (products, quotients and powers of
``(1 ± ε)``-style factors with positive magnitudes) this coincides with
standard closed-interval arithmetic, e.g.

>>> (Interval.pm(3, 2) ** 2) == Interval(1, 25)
True
>>> Interval.pm(2, 1) / Interval.pm(4, 2) == Interval(1/6, 3/2)
True

matching the worked examples ``J(3±2)²K = [1, 25]`` and
``J(2±1)/(4±2)K = [1/6, 3/2]`` in the paper.

The tests use :class:`Interval` to state lemma conclusions literally, e.g.
Lemma 6.4's ``|S_i| ∈ J(1 ± 3ε)dK`` becomes
``(Interval.one_pm(3 * eps) * d).contains(len(S_i))``.
"""

from __future__ import annotations

import math
import numbers
from dataclasses import dataclass


def _as_interval(value: "Interval | float") -> "Interval":
    if isinstance(value, Interval):
        return value
    if isinstance(value, numbers.Real):
        return Interval(float(value), float(value))
    raise TypeError(f"cannot interpret {type(value).__name__} as an Interval")


@dataclass(frozen=True)
class Interval:
    """A closed real interval ``[low, high]`` with arithmetic.

    Immutable; all operators return new intervals.  Multiplication and
    division use exact endpoint analysis (min/max over the four endpoint
    products), so results are tight for interval operands (the dependency
    problem inherent to interval arithmetic is the paper's intended
    semantics: each ``±`` occurrence is resolved independently).
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if math.isnan(self.low) or math.isnan(self.high):
            raise ValueError("interval endpoints must not be NaN")
        if self.low > self.high:
            raise ValueError(f"empty interval: low={self.low} > high={self.high}")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def pm(center: float, delta: float) -> "Interval":
        """The paper's ``Jcenter ± deltaK`` for ``delta >= 0``."""
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        return Interval(center - delta, center + delta)

    @staticmethod
    def one_pm(eps: float) -> "Interval":
        """``J(1 ± eps)K``, the most common factor in the paper's bounds."""
        return Interval.pm(1.0, eps)

    @staticmethod
    def point(value: float) -> "Interval":
        """The degenerate interval ``[value, value]``."""
        return Interval(float(value), float(value))

    # -- queries -----------------------------------------------------------

    @property
    def center(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: "float | Interval", *, slack: float = 0.0) -> bool:
        """Whether ``value`` (a number or a whole interval) lies inside.

        ``slack`` relaxes both endpoints multiplicatively by ``1 ± slack``
        (useful in statistical tests where a claim holds w.h.p. only).
        """
        other = _as_interval(value)
        low = self.low - slack * abs(self.low)
        high = self.high + slack * abs(self.high)
        return low <= other.low and other.high <= high

    def intersects(self, other: "Interval | float") -> bool:
        other = _as_interval(other)
        return self.low <= other.high and other.low <= self.high

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "Interval | float") -> "Interval":
        other = _as_interval(other)
        return Interval(self.low + other.low, self.high + other.high)

    __radd__ = __add__

    def __neg__(self) -> "Interval":
        return Interval(-self.high, -self.low)

    def __sub__(self, other: "Interval | float") -> "Interval":
        return self + (-_as_interval(other))

    def __rsub__(self, other: float) -> "Interval":
        return _as_interval(other) + (-self)

    def __mul__(self, other: "Interval | float") -> "Interval":
        other = _as_interval(other)
        products = (
            self.low * other.low,
            self.low * other.high,
            self.high * other.low,
            self.high * other.high,
        )
        return Interval(min(products), max(products))

    __rmul__ = __mul__

    def __truediv__(self, other: "Interval | float") -> "Interval":
        other = _as_interval(other)
        if other.low <= 0.0 <= other.high:
            raise ZeroDivisionError(f"division by interval containing zero: {other}")
        return self * Interval(1.0 / other.high, 1.0 / other.low)

    def __rtruediv__(self, other: float) -> "Interval":
        return _as_interval(other) / self

    def __pow__(self, exponent: int) -> "Interval":
        if isinstance(exponent, bool) or not isinstance(exponent, numbers.Integral):
            raise TypeError("interval powers require a non-negative integer exponent")
        if exponent < 0:
            raise ValueError("interval powers require a non-negative exponent")
        result = Interval.point(1.0)
        for _ in range(int(exponent)):
            result = result * self
        return result

    # -- misc ----------------------------------------------------------------

    def union(self, other: "Interval | float") -> "Interval":
        """Smallest interval containing both operands."""
        other = _as_interval(other)
        return Interval(min(self.low, other.low), max(self.high, other.high))

    def scale(self, factor: float) -> "Interval":
        return self * factor

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interval[{self.low:g}, {self.high:g}]"
