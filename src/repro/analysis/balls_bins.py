"""The balls-and-bins experiment of Appendix B (Proposition B.1).

Throwing ``N`` balls into ``B`` bins, each bin chosen with probability in
``J(1±ε)/BK`` and ``N ≤ εB``, the number ``X`` of non-empty bins satisfies

    Pr( X ∉ J(1 ± 2ε) N K ) ≤ exp(-ε² N / 2).

``GrowComponents`` leans on this (Claim 6.9) to argue that the contracted
graph stays almost-regular: the "balls" are out-edges leaving a component and
the "bins" are the other components.  This module provides the simulation and
the bound so bench E10 can compare them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.intervals import Interval
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_range, check_positive_int


@dataclass(frozen=True)
class BallsBinsResult:
    """Outcome of one balls-and-bins trial."""

    balls: int
    bins: int
    nonempty: int

    @property
    def ratio(self) -> float:
        """Non-empty bins per ball (Prop. B.1 predicts ≈ 1 when N ≪ B)."""
        return self.nonempty / self.balls


def throw_balls(
    balls: int,
    bins: int,
    *,
    eps: float = 0.0,
    rng=None,
) -> BallsBinsResult:
    """Throw ``balls`` balls into ``bins`` bins and count non-empty bins.

    ``eps > 0`` perturbs the bin probabilities within ``J(1±ε)/BK`` (each bin
    weight drawn uniformly from that range, then normalised), matching the
    near-uniform regime of Proposition B.1.
    """
    balls = check_positive_int(balls, "balls")
    bins = check_positive_int(bins, "bins")
    eps = check_in_range(eps, "eps", 0.0, 1.0)
    rng = ensure_rng(rng)

    if eps == 0.0:
        choices = rng.integers(0, bins, size=balls)
    else:
        weights = rng.uniform(1.0 - eps, 1.0 + eps, size=bins)
        weights /= weights.sum()
        choices = rng.choice(bins, size=balls, p=weights)
    nonempty = int(np.unique(choices).size)
    return BallsBinsResult(balls=balls, bins=bins, nonempty=nonempty)


def nonempty_bins_interval(balls: int, eps: float) -> Interval:
    """The interval ``J(1 ± 2ε) NK`` from Proposition B.1."""
    balls = check_positive_int(balls, "balls")
    eps = check_in_range(eps, "eps", 0.0, 1.0)
    return Interval.one_pm(2.0 * eps) * balls


def prop_b1_failure_bound(balls: int, eps: float) -> float:
    """The failure probability ``exp(-ε² N / 2)`` from Proposition B.1."""
    balls = check_positive_int(balls, "balls")
    eps = check_in_range(eps, "eps", 0.0, 1.0)
    return min(1.0, math.exp(-(eps**2) * balls / 2.0))
