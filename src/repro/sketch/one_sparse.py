"""One-sparse recovery — the leaf of the AGM sketch tower.

Maintains three linear counters over a stream of signed updates
``(index, weight)`` to a virtual vector ``f``:

* ``total  = Σ f_i``
* ``moment = Σ i · f_i``
* ``finger = Σ f_i · r^i  (mod p)`` for a random fingerprint base ``r``

If ``f`` is exactly one-sparse with support ``{i}`` and weight ``w``, then
``total = w``, ``moment = i·w`` and ``finger = w·r^i``; the fingerprint
check makes false positives occur with probability ``≤ universe/p``.
All counters are linear, so sketches of ``f`` and ``g`` add to a sketch of
``f + g`` — the property Borůvka-over-sketches relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sketch.hashing import MERSENNE_P
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


def _pow_mod(base: np.ndarray, exponent: np.ndarray, modulus: int) -> np.ndarray:
    """Vectorised modular exponentiation (square-and-multiply on uint64)."""
    base = np.asarray(base, dtype=np.uint64) % np.uint64(modulus)
    exponent = np.asarray(exponent, dtype=np.uint64).copy()
    result = np.ones_like(base)
    mod = np.uint64(modulus)
    while exponent.max(initial=np.uint64(0)) > 0:
        odd = (exponent & np.uint64(1)).astype(bool)
        result[odd] = (result[odd] * base[odd]) % mod
        base = (base * base) % mod
        exponent >>= np.uint64(1)
    return result


@dataclass
class OneSparseRecovery:
    """Linear one-sparse detector over integer vectors indexed by
    ``[0, universe)``."""

    universe: int
    fingerprint_base: int
    total: int = 0
    moment: int = 0
    finger: int = 0

    @classmethod
    def fresh(cls, universe: int, rng=None) -> "OneSparseRecovery":
        universe = check_positive_int(universe, "universe")
        if universe >= MERSENNE_P:
            raise ValueError("universe too large for the fingerprint field")
        rng = ensure_rng(rng)
        base = int(rng.integers(2, MERSENNE_P - 1))
        return cls(universe=universe, fingerprint_base=base)

    # -- updates ----------------------------------------------------------

    def update(self, index: int, weight: int) -> None:
        self.update_many(np.array([index]), np.array([weight]))

    def update_many(self, indices: np.ndarray, weights: np.ndarray) -> None:
        indices = np.asarray(indices, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        if indices.size == 0:
            return
        if indices.min() < 0 or indices.max() >= self.universe:
            raise ValueError("index out of universe")
        self.total += int(weights.sum())
        self.moment += int((indices * weights).sum())
        powers = _pow_mod(
            np.full(indices.shape, self.fingerprint_base), indices, MERSENNE_P
        )
        weights_mod = (weights % MERSENNE_P).astype(np.uint64)
        contrib = (weights_mod * powers) % np.uint64(MERSENNE_P)
        self.finger = int((self.finger + int(contrib.sum())) % MERSENNE_P)

    # -- linearity ----------------------------------------------------------

    def merge(self, other: "OneSparseRecovery") -> "OneSparseRecovery":
        """Sketch of the sum of the two underlying vectors."""
        self._check_compatible(other)
        return OneSparseRecovery(
            universe=self.universe,
            fingerprint_base=self.fingerprint_base,
            total=self.total + other.total,
            moment=self.moment + other.moment,
            finger=(self.finger + other.finger) % MERSENNE_P,
        )

    def _check_compatible(self, other: "OneSparseRecovery") -> None:
        if (
            self.universe != other.universe
            or self.fingerprint_base != other.fingerprint_base
        ):
            raise ValueError("cannot merge sketches with different seeds")

    # -- queries -----------------------------------------------------------

    @property
    def is_zero(self) -> bool:
        return self.total == 0 and self.moment == 0 and self.finger == 0

    def decode(self) -> "tuple[int, int] | None":
        """``(index, weight)`` if the vector is (verifiably) one-sparse,
        else None."""
        if self.total == 0:
            return None
        if self.moment % self.total != 0:
            return None
        index = self.moment // self.total
        if not 0 <= index < self.universe:
            return None
        expected = (
            (self.total % MERSENNE_P)
            * int(_pow_mod(np.array([self.fingerprint_base]), np.array([index]), MERSENNE_P)[0])
        ) % MERSENNE_P
        if expected != self.finger:
            return None
        return int(index), int(self.total)
