"""Sharded, mergeable AGM sketches: parallel streaming ingest by linearity.

The AGM sketch is *linear*: the sketch of an edge multiset is the
elementwise sum of the sketches of any partition of that multiset.  This
module exploits the dual reading — partition the *vertices* into
contiguous owner ranges, keep one per-shard partial of every round's
counter arrays, and route each update batch to all shards, where each
shard scatters only the incidence updates whose owner it holds.  Because
int64 scatter-adds are commutative and associative (wraparound
semantics) and fingerprints are reduced mod p at batch boundaries, the
partials summed back together (:meth:`ShardedAGMSketch.merge`) are
**bit-identical** to the monolithic :class:`~repro.sketch.agm.AGMSketch`
fed the same stream — decode never knows the ingest was parallel.

Where the partials live is the backend's business:

* no backend / ``local`` / ``sharded`` — plain numpy arrays, updated by
  the vectorized per-shard kernel in-process;
* ``process`` — pinned :class:`~repro.mpc.arena.ShmArena` segments from
  the persistent arena; workers attach once (cacheable descriptors) and
  scatter in place, so the parent never copies a partial;
* ``rpc`` — partials are *resident in the workers* (the parent holds no
  copy); update batches ship digest-deduped over the wire and partials
  come back only at merge (decode) time.

:func:`sketch_update_partial` is the one shared kernel: it operates on
plain arrays (hash coefficients, not hash objects), so the process
worker ops and the rpc wire kernels run exactly the code the in-process
path runs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.sketch.agm import AGMSketch, RoundSpec, _scatter_edge_updates
from repro.sketch.hashing import MERSENNE_P, KWiseHash
from repro.sketch.one_sparse import _pow_mod
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

#: Zero-filled sketch-counter block (the streaming stats schema embeds
#: this shape even when ingest is monolithic, so JSON consumers see one
#: schema).
SKETCH_STATS_ZERO = {"shard_updates": 0, "merges": 0, "partial_words": 0}

_TOKENS = itertools.count()


@dataclass
class SketchStats:
    """Counters for sharded sketch ingest and decode-time merging.

    ``shard_updates`` counts per-shard kernel invocations (one per shard
    per applied batch), ``merges`` counts decode-time materialisations
    of the monolithic sketch, and ``partial_words`` is the int64 words
    currently held across all shard partials (equal to the monolithic
    sketch's footprint — sharding splits the arrays, it does not grow
    them).
    """

    shard_updates: int = 0
    merges: int = 0
    partial_words: int = 0

    def to_json(self) -> dict:
        """The counters under the stable one-schema key set."""
        return {
            "shard_updates": int(self.shard_updates),
            "merges": int(self.merges),
            "partial_words": int(self.partial_words),
        }


def _hash_from_coefficients(coefficients: np.ndarray) -> KWiseHash:
    """Reconstitute a :class:`KWiseHash` from its coefficient words (the
    wire/worker-side inverse of shipping ``hash.coefficients``)."""
    hasher = KWiseHash.__new__(KWiseHash)
    hasher.k = int(coefficients.shape[0])
    hasher.coefficients = np.asarray(coefficients, dtype=np.uint64)
    return hasher


def sketch_update_partial(
    data: np.ndarray,
    edges: np.ndarray,
    weights: np.ndarray,
    *,
    vlo: int,
    vhi: int,
    n: int,
    levels: int,
    cols: int,
    level_coeffs: np.ndarray,
    row_coeffs: np.ndarray,
    bases: np.ndarray,
) -> int:
    """Scatter one update batch into one shard's partial, in place.

    ``data`` has shape ``(rounds, 3, vhi - vlo, levels * rows * cols)``
    — all round sketches' (totals, moments, fingers) planes for the
    owner range ``[vlo, vhi)``.  The hash state arrives as plain arrays
    (``level_coeffs``: ``(rounds, 2)`` uint64, ``row_coeffs``:
    ``(rounds, rows, 2)`` uint64, ``bases``: ``(rounds,)`` int64) so the
    same kernel runs in-process, in forked process-pool workers, and in
    rpc wire workers.  Returns the number of incidence updates applied
    (those whose owner falls in the range); bounds/shape validation is
    the caller's job.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    weights = np.asarray(weights, dtype=np.int64)
    if edges.size == 0:
        return 0
    u = edges[:, 0]
    v = edges[:, 1]
    keep = (u != v) & (weights != 0)
    if not keep.any():
        return 0
    u, v, weights = u[keep], v[keep], weights[keep]
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    edge_ids = lo * n + hi
    owners = np.concatenate([lo, hi])
    ids = np.concatenate([edge_ids, edge_ids])
    signed = np.concatenate([weights, -weights])
    in_shard = (owners >= vlo) & (owners < vhi)
    if not in_shard.any():
        return 0
    owners = owners[in_shard] - vlo
    ids = ids[in_shard]
    signed = signed[in_shard]

    rounds = data.shape[0]
    rows = int(row_coeffs.shape[1])
    for r in range(rounds):
        level_hash = _hash_from_coefficients(level_coeffs[r])
        row_hashes = [
            _hash_from_coefficients(row_coeffs[r, i]) for i in range(rows)
        ]
        depth = level_hash.level(ids, levels - 1)
        powers = _pow_mod(
            np.full(ids.shape, int(bases[r])), ids, MERSENNE_P
        ).astype(np.int64)
        finger_contrib = ((signed % MERSENNE_P) * powers) % MERSENNE_P
        _scatter_edge_updates(
            data[r, 0].reshape(-1),
            data[r, 1].reshape(-1),
            data[r, 2].reshape(-1),
            owners,
            ids,
            signed,
            finger_contrib,
            depth,
            row_hashes,
            levels,
            rows,
            cols,
        )
        data[r, 2] %= MERSENNE_P
    return int(owners.size)


@dataclass
class SketchPartial:
    """One shard's partial: the owner range plus its counter block.

    ``data`` is the live ``(rounds, 3, vhi - vlo, cells)`` array — a
    plain array in-process, an arena-lease view on the process backend,
    or ``None`` when the partial is resident in an rpc worker.  ``lease``
    keeps the arena segment alive for the arena-backed case.
    """

    vlo: int
    vhi: int
    data: "np.ndarray | None"
    lease: object = None

    @property
    def descriptor(self):
        """The shared-memory descriptor workers attach to (arena-backed
        partials only)."""
        if self.lease is None:
            raise RuntimeError("sketch partial has no shared-memory lease")
        return self.lease.descriptor

    def release(self) -> None:
        """Release the arena lease (idempotent; no-op without one)."""
        if self.lease is not None:
            self.lease.release()
            self.lease = None
        self.data = None


class SketchPartialStore:
    """The backend-facing handle for a sharded sketch's partials.

    Backends receive this object through
    :meth:`~repro.mpc.backends.ExecutionBackend.sketch_update` /
    ``sketch_collect``: it carries the shard partials, the plain-array
    kernel parameters (``params``), and — for worker-resident (rpc)
    stores — the residency ``token`` plus the pool-generation snapshot
    that makes partial loss loud instead of silent.
    """

    def __init__(
        self,
        partials: "list[SketchPartial]",
        params: dict,
        *,
        kind: str = "memory",
        token: "str | None" = None,
        residency: "int | None" = None,
    ):
        self.partials = partials
        self.params = params
        self.kind = kind
        self.token = token
        self.residency = residency

    @property
    def shard_count(self) -> int:
        """Number of shard partials."""
        return len(self.partials)

    def apply_serial(self, edges: np.ndarray, weights: np.ndarray) -> int:
        """Run the shared kernel over every partial in-process; returns
        incidence updates applied."""
        if self.kind == "resident":
            raise RuntimeError(
                "worker-resident sketch partials cannot be updated "
                "in-process; dispatch through the owning backend"
            )
        applied = 0
        for part in self.partials:
            applied += sketch_update_partial(
                part.data,
                edges,
                weights,
                vlo=part.vlo,
                vhi=part.vhi,
                **self.params,
            )
        return applied

    def local_partial_data(self) -> "list[np.ndarray]":
        """The partial arrays, for in-process merge reads."""
        if self.kind == "resident":
            raise RuntimeError(
                "worker-resident sketch partials must be collected "
                "through the owning backend"
            )
        return [part.data for part in self.partials]

    def close(self) -> None:
        """Release any arena leases held by the partials (idempotent)."""
        for part in self.partials:
            part.release()


class ShardedAGMSketch:
    """An AGM sketch whose updates are range-partitioned across shards.

    Drop-in ingest replacement for :class:`~repro.sketch.agm.AGMSketch`:
    ``update_edges`` routes batches through the owning backend's
    ``sketch_update`` seam (or the in-process kernel without a backend),
    and :meth:`merge` sums the partials back into a real monolithic
    :class:`AGMSketch` — bit-identical to one fed the same stream — for
    unchanged decoding.  Created with the same seed, ``empty`` draws the
    exact randomness ``AGMSketch.empty`` would (the :class:`RoundSpec`
    contract), which is what makes the bit-identity testable.
    """

    def __init__(self, n, specs, store, ranges, *, backend=None, stats=None):
        self.n = n
        self.backend = backend
        self.stats = stats if stats is not None else SketchStats()
        self._specs = specs
        self._store = store
        self._ranges = ranges
        self.stats.partial_words = sum(
            len(specs) * 3 * (vhi - vlo) * specs[0].cells
            for vlo, vhi in ranges
        )

    @classmethod
    def empty(
        cls,
        n: int,
        rng=None,
        *,
        shards: "int | None" = None,
        backend=None,
        boruvka_rounds: "int | None" = None,
        sparsity: int = 4,
        rows: int = 3,
        stats: "SketchStats | None" = None,
    ) -> "ShardedAGMSketch":
        """A zero sharded sketch over ``shards`` contiguous owner ranges.

        ``shards=None`` defaults to the backend's worker count (1 without
        a backend).  Partial placement follows the backend: plain arrays
        in-process, persistent-arena shm segments on the process backend,
        worker-resident state on the rpc backend.  ``stats`` lets a
        caller accumulate counters across rebuilds.
        """
        rng = ensure_rng(rng)
        check_positive_int(sparsity, "sparsity")
        check_positive_int(rows, "rows")
        if boruvka_rounds is None:
            boruvka_rounds = max(2, int(np.ceil(np.log2(max(n, 2)))) + 3)
        check_positive_int(boruvka_rounds, "boruvka_rounds")
        specs = [
            RoundSpec.draw(n, rng, sparsity=sparsity, rows=rows)
            for _ in range(boruvka_rounds + 1)
        ]
        if shards is None:
            shards = int(getattr(backend, "workers", 1) or 1)
        check_positive_int(shards, "shards")
        shards = min(shards, n)
        per = -(-n // shards)
        ranges = [
            (start, min(n, start + per))
            for start in range(0, n, per)
        ]

        spec = specs[0]
        rounds = len(specs)
        level_coeffs = np.stack(
            [s.level_hash.coefficients for s in specs]
        ).astype(np.uint64)
        row_coeffs = np.stack(
            [np.stack([h.coefficients for h in s.row_hashes]) for s in specs]
        ).astype(np.uint64)
        bases = np.array([s.fingerprint_base for s in specs], dtype=np.int64)
        for array in (level_coeffs, row_coeffs, bases):
            array.setflags(write=False)
        params = {
            "n": n,
            "levels": spec.levels,
            "cols": spec.cols,
            "level_coeffs": level_coeffs,
            "row_coeffs": row_coeffs,
            "bases": bases,
        }

        partials: "list[SketchPartial]" = []
        kind = "memory"
        token = None
        residency = None
        if backend is not None and getattr(backend, "name", "") == "rpc":
            kind = "resident"
            token = f"sketch{next(_TOKENS)}"
            residency = backend.sketch_residency()
            partials = [SketchPartial(vlo, vhi, None) for vlo, vhi in ranges]
        elif backend is not None and hasattr(backend, "persistent_lease"):
            kind = "arena"
            for vlo, vhi in ranges:
                lease = backend.persistent_lease(
                    (rounds, 3, vhi - vlo, spec.cells), np.int64
                )
                partials.append(SketchPartial(vlo, vhi, lease.view, lease))
        else:
            partials = [
                SketchPartial(
                    vlo,
                    vhi,
                    np.zeros((rounds, 3, vhi - vlo, spec.cells), dtype=np.int64),
                )
                for vlo, vhi in ranges
            ]
        store = SketchPartialStore(
            partials, params, kind=kind, token=token, residency=residency
        )
        return cls(n, specs, store, ranges, backend=backend, stats=stats)

    @property
    def shard_count(self) -> int:
        """Number of owner-range shards."""
        return len(self._ranges)

    @property
    def shard_ranges(self) -> "list[tuple[int, int]]":
        """The contiguous ``[vlo, vhi)`` owner ranges, in order."""
        return list(self._ranges)

    def words_per_vertex(self) -> int:
        """Sketch size per vertex in machine words (matches the
        monolithic sketch exactly)."""
        return sum(3 * spec.cells for spec in self._specs)

    def update_edges(self, edges, weights=None) -> None:
        """Apply one batch of signed edge updates to every shard partial.

        Validation (bounds, weight shape) happens up front, parent-side;
        the backend seam then fans the batch out to the shard kernels.
        """
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            return
        edges = edges.reshape(-1, 2)
        if weights is None:
            weights = np.ones(edges.shape[0], dtype=np.int64)
        else:
            weights = np.asarray(weights, dtype=np.int64)
            if weights.shape != (edges.shape[0],):
                raise ValueError(
                    f"weights shape {weights.shape} does not match "
                    f"{edges.shape[0]} edges"
                )
        if edges.min() < 0 or edges.max() >= self.n:
            raise ValueError(f"edge endpoint out of range [0, {self.n})")
        if self.backend is None:
            self._store.apply_serial(edges, weights)
        else:
            self.backend.sketch_update(self._store, edges, weights)
        self.stats.shard_updates += self.shard_count

    def merge(self) -> AGMSketch:
        """Sum the shard partials into a monolithic :class:`AGMSketch`.

        Linearity makes this elementwise addition (fingerprints reduced
        mod p); the result is bit-identical to the monolithic sketch fed
        the same update stream, so decoding is unchanged.
        """
        if self.backend is None:
            parts = self._store.local_partial_data()
        else:
            parts = self.backend.sketch_collect(self._store)
        rounds = []
        for r, spec in enumerate(self._specs):
            round_sketch = spec.empty_round()
            totals = round_sketch.totals.reshape(self.n, spec.cells)
            moments = round_sketch.moments.reshape(self.n, spec.cells)
            fingers = round_sketch.fingers.reshape(self.n, spec.cells)
            for (vlo, vhi), part in zip(self._ranges, parts):
                totals[vlo:vhi] += part[r, 0]
                moments[vlo:vhi] += part[r, 1]
                fingers[vlo:vhi] += part[r, 2]
            round_sketch.fingers %= MERSENNE_P
            rounds.append(round_sketch)
        self.stats.merges += 1
        return AGMSketch(n=self.n, rounds=rounds)

    @staticmethod
    def sum_partials(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Merge two same-range partial blocks (elementwise sum, fingers
        mod p) — the associative/commutative monoid ``merge`` folds."""
        out = np.array(a, dtype=np.int64, copy=True)
        out += b
        out[:, 2] %= MERSENNE_P
        return out

    def close(self) -> None:
        """Release backend-held partial state (arena leases, worker
        residency); idempotent."""
        if self.backend is not None:
            release = getattr(self.backend, "sketch_release", None)
            if release is not None:
                release(self._store)
        self._store.close()
