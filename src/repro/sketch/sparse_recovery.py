"""s-sparse recovery: a hashed grid of one-sparse detectors.

``rows × columns`` one-sparse cells; each row hashes every index into one
of ``2s`` columns with a pairwise-independent hash.  If the underlying
vector has at most ``s`` nonzero coordinates, each one is isolated in some
row with constant probability per row, so ``O(log(s/δ))`` rows recover the
full support with probability ``1-δ``.  All cells are linear, so grids
merge coordinate-wise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sketch.hashing import KWiseHash
from repro.sketch.one_sparse import OneSparseRecovery
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


@dataclass
class SparseRecovery:
    """Recover vectors with ≤ ``sparsity`` nonzero entries."""

    universe: int
    sparsity: int
    rows: "list[list[OneSparseRecovery]]"
    hashes: "list[KWiseHash]"

    @classmethod
    def fresh(
        cls,
        universe: int,
        sparsity: int,
        rng=None,
        *,
        row_count: "int | None" = None,
    ) -> "SparseRecovery":
        universe = check_positive_int(universe, "universe")
        sparsity = check_positive_int(sparsity, "sparsity")
        rng = ensure_rng(rng)
        if row_count is None:
            row_count = max(4, int(np.ceil(np.log2(max(universe, 2)))))
        columns = 2 * sparsity
        rows = []
        hashes = []
        for _ in range(row_count):
            rows.append([OneSparseRecovery.fresh(universe, rng) for _ in range(columns)])
            hashes.append(KWiseHash(2, rng))
        return cls(universe=universe, sparsity=sparsity, rows=rows, hashes=hashes)

    @property
    def column_count(self) -> int:
        return 2 * self.sparsity

    @property
    def cell_count(self) -> int:
        return len(self.rows) * self.column_count

    # -- updates -------------------------------------------------------------

    def update_many(self, indices: np.ndarray, weights: np.ndarray) -> None:
        indices = np.asarray(indices, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        if indices.size == 0:
            return
        for row, hasher in zip(self.rows, self.hashes):
            cols = hasher.values(indices) % np.uint64(self.column_count)
            for col in np.unique(cols):
                mask = cols == col
                row[int(col)].update_many(indices[mask], weights[mask])

    def update(self, index: int, weight: int) -> None:
        self.update_many(np.array([index]), np.array([weight]))

    # -- linearity -------------------------------------------------------------

    def merge(self, other: "SparseRecovery") -> "SparseRecovery":
        if self.universe != other.universe or self.sparsity != other.sparsity:
            raise ValueError("cannot merge incompatible sparse recoveries")
        merged_rows = []
        for row_a, row_b in zip(self.rows, other.rows):
            merged_rows.append([a.merge(b) for a, b in zip(row_a, row_b)])
        return SparseRecovery(
            universe=self.universe,
            sparsity=self.sparsity,
            rows=merged_rows,
            hashes=self.hashes,
        )

    # -- decoding ---------------------------------------------------------------

    def decode(self) -> "dict[int, int] | None":
        """The full support map ``{index: weight}`` if the vector is
        ``s``-sparse (verified by re-hashing); None when recovery fails
        or the vector is visibly denser than ``s``."""
        candidates: "dict[int, int]" = {}
        for row, hasher in zip(self.rows, self.hashes):
            for cell in row:
                decoded = cell.decode()
                if decoded is not None:
                    index, weight = decoded
                    candidates[index] = weight
        if len(candidates) > self.sparsity:
            return None
        # Verify: re-subtracting the candidates must zero every cell.
        if candidates:
            indices = np.fromiter(candidates.keys(), dtype=np.int64)
            weights = -np.fromiter(candidates.values(), dtype=np.int64)
        for row, hasher in zip(self.rows, self.hashes):
            residual = [
                OneSparseRecovery(
                    universe=cell.universe,
                    fingerprint_base=cell.fingerprint_base,
                    total=cell.total,
                    moment=cell.moment,
                    finger=cell.finger,
                )
                for cell in row
            ]
            if candidates:
                cols = hasher.values(indices) % np.uint64(self.column_count)
                for col in np.unique(cols):
                    mask = cols == col
                    residual[int(col)].update_many(indices[mask], weights[mask])
            if not all(cell.is_zero for cell in residual):
                return None
        return candidates

    def sample_nonzero(self) -> "tuple[int, int] | None":
        """Any one verifiably nonzero coordinate (enough for Borůvka)."""
        for row in self.rows:
            for cell in row:
                decoded = cell.decode()
                if decoded is not None:
                    return decoded
        return None
