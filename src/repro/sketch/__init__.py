"""Linear-sketching substrate: hashing, sparse recovery, L0 sampling, AGM."""

from repro.sketch.agm import (
    AGMSketch,
    RoundSketch,
    RoundSpec,
    agm_connected_components,
    agm_decode_components,
)
from repro.sketch.hashing import MERSENNE_P, KWiseHash, sign_hash
from repro.sketch.l0_sampler import L0Sampler
from repro.sketch.one_sparse import OneSparseRecovery
from repro.sketch.sharded import (
    SKETCH_STATS_ZERO,
    ShardedAGMSketch,
    SketchPartialStore,
    SketchStats,
    sketch_update_partial,
)
from repro.sketch.sparse_recovery import SparseRecovery

__all__ = [
    "MERSENNE_P",
    "SKETCH_STATS_ZERO",
    "KWiseHash",
    "sign_hash",
    "OneSparseRecovery",
    "SparseRecovery",
    "L0Sampler",
    "AGMSketch",
    "RoundSketch",
    "RoundSpec",
    "ShardedAGMSketch",
    "SketchPartialStore",
    "SketchStats",
    "agm_connected_components",
    "agm_decode_components",
    "sketch_update_partial",
]
