"""L0 sampling: recover a nonzero coordinate of an arbitrary vector.

Standard geometric-subsampling construction: level ``ℓ`` keeps each index
with probability ``2^{-ℓ-1}`` (decided by a shared hash, so merging
sketches keeps levels aligned), and stores an ``s``-sparse recovery of the
surviving sub-vector.  Whatever the support size ``k``, the level with
``2^{-ℓ-1} k ≈ s/2`` is ``s``-sparse with constant probability, so some
level decodes; independent repetitions drive the failure probability down.

The AGM connectivity algorithm needs *any* nonzero coordinate (an arbitrary
cut edge), not an ε-uniform one, so :meth:`L0Sampler.sample` returns the
first coordinate that verifiably decodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sketch.hashing import KWiseHash
from repro.sketch.sparse_recovery import SparseRecovery
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


@dataclass
class L0Sampler:
    """Linear sketch supporting ``sample() -> (index, weight) | None``."""

    universe: int
    level_hash: KWiseHash
    levels: "list[SparseRecovery]"

    @classmethod
    def fresh(
        cls,
        universe: int,
        rng=None,
        *,
        sparsity: int = 8,
        row_count: int = 4,
    ) -> "L0Sampler":
        universe = check_positive_int(universe, "universe")
        rng = ensure_rng(rng)
        level_count = max(1, int(np.ceil(np.log2(max(universe, 2)))) + 1)
        level_hash = KWiseHash(2, rng)
        levels = [
            SparseRecovery.fresh(universe, sparsity, rng, row_count=row_count)
            for _ in range(level_count)
        ]
        return cls(universe=universe, level_hash=level_hash, levels=levels)

    @property
    def level_count(self) -> int:
        return len(self.levels)

    def word_count(self) -> int:
        """Machine words stored — measures the O(log³ n) message size of
        Prop. 8.1 (levels × rows × columns × 3 counters)."""
        return sum(3 * sr.cell_count for sr in self.levels)

    # -- updates ----------------------------------------------------------

    def update_many(self, indices: np.ndarray, weights: np.ndarray) -> None:
        indices = np.asarray(indices, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        if indices.size == 0:
            return
        # Index at level l survives iff its geometric depth >= l; level 0
        # sees everything.
        depth = self.level_hash.level(indices, self.level_count - 1)
        for lvl, recovery in enumerate(self.levels):
            mask = depth >= lvl
            if mask.any():
                recovery.update_many(indices[mask], weights[mask])

    def update(self, index: int, weight: int) -> None:
        self.update_many(np.array([index]), np.array([weight]))

    # -- linearity -----------------------------------------------------------

    def merge(self, other: "L0Sampler") -> "L0Sampler":
        if self.universe != other.universe or self.level_count != other.level_count:
            raise ValueError("cannot merge incompatible L0 samplers")
        if self.level_hash is not other.level_hash and not np.array_equal(
            self.level_hash.coefficients, other.level_hash.coefficients
        ):
            raise ValueError("cannot merge L0 samplers with different level hashes")
        merged = [a.merge(b) for a, b in zip(self.levels, other.levels)]
        return L0Sampler(
            universe=self.universe, level_hash=self.level_hash, levels=merged
        )

    # -- queries ----------------------------------------------------------------

    def sample(self) -> "tuple[int, int] | None":
        """A verified nonzero coordinate, or None (zero vector / failure).

        Scans from the deepest (sparsest) level down so the decoded support
        is small; falls back to any one-sparse cell hit.
        """
        for recovery in reversed(self.levels):
            support = recovery.decode()
            if support:
                index = next(iter(support))
                return index, support[index]
        for recovery in reversed(self.levels):
            hit = recovery.sample_nonzero()
            if hit is not None:
                return hit
        return None
