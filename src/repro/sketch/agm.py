"""The AGM graph-connectivity sketch (Ahn–Guha–McGregor; Proposition 8.1).

Every vertex ``u`` summarises its incidence vector — ``+1`` on edge
``(u, v)`` with ``u < v``, ``-1`` with ``u > v`` — into an L0-sampling
sketch of ``O(log³ n)`` bits.  Sketches are *linear*, so the sum of the
sketches of a vertex set ``S`` sketches the incidence vector of ``S``, in
which internal edges cancel and exactly the cut edges ``∂S`` survive.  A
coordinator can therefore run Borůvka purely on sketch sums: each round it
samples one cut edge per current component and merges; ``O(log n)`` rounds
with a *fresh* sketch per round (to keep samples independent of earlier
merges) find the components w.h.p.  One extra fresh sketch is reserved as
the *verification round*: after the merge rounds it re-checks quiescence
without ever having been consumed by a merge, preserving independence.

Linearity also makes the sketch a *streaming* structure: an edge
insert/delete stream is just more signed incidence updates
(:meth:`RoundSketch.update_edges` with weight ``-1`` for a delete), which
is what :mod:`repro.streaming` builds on.

Implementation notes: all per-vertex samplers of one Borůvka round live in
four numpy arrays (counters indexed ``vertex × level × row × column``), so
building from an edge array and summing by component label are single
vectorised scatters.  The shared hash seeds are the "polylog(n) shared
random bits" of Prop. 8.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.components import canonical_labels
from repro.graph.graph import Graph
from repro.sketch.hashing import MERSENNE_P, KWiseHash
from repro.sketch.one_sparse import _pow_mod
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

_P = np.uint64(MERSENNE_P)


def _scatter_edge_updates(
    flat_totals: np.ndarray,
    flat_moments: np.ndarray,
    flat_fingers: np.ndarray,
    owners: np.ndarray,
    ids: np.ndarray,
    signed: np.ndarray,
    finger_contrib: np.ndarray,
    depth: np.ndarray,
    row_hashes,
    levels: int,
    rows: int,
    cols: int,
) -> None:
    """One fused ``np.add.at`` pass per counter array.

    Every incidence update lands on levels ``0..depth`` of every hash
    row, so the (update, level, row) triples expand into a single flat
    index array and each counter takes exactly one scatter.  int64
    addition wraps with C semantics (commutative + associative), so the
    result is bit-identical to any per-level/per-row scatter order over
    the same contribution multiset — which is also why shard partials of
    disjoint update sets sum back to the monolithic arrays exactly.
    """
    counts = depth.astype(np.int64) + 1
    m = ids.shape[0]
    rep = np.repeat(np.arange(m, dtype=np.int64), counts)
    offsets = np.cumsum(counts) - counts
    lvl = np.arange(rep.shape[0], dtype=np.int64) - offsets[rep]
    col = np.stack(
        [
            (hasher.values(ids) % np.uint64(cols)).astype(np.int64)
            for hasher in row_hashes
        ]
    )
    base = owners[rep] * (levels * rows * cols) + lvl * (rows * cols)
    row_offsets = np.arange(rows, dtype=np.int64) * cols
    flat_index = (base[:, None] + row_offsets[None, :] + col[:, rep].T).reshape(-1)
    np.add.at(flat_totals, flat_index, np.repeat(signed[rep], rows))
    np.add.at(flat_moments, flat_index, np.repeat((signed * ids)[rep], rows))
    np.add.at(flat_fingers, flat_index, np.repeat(finger_contrib[rep], rows))


@dataclass
class RoundSketch:
    """All vertices' L0 sketches for one Borůvka round.

    ``totals/moments/fingers`` have shape ``(n, levels, rows, cols)``;
    fingerprints are kept reduced mod p.
    """

    n: int
    universe: int
    level_hash: KWiseHash
    row_hashes: "list[KWiseHash]"
    fingerprint_base: int
    totals: np.ndarray
    moments: np.ndarray
    fingers: np.ndarray

    @property
    def shape(self) -> "tuple[int, int, int]":
        return self.totals.shape[1:]

    def words_per_vertex(self) -> int:
        levels, rows, cols = self.shape
        return 3 * levels * rows * cols

    def update_edges(self, edges, weights=None) -> None:
        """Apply signed edge updates to the per-vertex incidence sketches.

        ``edges`` is an ``(m, 2)`` array of endpoints; ``weights`` gives
        each row's multiplicity delta (``+1`` insert, ``-1`` delete;
        defaults to all ``+1``).  Linearity means a delete is exactly the
        negation of the insert, so an insert-then-delete round trip
        returns every counter to zero bit-for-bit.  Self-loops and
        zero-weight rows carry no connectivity information and are
        skipped.
        """
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            return
        edges = edges.reshape(-1, 2)
        if weights is None:
            weights = np.ones(edges.shape[0], dtype=np.int64)
        else:
            weights = np.asarray(weights, dtype=np.int64)
            if weights.shape != (edges.shape[0],):
                raise ValueError(
                    f"weights shape {weights.shape} does not match "
                    f"{edges.shape[0]} edges"
                )
        if edges.min() < 0 or edges.max() >= self.n:
            raise ValueError(f"edge endpoint out of range [0, {self.n})")
        u = edges[:, 0]
        v = edges[:, 1]
        keep = (u != v) & (weights != 0)
        if not keep.any():
            return
        u, v, weights = u[keep], v[keep], weights[keep]
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        edge_ids = lo * self.n + hi
        # Two incidence updates per edge: +w at the smaller endpoint's
        # sketch, -w at the larger's.
        owners = np.concatenate([lo, hi])
        ids = np.concatenate([edge_ids, edge_ids])
        signed = np.concatenate([weights, -weights])

        levels, rows, cols = self.shape
        depth = self.level_hash.level(ids, levels - 1)
        powers = _pow_mod(
            np.full(ids.shape, self.fingerprint_base), ids, MERSENNE_P
        ).astype(np.int64)
        finger_contrib = ((signed % MERSENNE_P) * powers) % MERSENNE_P

        _scatter_edge_updates(
            self.totals.reshape(-1),
            self.moments.reshape(-1),
            self.fingers.reshape(-1),
            owners,
            ids,
            signed,
            finger_contrib,
            depth,
            self.row_hashes,
            levels,
            rows,
            cols,
        )
        self.fingers %= MERSENNE_P


@dataclass(frozen=True)
class RoundSpec:
    """The shared randomness + geometry of one Borůvka round sketch.

    A spec is everything about a :class:`RoundSketch` *except* its
    counter arrays: the hash seeds (the "polylog(n) shared random bits"
    of Prop. 8.1) plus the derived ``levels × rows × cols`` geometry.
    Separating the draw from the allocation is what lets
    :class:`~repro.sketch.sharded.ShardedAGMSketch` allocate per-shard
    partial arrays against the *same* randomness a monolithic
    :class:`AGMSketch` would have drawn — the precondition for
    bit-identical merges.
    """

    n: int
    universe: int
    levels: int
    rows: int
    cols: int
    level_hash: KWiseHash
    row_hashes: "tuple[KWiseHash, ...]"
    fingerprint_base: int

    @classmethod
    def draw(cls, n: int, rng, *, sparsity: int, rows: int) -> "RoundSpec":
        """Draw one round's shared randomness (RNG consumption order is
        part of the contract: level hash, then ``rows`` row hashes, then
        the fingerprint base)."""
        rng = ensure_rng(rng)
        universe = n * n
        if universe >= MERSENNE_P:
            raise ValueError(
                f"edge universe {universe} exceeds the hash field; "
                f"AGM sketches here support n <= {int(MERSENNE_P**0.5)}"
            )
        levels = max(1, int(np.ceil(np.log2(max(universe, 2)))) + 1)
        cols = 2 * sparsity
        level_hash = KWiseHash(2, rng)
        row_hashes = tuple(KWiseHash(2, rng) for _ in range(rows))
        fingerprint_base = int(rng.integers(2, MERSENNE_P - 1))
        return cls(
            n=n,
            universe=universe,
            levels=levels,
            rows=rows,
            cols=cols,
            level_hash=level_hash,
            row_hashes=row_hashes,
            fingerprint_base=fingerprint_base,
        )

    @property
    def cells(self) -> int:
        """Counter cells per vertex (``levels * rows * cols``)."""
        return self.levels * self.rows * self.cols

    def empty_round(self) -> RoundSketch:
        """Allocate a zeroed :class:`RoundSketch` with this spec's
        randomness."""
        shape = (self.n, self.levels, self.rows, self.cols)
        return RoundSketch(
            n=self.n,
            universe=self.universe,
            level_hash=self.level_hash,
            row_hashes=list(self.row_hashes),
            fingerprint_base=self.fingerprint_base,
            totals=np.zeros(shape, dtype=np.int64),
            moments=np.zeros(shape, dtype=np.int64),
            fingers=np.zeros(shape, dtype=np.int64),
        )


def _empty_round_sketch(
    n: int,
    *,
    rng,
    sparsity: int,
    rows: int,
) -> RoundSketch:
    return RoundSpec.draw(n, rng, sparsity=sparsity, rows=rows).empty_round()


@dataclass
class AGMSketch:
    """A stack of fresh per-round sketches for Borůvka decoding.

    ``rounds[:-1]`` are the merge rounds; ``rounds[-1]`` is the reserved
    verification round that re-checks quiescence after the merges without
    ever having been consumed by one.
    """

    n: int
    rounds: "list[RoundSketch]"

    @classmethod
    def empty(
        cls,
        n: int,
        rng=None,
        *,
        boruvka_rounds: "int | None" = None,
        sparsity: int = 4,
        rows: int = 3,
    ) -> "AGMSketch":
        """A zero sketch of ``n`` vertices, ready for streamed updates.

        Builds ``boruvka_rounds`` merge-round sketches plus the reserved
        verification round (``boruvka_rounds + 1`` fresh sketches total).
        """
        rng = ensure_rng(rng)
        check_positive_int(sparsity, "sparsity")
        check_positive_int(rows, "rows")
        if boruvka_rounds is None:
            boruvka_rounds = max(2, int(np.ceil(np.log2(max(n, 2)))) + 3)
        check_positive_int(boruvka_rounds, "boruvka_rounds")
        sketches = [
            _empty_round_sketch(n, rng=rng, sparsity=sparsity, rows=rows)
            for _ in range(boruvka_rounds + 1)
        ]
        return cls(n=n, rounds=sketches)

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        rng=None,
        *,
        boruvka_rounds: "int | None" = None,
        sparsity: int = 4,
        rows: int = 3,
    ) -> "AGMSketch":
        sketch = cls.empty(
            graph.n,
            rng,
            boruvka_rounds=boruvka_rounds,
            sparsity=sparsity,
            rows=rows,
        )
        sketch.update_edges(graph.edges)
        return sketch

    @property
    def merge_rounds(self) -> "list[RoundSketch]":
        """The sketches Borůvka may consume for merges."""
        return self.rounds[:-1]

    @property
    def verification_round(self) -> RoundSketch:
        """The reserved sketch that only ever re-checks quiescence."""
        return self.rounds[-1]

    def update_edges(self, edges, weights=None) -> None:
        """Apply one batch of signed edge updates to every round sketch.

        Linearity (Prop. 8.1) makes this the streaming entry point: an
        edge insert is weight ``+1``, a delete is ``-1``, and the sketch
        after any prefix of the stream equals the sketch built from the
        prefix's net multiset in one shot.
        """
        for round_sketch in self.rounds:
            round_sketch.update_edges(edges, weights)

    def words_per_vertex(self) -> int:
        """Sketch size per vertex in machine words (the O(log³ n)-bit
        message of Prop. 8.1)."""
        return sum(r.words_per_vertex() for r in self.rounds)


def _sample_cut_edges(
    sketch: RoundSketch, labels: np.ndarray
) -> "dict[int, tuple[int, int]]":
    """For every component of ``labels``, decode one (verified) cut edge
    from the component-summed sketch.  Returns ``{component: (u, v)}``."""
    k = int(labels.max()) + 1
    levels, rows, cols = sketch.shape
    cells = levels * rows * cols

    totals = np.zeros((k, cells), dtype=np.int64)
    moments = np.zeros((k, cells), dtype=np.int64)
    fingers = np.zeros((k, cells), dtype=np.int64)
    np.add.at(totals, labels, sketch.totals.reshape(sketch.n, cells))
    np.add.at(moments, labels, sketch.moments.reshape(sketch.n, cells))
    np.add.at(fingers, labels, sketch.fingers.reshape(sketch.n, cells))
    fingers %= MERSENNE_P

    nonzero = totals != 0
    safe_totals = np.where(nonzero, totals, 1)
    indices = moments // safe_totals
    exact = nonzero & (indices * safe_totals == moments)
    in_range = exact & (indices >= 0) & (indices < sketch.universe)

    candidates = np.flatnonzero(in_range.reshape(-1))
    if candidates.size == 0:
        return {}
    flat_idx = indices.reshape(-1)[candidates]
    flat_tot = totals.reshape(-1)[candidates]
    flat_fin = fingers.reshape(-1)[candidates]
    powers = _pow_mod(
        np.full(flat_idx.shape, sketch.fingerprint_base), flat_idx, MERSENNE_P
    ).astype(np.int64)
    expected = ((flat_tot % MERSENNE_P) * powers) % MERSENNE_P
    verified = expected == flat_fin

    samples: "dict[int, tuple[int, int]]" = {}
    # Prefer deeper levels (sparser sub-vectors) by scanning from the end;
    # setdefault keeps the first (deepest) hit per component.
    order = candidates[verified][::-1]
    comp_of = order // cells
    ids = indices.reshape(-1)[order]
    for comp, edge_id in zip(comp_of.tolist(), ids.tolist()):
        samples.setdefault(comp, (edge_id // sketch.n, edge_id % sketch.n))
    return samples


def _merge_samples(labels: np.ndarray, samples: "dict[int, tuple[int, int]]") -> np.ndarray:
    """Merge every sampled cut edge (DSU semantics via repeated min)."""
    k = int(labels.max()) + 1
    parent = np.arange(k, dtype=np.int64)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for _comp, (u, v) in samples.items():
        ru, rv = find(int(labels[u])), find(int(labels[v]))
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    roots = np.array([find(int(c)) for c in range(k)], dtype=np.int64)
    return canonical_labels(roots[labels])


def agm_decode_components(sketch: AGMSketch) -> np.ndarray:
    """Borůvka over the sketch's merge rounds; returns canonical labels.

    Consumes one fresh :class:`RoundSketch` per merge round, then
    re-checks quiescence with the reserved verification round — a sketch
    no merge ever touched, so the final check keeps the fresh-sketch
    independence the module docstring requires.

    Raises
    ------
    RuntimeError
        The merge rounds were exhausted before the verification round
        could certify quiescence (probability vanishing in the number of
        rounds); rebuild the sketch with more rounds.
    """
    labels = np.arange(sketch.n, dtype=np.int64)
    for round_sketch in sketch.merge_rounds:
        samples = _sample_cut_edges(round_sketch, labels)
        if not samples:
            return canonical_labels(labels)
        labels = _merge_samples(labels, samples)

    # Merge rounds exhausted: verify quiescence with the reserved
    # (never-merged) verification sketch.
    if _sample_cut_edges(sketch.verification_round, labels):
        raise RuntimeError(
            "AGM decoding exhausted its Boruvka rounds before converging; "
            "rebuild the sketch with more rounds"
        )
    return canonical_labels(labels)


def agm_connected_components(
    graph: Graph,
    rng=None,
    *,
    sketch: "AGMSketch | None" = None,
    sparsity: int = 4,
    rows: int = 3,
) -> "tuple[np.ndarray, AGMSketch]":
    """Connected components via Borůvka over linear sketches (Prop. 8.1).

    Builds the sketch from ``graph`` (or uses a prebuilt one) and decodes
    components without ever touching the edges again — the coordinator in
    Theorem 2 sees only the ``O(log³ n)``-bit vertex messages.

    Returns ``(labels, sketch)``.  Raises if the per-round sample fails to
    converge (probability vanishing in the number of rounds).
    """
    rng = ensure_rng(rng)
    if sketch is None:
        sketch = AGMSketch.from_graph(graph, rng, sparsity=sparsity, rows=rows)
    return agm_decode_components(sketch), sketch
