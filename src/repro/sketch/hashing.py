"""k-wise independent hashing over a Mersenne prime field.

The AGM sketch (Proposition 8.1) needs limited-independence hash families
with *small shared seeds* — the "polylog(n) shared random bits" of the
proposition.  A degree-``(k-1)`` polynomial with random coefficients over
``F_p`` is the textbook k-wise independent family; we use ``p = 2^31 - 1``
so Horner steps fit in uint64 without overflow (inputs must be < p, which
covers edge universes up to ``n ≤ 46340`` — the sublinear-memory regime the
Theorem 2 experiments run in).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

#: The field modulus (Mersenne prime 2^31 - 1).
MERSENNE_P = (1 << 31) - 1


class KWiseHash:
    """A k-wise independent hash ``h: [p] -> [p]``.

    Evaluation is vectorised Horner over uint64; the seed is the ``k``
    coefficient words (``k · 31`` bits — polylogarithmic, as Prop. 8.1
    requires of its shared randomness).
    """

    def __init__(self, k: int, rng=None):
        k = check_positive_int(k, "k")
        rng = ensure_rng(rng)
        self.k = k
        # Leading coefficient nonzero to keep full degree.
        coeffs = rng.integers(0, MERSENNE_P, size=k, dtype=np.uint64)
        if k > 1 and coeffs[0] == 0:
            coeffs[0] = 1
        self.coefficients = coeffs

    def values(self, x: np.ndarray) -> np.ndarray:
        """``h(x)`` for an integer array ``x`` (entries must be < p)."""
        x = np.asarray(x, dtype=np.uint64)
        if x.size and int(x.max()) >= MERSENNE_P:
            raise ValueError(f"hash inputs must be < {MERSENNE_P}")
        acc = np.full(x.shape, int(self.coefficients[0]), dtype=np.uint64)
        for c in self.coefficients[1:]:
            acc = (acc * x + np.uint64(c)) % np.uint64(MERSENNE_P)
        return acc

    def value(self, x: int) -> int:
        return int(self.values(np.array([x]))[0])

    def uniform_floats(self, x: np.ndarray) -> np.ndarray:
        """Map ``h(x)`` into ``[0, 1)`` — k-wise independent uniforms."""
        return self.values(x).astype(np.float64) / MERSENNE_P

    def level(self, x: np.ndarray, max_level: int) -> np.ndarray:
        """Geometric levels: ``level(x) = ℓ`` with probability ``2^{-ℓ-1}``
        (clamped to ``max_level``) — the subsampling depth used by L0
        samplers."""
        max_level = check_positive_int(max_level, "max_level")
        u = self.uniform_floats(x)
        # u in [2^-(l+1), 2^-l) -> level l.
        with np.errstate(divide="ignore"):
            levels = np.floor(-np.log2(np.maximum(u, 2.0**-60))).astype(np.int64)
        return np.minimum(levels, max_level)


def sign_hash(values: np.ndarray) -> np.ndarray:
    """±1 from hash values (parity of the low bit)."""
    return np.where(np.asarray(values, dtype=np.uint64) & np.uint64(1), 1, -1).astype(
        np.int64
    )
