"""Section 9: the unconditional lower bound for ExpanderConn."""

from repro.lower_bound.adversary import AdversaryGame, play_until_resolved
from repro.lower_bound.hard_family import HardFamily, build_hard_family
from repro.lower_bound.instances import (
    ExpanderConnInstance,
    build_instance,
    verify_promise,
)
from repro.lower_bound.query_algorithms import (
    family_edge_strategy,
    greedy_multiplicity_strategy,
    random_pair_strategy,
)

__all__ = [
    "HardFamily",
    "build_hard_family",
    "ExpanderConnInstance",
    "build_instance",
    "verify_promise",
    "AdversaryGame",
    "play_until_resolved",
    "random_pair_strategy",
    "family_edge_strategy",
    "greedy_multiplicity_strategy",
]
