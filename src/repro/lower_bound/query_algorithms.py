"""Query strategies measured against the Lemma 9.3 adversary.

Three probers spanning the strategy space:

* :func:`random_pair_strategy` — blind random vertex-pair queries (what a
  naive algorithm without the family's description would do; pays a huge
  factor because most pairs are in no ``B_i``);
* :func:`family_edge_strategy` — queries random *edges of alive members*
  (every query kills ≥ 1 member; within ``max_multiplicity`` of optimal);
* :func:`greedy_multiplicity_strategy` — queries the edge contained in the
  most alive members (the information-theoretically best per-query kill
  rate, matching the ``k / max_multiplicity`` bound up to constants).

Bench E9 plots the queries-to-resolution of each against the
``k / max_multiplicity = Ω(n / log n)`` floor.
"""

from __future__ import annotations

import numpy as np

from repro.lower_bound.adversary import AdversaryGame
from repro.utils.rng import ensure_rng


def random_pair_strategy(rng=None):
    """Uniformly random vertex pairs."""
    rng = ensure_rng(rng)

    def strategy(game: AdversaryGame) -> "tuple[int, int]":
        n = game.family.n
        while True:
            u = int(rng.integers(n))
            v = int(rng.integers(n))
            if u != v:
                return u, v

    return strategy


def family_edge_strategy(rng=None):
    """Random edges drawn from still-alive members."""
    rng = ensure_rng(rng)

    def strategy(game: AdversaryGame) -> "tuple[int, int]":
        alive = np.flatnonzero(game.alive)
        member = game.family.members[int(rng.choice(alive))]
        edge = member.edges[int(rng.integers(member.m))]
        return int(edge[0]), int(edge[1])

    return strategy


def greedy_multiplicity_strategy():
    """The edge killing the most alive members per query."""

    def strategy(game: AdversaryGame) -> "tuple[int, int]":
        best_key = None
        best_kills = 0
        for key, owners in game.family.edge_membership.items():
            kills = sum(1 for i in owners if game.alive[i])
            if kills > best_kills:
                best_kills = kills
                best_key = key
        if best_key is None:
            raise RuntimeError("no alive members left to query")
        n = game.family.n
        return int(best_key // n), int(best_key % n)

    return strategy
