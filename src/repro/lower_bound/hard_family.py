"""The hard expander family of Claim 9.4.

A collection ``B = B_1, ..., B_k`` of ``k = Ω(n)`` d-regular expanders on a
*common* vertex set such that no single edge appears in more than
``O(log n)`` of them.  Section 9's adversary uses it to force
``Ω(k / log n) = Ω(n / log n)`` edge queries: every query can eliminate at
most max-multiplicity many of the ``B_i`` from contention.

The family is built exactly as in the probabilistic proof: independent
samples from the permutation model ``G_{n,d}``, followed by an audit of the
gap and multiplicity properties.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.components import component_count
from repro.graph.generators import permutation_regular_graph
from repro.graph.graph import Graph
from repro.graph.spectral import spectral_gap
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


def _edge_keys(edges: np.ndarray, n: int) -> np.ndarray:
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    return np.unique(lo * n + hi)


@dataclass(frozen=True)
class HardFamily:
    """The Claim 9.4 collection.

    Attributes
    ----------
    n, d:
        Common vertex count and regular degree.
    members:
        The expanders ``B_i`` (as graphs on ``[0, n)``).
    edge_membership:
        ``{edge_key: [indices of members containing it]}`` where
        ``edge_key = min·n + max``.
    """

    n: int
    d: int
    members: "list[Graph]"
    edge_membership: "dict[int, list[int]]"

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def max_multiplicity(self) -> int:
        """Largest number of members sharing one edge (Claim 9.4 part 2:
        O(log n) w.h.p.)."""
        if not self.edge_membership:
            return 0
        return max(len(v) for v in self.edge_membership.values())

    def min_gap(self) -> float:
        """Smallest member spectral gap (Claim 9.4 part 1: Ω(1))."""
        return min(spectral_gap(b) for b in self.members)

    def query_lower_bound(self) -> int:
        """The adversary bound: at least ``k / max_multiplicity`` queries
        are needed to eliminate every member (Lemma 9.3's counting)."""
        mult = max(1, self.max_multiplicity)
        return self.size // mult


def build_hard_family(
    n: int,
    d: int = 8,
    *,
    count: "int | None" = None,
    rng=None,
    reject_disconnected: bool = True,
) -> HardFamily:
    """Sample the Claim 9.4 family.

    ``count`` defaults to the claim's ``k = n / (100 d)`` scaled to
    ``max(4, n // (4 d))`` so small experiments still get several members.
    """
    n = check_positive_int(n, "n")
    d = check_positive_int(d, "d")
    rng = ensure_rng(rng)
    if count is None:
        count = max(4, n // (4 * d))

    members: "list[Graph]" = []
    membership: "dict[int, list[int]]" = {}
    attempts = 0
    while len(members) < count:
        attempts += 1
        if attempts > 20 * count:
            raise RuntimeError("failed to sample enough connected expanders")
        candidate = permutation_regular_graph(n, d, rng)
        if reject_disconnected and component_count(candidate) != 1:
            continue
        index = len(members)
        members.append(candidate)
        for key in _edge_keys(candidate.edges, n).tolist():
            membership.setdefault(key, []).append(index)

    return HardFamily(n=n, d=d, members=members, edge_membership=membership)
