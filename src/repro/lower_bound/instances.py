"""ExpanderConn promise instances (Section 9, Lemma 9.3).

An instance consists of two disjoint d-regular expanders ``G_S`` and
``G_T`` on the two halves of the vertex set, plus *at most one* member of a
Claim 9.4 hard family on the full vertex set.  With a member present the
graph is one connected sparse expander; without it, two.  Distinguishing
the two cases is exactly the promise problem ``ExpanderConn_n``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.components import component_count
from repro.graph.generators import permutation_regular_graph
from repro.graph.graph import Graph
from repro.lower_bound.hard_family import HardFamily
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class ExpanderConnInstance:
    """One promise instance.

    ``bridge_index`` is the index of the included family member, or None
    for the disconnected case.
    """

    n: int
    halves: "tuple[Graph, Graph]"
    family: HardFamily
    bridge_index: "int | None"

    @property
    def is_connected(self) -> bool:
        return self.bridge_index is not None

    def graph(self) -> Graph:
        """Materialise the instance graph."""
        left, right = self.halves
        half = self.n // 2
        pieces = [left.edges, right.edges + half]
        if self.bridge_index is not None:
            pieces.append(self.family.members[self.bridge_index].edges)
        return Graph(self.n, np.concatenate(pieces, axis=0))

    def has_edge(self, u: int, v: int) -> bool:
        """Membership oracle for edge queries (the decision-tree model)."""
        half = self.n // 2
        lo, hi = min(u, v), max(u, v)
        left, right = self.halves
        base = {tuple(sorted(e)) for e in left.edges.tolist()}
        base |= {tuple(sorted((a + half, b + half))) for a, b in right.edges.tolist()}
        if (lo, hi) in base:
            return True
        if self.bridge_index is None:
            return False
        key = lo * self.n + hi
        return self.bridge_index in self.family.edge_membership.get(key, [])


def build_instance(
    family: HardFamily,
    bridge_index: "int | None",
    rng=None,
    *,
    half_degree: "int | None" = None,
) -> ExpanderConnInstance:
    """Assemble an instance over ``family``'s vertex set.

    The halves are fresh expanders, independent of the family.
    """
    rng = ensure_rng(rng)
    n = family.n
    if n % 2 != 0:
        raise ValueError("instance construction needs an even vertex count")
    if bridge_index is not None and not 0 <= bridge_index < family.size:
        raise ValueError(f"bridge index {bridge_index} out of range")
    if half_degree is None:
        half_degree = family.d
    half = n // 2
    left = permutation_regular_graph(half, half_degree, rng)
    right = permutation_regular_graph(half, half_degree, rng)
    return ExpanderConnInstance(
        n=n, halves=(left, right), family=family, bridge_index=bridge_index
    )


def verify_promise(instance: ExpanderConnInstance) -> bool:
    """Check the promise: the instance graph's components match the
    bridge flag (1 component with a bridge, 2 without, up to expander
    connectivity of the halves)."""
    count = component_count(instance.graph())
    return count == (1 if instance.is_connected else 2)
