"""The decision-tree adversary of Lemma 9.3.

The adversary maintains the set of *alive* family members.  On a query for
edge ``(u, v)``:

* edges of ``G_S`` or ``G_T`` are answered truthfully (present);
* an edge belonging to one or more alive ``B_i`` is answered **absent**,
  killing each of those members (they can no longer be the bridge);
* all other edges are absent.

As long as at least one member is alive, both the connected instance (that
member as bridge) and the disconnected instance remain consistent with all
answers, so no correct algorithm may stop.  Each query kills at most
``max_multiplicity = O(log n)`` members, forcing
``≥ k / max_multiplicity = Ω(n / log n)`` queries (Lemma 9.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lower_bound.hard_family import HardFamily


@dataclass
class AdversaryGame:
    """Interactive edge-query game against the Lemma 9.3 adversary."""

    family: HardFamily
    base_edges: "set[tuple[int, int]]" = field(default_factory=set)
    queries_made: int = 0
    kills: int = 0
    _alive: "np.ndarray | None" = None

    def __post_init__(self) -> None:
        if self._alive is None:
            self._alive = np.ones(self.family.size, dtype=bool)

    @classmethod
    def fresh(cls, family: HardFamily, halves=None) -> "AdversaryGame":
        """Start a game; ``halves`` optionally supplies the (public)
        ``G_S``/``G_T`` edges for truthful answers."""
        base: "set[tuple[int, int]]" = set()
        if halves is not None:
            left, right = halves
            half = family.n // 2
            base |= {tuple(sorted(e)) for e in left.edges.tolist()}
            base |= {
                tuple(sorted((a + half, b + half))) for a, b in right.edges.tolist()
            }
        return cls(family=family, base_edges=base)

    # -- state -----------------------------------------------------------

    @property
    def alive(self) -> np.ndarray:
        return self._alive

    @property
    def alive_count(self) -> int:
        return int(self._alive.sum())

    @property
    def resolved(self) -> bool:
        """True once every member is dead — only then does the transcript
        determine the answer (the graph must be disconnected)."""
        return self.alive_count == 0

    # -- queries -----------------------------------------------------------

    def query(self, u: int, v: int) -> bool:
        """Answer an edge-presence query, updating the alive set."""
        if u == v:
            raise ValueError("self-loop queries are meaningless here")
        self.queries_made += 1
        lo, hi = (u, v) if u < v else (v, u)
        if (lo, hi) in self.base_edges:
            return True
        key = lo * self.family.n + hi
        owners = self.family.edge_membership.get(key, [])
        for index in owners:
            if self._alive[index]:
                self._alive[index] = False
                self.kills += 1
        return False

    def certificate(self) -> dict:
        """Post-game accounting for the bench tables."""
        return {
            "queries": self.queries_made,
            "kills": self.kills,
            "alive": self.alive_count,
            "family_size": self.family.size,
            "max_multiplicity": self.family.max_multiplicity,
            "theoretical_minimum": self.family.query_lower_bound(),
        }


def play_until_resolved(
    game: AdversaryGame,
    strategy: "callable",
    *,
    max_queries: "int | None" = None,
) -> dict:
    """Drive ``strategy(game) -> (u, v)`` until the adversary is cornered.

    Returns the game certificate.  ``strategy`` sees the full game state
    (alive counts etc.) — the lower bound holds regardless.
    """
    if max_queries is None:
        max_queries = 50 * max(1, game.family.size) * max(1, game.family.max_multiplicity)
    while not game.resolved:
        if game.queries_made >= max_queries:
            raise RuntimeError("strategy failed to corner the adversary")
        u, v = strategy(game)
        game.query(int(u), int(v))
    return game.certificate()
