"""repro — a reproduction of *Massively Parallel Algorithms for Finding
Well-Connected Components in Sparse Graphs* (Assadi, Sun, Weinstein;
PODC 2019).

Public API highlights
---------------------

* :func:`repro.core.mpc_connected_components` — the Theorem 4 pipeline:
  components of a sparse graph in ``O(log log n + log(1/λ))`` MPC rounds
  given a spectral-gap bound ``λ``.
* :func:`repro.core.mpc_connected_components_adaptive` — Corollary 7.1,
  no gap knowledge required.
* :func:`repro.core.sublinear_connectivity` — Theorem 2: arbitrary graphs
  with mildly sublinear memory, via AGM sketching.
* :mod:`repro.mpc` — the round-accounting MPC simulator, with pluggable
  execution backends (:mod:`repro.mpc.backends`): the accounting-only
  ``LocalBackend``, the ``ShardedBackend`` that runs the data plane on
  numpy shards with enforced memory/communication caps, and the
  true-parallel ``ProcessBackend`` that executes the same sharded kernels
  on a pool of worker processes over shared memory
  (``mpc_connected_components(..., backend="local"|"sharded"|"process")``
  — bit-identical labels and round counts on all three).
* :mod:`repro.engines` — interchangeable connectivity engines on the
  round-plan IR (``paper``, ``liu_tarjan``, ``exponentiation``) plus the
  feature-driven ``portfolio`` dispatcher
  (``mpc_connected_components(..., engine="portfolio")``).
* :mod:`repro.streaming` — the dynamic-graph workload: batched edge
  insert/delete streams applied as signed updates to a maintained AGM
  sketch (``StreamingConnectivity``), with full-recompute oracle
  fallback through any registered engine/backend.
* :mod:`repro.graph` — multigraphs, generators, spectra, walks.
* :mod:`repro.products` / :mod:`repro.sketch` / :mod:`repro.baselines` /
  :mod:`repro.lower_bound` — the substrates (expander products, linear
  sketches, classical comparators, the Section 9 adversary).

Quick start::

    import repro
    graph, truth = repro.graph.planted_expander_components([500, 800], 8, rng=0)
    result = repro.core.mpc_connected_components(graph, spectral_gap_bound=0.2, rng=0)
    print(result.component_count, "components in", result.rounds, "MPC rounds")
"""

from repro import (
    analysis,
    baselines,
    core,
    engines,
    graph,
    lower_bound,
    mpc,
    products,
    sketch,
    streaming,
    theory,
)
from repro.core import (
    PipelineConfig,
    mpc_connected_components,
    mpc_connected_components_adaptive,
    sublinear_connectivity,
)
from repro.graph import Graph
from repro.mpc import MPCEngine

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "baselines",
    "core",
    "engines",
    "graph",
    "lower_bound",
    "mpc",
    "products",
    "sketch",
    "streaming",
    "theory",
    "Graph",
    "MPCEngine",
    "PipelineConfig",
    "mpc_connected_components",
    "mpc_connected_components_adaptive",
    "sublinear_connectivity",
    "__version__",
]
