"""Graph generators: the paper's random-graph models plus bench workloads.

Two models come straight from the paper:

* :func:`paper_random_graph` — the distribution ``G(n, d)`` of Section 2.3:
  every vertex picks ``⌊d/2⌋`` out-neighbours uniformly with replacement,
  then directions are dropped (parallel edges survive, matching the model's
  degree accounting).
* :func:`permutation_regular_graph` — the space ``G_{n,d}`` of Section 4
  (Eq. 1): the union of ``d/2`` uniformly random permutations of ``[n]``
  (fixed points become self-loops), i.e. an exactly ``d``-regular
  multigraph.

The remaining generators build the evaluation workloads: unions of
well-connected components, weakly connected dumbbells and rings for the
``λ`` sweeps, and classical families (paths, cycles, grids, hypercubes)
for the Theorem 2 experiments on arbitrary graphs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.graph import Graph, disjoint_union
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_nonnegative_int, check_positive_int


# ---------------------------------------------------------------------------
# Paper models
# ---------------------------------------------------------------------------


def paper_random_graph(n: int, d: int, rng=None) -> Graph:
    """Sample from the paper's ``G(n, d)`` distribution (Section 2.3).

    Each vertex draws ``⌊d/2⌋`` targets uniformly at random with
    replacement; the resulting directed edges are made undirected.  Expected
    degree is ``≈ d``; Propositions 2.3–2.5 give almost-regularity,
    connectivity (for ``d ≥ c log n``) and expansion.
    """
    n = check_positive_int(n, "n")
    d = check_positive_int(d, "d")
    rng = ensure_rng(rng)
    out = d // 2
    if out == 0:
        return Graph(n, np.empty((0, 2), dtype=np.int64))
    sources = np.repeat(np.arange(n, dtype=np.int64), out)
    targets = rng.integers(0, n, size=n * out, dtype=np.int64)
    return Graph(n, np.stack([sources, targets], axis=1))


def paper_random_graph_edges(n: int, half_degree: int, rng=None) -> np.ndarray:
    """Just the edge array of ``G(n, 2·half_degree)`` — used when callers
    (e.g. ``GrowComponents`` batches) assemble graphs themselves."""
    n = check_positive_int(n, "n")
    half_degree = check_positive_int(half_degree, "half_degree")
    rng = ensure_rng(rng)
    sources = np.repeat(np.arange(n, dtype=np.int64), half_degree)
    targets = rng.integers(0, n, size=n * half_degree, dtype=np.int64)
    return np.stack([sources, targets], axis=1)


def permutation_regular_graph(n: int, d: int, rng=None) -> Graph:
    """Sample from ``G_{n,d}`` (Section 4, Eq. 1): union of ``d/2`` random
    permutations.  Exactly ``d``-regular for every ``n ≥ 1`` (fixed points
    contribute self-loops, 2-cycles contribute parallel edges)."""
    n = check_positive_int(n, "n")
    d = check_positive_int(d, "d")
    if d % 2 != 0:
        raise ValueError(f"permutation model needs even d, got {d}")
    rng = ensure_rng(rng)
    blocks = []
    base = np.arange(n, dtype=np.int64)
    for _ in range(d // 2):
        perm = rng.permutation(n).astype(np.int64)
        blocks.append(np.stack([base, perm], axis=1))
    edges = np.concatenate(blocks, axis=0) if blocks else np.empty((0, 2), np.int64)
    return Graph(n, edges)


# ---------------------------------------------------------------------------
# Classical families
# ---------------------------------------------------------------------------


def empty_graph(n: int) -> Graph:
    return Graph(check_nonnegative_int(n, "n"), np.empty((0, 2), dtype=np.int64))


def path_graph(n: int) -> Graph:
    n = check_positive_int(n, "n")
    idx = np.arange(n - 1, dtype=np.int64)
    return Graph(n, np.stack([idx, idx + 1], axis=1))


def cycle_graph(n: int) -> Graph:
    n = check_positive_int(n, "n")
    idx = np.arange(n, dtype=np.int64)
    return Graph(n, np.stack([idx, (idx + 1) % n], axis=1))


def complete_graph(n: int) -> Graph:
    n = check_positive_int(n, "n")
    iu = np.triu_indices(n, k=1)
    return Graph(n, np.stack(iu, axis=1).astype(np.int64))


def star_graph(n: int) -> Graph:
    """Vertex 0 joined to each of ``1..n-1`` — the paper's example of a
    random-walk "hub" motivating the regularization step."""
    n = check_positive_int(n, "n")
    if n == 1:
        return empty_graph(1)
    leaves = np.arange(1, n, dtype=np.int64)
    return Graph(n, np.stack([np.zeros(n - 1, dtype=np.int64), leaves], axis=1))


def grid_graph(rows: int, cols: int) -> Graph:
    rows = check_positive_int(rows, "rows")
    cols = check_positive_int(cols, "cols")
    edges = []
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horizontal = np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()], axis=1)
    vertical = np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()], axis=1)
    if horizontal.size:
        edges.append(horizontal)
    if vertical.size:
        edges.append(vertical)
    all_edges = np.concatenate(edges, axis=0) if edges else np.empty((0, 2), np.int64)
    return Graph(rows * cols, all_edges)


def hypercube_graph(dim: int) -> Graph:
    """The ``dim``-dimensional hypercube: spectral gap ``2/dim`` — a natural
    mid-gap workload."""
    dim = check_positive_int(dim, "dim")
    n = 1 << dim
    verts = np.arange(n, dtype=np.int64)
    blocks = []
    for bit in range(dim):
        mate = verts ^ (1 << bit)
        keep = verts < mate
        blocks.append(np.stack([verts[keep], mate[keep]], axis=1))
    return Graph(n, np.concatenate(blocks, axis=0))


def erdos_renyi(n: int, p: float, rng=None) -> Graph:
    """Simple ``G(n, p)`` (no multi-edges) via sparse sampling."""
    n = check_positive_int(n, "n")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = ensure_rng(rng)
    expected = p * n * (n - 1) / 2
    if expected > 5e7:
        raise ValueError("erdos_renyi: requested graph too dense for this sampler")
    # Sample the number of edges, then distinct pairs.
    total_pairs = n * (n - 1) // 2
    m = rng.binomial(total_pairs, p) if total_pairs else 0
    if m == 0:
        return empty_graph(n)
    seen = set()
    edges = np.empty((m, 2), dtype=np.int64)
    count = 0
    while count < m:
        u = int(rng.integers(n))
        v = int(rng.integers(n))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        edges[count] = key
        count += 1
    return Graph(n, edges)


# ---------------------------------------------------------------------------
# Bench workloads
# ---------------------------------------------------------------------------


def planted_expander_components(
    sizes: Sequence[int], d: int, rng=None
) -> "tuple[Graph, np.ndarray]":
    """Disjoint union of ``d``-regular random expanders of the given sizes —
    the canonical "well-connected components" workload of Theorem 1.

    Returns ``(graph, true_labels)``.
    """
    d = check_positive_int(d, "d")
    rng = ensure_rng(rng)
    parts = [permutation_regular_graph(check_positive_int(s, "size"), d, rng) for s in sizes]
    union, offsets = disjoint_union(parts)
    labels = np.repeat(np.arange(len(sizes), dtype=np.int64), np.diff(offsets))
    return union, labels


def dumbbell_graph(half: int, d: int, bridges: int = 1, rng=None) -> Graph:
    """Two ``d``-regular expanders on ``half`` vertices joined by
    ``bridges`` extra edges.

    Spectral gap ``Θ(bridges/half)`` while the diameter stays ``O(log half)``
    — the instance family separating this paper's parametrisation (spectral
    gap) from Andoni et al.'s (diameter), Section 1.3.
    """
    half = check_positive_int(half, "half")
    bridges = check_positive_int(bridges, "bridges")
    rng = ensure_rng(rng)
    left = permutation_regular_graph(half, d, rng)
    right = permutation_regular_graph(half, d, rng)
    union, _ = disjoint_union([left, right])
    ends_left = rng.integers(0, half, size=bridges, dtype=np.int64)
    ends_right = rng.integers(half, 2 * half, size=bridges, dtype=np.int64)
    bridge_edges = np.stack([ends_left, ends_right], axis=1)
    return Graph(2 * half, np.concatenate([union.edges, bridge_edges], axis=0))


def ring_of_expanders(count: int, size: int, d: int, rng=None) -> Graph:
    """``count`` expanders of ``size`` vertices arranged in a ring with one
    bridge edge between consecutive blobs — gap ``Θ(1/(count² · size))``,
    used for the λ sweep (E2)."""
    count = check_positive_int(count, "count")
    size = check_positive_int(size, "size")
    rng = ensure_rng(rng)
    blobs = [permutation_regular_graph(size, d, rng) for _ in range(count)]
    union, offsets = disjoint_union(blobs)
    bridge_edges = []
    for i in range(count):
        j = (i + 1) % count
        u = int(offsets[i] + rng.integers(size))
        v = int(offsets[j] + rng.integers(size))
        bridge_edges.append((u, v))
    if count == 1:
        bridge_edges = []
    edges = np.concatenate(
        [union.edges] + ([np.array(bridge_edges, dtype=np.int64)] if bridge_edges else []),
        axis=0,
    )
    return Graph(union.n, edges)


def expander_path(count: int, size: int, d: int, rng=None) -> Graph:
    """``count`` expanders chained in a path by single bridges — gap shrinks
    as ``Θ(1/(count² size))`` with diameter ``Θ(count)``."""
    count = check_positive_int(count, "count")
    size = check_positive_int(size, "size")
    rng = ensure_rng(rng)
    blobs = [permutation_regular_graph(size, d, rng) for _ in range(count)]
    union, offsets = disjoint_union(blobs)
    bridge_edges = []
    for i in range(count - 1):
        u = int(offsets[i] + rng.integers(size))
        v = int(offsets[i + 1] + rng.integers(size))
        bridge_edges.append((u, v))
    edges = np.concatenate(
        [union.edges] + ([np.array(bridge_edges, dtype=np.int64)] if bridge_edges else []),
        axis=0,
    )
    return Graph(union.n, edges)


def community_graph(
    sizes: Sequence[int],
    intra_degree: int,
    rng=None,
    *,
    skew_tail: bool = False,
) -> "tuple[Graph, np.ndarray]":
    """A social-network-like workload: communities that are internally
    well-connected random graphs (``G(size, intra_degree)``), pairwise
    disconnected.  ``skew_tail`` appends many small communities, emulating
    the heavy-tailed community-size profiles of real social graphs (the
    sparse-graph motivation in the paper's introduction).

    Returns ``(graph, true_labels)``.
    """
    rng = ensure_rng(rng)
    sizes = [check_positive_int(s, "size") for s in sizes]
    if skew_tail:
        tail = [max(2, sizes[-1] // (2**k)) for k in range(1, 5)]
        sizes = list(sizes) + tail
    parts = []
    for s in sizes:
        if s == 1:
            parts.append(empty_graph(1))
        else:
            parts.append(paper_random_graph(s, max(4, intra_degree), rng))
    union, offsets = disjoint_union(parts)
    labels = np.repeat(np.arange(len(sizes), dtype=np.int64), np.diff(offsets))
    return union, labels
