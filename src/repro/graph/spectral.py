"""Spectral machinery: normalized Laplacian, spectral gap, Cheeger bounds.

The paper's central parameter is the *spectral gap* ``λ₂(G)`` — the second
smallest eigenvalue of the normalized Laplacian ``L = I - D^{-1/2} A D^{-1/2}``
(Section 2.1).  For a disconnected input the relevant quantity is the
minimum gap over connected components (the λ of Theorem 1), computed here by
:func:`min_component_spectral_gap`.

Multiplicities follow the multigraph conventions of :class:`repro.graph.Graph`
(parallel edges add weight, a self-loop adds 2 to both its diagonal adjacency
entry and its endpoint degree), which keeps ``L``'s spectrum consistent with
the random-walk matrix used in Section 2.2.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graph.components import connected_components
from repro.graph.graph import Graph

#: Below this many vertices we use dense eigensolvers (more robust and not
#: slower at small scale).
_DENSE_THRESHOLD = 600


def normalized_adjacency(graph: Graph) -> sp.csr_matrix:
    """``N = D^{-1/2} A D^{-1/2}`` with multigraph weights."""
    if graph.n == 0:
        return sp.csr_matrix((0, 0))
    adj = graph.adjacency_matrix()
    deg = np.asarray(graph.degrees, dtype=np.float64)
    if np.any(deg == 0):
        raise ValueError(
            "normalized adjacency undefined for isolated vertices "
            "(the paper assumes d_v >= 1 throughout, Section 2)"
        )
    inv_sqrt = 1.0 / np.sqrt(deg)
    scale = sp.diags(inv_sqrt)
    return (scale @ adj @ scale).tocsr()


def normalized_laplacian(graph: Graph) -> sp.csr_matrix:
    """``L = I - N`` (Section 2.1)."""
    norm_adj = normalized_adjacency(graph)
    return (sp.identity(graph.n, format="csr") - norm_adj).tocsr()


def laplacian_spectrum(graph: Graph) -> np.ndarray:
    """All eigenvalues of ``L``, ascending.  Dense computation — intended
    for graphs of at most a few thousand vertices (tests and calibration)."""
    lap = normalized_laplacian(graph).toarray()
    return np.linalg.eigvalsh(lap)


def spectral_gap(graph: Graph) -> float:
    """``λ₂(G)`` for a *connected* graph ``G``.

    Uses a dense solver for small graphs; for larger ones computes the two
    largest eigenvalues of the normalized adjacency ``N`` (a well-conditioned
    Lanczos target) and returns ``1 - μ₂``, which equals ``λ₂(L)``.
    """
    if graph.n == 0:
        raise ValueError("spectral gap undefined for the empty graph")
    if graph.n == 1:
        # Convention: a single vertex (with or without self-loops) is
        # perfectly connected.
        return 1.0
    labels = connected_components(graph)
    if labels.max() != 0:
        raise ValueError(
            "spectral_gap expects a connected graph; use "
            "min_component_spectral_gap for disconnected inputs"
        )
    if graph.n <= _DENSE_THRESHOLD:
        spectrum = laplacian_spectrum(graph)
        return float(max(spectrum[1], 0.0))
    norm_adj = normalized_adjacency(graph)
    vals = spla.eigsh(norm_adj, k=2, which="LA", return_eigenvectors=False, tol=1e-8)
    mu2 = float(np.min(vals))
    return max(1.0 - mu2, 0.0)


def component_spectral_gaps(graph: Graph) -> "list[float]":
    """``λ₂`` of every connected component, in label order."""
    labels = connected_components(graph)
    gaps = []
    for comp in range(int(labels.max()) + 1 if labels.size else 0):
        vertices = np.flatnonzero(labels == comp)
        sub, _ = graph.subgraph(vertices)
        gaps.append(spectral_gap(sub))
    return gaps


def min_component_spectral_gap(graph: Graph) -> float:
    """The λ of Theorem 1: the smallest component spectral gap."""
    gaps = component_spectral_gaps(graph)
    if not gaps:
        raise ValueError("graph has no vertices")
    return min(gaps)


def two_sided_spectral_gap(graph: Graph) -> float:
    """``1 - max_{i≥2} |μ_i|`` for the normalized adjacency eigenvalues
    ``μ_1 = 1 ≥ μ_2 ≥ ... ≥ μ_n``.

    This is the contraction factor of one walk step on the space orthogonal
    to the stationary distribution — the quantity the Rozenman–Vadhan
    decomposition (Prop. C.4) actually requires of the cloud graphs in
    Propositions 4.2/C.1 (``λ₂`` alone ignores near-bipartite eigenvalues
    at ``-1``).  Dense computation, intended for cloud-sized graphs.
    """
    if graph.n <= 1:
        return 1.0
    mat = normalized_adjacency(graph).toarray()
    eigenvalues = np.linalg.eigvalsh(mat)
    # eigenvalues ascending; drop the top (trivial) one.
    others = np.abs(eigenvalues[:-1])
    return float(max(0.0, 1.0 - others.max()))


def cheeger_bounds(gap: float) -> "tuple[float, float]":
    """Cheeger's inequality (Section 2.1, [15]): the conductance ``h`` of a
    graph with spectral gap ``λ₂`` satisfies ``λ₂/2 ≤ h ≤ sqrt(2 λ₂)``."""
    if not 0.0 <= gap <= 2.0:
        raise ValueError(f"spectral gap must lie in [0, 2], got {gap}")
    return gap / 2.0, float(np.sqrt(2.0 * gap))


def is_connected_via_gap(graph: Graph) -> bool:
    """``λ₂ > 0`` iff connected (Section 2.1) — used as a cross-check of the
    combinatorial component finder in tests."""
    if graph.n <= 1:
        return True
    spectrum = laplacian_spectrum(graph)
    return bool(spectrum[1] > 1e-9)
