"""Disjoint-set union (union by size + path compression).

Used as the sequential reference for connectivity (the ground truth every
MPC algorithm in this library is tested against) and inside the spanning
forest verifiers.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_nonnegative_int


class DisjointSetUnion:
    """Classic DSU over elements ``0..n-1``."""

    def __init__(self, n: int):
        n = check_nonnegative_int(n, "n")
        self._parent = np.arange(n, dtype=np.int64)
        self._size = np.ones(n, dtype=np.int64)
        self._count = n

    @property
    def n(self) -> int:
        return self._parent.shape[0]

    @property
    def set_count(self) -> int:
        """Number of disjoint sets."""
        return self._count

    def find(self, x: int) -> int:
        root = x
        parent = self._parent
        while parent[root] != root:
            root = parent[root]
        # Path compression.
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; returns True if they were
        previously distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._count -= 1
        return True

    def union_edges(self, edges: np.ndarray) -> int:
        """Union every edge of an ``(m, 2)`` array; returns number of merges."""
        merges = 0
        for u, v in np.asarray(edges, dtype=np.int64):
            if self.union(int(u), int(v)):
                merges += 1
        return merges

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def size_of(self, x: int) -> int:
        return int(self._size[self.find(x)])

    def labels(self) -> np.ndarray:
        """Canonical labels in ``0..k-1``, consistent within each set."""
        roots = np.array([self.find(i) for i in range(self.n)], dtype=np.int64)
        _, labels = np.unique(roots, return_inverse=True)
        return labels
