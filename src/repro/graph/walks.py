"""Random walks, walk distributions, and mixing times (Section 2.2).

Provides the sequential/reference versions of everything the MPC random-walk
machinery of Section 5 computes in parallel:

* :func:`random_walk` / :func:`lazy_random_walk` — single trajectories;
* :func:`walk_distribution` — the exact distribution ``W^t e_v`` (or its
  lazy counterpart) via sparse matrix–vector products;
* :func:`mixing_time_bound` — Proposition 2.2's ``O(log(n/γ)/λ₂)`` bound;
* :func:`empirical_mixing_time` — the true ``T_γ`` by simulating the
  distribution from every (or a subset of) start vertices.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp

from repro.graph.graph import Graph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_range, check_nonnegative_int

#: Default total-variation target used across the pipeline; the paper fixes
#: ``γ* = n^{-10}`` (Lemma 5.1) which is unreachable in float64 at scale, so
#: the library defaults to a small constant and records the substitution.
DEFAULT_GAMMA = 1e-3


def walk_matrix(graph: Graph, *, lazy: bool = False) -> sp.csr_matrix:
    """The (lazy) random-walk matrix as an operator on column distributions.

    Returns ``W = A D^{-1}`` (so that ``p_{t+1} = W p_t`` for column vector
    distributions; this is the transpose of the row-stochastic convention
    but identical for the undirected graphs used here up to ``D`` weights).
    Lazy: ``(I + W)/2``.
    """
    if graph.n == 0:
        raise ValueError("walk matrix undefined for the empty graph")
    deg = np.asarray(graph.degrees, dtype=np.float64)
    if np.any(deg == 0):
        raise ValueError("walk matrix undefined with isolated vertices")
    adj = graph.adjacency_matrix()
    mat = (adj @ sp.diags(1.0 / deg)).tocsr()
    if lazy:
        mat = 0.5 * (sp.identity(graph.n, format="csr") + mat)
    return mat


def stationary_distribution(graph: Graph) -> np.ndarray:
    """``π_v = d_v / 2m`` (Section 2.2)."""
    deg = np.asarray(graph.degrees, dtype=np.float64)
    total = deg.sum()
    if total == 0:
        raise ValueError("stationary distribution undefined for edgeless graphs")
    return deg / total


def tv_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance between two distributions on the same support."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError("distributions must have the same shape")
    return float(0.5 * np.abs(p - q).sum())


def walk_distribution(
    graph: Graph, start: int, length: int, *, lazy: bool = False
) -> np.ndarray:
    """The exact distribution of a (lazy) random walk of ``length`` steps
    from ``start`` — ``D_RW(start, length)`` in the paper's notation."""
    length = check_nonnegative_int(length, "length")
    mat = walk_matrix(graph, lazy=lazy)
    dist = np.zeros(graph.n)
    dist[start] = 1.0
    for _ in range(length):
        dist = mat @ dist
    return dist


def random_walk(graph: Graph, start: int, length: int, rng=None) -> np.ndarray:
    """One simple random walk trajectory (vertex sequence, length+1 entries)."""
    length = check_nonnegative_int(length, "length")
    rng = ensure_rng(rng)
    indptr, heads = graph.indptr, graph.heads
    path = np.empty(length + 1, dtype=np.int64)
    path[0] = start
    v = start
    for i in range(length):
        lo, hi = indptr[v], indptr[v + 1]
        if hi == lo:
            raise ValueError(f"walk stuck at isolated vertex {v}")
        v = int(heads[lo + rng.integers(hi - lo)])
        path[i + 1] = v
    return path


def lazy_random_walk(graph: Graph, start: int, length: int, rng=None) -> np.ndarray:
    """One lazy random walk trajectory (stay put w.p. 1/2 each step)."""
    length = check_nonnegative_int(length, "length")
    rng = ensure_rng(rng)
    indptr, heads = graph.indptr, graph.heads
    path = np.empty(length + 1, dtype=np.int64)
    path[0] = start
    v = start
    for i in range(length):
        if rng.random() < 0.5:
            path[i + 1] = v
            continue
        lo, hi = indptr[v], indptr[v + 1]
        if hi == lo:
            raise ValueError(f"walk stuck at isolated vertex {v}")
        v = int(heads[lo + rng.integers(hi - lo)])
        path[i + 1] = v
    return path


def mixing_time_bound(n: int, gap: float, gamma: float = DEFAULT_GAMMA) -> int:
    """Proposition 2.2: ``T_γ(G) = O(log(n/γ) / λ₂(G))`` for lazy walks.

    We instantiate the constant as 2 (the standard relaxation-time bound
    ``t ≥ (2/λ₂) ln(n/γ)`` for the lazy chain), which is what the pipeline
    uses to size its walks when only a gap estimate is available.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    gap = check_in_range(gap, "gap", 1e-12, 2.0)
    gamma = check_in_range(gamma, "gamma", 1e-300, 1.0)
    return max(1, math.ceil(2.0 * math.log(n / gamma) / gap))


def empirical_mixing_time(
    graph: Graph,
    gamma: float = DEFAULT_GAMMA,
    *,
    max_steps: int = 10_000,
    starts: "np.ndarray | None" = None,
) -> int:
    """The true ``T_γ`` (Section 2.2): smallest ``t`` with
    ``max_v |W̄^t e_v - π|_tvd ≤ γ``, by exact distribution evolution.

    ``starts=None`` checks every start vertex (O(n²) memory — use only for
    small graphs); otherwise the maximum is over the given starts, giving a
    lower bound on ``T_γ``.
    """
    gamma = check_in_range(gamma, "gamma", 1e-300, 1.0)
    mat = walk_matrix(graph, lazy=True)
    pi = stationary_distribution(graph)
    if starts is None:
        starts = np.arange(graph.n)
    starts = np.asarray(starts, dtype=np.int64)
    dists = np.zeros((graph.n, starts.size))
    dists[starts, np.arange(starts.size)] = 1.0
    for t in range(1, max_steps + 1):
        dists = mat @ dists
        deviation = 0.5 * np.abs(dists - pi[:, None]).sum(axis=0).max()
        if deviation <= gamma:
            return t
    raise RuntimeError(f"did not mix within {max_steps} steps (graph may be disconnected)")
