"""An immutable undirected multigraph in CSR form, with port numbering.

The paper's constructions need three features that rule out the usual
"simple graph as dict of sets" representation:

* **parallel edges and self-loops** — the random-graph model ``G(n, d)``
  (Section 2.3) and the permutation construction ``G_{n,d}`` (Section 4)
  both produce them, and regularity counts them (a self-loop contributes 2
  to its endpoint's degree, as in a random-walk transition matrix);
* **port numbering** — the replacement product (Section 4) wires
  "the i-th neighbour of u" to "the j-th neighbour of v", so every
  half-edge needs a stable local index and a pointer to its twin;
* **vectorised access** — benches walk hundreds of thousands of vertices,
  so adjacency is stored as numpy CSR arrays.

Half-edge layout: undirected edge ``e = (u, v)`` (by edge id) owns the two
half-edges ``2e`` (``u → v``) and ``2e + 1`` (``v → u``).  A self-loop owns
two half-edges as well, both incident to its endpoint, which makes the
degree convention automatic.  ``Graph.twin_slot`` maps a CSR slot to the
CSR slot of the opposite half-edge — exactly the "rotation map" used by
replacement/zig-zag products.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_nonnegative_int


class Graph:
    """Undirected multigraph on vertices ``0..n-1`` (parallel edges and
    self-loops allowed).

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Array-like of shape ``(m, 2)`` with vertex endpoints.  Order inside
        a row is irrelevant for adjacency but is preserved for edge ids.
    """

    __slots__ = (
        "_n",
        "_edges",
        "_indptr",
        "_heads",
        "_slot_halfedge",
        "_halfedge_slot",
        "__dict__",
    )

    def __init__(self, n: int, edges: Iterable[Sequence[int]] | np.ndarray):
        self._n = check_nonnegative_int(n, "n")
        edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if edge_array.size == 0:
            edge_array = np.empty((0, 2), dtype=np.int64)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise ValueError(f"edges must have shape (m, 2), got {edge_array.shape}")
        edge_array = edge_array.astype(np.int64, copy=True)
        if edge_array.size and (edge_array.min() < 0 or edge_array.max() >= self._n):
            raise ValueError("edge endpoint out of range [0, n)")
        self._edges = edge_array
        self._build_csr()

    def _build_csr(self) -> None:
        m = self._edges.shape[0]
        # Half-edge h has source src[h] and head (target) dst[h];
        # h = 2e is u->v, h = 2e + 1 is v->u.
        src = np.empty(2 * m, dtype=np.int64)
        dst = np.empty(2 * m, dtype=np.int64)
        src[0::2] = self._edges[:, 0]
        dst[0::2] = self._edges[:, 1]
        src[1::2] = self._edges[:, 1]
        dst[1::2] = self._edges[:, 0]
        order = np.argsort(src, kind="stable")
        self._slot_halfedge = order  # CSR slot -> half-edge id
        self._halfedge_slot = np.empty_like(order)
        self._halfedge_slot[order] = np.arange(2 * m, dtype=np.int64)
        self._heads = dst[order]
        counts = np.bincount(src, minlength=self._n)
        self._indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(counts, out=self._indptr[1:])

    # -- basic queries -------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of undirected edges (parallel edges counted, self-loops
        counted once)."""
        return self._edges.shape[0]

    @property
    def edges(self) -> np.ndarray:
        """The ``(m, 2)`` edge array (read-only view)."""
        view = self._edges.view()
        view.flags.writeable = False
        return view

    @property
    def indptr(self) -> np.ndarray:
        view = self._indptr.view()
        view.flags.writeable = False
        return view

    @property
    def heads(self) -> np.ndarray:
        """CSR adjacency heads: ``heads[indptr[v]:indptr[v+1]]`` are the
        neighbours of ``v`` in port order."""
        view = self._heads.view()
        view.flags.writeable = False
        return view

    @cached_property
    def degrees(self) -> np.ndarray:
        """Degree of each vertex (self-loop counts 2)."""
        deg = np.diff(self._indptr)
        deg.flags.writeable = False
        return deg

    def degree(self, v: int) -> int:
        return int(self._indptr[v + 1] - self._indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbours of ``v`` in port order (with multiplicity)."""
        return self._heads[self._indptr[v] : self._indptr[v + 1]]

    def port_neighbor(self, v: int, port: int) -> int:
        """The ``port``-th neighbour of ``v`` (0-based)."""
        slot = self._indptr[v] + port
        if not self._indptr[v] <= slot < self._indptr[v + 1]:
            raise IndexError(f"vertex {v} has no port {port}")
        return int(self._heads[slot])

    @cached_property
    def twin_slot(self) -> np.ndarray:
        """Rotation map: for CSR slot ``s`` holding half-edge ``u → v``,
        ``twin_slot[s]`` is the CSR slot of ``v → u``.

        Subtracting ``indptr[v]`` from the twin slot recovers the *port*
        of ``u`` at ``v`` — the pairing the replacement product needs.
        """
        twins = self._halfedge_slot[self._slot_halfedge ^ 1]
        twins.flags.writeable = False
        return twins

    @cached_property
    def slot_edge_id(self) -> np.ndarray:
        """Edge id owning each CSR slot."""
        ids = self._slot_halfedge >> 1
        ids.flags.writeable = False
        return ids

    # -- structure predicates --------------------------------------------------

    @property
    def max_degree(self) -> int:
        return int(self.degrees.max()) if self._n else 0

    @property
    def min_degree(self) -> int:
        return int(self.degrees.min()) if self._n else 0

    def is_regular(self, d: int | None = None) -> bool:
        """Whether all degrees are equal (to ``d`` if given)."""
        if self._n == 0:
            return True
        if d is None:
            d = self.degree(0)
        return bool(np.all(self.degrees == d))

    def is_almost_regular(self, center: float, eps: float) -> bool:
        """The paper's ``J(1±ε)ΔK-almost-regular`` predicate (Section 2)."""
        if self._n == 0:
            return True
        low = (1.0 - eps) * center
        high = (1.0 + eps) * center
        return bool(low <= self.min_degree and self.max_degree <= high)

    @cached_property
    def self_loop_count(self) -> int:
        return int(np.count_nonzero(self._edges[:, 0] == self._edges[:, 1]))

    @cached_property
    def parallel_edge_count(self) -> int:
        """Number of edges in excess of the first copy between each pair."""
        if self.m == 0:
            return 0
        canon = np.sort(self._edges, axis=1)
        unique = np.unique(canon, axis=0)
        return int(self.m - unique.shape[0])

    # -- transformations -------------------------------------------------------

    def with_self_loops(self, loops_per_vertex: int) -> "Graph":
        """Return a copy with ``loops_per_vertex`` extra self-loops on every
        vertex.  Each loop adds 2 to the degree; the paper uses this to turn
        a ``Δ``-regular graph into the ``2Δ``-regular graph ``G̃`` whose plain
        random walk is the lazy walk of the original (Section 5.2)."""
        loops_per_vertex = check_nonnegative_int(loops_per_vertex, "loops_per_vertex")
        if loops_per_vertex == 0:
            return Graph(self._n, self._edges)
        verts = np.repeat(np.arange(self._n, dtype=np.int64), loops_per_vertex)
        loops = np.stack([verts, verts], axis=1)
        return Graph(self._n, np.concatenate([self._edges, loops], axis=0))

    def simplify(self) -> "Graph":
        """Drop self-loops and collapse parallel edges."""
        if self.m == 0:
            return Graph(self._n, self._edges)
        canon = np.sort(self._edges, axis=1)
        canon = canon[canon[:, 0] != canon[:, 1]]
        unique = np.unique(canon, axis=0) if canon.size else canon
        return Graph(self._n, unique)

    def relabel(self, mapping: np.ndarray, new_n: int | None = None) -> "Graph":
        """Apply the vertex relabelling ``v -> mapping[v]``.

        Several old vertices may map to the same new vertex (contraction);
        resulting self-loops and parallel edges are kept — use
        :meth:`simplify` to drop them (the paper's contraction graph,
        Definition 2, does exactly that).
        """
        mapping = np.asarray(mapping, dtype=np.int64)
        if mapping.shape != (self._n,):
            raise ValueError(f"mapping must have shape ({self._n},)")
        if new_n is None:
            new_n = int(mapping.max()) + 1 if mapping.size else 0
        return Graph(new_n, mapping[self._edges])

    def subgraph(self, vertices: np.ndarray) -> "tuple[Graph, np.ndarray]":
        """Induced subgraph on ``vertices``.

        Returns ``(subgraph, vertex_list)``; vertex ``i`` of the subgraph is
        ``vertex_list[i]`` of the original.
        """
        vertices = np.unique(np.asarray(vertices, dtype=np.int64))
        lookup = np.full(self._n, -1, dtype=np.int64)
        lookup[vertices] = np.arange(vertices.size)
        keep = (lookup[self._edges[:, 0]] >= 0) & (lookup[self._edges[:, 1]] >= 0)
        sub_edges = lookup[self._edges[keep]]
        return Graph(int(vertices.size), sub_edges), vertices

    # -- conversions -----------------------------------------------------------

    def adjacency_matrix(self) -> sp.csr_matrix:
        """Sparse adjacency with multiplicities; a self-loop contributes 2
        to its diagonal entry (degree convention)."""
        m = self.m
        if m == 0:
            return sp.csr_matrix((self._n, self._n))
        rows = np.concatenate([self._edges[:, 0], self._edges[:, 1]])
        cols = np.concatenate([self._edges[:, 1], self._edges[:, 0]])
        data = np.ones(2 * m)
        return sp.csr_matrix((data, (rows, cols)), shape=(self._n, self._n))

    # -- dunder ----------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self._n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        """Structural equality: same n and same multiset of undirected edges."""
        if not isinstance(other, Graph):
            return NotImplemented
        if self._n != other._n or self.m != other.m:
            return False
        mine = np.sort(np.sort(self._edges, axis=1), axis=0)
        theirs = np.sort(np.sort(other._edges, axis=1), axis=0)
        a = mine[np.lexsort(mine.T[::-1])]
        b = theirs[np.lexsort(theirs.T[::-1])]
        return bool(np.array_equal(a, b))

    def __hash__(self) -> int:  # Graphs are mutable-free but big; identity hash.
        return id(self)


def disjoint_union(graphs: Sequence[Graph]) -> "tuple[Graph, np.ndarray]":
    """Disjoint union of ``graphs``.

    Returns ``(union, offsets)`` where component ``i`` of the union occupies
    vertices ``offsets[i] : offsets[i+1]``.
    """
    offsets = np.zeros(len(graphs) + 1, dtype=np.int64)
    for i, g in enumerate(graphs):
        offsets[i + 1] = offsets[i] + g.n
    pieces = [g.edges + offsets[i] for i, g in enumerate(graphs) if g.m > 0]
    if pieces:
        edges = np.concatenate(pieces, axis=0)
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    return Graph(int(offsets[-1]), edges), offsets
