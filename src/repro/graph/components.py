"""Sequential connectivity reference and structural queries.

``connected_components`` is the ground truth against which every MPC
algorithm is validated.  ``is_component_partition`` checks the paper's
component-partition notion (Section 2: every part induces a connected
subgraph), and ``diameter`` supports the Claim 6.13 experiments.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.graph.graph import Graph


def connected_components(graph: Graph) -> np.ndarray:
    """Labels in ``0..k-1`` for each vertex, canonicalised so that labels
    appear in order of their smallest vertex."""
    if graph.n == 0:
        return np.empty(0, dtype=np.int64)
    adj = graph.adjacency_matrix()
    _, raw = csgraph.connected_components(adj, directed=False)
    return canonical_labels(raw)


def canonical_labels(labels: np.ndarray) -> np.ndarray:
    """Relabel arbitrary component labels to ``0..k-1`` in first-seen order."""
    labels = np.asarray(labels)
    _, first_pos = np.unique(labels, return_index=True)
    order = np.argsort(first_pos, kind="stable")
    remap = np.empty(order.size, dtype=np.int64)
    remap[order] = np.arange(order.size)
    _, inverse = np.unique(labels, return_inverse=True)
    return remap[inverse]


def component_count(graph: Graph) -> int:
    if graph.n == 0:
        return 0
    return int(connected_components(graph).max()) + 1


def component_sizes(labels: np.ndarray) -> np.ndarray:
    """Sizes indexed by label."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.bincount(labels)


def components_agree(a: np.ndarray, b: np.ndarray) -> bool:
    """Whether two labelings induce the same partition."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    return bool(np.array_equal(canonical_labels(a), canonical_labels(b)))


def is_component_partition(graph: Graph, labels: np.ndarray) -> bool:
    """The paper's component-partition predicate (Section 2): every class of
    ``labels`` must induce a *connected* subgraph of ``graph``.

    Unlike :func:`components_agree` this does not require classes to be
    maximal — intermediate states of ``GrowComponents`` are component
    partitions without being the final components.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (graph.n,):
        return False
    true_labels = connected_components(graph)
    for part in np.unique(labels):
        vertices = np.flatnonzero(labels == part)
        if vertices.size <= 1:
            continue
        # All vertices of the part must be in one true component...
        if np.unique(true_labels[vertices]).size != 1:
            return False
        # ...and the part must itself induce a connected subgraph.
        sub, _ = graph.subgraph(vertices)
        if component_count(sub) != 1:
            return False
    return True


def bfs_distances(graph: Graph, source: int) -> np.ndarray:
    """Hop distances from ``source`` (unreachable = -1)."""
    dist = np.full(graph.n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    indptr, heads = graph.indptr, graph.heads
    while frontier.size:
        level += 1
        # Gather all neighbours of the frontier in one shot.
        spans = [heads[indptr[v] : indptr[v + 1]] for v in frontier]
        nxt = np.unique(np.concatenate(spans)) if spans else np.empty(0, np.int64)
        nxt = nxt[dist[nxt] < 0]
        dist[nxt] = level
        frontier = nxt
    return dist


def diameter(graph: Graph, *, exact_threshold: int = 400, rng=None) -> int:
    """Diameter of a connected graph.

    Exact (all-pairs BFS) below ``exact_threshold`` vertices; above that, a
    multi-start double-sweep lower bound, which is exact on the expander
    workloads we use it for (their eccentricities are all within one of
    each other).  Raises if the graph is disconnected.
    """
    if graph.n == 0:
        return 0
    if component_count(graph) != 1:
        raise ValueError("diameter is undefined for disconnected graphs")
    if graph.n <= exact_threshold:
        adj = graph.adjacency_matrix()
        dist = csgraph.shortest_path(adj, method="D", unweighted=True)
        return int(dist.max())
    from repro.utils.rng import ensure_rng

    rng = ensure_rng(rng)
    best = 0
    for _ in range(4):
        start = int(rng.integers(graph.n))
        d1 = bfs_distances(graph, start)
        far = int(np.argmax(d1))
        d2 = bfs_distances(graph, far)
        best = max(best, int(d2.max()))
    return best


def spanning_forest_is_valid(graph: Graph, tree_edges: np.ndarray) -> bool:
    """Whether ``tree_edges`` (an ``(k, 2)`` array of vertex pairs, each an
    edge of ``graph`` up to orientation) forms a spanning forest: acyclic and
    connecting exactly the true components."""
    from repro.graph.union_find import DisjointSetUnion

    tree_edges = np.asarray(tree_edges, dtype=np.int64).reshape(-1, 2)
    # Every tree edge must exist in the graph (as an undirected pair).
    if tree_edges.size:
        graph_set = {tuple(sorted(e)) for e in graph.edges.tolist()}
        for u, v in tree_edges.tolist():
            if (min(u, v), max(u, v)) not in graph_set:
                return False
    dsu = DisjointSetUnion(graph.n)
    for u, v in tree_edges.tolist():
        if not dsu.union(int(u), int(v)):
            return False  # cycle
    return components_agree(dsu.labels(), connected_components(graph))
