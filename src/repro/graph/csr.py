"""Immutable zero-copy CSR index for the executor stack.

:class:`~repro.graph.graph.Graph` already stores adjacency in CSR form,
but its arrays are private and rebuilt per graph object.  The executor
stack (plan IR, backends, engines) needs a *standalone* CSR value it can
ship through ``ShmArena`` segments and across the RPC wire: a frozen
triple ``(indptr, indices, halfedges)`` built once from an ``(m, 2)``
edge list.

Layout (identical to the graph core): undirected edge ``e = (u, v)``
owns half-edges ``2e`` (``u → v``) and ``2e + 1`` (``v → u``); CSR slot
``s`` in ``indptr[v]:indptr[v+1]`` holds one half-edge *into* ``v``'s
adjacency row — ``indices[s]`` is the head (neighbour) and
``halfedges[s]`` the owning half-edge id, so ``halfedges[s] >> 1``
recovers the edge id.  Slots are ordered by ``(owner, head)`` via a
stable lexsort, so every neighbour run is sorted — a deterministic,
seed-independent layout.

Zero-copy contract: every array is a fresh C-contiguous ``int64`` buffer
owning its data (``base is None``) with the writeable flag cleared, which
is exactly what :meth:`repro.mpc.arena.ShmArena` pinning requires — the
process backend uploads each array to shared memory once and workers
attach read-only views for the whole broadcast loop, and the RPC backend
ships each array across the wire once per content digest.

The module-level toggle (:func:`csr_enabled` / :func:`use_csr`) scopes
the engine-side fast path: CSR gathers are preferred when enabled
(the default), and the sort-based exchange path — bit-identical in
labels, rounds, and every gated counter — runs when disabled.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.utils.validation import check_nonnegative_int

#: Module-level fast-path override: ``None`` means the default (CSR
#: gathers on); :func:`use_csr` scopes an explicit on/off choice.
_CSR_OVERRIDE: "bool | None" = None


def csr_enabled() -> bool:
    """Whether engines should prefer CSR gathers over sort-based exchanges.

    ``True`` by default; scope an override with :func:`use_csr`.  Both
    paths are bit-identical in labels, rounds, and gated counters — the
    toggle only selects which kernels do the work.
    """
    return True if _CSR_OVERRIDE is None else _CSR_OVERRIDE


@contextlib.contextmanager
def use_csr(enabled: "bool | None"):
    """Scope the CSR fast-path toggle (``None`` leaves the default).

    Mirrors :func:`repro.mpc.process_backend.default_arena`: the bench
    runner wraps experiment bodies in ``use_csr(ctx.csr)`` so the
    ``--csr`` / ``--no-csr`` CLI axis reaches every engine the
    experiment constructs, and the differential tests pin each path
    explicitly with ``use_csr(True)`` / ``use_csr(False)``.
    """
    global _CSR_OVERRIDE
    previous = _CSR_OVERRIDE
    _CSR_OVERRIDE = previous if enabled is None else bool(enabled)
    try:
        yield
    finally:
        _CSR_OVERRIDE = previous


def build_csr_arrays(
    edges: np.ndarray, n: int
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Build the frozen CSR triple ``(indptr, indices, halfedges)``.

    Pure function shared by :meth:`CSRIndex.from_edges` and the
    ``build_csr`` plan transform.  Handles every edge-list shape the
    generators produce: empty graphs, isolated vertices, duplicate /
    parallel edges (each copy keeps its own slots), and self-loops
    (two slots on the same row, one per half-edge).

    Parameters
    ----------
    edges:
        ``(m, 2)`` integer endpoints in ``[0, n)``.
    n:
        Vertex count (rows of the index; isolated vertices get empty
        runs).

    Returns
    -------
    tuple
        ``(indptr, indices, halfedges)`` — fresh C-contiguous ``int64``
        arrays, each owning its data, with ``indptr.shape == (n + 1,)``
        and ``indptr[-1] == len(indices) == len(halfedges) == 2 m``.

    Raises
    ------
    ValueError
        ``edges`` is not ``(m, 2)``-shaped or has endpoints outside
        ``[0, n)``.
    """
    n = check_nonnegative_int(n, "n")
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
    if edges.size and (edges.min() < 0 or edges.max() >= n):
        raise ValueError("edge endpoint out of range [0, n)")
    m = edges.shape[0]
    # Half-edge h has source src[h] and head dst[h]; h = 2e is u -> v,
    # h = 2e + 1 is v -> u — the same convention as the graph core.
    src = np.empty(2 * m, dtype=np.int64)
    dst = np.empty(2 * m, dtype=np.int64)
    src[0::2] = edges[:, 0]
    dst[0::2] = edges[:, 1]
    src[1::2] = edges[:, 1]
    dst[1::2] = edges[:, 0]
    # Stable (owner, head) order: deterministic and head-sorted per row.
    order = np.lexsort((dst, src))
    indices = np.ascontiguousarray(dst[order])
    halfedges = np.ascontiguousarray(order.astype(np.int64, copy=False))
    counts = np.bincount(src, minlength=n) if m else np.zeros(n, dtype=np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, indices, halfedges


def _own_readonly(array: np.ndarray, name: str) -> np.ndarray:
    """``array`` as a read-only C-contiguous ``int64`` owning its data.

    Arrays that already satisfy the zero-copy contract are used as-is
    (no copy); anything writeable, strided, or viewing another buffer
    is copied once and frozen — the rule that lets :meth:`CSRIndex.adopt`
    wrap both freshly built arrays and replayed plan outputs.
    """
    out = np.ascontiguousarray(array)
    if out.dtype != np.int64:
        raise ValueError(f"{name} must be int64, got {out.dtype}")
    if out.flags.writeable or out.base is not None:
        out = out.copy()
    out.setflags(write=False)
    return out


class CSRIndex:
    """A frozen CSR adjacency index over ``n`` vertices and ``m`` edges.

    Every instance satisfies the zero-copy contract: ``indptr``,
    ``indices``, and ``halfedges`` are read-only C-contiguous ``int64``
    arrays owning their data, eligible for ``ShmArena`` read-only
    pinning and wire-level digest dedup without copies.  Because the
    layout is symmetric (both half-edges of every edge get a slot), one
    index serves as both the in- and out-neighbourhood view.

    Build one with :meth:`from_edges` / :meth:`from_graph`, or wrap
    already-built arrays (e.g. the outputs of the ``build_csr`` plan
    transform after a trace replay) with :meth:`adopt`.
    """

    __slots__ = ("n", "m", "indptr", "indices", "halfedges")

    def __init__(
        self,
        n: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        halfedges: np.ndarray,
    ):
        """Validate and freeze the triple (see :meth:`adopt`)."""
        self.n = check_nonnegative_int(n, "n")
        indptr = _own_readonly(indptr, "indptr")
        indices = _own_readonly(indices, "indices")
        halfedges = _own_readonly(halfedges, "halfedges")
        if indptr.shape != (self.n + 1,):
            raise ValueError(
                f"indptr must have shape ({self.n + 1},), got {indptr.shape}"
            )
        if indptr[0] != 0 or (np.diff(indptr) < 0).any():
            raise ValueError("indptr must start at 0 and be non-decreasing")
        slots = int(indptr[-1])
        if indices.shape != (slots,) or halfedges.shape != (slots,):
            raise ValueError(
                f"indices/halfedges must have shape ({slots},), got "
                f"{indices.shape} / {halfedges.shape}"
            )
        if slots % 2:
            raise ValueError("slot count must be even (two per edge)")
        if slots and (
            indices.min() < 0
            or indices.max() >= self.n
            or halfedges.min() < 0
            or halfedges.max() >= slots
        ):
            raise ValueError("indices/halfedges value out of range")
        self.m = slots // 2
        self.indptr = indptr
        self.indices = indices
        self.halfedges = halfedges

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_edges(cls, n: int, edges: np.ndarray) -> "CSRIndex":
        """Build the index from an ``(m, 2)`` edge list."""
        return cls(n, *build_csr_arrays(edges, n))

    @classmethod
    def from_graph(cls, graph) -> "CSRIndex":
        """Build the index from a :class:`~repro.graph.graph.Graph`."""
        return cls.from_edges(graph.n, graph.edges)

    @classmethod
    def adopt(
        cls,
        n: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        halfedges: np.ndarray,
    ) -> "CSRIndex":
        """Wrap already-built CSR arrays, validating the invariants.

        Arrays that already meet the zero-copy contract (read-only,
        owning, contiguous ``int64``) are adopted without copying;
        anything else — e.g. the writeable outputs a trace replay
        materialises — is copied once and frozen.
        """
        return cls(n, indptr, indices, halfedges)

    # -- derived views -------------------------------------------------------

    @property
    def degrees(self) -> np.ndarray:
        """Per-vertex slot counts (a self-loop contributes 2)."""
        return np.diff(self.indptr)

    @property
    def edge_ids(self) -> np.ndarray:
        """Edge id owning each CSR slot (``halfedges >> 1``)."""
        return self.halfedges >> 1

    @property
    def nbytes(self) -> int:
        """Total bytes across the three frozen arrays."""
        return (
            self.indptr.nbytes + self.indices.nbytes + self.halfedges.nbytes
        )

    def slot_owners(self) -> np.ndarray:
        """The vertex owning each CSR slot (row expansion of ``indptr``)."""
        return np.repeat(
            np.arange(self.n, dtype=np.int64), self.degrees
        )

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbours of ``v`` in sorted order (with multiplicity)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def to_edges(self) -> np.ndarray:
        """Reconstruct the exact ``(m, 2)`` edge list the index was built
        from — same edge ids, same endpoint order within each row.

        Every edge owns one even half-edge (``2e``: stored endpoint
        order) and one odd half-edge (``2e + 1``: reversed), so reading
        the even slots recovers ``(u, v)`` and the odd slots confirm it.
        """
        owner = self.slot_owners()
        out = np.empty((self.m, 2), dtype=np.int64)
        even = (self.halfedges & 1) == 0
        e = self.halfedges >> 1
        out[e[even], 0] = owner[even]
        out[e[even], 1] = self.indices[even]
        out[e[~even], 1] = owner[~even]
        out[e[~even], 0] = self.indices[~even]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRIndex(n={self.n}, m={self.m})"
