"""The headline experiment as a script: MPC rounds vs. graph size.

Sweeps n over well-connected workloads and prints the round counts of the
Theorem 4 pipeline against the Θ(log n) classical algorithms, plus the
paper's predicted shapes — an ASCII version of the E1 bench.

Run:  python examples/round_complexity_sweep.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro import theory
from repro.baselines import pointer_jumping_propagation, random_mate_components
from repro.graph import components_agree, connected_components
from repro.mpc import MPCEngine


def run_pipeline(graph, seed):
    config = repro.PipelineConfig(
        expander_degree=4, max_walk_length=160, oversample=6
    )
    result = repro.mpc_connected_components(
        graph, spectral_gap_bound=0.25, config=config, rng=seed
    )
    assert components_agree(result.labels, connected_components(graph))
    return result.rounds


def main(scale: str = "default") -> dict:
    sizes = [128, 256, 512] if scale == "small" else [256, 1024, 4096, 16384]
    seed = 3

    header = (f"{'n':>7} | {'pipeline':>9} | {'hash-to-min':>11} | "
              f"{'random-mate':>11} | {'Thm1 shape':>10} | {'log n shape':>11}")
    print(header)
    print("-" * len(header))

    table = {}
    for n in sizes:
        graph = repro.graph.permutation_regular_graph(n, 6, rng=seed)
        ours = run_pipeline(graph, seed)

        engine = MPCEngine(max(16, int(n**0.25)))
        pointer_jumping_propagation(graph, engine=engine)
        htm = engine.rounds

        engine = MPCEngine(max(16, int(n**0.25)))
        random_mate_components(graph, rng=seed, engine=engine)
        rm = engine.rounds

        predicted = theory.theorem1_rounds(n, 0.25, delta=0.25)
        log_shape = theory.classical_pram_rounds(n)
        print(f"{n:>7} | {ours:>9} | {htm:>11} | {rm:>11} | "
              f"{predicted:>10.1f} | {log_shape:>11.1f}")
        table[n] = {"pipeline": ours, "hash_to_min": htm, "random_mate": rm}

    print("\nShape check: the pipeline column should be nearly flat "
          "(doubly logarithmic), the baselines should climb with log n.")
    first, last = sizes[0], sizes[-1]
    growth_ours = table[last]["pipeline"] - table[first]["pipeline"]
    growth_base = table[last]["random_mate"] - table[first]["random_mate"]
    print(f"pipeline growth over the sweep : +{growth_ours} rounds")
    print(f"random-mate growth over sweep  : +{growth_base} rounds")
    return table


if __name__ == "__main__":
    main()
