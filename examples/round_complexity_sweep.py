"""The headline experiment as a script: MPC rounds vs. graph size.

A thin front-end over the registered E1 benchmark (``repro.bench``):
sweeps n over well-connected workloads and prints the round counts of the
Theorem 4 pipeline against the Θ(log n) classical algorithms, plus the
paper's predicted shapes.  The sweep itself — workloads, sizes, table,
JSON artifact schema — lives in ``repro.bench.experiments.e01_rounds_vs_n``,
so this script can never drift from what CI measures.

Run:  python examples/round_complexity_sweep.py
"""

from __future__ import annotations

from repro import bench


def main(scale: str = "default") -> dict:
    suite = "smoke" if scale == "small" else "full"
    result = bench.run_case("e01_rounds_vs_n", suite=suite)
    print(bench.render_case(result))

    table = {
        record["n"]: {
            "pipeline": record["pipeline_rounds"],
            "hash_to_min": record["hash_to_min_rounds"],
            "random_mate": record["random_mate_rounds"],
        }
        for record in result.records
    }

    print("\nShape check: the pipeline column should be nearly flat "
          "(doubly logarithmic), the baselines should climb with log n.")
    sizes = sorted(table)
    first, last = sizes[0], sizes[-1]
    growth_ours = table[last]["pipeline"] - table[first]["pipeline"]
    growth_base = table[last]["random_mate"] - table[first]["random_mate"]
    print(f"pipeline growth over the sweep : +{growth_ours} rounds")
    print(f"random-mate growth over sweep  : +{growth_base} rounds")
    return table


if __name__ == "__main__":
    main()
