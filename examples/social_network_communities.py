"""Community detection on a social-network-like graph, gap unknown.

The paper's introduction motivates sparse connectivity with social
networks: massive, sparse (O(n) edges), and well-connected inside
communities.  This example builds a heavy-tailed community workload
(a few large communities plus a tail of small ones), runs the *adaptive*
pipeline (Corollary 7.1 — no spectral-gap knowledge), and compares its
round bill against the classical O(log n) comparators.

Run:  python examples/social_network_communities.py
"""

from __future__ import annotations

import repro
from repro.baselines import (
    min_label_propagation,
    pointer_jumping_propagation,
    random_mate_components,
)
from repro.graph import components_agree, connected_components
from repro.mpc import MPCEngine


def main(scale: str = "default") -> dict:
    if scale == "small":
        community_sizes = [80, 40]
    else:
        community_sizes = [3000, 1200, 600, 300]
    seed = 13

    graph, _ = repro.graph.community_graph(
        community_sizes, intra_degree=10, rng=seed, skew_tail=True
    )
    reference = connected_components(graph)
    print(f"social graph: n = {graph.n}, m = {graph.m}, "
          f"{int(reference.max()) + 1} communities (sizes skew-tailed)")

    print("\n== Adaptive pipeline (Corollary 7.1: spectral gap unknown) ==")
    config = repro.PipelineConfig(max_walk_length=192)
    adaptive = repro.mpc_connected_components_adaptive(graph, config=config, rng=seed)
    assert components_agree(adaptive.labels, reference)
    for it in adaptive.iterations:
        print(f"  guess λ'={it.gap_guess:.3f}  T={it.walk_length:<5} "
              f"rounds={it.rounds:<4} finished={it.finished_vertices:<6} "
              f"active={it.active_vertices}")
    print(f"  total MPC rounds: {adaptive.rounds}")

    print("\n== Classical comparators (same exact answer) ==")
    rows = []
    for name, runner in [
        ("min-label (Θ(diam))", lambda e: min_label_propagation(graph, engine=e)),
        ("hash-to-min (Θ(log n))", lambda e: pointer_jumping_propagation(graph, engine=e)),
        ("random-mate (Θ(log n))", lambda e: random_mate_components(graph, rng=seed, engine=e)),
    ]:
        engine = MPCEngine(adaptive.engine.machine_memory)
        result = runner(engine)
        assert components_agree(result.labels, reference)
        rows.append((name, engine.rounds))
        print(f"  {name:<26} {engine.rounds:>5} rounds")

    print(f"\n  adaptive pipeline          {adaptive.rounds:>5} rounds")
    print("\n(The pipeline spends rounds on walks/growth but its count is "
          "governed by log log n — on larger graphs the classical counts "
          "keep growing as log n while the pipeline's flattens; see bench "
          "E1 for the sweep.)")
    return {"adaptive_rounds": adaptive.rounds, "baselines": dict(rows)}


if __name__ == "__main__":
    main()
