"""Quickstart: find well-connected components with the Theorem 4 pipeline.

Builds a sparse graph whose components are expanders (the paper's headline
workload), runs the MPC pipeline with a spectral-gap bound, and checks the
answer against a sequential reference — printing the round budget the
pipeline consumed per phase.  A second pass demonstrates execution-backend
selection end to end: the same pipeline on the enforced ``sharded`` data
plane and the true-parallel ``process`` pool, with bit-identical labels
and round counts (see ``docs/backends.md``).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.graph import components_agree, connected_components


def main(scale: str = "default") -> dict:
    sizes = [60, 90, 120] if scale == "small" else [400, 800, 1500, 2500]
    seed = 7

    print("== Building workload ==")
    graph, truth = repro.graph.planted_expander_components(sizes, 8, rng=seed)
    print(f"n = {graph.n} vertices, m = {graph.m} edges, "
          f"{len(sizes)} planted expander components")

    # Expanders from the permutation model have gap ~0.3 at degree 8; any
    # valid lower bound works (smaller bounds mean longer walks).
    gap_bound = 0.2

    print("\n== Running the MPC pipeline (Theorem 4) ==")
    config = repro.PipelineConfig(max_walk_length=256)
    result = repro.mpc_connected_components(
        graph, spectral_gap_bound=gap_bound, config=config, rng=seed
    )

    reference = connected_components(graph)
    exact = components_agree(result.labels, reference)
    print(f"components found : {result.component_count}")
    print(f"matches reference: {exact}")
    print(f"walk length T    : {result.walk_length}")
    print(f"grow phases F    : {result.phase_count}")
    print(f"machine memory s : {result.engine.machine_memory}")
    print(f"peak machines    : {result.engine.peak_machines}")

    print("\nMPC rounds by phase:")
    for phase in result.engine.phase_summaries():
        print(f"  {phase.name:<24} {phase.rounds:>4} rounds")
    print(f"  {'TOTAL':<24} {result.rounds:>4} rounds")

    assert exact, "pipeline output must match the sequential reference"

    print("\n== Execution backends (same pipeline, different data plane) ==")
    for backend in ("sharded", "process"):
        run = repro.mpc_connected_components(
            graph, spectral_gap_bound=gap_bound, config=config, rng=seed,
            backend=backend,
        )
        stats = run.engine.summary()["backend"]
        assert np.array_equal(run.labels, result.labels), backend
        assert run.rounds == result.rounds, backend
        extra = f", workers={stats['workers']}" if backend == "process" else ""
        print(f"  {backend:<8} labels identical, {run.rounds} rounds, "
              f"{stats['shard_count']} shards, "
              f"{stats['exchanges']} exchanges{extra}")

    print("\n== Round-plan trace: capture on sharded, replay on local ==")
    import pathlib
    import tempfile

    from repro.mpc import MPCEngine, ShardedBackend
    from repro.mpc.plan import replay

    with tempfile.TemporaryDirectory(prefix="quickstart-trace-") as tmpdir:
        trace_path = str(pathlib.Path(tmpdir) / "trace.json")
        with MPCEngine.for_delta(
            graph.n + graph.m, config.delta, backend=ShardedBackend(),
            trace=trace_path,
        ) as engine:
            traced = repro.mpc_connected_components(
                graph, spectral_gap_bound=gap_bound, config=config, rng=seed,
                engine=engine,
            )
            plan_count = len(engine.trace)
        replayed = replay(trace_path, backend="local")
    assert replayed.ok, "replay must reproduce every recorded output"
    assert np.array_equal(traced.labels, result.labels)
    print(f"  captured {plan_count} plans; replay on 'local' reproduced "
          "every output bit-for-bit")

    return {"rounds": result.rounds, "components": result.component_count}


if __name__ == "__main__":
    main()
