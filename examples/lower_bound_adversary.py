"""Playing against the Section 9 adversary: why ExpanderConn is hard.

Builds the Claim 9.4 hard family — Ω(n) expanders sharing a vertex set
with O(log n) edge multiplicity — and plays three query strategies against
the Lemma 9.3 adversary, who answers "absent" for any still-possible
bridge edge and thereby keeps the connectivity question open as long as a
single family member survives.  The chained Theorem 5 bound
(DT → approximate degree → MPC rounds) is printed at the end.

Run:  python examples/lower_bound_adversary.py
"""

from __future__ import annotations

import numpy as np

from repro import theory
from repro.lower_bound import (
    AdversaryGame,
    build_hard_family,
    build_instance,
    family_edge_strategy,
    greedy_multiplicity_strategy,
    play_until_resolved,
    random_pair_strategy,
    verify_promise,
)


def main(scale: str = "default") -> dict:
    n = 128 if scale == "small" else 512
    seed = 9

    print(f"== Building the Claim 9.4 hard family on n = {n} vertices ==")
    family = build_hard_family(n, 6, rng=seed)
    print(f"members k          : {family.size}")
    print(f"max edge multiplicity: {family.max_multiplicity} "
          f"(log2 n = {np.log2(n):.1f})")
    print(f"min member gap     : {family.min_gap():.3f} (all Ω(1) expanders)")
    print(f"query floor k/mult : {family.query_lower_bound()}")

    print("\n== Both promise instances are legitimate ==")
    connected = build_instance(family, bridge_index=0, rng=seed)
    disconnected = build_instance(family, bridge_index=None, rng=seed)
    print(f"with bridge B_0    : connected={connected.is_connected}, "
          f"promise ok={verify_promise(connected)}")
    print(f"without any bridge : connected={disconnected.is_connected}, "
          f"promise ok={verify_promise(disconnected)}")

    print("\n== Query strategies vs the adversary ==")
    results = {}
    strategies = [
        ("greedy (max-kill edge)", lambda: greedy_multiplicity_strategy()),
        ("family-edge prober", lambda: family_edge_strategy(rng=seed)),
        ("blind random pairs", lambda: random_pair_strategy(rng=seed)),
    ]
    for name, factory in strategies:
        game = AdversaryGame.fresh(family)
        cert = play_until_resolved(game, factory(), max_queries=10**7)
        results[name] = cert["queries"]
        print(f"  {name:<24} {cert['queries']:>7} queries "
              f"(floor {cert['theoretical_minimum']})")

    print("\n== Theorem 5: from queries to MPC rounds ==")
    for s in (64, 1024):
        rounds = theory.expander_conn_round_lower_bound(n, s)
        print(f"  memory s = {s:<5}: rounds ≥ {rounds:.2f}  "
              f"(chain: DT = Ω(n/log n) → deg̃ = DT^(1/6) → log_s)")
    print(f"  EREW PRAM (Remark 9.5): ≥ {theory.pram_lower_bound_rounds(n):.1f} steps")
    print("\nEven the optimal strategy cannot beat the k/multiplicity floor "
          "— the 'full power' of MPC (n^Ω(1) memory) is necessary for the "
          "paper's speedup, not an artifact.")
    return results


if __name__ == "__main__":
    main()
