"""Theorem 2 in action: connectivity with mildly sublinear memory.

Demonstrates ``SublinearConn`` on graphs with *no* spectral-gap assumption
(paths, grids — the worst cases for walk-based merging).  The memory
sweep itself is the registered E3 benchmark (``repro.bench``), so this
script shows exactly the numbers CI tracks; it then inspects the AGM
sketch that carries the final contraction: every vertex of the contracted
graph ships ``O(log³ n)`` bits to one coordinator which decodes all
components locally.

Run:  python examples/sketch_streaming_connectivity.py
"""

from __future__ import annotations

import repro
from repro import bench
from repro.graph import connected_components
from repro.sketch import AGMSketch, agm_connected_components


def main(scale: str = "default") -> dict:
    suite = "smoke" if scale == "small" else "full"
    seed = 5

    result = bench.run_case("e03_sublinear_memory", suite=suite)
    print(bench.render_case(result))
    results = {
        (record["workload"], record["memory"]): record["sublinear_rounds"]
        for record in result.records
    }

    n = result.params["n"]
    print("\n== Inside the sketch (Prop. 8.1) ==")
    g = repro.graph.community_graph([n // 2, n // 2], 6, rng=seed)[0]
    sketch = AGMSketch.from_graph(g, rng=seed)
    labels, _ = agm_connected_components(g, rng=seed, sketch=sketch)
    words = sketch.words_per_vertex()
    print(f"sketch per vertex: {words} words "
          f"({8 * words} bytes) vs n = {g.n} vertices")
    print(f"decoded components: {int(labels.max()) + 1} "
          f"(reference: {int(connected_components(g).max()) + 1})")
    print("The coordinator never sees an edge — only these sketches.")
    return results


if __name__ == "__main__":
    main()
