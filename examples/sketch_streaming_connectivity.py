"""Theorem 2 in action: connectivity with mildly sublinear memory.

Demonstrates ``SublinearConn`` on graphs with *no* spectral-gap assumption
(paths, grids — the worst cases for walk-based merging), sweeping the
machine memory ``s`` to show the ``O(log log n + log(n/s))`` round trade,
and inspects the AGM sketch that carries the final contraction: every
vertex of the contracted graph ships ``O(log³ n)`` bits to one coordinator
which decodes all components locally.

Run:  python examples/sketch_streaming_connectivity.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro import theory
from repro.core import sublinear_connectivity
from repro.graph import components_agree, connected_components
from repro.sketch import AGMSketch, agm_connected_components


def main(scale: str = "default") -> dict:
    n = 256 if scale == "small" else 1024
    seed = 5

    workloads = {
        "path": repro.graph.path_graph(n),
        "grid": repro.graph.grid_graph(int(np.sqrt(n)), int(np.sqrt(n))),
        "2 communities": repro.graph.community_graph([n // 2, n // 2], 6, rng=seed)[0],
    }

    memories = [n // 32, n // 8, n // 2]
    print(f"{'workload':>14} | {'s':>5} | {'d':>4} | {'walk t':>7} | "
          f"{'|V(H)|':>6} | {'rounds':>6} | {'Thm2 shape':>10}")
    print("-" * 72)

    results = {}
    for name, graph in workloads.items():
        reference = connected_components(graph)
        for s in memories:
            result = sublinear_connectivity(
                graph, machine_memory=s, rng=seed, walk_cap=4000
            )
            assert components_agree(result.labels, reference), (name, s)
            shape = theory.theorem2_rounds(graph.n, s)
            print(f"{name:>14} | {s:>5} | {result.degree_target:>4} | "
                  f"{result.walk_length:>7} | {result.contracted_vertices:>6} | "
                  f"{result.rounds:>6} | {shape:>10.1f}")
            results[(name, s)] = result.rounds

    print("\n== Inside the sketch (Prop. 8.1) ==")
    g = workloads["2 communities"]
    sketch = AGMSketch.from_graph(g, rng=seed)
    labels, _ = agm_connected_components(g, rng=seed, sketch=sketch)
    words = sketch.words_per_vertex()
    print(f"sketch per vertex: {words} words "
          f"({8 * words} bytes) vs n = {g.n} vertices")
    print(f"decoded components: {int(labels.max()) + 1} "
          f"(reference: {int(connected_components(g).max()) + 1})")
    print("The coordinator never sees an edge — only these sketches.")
    return results


if __name__ == "__main__":
    main()
