"""E15 shim — the experiment lives in ``repro.bench.experiments``.

CLI equivalent: ``python -m repro.bench --suite full --filter e15``.
This pytest entry point keeps the bench runnable as a test
(``BENCH_SUITE=smoke|full`` selects the parameter tier).
"""


def test_e15_walk_length_ablation(bench_case):
    bench_case("e15_walk_length_ablation")
