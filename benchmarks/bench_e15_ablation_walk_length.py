"""E15 — ablation: why Step 2 walks to the mixing time.

The pipeline's central tuning knob is the walk length T.  The paper sets
``T ≥ T_mix`` so each component becomes a *bona fide* random graph, buying
Claim 6.13's O(1)-diameter contraction.  This ablation under-walks on
purpose: with short walks the overlay is only locally random, the final
contraction graph inherits the input's long-range structure, and the
closing broadcast pays for it — while long walks shift cost into the
O(log T) walk-building term.  Exactness holds at every setting (the
broadcast runs to stabilisation); only the round *distribution* moves.
"""

from __future__ import annotations

import numpy as np

import repro
from repro.graph import components_agree, connected_components, expander_path
from repro.mpc import MPCEngine

CAPS = [4, 16, 64, 256, 1024]
BASE = repro.PipelineConfig(delta=0.5, expander_degree=4, oversample=6)


def run_one(cap: int, seed: int):
    graph = expander_path(16, 48, 8, rng=seed)
    config = BASE.with_overrides(max_walk_length=cap)
    engine = MPCEngine(4096)
    result = repro.mpc_connected_components(
        graph, 1e-4, config=config, rng=seed, engine=engine
    )
    assert components_agree(result.labels, connected_components(graph))
    return result


def test_e15_walk_length_ablation(benchmark, report):
    seed = 5
    rows = []
    broadcast_series = []
    for cap in CAPS:
        result = run_one(cap, seed)
        broadcast_series.append(result.cc.broadcast_rounds)
        rows.append(
            [
                result.walk_length,
                result.rounds,
                result.cc.broadcast_rounds,
                result.verify_rounds,
                "yes",
            ]
        )

    benchmark.pedantic(run_one, args=(CAPS[1], seed), rounds=1, iterations=1)

    report(
        "E15",
        "Ablation: walk length vs where the rounds go (16-chain of expanders)",
        ["walk T", "total rounds", "step-3 broadcast", "verify fallback", "exact"],
        rows,
        notes=(
            "Expected shape: under-walking (T ≪ T_mix) leaves long-range "
            "structure in the contraction graph — the broadcast stage pays "
            "~2x-8x more rounds; walking to the mixing time collapses it "
            "to the Claim 6.13 constant. Exact answers at every T (the "
            "stabilising broadcast is the honest fallback)."
        ),
    )

    # Under-walked broadcast must cost several times the well-walked one.
    assert broadcast_series[0] >= 3 * broadcast_series[-1]
    # And broadcast rounds decrease (weakly) as T grows.
    violations = sum(
        1 for a, b in zip(broadcast_series, broadcast_series[1:]) if b > a
    )
    assert violations <= 1
