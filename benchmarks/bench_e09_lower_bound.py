"""E9 — Theorem 5 / Lemma 9.3: the Ω(n / log n) query lower bound.

Paper claim: any decision tree for ExpanderConn needs Ω(n/log n) edge
queries — the adversary keeps ≥ 1 hard-family member alive until
``k / max-multiplicity`` queries have been spent.  We play three probers
against the adversary across an 8x range of n; every one is forced past
the counting bound, and the bound itself grows like n / log n.
"""

from __future__ import annotations

import numpy as np

from repro import theory
from repro.lower_bound import (
    AdversaryGame,
    build_hard_family,
    family_edge_strategy,
    greedy_multiplicity_strategy,
    play_until_resolved,
)

SIZES = [128, 256, 512, 1024]
DEGREE = 6


def resolve_with(family, strategy_factory, seed):
    game = AdversaryGame.fresh(family)
    strategy = strategy_factory(seed) if seed is not None else strategy_factory()
    return play_until_resolved(game, strategy)


def test_e09_query_lower_bound(benchmark, report):
    rows = []
    bounds = []
    for n in SIZES:
        family = build_hard_family(n, DEGREE, rng=n)
        bound = family.query_lower_bound()
        bounds.append(bound)
        greedy = resolve_with(family, lambda: greedy_multiplicity_strategy(), None)
        edges = resolve_with(family, family_edge_strategy, n + 1)
        rows.append(
            [
                n,
                family.size,
                family.max_multiplicity,
                bound,
                greedy["queries"],
                edges["queries"],
                f"{theory.lower_bound_queries(n, c=family.size / n):.0f}",
            ]
        )
        assert greedy["queries"] >= bound
        assert edges["queries"] >= bound

    family = build_hard_family(SIZES[0], DEGREE, rng=SIZES[0])
    benchmark.pedantic(
        resolve_with, args=(family, family_edge_strategy, 7), rounds=1, iterations=1
    )

    report(
        "E09",
        "ExpanderConn query complexity vs adversary (Lemma 9.3)",
        ["n", "family k", "max mult", "k/mult floor", "greedy queries",
         "edge-prober queries", "Ω(n/log n) shape"],
        rows,
        notes=(
            "Expected shape: every strategy's query count sits on or above "
            "the k/multiplicity floor, which grows ~ n/log n; Theorem 5 "
            "converts this to Ω(log_s n) MPC rounds via [53]."
        ),
    )

    # The floor itself must grow superlinearly in n/log n terms: an 8x n
    # gives ≥ 4x the floor.
    assert bounds[-1] >= 4 * bounds[0]
