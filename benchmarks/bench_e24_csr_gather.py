"""E24 shim — the experiment lives in ``repro.bench.experiments``.

CLI equivalent: ``python -m repro.bench --suite full --filter e24``.
The case sweeps the CSR toggle explicitly (``use_csr(True)`` vs
``use_csr(False)`` scopes) on both the sharded and process backends, so
it ignores ``BENCH_BACKEND``; set ``BENCH_WORKERS=N`` to resize the
pool (default 2).
"""


def test_e24_csr_gather(bench_case):
    bench_case("e24_csr_gather")
