"""E7 — Lemmas 6.4/6.7: quadratic component growth.

Paper claims: phase ``i`` of ``GrowComponents`` on fresh ``G(n, Δ·s)``
batches produces components of size ``J(1±ε)Δ_i/ΔK`` with the contraction
graph ``J(1±ε)Δ_{i+1}·sK``-almost-regular — sizes square each phase
(``Δ_i = Δ^{2^{i-1}}``), against the constant factor of classical leader
election.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Interval
from repro.core import grow_components
from repro.graph import paper_random_graph_edges
from repro.utils.rng import spawn_rngs

N = 20_000
GROWTH = 4
OVERSAMPLE = 10
PHASES = 2


def run_grow(seed: int):
    rngs = spawn_rngs(seed, PHASES)
    half = GROWTH * OVERSAMPLE // 2
    batches = [paper_random_graph_edges(N, half, rng) for rng in rngs]
    schedule = [GROWTH ** (2 ** (i - 1)) for i in range(1, PHASES + 1)]
    return grow_components(N, batches, schedule, rng=seed)


def test_e07_quadratic_growth(benchmark, report):
    seed = 51
    result = benchmark.pedantic(run_grow, args=(seed,), rounds=1, iterations=1)

    rows = []
    for t in result.telemetry:
        target_size = GROWTH ** (2**t.phase - 1)
        size_interval = Interval.one_pm(0.5) * target_size
        rows.append(
            [
                t.phase,
                t.growth_target,
                f"{t.leader_prob:.4f}",
                t.components_before,
                t.components_after,
                f"{t.mean_component_size:.1f}",
                target_size,
                "yes" if size_interval.contains(t.mean_component_size) else "NO",
                f"{t.mean_contraction_degree:.1f}",
                t.unmatched,
            ]
        )

    report(
        "E07",
        "GrowComponents: per-phase growth (Lemma 6.7; Δ_i = Δ^{2^{i-1}})",
        ["phase", "Δ_i", "p_i", "comps before", "comps after", "mean size",
         "target Δ^{2^i-1}", "in J(1±.5)K", "contraction deg", "unmatched"],
        rows,
        notes=(
            "Expected shape: mean component size ≈ 4 after phase 1 and "
            "≈ 64 after phase 2 (squared growth); contraction degree "
            "multiplies by ≈ Δ between phases (Claims 6.9/6.10)."
        ),
    )

    t1, t2 = result.telemetry
    assert Interval.one_pm(0.5).scale(GROWTH).contains(t1.mean_component_size)
    assert Interval.one_pm(0.6).scale(GROWTH**3).contains(t2.mean_component_size)
    # Degree roughly squares (ratio ≈ GROWTH within 2x slack).
    ratio = t2.mean_contraction_degree / t1.mean_contraction_degree
    assert GROWTH / 2 <= ratio <= GROWTH * 2


def test_e07_equipartition_interval(benchmark, report):
    """Lemma 6.4 head-on: star sizes concentrate in J(1±3ε)dK."""
    from repro.core import leader_election
    from repro.graph import paper_random_graph

    seed = 53
    d, s = 25, 60
    n = 6000

    def run():
        rng = np.random.default_rng(seed)
        g = paper_random_graph(n, d * s, rng=rng)
        edges = g.simplify().edges
        return leader_election(n, edges, 1.0 / d, rng=rng)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    sizes = result.component_sizes()
    interval = Interval.one_pm(0.4) * d
    inside = float(np.mean([interval.low <= x <= interval.high for x in sizes]))
    matched = float(np.mean(result.leader_of >= 0))
    report(
        "E07b",
        "LeaderElection equipartition (Lemma 6.4)",
        ["n", "degree d·s", "p=1/d", "mean |S_i|", "frac in J(1±0.4)dK", "matched"],
        [[n, d * s, f"{1/d:.3f}", f"{sizes.mean():.1f}", f"{inside:.3f}",
          f"{matched:.4f}"]],
    )
    assert matched > 0.99
    assert inside > 0.85
