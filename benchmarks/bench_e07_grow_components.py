"""E7 shim — the experiment lives in ``repro.bench.experiments``.

CLI equivalent: ``python -m repro.bench --suite full --filter e07``.
This pytest entry point keeps the bench runnable as a test
(``BENCH_SUITE=smoke|full`` selects the parameter tier).
"""


def test_e07_quadratic_growth(bench_case):
    bench_case("e07_quadratic_growth")


def test_e07_equipartition_interval(bench_case):
    bench_case("e07b_equipartition")
