"""E22 shim — the experiment lives in ``repro.bench.experiments``.

CLI equivalent: ``python -m repro.bench --suite full --filter e22``.
Set ``BENCH_ENGINE`` / ``BENCH_BACKEND`` to route the oracle-recompute
fallback through a different connectivity engine or execution backend;
the sketch-update path itself is backend-independent.
"""


def test_e22_streaming_updates(bench_case):
    bench_case("e22_streaming_updates")
