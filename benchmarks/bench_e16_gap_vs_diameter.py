"""E16 — Section 1.3: spectral-gap vs diameter parametrisation.

Paper claim: this paper's ``O(log log n + log(1/λ))`` and Andoni et al.'s
``O(log D · log log n)`` are *incomparable* — ``D = O(log n/λ)`` always,
but a dumbbell (two expanders + one bridge) has tiny gap with tiny
diameter (diameter algorithm wins), while on well-connected graphs the
gap algorithm's parameter is the stronger one.  Expected shape: each
algorithm's cost tracks *its own* parameter across the instance family —
exponentiation phases follow ``log D`` and ignore λ; pipeline walk lengths
follow ``log(1/λ)`` and ignore D.
"""

from __future__ import annotations

import numpy as np

import repro
from repro.baselines import exponentiation_components
from repro.graph import (
    components_agree,
    connected_components,
    diameter,
    dumbbell_graph,
    expander_path,
    permutation_regular_graph,
    spectral_gap,
)
from repro.mpc import MPCEngine

CONFIG = repro.PipelineConfig(
    delta=0.5, expander_degree=4, max_walk_length=2048, oversample=6
)


def instances(seed: int) -> dict:
    return {
        "expander (λ big, D small)": permutation_regular_graph(384, 8, rng=seed),
        "dumbbell (λ tiny, D small)": dumbbell_graph(192, 8, bridges=1, rng=seed),
        "chain x8 (λ tiny, D big)": expander_path(8, 48, 8, rng=seed),
        "chain x16 (λ tinier, D bigger)": expander_path(16, 24, 8, rng=seed),
    }


def run_both(graph, seed: int):
    gap = spectral_gap(graph)
    diam = diameter(graph, rng=seed)

    engine = MPCEngine(4096)
    exp_result = exponentiation_components(graph, engine=engine)
    assert components_agree(exp_result.labels, connected_components(graph))
    exp_rounds = engine.rounds

    engine = MPCEngine(4096)
    pipe_result = repro.mpc_connected_components(
        graph, gap, config=CONFIG, rng=seed, engine=engine
    )
    assert components_agree(pipe_result.labels, connected_components(graph))
    return gap, diam, exp_result.phases, exp_rounds, pipe_result


def test_e16_gap_vs_diameter(benchmark, report):
    seed = 19
    rows = []
    stats = {}
    for name, graph in instances(seed).items():
        gap, diam, phases, exp_rounds, pipe = run_both(graph, seed)
        stats[name] = (gap, diam, phases, pipe.walk_length)
        rows.append(
            [
                name,
                f"{gap:.4f}",
                diam,
                phases,
                exp_rounds,
                pipe.walk_length,
                pipe.rounds,
            ]
        )

    benchmark.pedantic(
        run_both, args=(instances(seed)["dumbbell (λ tiny, D small)"], seed),
        rounds=1, iterations=1,
    )

    report(
        "E16",
        "Gap vs diameter parametrisation (Section 1.3 comparison with [6])",
        ["instance", "gap λ", "diam D", "[6] phases", "[6] rounds",
         "pipeline walk T", "pipeline rounds"],
        rows,
        notes=(
            "Expected shape: exponentiation phases follow log D and are "
            "blind to λ (dumbbell as cheap as the expander); the pipeline's "
            "walk length follows log(1/λ) and is blind to D (the dumbbell "
            "is its worst case despite D = O(log n)). The parametrisations "
            "are incomparable, exactly as Section 1.3 argues."
        ),
    )

    expander = stats["expander (λ big, D small)"]
    dumbbell = stats["dumbbell (λ tiny, D small)"]
    chain16 = stats["chain x16 (λ tinier, D bigger)"]
    # [6]'s cost ignores λ: dumbbell no more expensive than the expander +1.
    assert dumbbell[2] <= expander[2] + 1
    # [6]'s cost follows D: the long chain needs more phases than dumbbell.
    assert chain16[2] > dumbbell[2]
    # The pipeline's cost follows λ: dumbbell walks far longer than the
    # expander (up to the configured cap).
    assert dumbbell[3] >= 3 * expander[3]
