"""E16 shim — the experiment lives in ``repro.bench.experiments``.

CLI equivalent: ``python -m repro.bench --suite full --filter e16``.
This pytest entry point keeps the bench runnable as a test
(``BENCH_SUITE=smoke|full`` selects the parameter tier).
"""


def test_e16_gap_vs_diameter(bench_case):
    bench_case("e16_gap_vs_diameter")
