"""E11 shim — the experiment lives in ``repro.bench.experiments``.

CLI equivalent: ``python -m repro.bench --suite full --filter e11``.
This pytest entry point keeps the bench runnable as a test
(``BENCH_SUITE=smoke|full`` selects the parameter tier).
"""


def test_e11_connectivity_threshold(bench_case):
    bench_case("e11_connectivity_threshold")


def test_e11_regularity_and_mixing(bench_case):
    bench_case("e11b_regularity_mixing")
