"""E11 — Propositions 2.3–2.5: properties of the G(n, d) model.

Paper claims: (2.3) almost-regularity with discrepancy
``ε = sqrt(4 log n / d)``; (2.4) connectivity w.p. ``1 - n^{-c/4}`` at
``d = c log n``; (2.5) expansion / mixing time ``O(d² log(n/γ))``.
Expected shape: a connectivity phase transition around ``d ≈ log n``, and
mixing far below the (loose) d² bound.
"""

from __future__ import annotations

import numpy as np

from repro.graph import (
    component_count,
    empirical_mixing_time,
    paper_random_graph,
    spectral_gap,
)

N = 512
TRIALS = 20


def connectivity_rate(n: int, d: int, trials: int, seed: int) -> float:
    rng = np.random.default_rng(seed)
    hits = 0
    for _ in range(trials):
        if component_count(paper_random_graph(n, d, rng)) == 1:
            hits += 1
    return hits / trials


def test_e11_connectivity_threshold(benchmark, report):
    log_n = np.log(N)
    factors = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
    rows = []
    rates = []
    for c in factors:
        d = max(2, int(c * log_n))
        rate = connectivity_rate(N, d, TRIALS, seed=int(c * 100))
        rates.append(rate)
        rows.append([f"{c:.2f}", d, f"{rate:.2f}"])

    benchmark.pedantic(
        connectivity_rate, args=(N, int(log_n), TRIALS, 0), rounds=1, iterations=1
    )

    report(
        "E11",
        "G(n,d) connectivity phase transition (Prop. 2.4), n=512",
        ["c (d = c·log n)", "d", "connected rate"],
        rows,
        notes=(
            "Expected shape: rate ≈ 0 well below the log n threshold, "
            "→ 1 above it (Prop 2.4's 1 - n^{-c/4})."
        ),
    )

    assert rates[0] < 0.5
    assert rates[-1] == 1.0


def test_e11_regularity_and_mixing(benchmark, report):
    rows = []
    n = 256
    for c in (4, 8, 16):
        d = int(c * np.log(n))
        g = paper_random_graph(n, d, rng=c)
        eps_pred = float(np.sqrt(4 * np.log(n) / d))
        degrees = np.asarray(g.degrees)
        eps_seen = float(np.abs(degrees - d).max() / d)
        gap = spectral_gap(g)
        t_mix = empirical_mixing_time(g, 1e-2)
        bound = d**2 * np.log(n / 1e-2)  # Prop 2.5's (loose) bound
        rows.append(
            [
                d,
                f"{eps_pred:.3f}",
                f"{eps_seen:.3f}",
                f"{gap:.3f}",
                t_mix,
                f"{bound:.0f}",
            ]
        )
        assert eps_seen <= 2 * eps_pred  # Prop 2.3 with whp slack
        assert t_mix <= bound            # Prop 2.5

    benchmark.pedantic(
        lambda: empirical_mixing_time(paper_random_graph(n, 40, rng=0), 1e-2),
        rounds=1,
        iterations=1,
    )

    report(
        "E11b",
        "G(n,d) almost-regularity (Prop 2.3) and mixing (Prop 2.5), n=256",
        ["d", "ε predicted", "ε observed", "λ₂", "T_mix(0.01)", "d²log(n/γ) bound"],
        rows,
        notes=(
            "Expected shape: observed discrepancy within the predicted "
            "sqrt(4 log n/d); mixing time far below the loose d² bound "
            "(footnote 4 concedes the d² is an artifact of the simple proof)."
        ),
    )
