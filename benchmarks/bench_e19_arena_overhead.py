"""E19 shim — the experiment lives in ``repro.bench.experiments``.

CLI equivalent: ``python -m repro.bench --suite full --filter e19``.
The case itself always exercises the ``ProcessBackend`` and sweeps the
arena toggle explicitly (``arena=True`` vs ``arena=False`` instances),
so it ignores ``BENCH_BACKEND`` and ``BENCH_ARENA``; set
``BENCH_WORKERS=N`` to resize the pool (default 2).
"""


def test_e19_arena_overhead(bench_case):
    bench_case("e19_arena_overhead")
