"""E23 shim — the experiment lives in ``repro.bench.experiments``.

CLI equivalent: ``python -m repro.bench --suite full --filter e23``.
The service side is pinned to the ``rpc`` wire backend (the subject
under test); ``BENCH_ENGINE`` routes both the resident service and the
single-client reference through a different connectivity engine.
"""


def test_e23_rpc_service(bench_case):
    bench_case("e23_rpc_service")
