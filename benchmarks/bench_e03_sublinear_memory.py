"""E3 — Theorem 2: rounds vs machine memory on arbitrary graphs.

Paper claim: ``SublinearConn`` finds components of *any* graph in
``O(log log n + log(n/s))`` rounds with memory ``s = n^{Ω(1)}``.  Expected
shape: rounds fall as ``s`` grows (through the shorter degree-boosting
walks), on workloads with no spectral-gap structure at all.
"""

from __future__ import annotations

import numpy as np

from repro import theory
from repro.core import sublinear_connectivity
from repro.graph import (
    components_agree,
    connected_components,
    grid_graph,
    paper_random_graph,
    path_graph,
)

N = 1024
MEMORIES = [32, 64, 128, 256, 512]


def workloads(seed: int) -> dict:
    return {
        "path": path_graph(N),
        "grid": grid_graph(32, 32),
        "sparse-random": paper_random_graph(N, 4, rng=seed),
    }


def run_one(graph, memory: int, seed: int):
    result = sublinear_connectivity(graph, machine_memory=memory, rng=seed, walk_cap=4000)
    assert components_agree(result.labels, connected_components(graph))
    return result


def test_e03_sublinear_memory(benchmark, report):
    seed = 17
    rows = []
    per_workload: "dict[str, list[int]]" = {}
    for name, graph in workloads(seed).items():
        per_workload[name] = []
        for memory in MEMORIES:
            result = run_one(graph, memory, seed)
            per_workload[name].append(result.rounds)
            rows.append(
                [
                    name,
                    memory,
                    result.degree_target,
                    result.walk_length,
                    result.contracted_vertices,
                    result.rounds,
                    f"{theory.theorem2_rounds(N, memory):.1f}",
                ]
            )

    benchmark.pedantic(
        run_one, args=(path_graph(N), MEMORIES[0], seed), rounds=1, iterations=1
    )

    report(
        "E03",
        "SublinearConn rounds vs machine memory (Theorem 2)",
        ["workload", "s", "d", "walk t", "|V(H)|", "rounds", "Thm2 shape"],
        rows,
        notes=(
            "Expected shape: rounds fall as s grows — log(n/s) through the "
            "walk length; exactness holds on every workload (no gap "
            "assumptions)."
        ),
    )

    for name, series in per_workload.items():
        assert series[-1] <= series[0], name
        # Weak monotonicity: allow one inversion from rounding.
        violations = sum(1 for a, b in zip(series, series[1:]) if b > a)
        assert violations <= 1, name
