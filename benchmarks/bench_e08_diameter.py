"""E8 shim — the experiment lives in ``repro.bench.experiments``.

CLI equivalent: ``python -m repro.bench --suite full --filter e08``.
This pytest entry point keeps the bench runnable as a test
(``BENCH_SUITE=smoke|full`` selects the parameter tier).
"""


def test_e08_contraction_diameter(bench_case):
    bench_case("e08_contraction_diameter")
