"""E13 shim — the experiment lives in ``repro.bench.experiments``.

CLI equivalent: ``python -m repro.bench --suite full --filter e13``.
This pytest entry point keeps the bench runnable as a test
(``BENCH_SUITE=smoke|full`` selects the parameter tier).
"""


def test_e13_sketch_success_and_size(bench_case):
    bench_case("e13_sketch")
