"""E13 — Proposition 8.1: the AGM sketch.

Paper claim: O(log³ n)-bit per-vertex messages let a single coordinator
output all connected components w.h.p.  Expected shape: decode success
≈ 1 across seeds and workloads; message size grows polylogarithmically
while n grows 16x.
"""

from __future__ import annotations

import numpy as np

from repro.graph import (
    community_graph,
    components_agree,
    connected_components,
    cycle_graph,
    paper_random_graph,
)
from repro.sketch import AGMSketch, agm_connected_components

SIZES = [64, 256, 1024]
SEEDS_PER_CASE = 10


def decode_success_rate(make_graph, n: int, seeds: int) -> float:
    hits = 0
    for seed in range(seeds):
        g = make_graph(n, seed)
        try:
            labels, _ = agm_connected_components(g, rng=seed)
        except RuntimeError:
            continue
        if components_agree(labels, connected_components(g)):
            hits += 1
    return hits / seeds


def test_e13_sketch_success_and_size(benchmark, report):
    workloads = {
        "cycle": lambda n, seed: cycle_graph(n),
        "sparse random": lambda n, seed: paper_random_graph(n, 4, rng=seed),
        "communities": lambda n, seed: community_graph(
            [n // 2, n // 4, n // 4], 6, rng=seed
        )[0],
    }
    rows = []
    for n in SIZES:
        words = AGMSketch.from_graph(cycle_graph(n), rng=0).words_per_vertex()
        for name, make in workloads.items():
            rate = decode_success_rate(make, n, SEEDS_PER_CASE)
            rows.append([n, name, f"{rate:.2f}", words, 8 * words])
            assert rate >= 0.9, (n, name)

    benchmark.pedantic(
        decode_success_rate,
        args=(workloads["sparse random"], SIZES[0], 3),
        rounds=1,
        iterations=1,
    )

    small_words = AGMSketch.from_graph(cycle_graph(SIZES[0]), rng=0).words_per_vertex()
    large_words = AGMSketch.from_graph(cycle_graph(SIZES[-1]), rng=0).words_per_vertex()

    report(
        "E13",
        "AGM sketch: decode success and message size (Prop. 8.1)",
        ["n", "workload", "success rate", "words/vertex", "bytes/vertex"],
        rows,
        notes=(
            f"Message growth: {small_words} → {large_words} words while n "
            f"grew {SIZES[-1] // SIZES[0]}x — polylog, consistent with "
            "O(log³ n) bits."
        ),
    )

    assert large_words <= 4 * small_words
