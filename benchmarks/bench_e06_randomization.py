"""E6 — Lemma 5.1: the randomization step's output distribution.

Paper claims: after walks of mixing length, every component becomes (TV-
close to) a sample of ``G(n_i, Θ(log n))`` on its own vertex set — walk
targets near-uniform within the component, never crossing components, and
the resulting graph connected per component w.h.p. (Prop. 2.4).
"""

from __future__ import annotations

import numpy as np

from repro.core import randomize_components
from repro.graph import (
    components_agree,
    connected_components,
    disjoint_union,
    permutation_regular_graph,
)

SIZES = [48, 96]
DEGREE = 6


def build(seed: int):
    parts = [permutation_regular_graph(s, DEGREE, rng=seed + i) for i, s in enumerate(SIZES)]
    union, offsets = disjoint_union(parts)
    return union, offsets


def run_one(seed: int):
    graph, offsets = build(seed)
    result = randomize_components(
        graph, 64, batches=2, batch_half_degree=8, rng=seed
    )
    return graph, offsets, result


def test_e06_randomization(benchmark, report):
    seeds = range(40, 50)
    tv_rows = []
    connected_successes = 0
    crossing_edges = 0

    for seed in seeds:
        graph, offsets, result = run_one(seed)
        truth = connected_components(graph)
        if components_agree(connected_components(result.graph), truth):
            connected_successes += 1
        for batch in result.batches:
            crossing_edges += int(
                np.sum(truth[batch[:, 0]] != truth[batch[:, 1]])
            )

    # Distributional detail on one seed: per-component target uniformity.
    graph, offsets, result = run_one(99)
    all_targets = np.concatenate([b[:, 1] for b in result.batches])
    all_sources = np.concatenate([b[:, 0] for b in result.batches])
    for comp, (lo, hi) in enumerate(zip(offsets[:-1], offsets[1:])):
        in_comp = (all_sources >= lo) & (all_sources < hi)
        targets = all_targets[in_comp]
        counts = np.bincount(targets - lo, minlength=hi - lo)
        freq = counts / counts.sum()
        tv = 0.5 * np.abs(freq - 1.0 / (hi - lo)).sum()
        tv_rows.append([f"component {comp}", int(hi - lo), int(counts.sum()),
                        f"{tv:.4f}"])
        assert tv < 0.2

    benchmark.pedantic(run_one, args=(40,), rounds=1, iterations=1)

    report(
        "E06",
        "Randomization (Lemma 5.1): uniformity, containment, connectivity",
        ["component", "n_i", "targets", "TV to uniform"],
        tv_rows,
        notes=(
            f"Across {len(list(seeds))} seeds: components preserved+connected in "
            f"{connected_successes}/{len(list(seeds))} runs; cross-component walk "
            f"edges: {crossing_edges} (must be 0 — walks cannot escape)."
        ),
    )

    assert crossing_edges == 0
    assert connected_successes >= 9
