"""E6 shim — the experiment lives in ``repro.bench.experiments``.

CLI equivalent: ``python -m repro.bench --suite full --filter e06``.
This pytest entry point keeps the bench runnable as a test
(``BENCH_SUITE=smoke|full`` selects the parameter tier).
"""


def test_e06_randomization(bench_case):
    bench_case("e06_randomization")
