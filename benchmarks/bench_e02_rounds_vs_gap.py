"""E2 shim — the experiment lives in ``repro.bench.experiments``.

CLI equivalent: ``python -m repro.bench --suite full --filter e02``.
This pytest entry point keeps the bench runnable as a test
(``BENCH_SUITE=smoke|full`` selects the parameter tier).
"""


def test_e02_rounds_vs_gap(bench_case):
    bench_case("e02_rounds_vs_gap")
