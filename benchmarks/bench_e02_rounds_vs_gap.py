"""E2 — Theorem 1/4: rounds grow as log(1/λ).

Paper claim: the pipeline costs ``O(log log n + log(1/λ))`` rounds.  We
hold n fixed and sweep the spectral gap downward by thinning the bridge
between two expanders (a dumbbell: gap ∝ bridge count), and check that
the walk length tracks ``1/λ`` and the round count tracks ``log(1/λ)``.
The engine's machine memory is held fixed across the sweep so
per-primitive costs don't drift with anything but the walk structure.
"""

from __future__ import annotations

import numpy as np

import repro
from repro import theory
from repro.graph import components_agree, connected_components, dumbbell_graph, spectral_gap
from repro.mpc import MPCEngine

HALF = 192
BRIDGES = [384, 96, 24, 6]
CONFIG = repro.PipelineConfig(
    delta=0.5, expander_degree=4, max_walk_length=8192, oversample=6
)
ENGINE_MEMORY = 4096


def run_one(bridges: int, seed: int) -> "tuple[float, int, int]":
    graph = dumbbell_graph(HALF, 8, bridges=bridges, rng=seed)
    gap = spectral_gap(graph)
    engine = MPCEngine(ENGINE_MEMORY)
    result = repro.mpc_connected_components(
        graph, spectral_gap_bound=gap, config=CONFIG, rng=seed, engine=engine
    )
    assert components_agree(result.labels, connected_components(graph))
    return gap, result.walk_length, result.rounds


def test_e02_rounds_vs_gap(benchmark, report):
    seed = 11
    rows = []
    gaps = []
    walks = []
    rounds_series = []
    for bridges in BRIDGES:
        gap, walk_length, rounds = run_one(bridges, seed)
        gaps.append(gap)
        walks.append(walk_length)
        rounds_series.append(rounds)
        rows.append(
            [
                bridges,
                f"{gap:.5f}",
                f"{np.log2(1 / gap):.1f}",
                walk_length,
                rounds,
                f"{theory.theorem1_rounds(2 * HALF, gap, delta=0.5):.1f}",
            ]
        )

    benchmark.pedantic(run_one, args=(BRIDGES[-1], seed), rounds=1, iterations=1)

    report(
        "E02",
        "MPC rounds vs spectral gap (dumbbell bridge sweep, n=384; Theorem 1)",
        ["bridges", "gap λ", "log2(1/λ)", "walk T", "rounds", "Thm1 shape"],
        rows,
        notes=(
            "Expected shape: each quartering of λ doubles the walk length "
            "T and adds ~O(1/δ) rounds (one extra pointer-doubling level); "
            "n is fixed so the log log n term is constant."
        ),
    )

    # Gap decreases along the sweep; walk length and rounds increase.
    assert all(b < a for a, b in zip(gaps, gaps[1:]))
    assert all(b >= a for a, b in zip(walks, walks[1:]))
    assert walks[-1] > walks[0]
    assert rounds_series[-1] > rounds_series[0]
