"""E10 — Proposition B.1: balls-and-bins concentration.

Paper claim: throwing N ≤ εB balls into B near-uniform bins leaves
``J(1±2ε)NK`` non-empty bins except with probability ``exp(-ε²N/2)``.
This is the engine behind Claim 6.9 (out-edges of a contracted component
hit almost-distinct components).  The table compares empirical deviation
frequencies with the bound at several (N, ε).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    nonempty_bins_interval,
    prop_b1_failure_bound,
    throw_balls,
)

CASES = [
    (500, 0.10),
    (2_000, 0.10),
    (2_000, 0.05),
    (8_000, 0.05),
]
TRIALS = 300


def deviation_rate(balls: int, eps: float, seed: int) -> "tuple[float, float]":
    rng = np.random.default_rng(seed)
    bins = int(balls / eps)
    interval = nonempty_bins_interval(balls, eps)
    failures = 0
    total_ratio = 0.0
    for _ in range(TRIALS):
        result = throw_balls(balls, bins, eps=eps / 2, rng=rng)
        total_ratio += result.ratio
        if not interval.contains(result.nonempty):
            failures += 1
    return failures / TRIALS, total_ratio / TRIALS


def test_e10_balls_bins(benchmark, report):
    rows = []
    for balls, eps in CASES:
        rate, mean_ratio = deviation_rate(balls, eps, seed=balls)
        bound = prop_b1_failure_bound(balls, eps)
        rows.append(
            [
                balls,
                f"{eps:.2f}",
                int(balls / eps),
                f"{mean_ratio:.4f}",
                f"{rate:.4f}",
                f"{bound:.2e}",
            ]
        )
        assert rate <= bound + 0.02, (balls, eps)

    benchmark.pedantic(deviation_rate, args=(500, 0.1, 500), rounds=1, iterations=1)

    report(
        "E10",
        "Balls and bins: non-empty bins in J(1±2ε)NK (Prop. B.1)",
        ["balls N", "ε", "bins B", "mean nonempty/N", "deviation rate",
         "exp(-ε²N/2) bound"],
        rows,
        notes=(
            "Expected shape: mean non-empty/N ≈ 1 (N ≪ B loses few balls "
            "to collisions); empirical deviation frequency below the "
            "Prop B.1 bound in every regime."
        ),
    )
