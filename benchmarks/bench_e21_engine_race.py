"""E21 shim — the experiment lives in ``repro.bench.experiments``.

CLI equivalent: ``python -m repro.bench --suite full --filter e21``.
The case itself always exercises the ``ProcessBackend`` and sweeps every
registered engine explicitly, so it ignores ``BENCH_BACKEND`` and the
``--engine`` axis; set ``BENCH_WORKERS=N`` to resize the pools
(default 2).
"""


def test_e21_engine_race(bench_case):
    bench_case("e21_engine_race")
