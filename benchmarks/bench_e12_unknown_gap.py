"""E12 — Corollary 7.1: unknown spectral gap.

Paper claim: geometric gap-guessing (λ' → λ'^1.1) with a growability check
finds each component after O(log log (1/λ₂)) guesses, for a total of
``O(log log n · log log(1/λ) + log(1/λ))`` rounds — without ever being
told λ.  Expected shape: well-connected components finish in the first
guess; weakly connected ones need further iterations; totals stay near
the Cor 7.1 budget.
"""

from __future__ import annotations

import numpy as np

import repro
from repro import theory
from repro.graph import (
    components_agree,
    connected_components,
    disjoint_union,
    expander_path,
    min_component_spectral_gap,
    permutation_regular_graph,
)

CONFIG = repro.PipelineConfig(
    delta=0.5, expander_degree=4, max_walk_length=1024, oversample=6,
    broadcast_budget=3,
)


def build_mixed(seed: int):
    strong = permutation_regular_graph(512, 8, rng=seed)
    weak = expander_path(24, 32, 8, rng=seed)  # long chain: tiny gap
    graph, _ = disjoint_union([strong, weak])
    return graph


def run_adaptive(seed: int):
    graph = build_mixed(seed)
    result = repro.mpc_connected_components_adaptive(
        graph, config=CONFIG, rng=seed, gap_exponent=1.7
    )
    assert components_agree(result.labels, connected_components(graph))
    return graph, result


def test_e12_unknown_gap(benchmark, report):
    seed = 71
    graph, result = benchmark.pedantic(run_adaptive, args=(seed,), rounds=1, iterations=1)

    rows = []
    for i, it in enumerate(result.iterations, 1):
        rows.append(
            [
                i,
                f"{it.gap_guess:.4f}",
                it.walk_length,
                it.rounds,
                it.finished_vertices,
                it.active_vertices,
            ]
        )

    true_gap = min_component_spectral_gap(graph)
    predicted = theory.corollary71_rounds(graph.n, max(true_gap, 1e-6), delta=0.5)
    report(
        "E12",
        "Adaptive pipeline with unknown gap (Corollary 7.1)",
        ["iter", "guess λ'", "walk T", "rounds", "finished", "still active"],
        rows,
        notes=(
            f"True minimum component gap: {true_gap:.5f}. Total rounds: "
            f"{result.rounds}; Cor 7.1 shape (c=1): {predicted:.0f}. "
            "Expected shape: the expander finishes at iteration 1; the "
            "weak chain keeps failing its growability check until the "
            "guess sinks below its gap (or the guard floor forces "
            "finalization)."
        ),
    )

    assert len(result.iterations) >= 2
    # The strong expander must be done after the first guess.
    assert result.iterations[0].finished_vertices >= 512
    assert result.iterations[-1].active_vertices == 0
    # Walk lengths grow as the guess shrinks (until the cap).
    walk_lengths = [it.walk_length for it in result.iterations]
    assert walk_lengths[-1] >= walk_lengths[0]
