"""E18 shim — the experiment lives in ``repro.bench.experiments``.

CLI equivalent: ``python -m repro.bench --suite full --filter e18
--backend process --workers 4``.  The case itself always exercises the
``ProcessBackend`` (sweeping its worker pool against the local and
sharded references), so it ignores ``BENCH_BACKEND``; set
``BENCH_WORKERS=N`` to sweep ``{1, N}`` instead of the tier default.
"""


def test_e18_parallel_scaling(bench_case):
    bench_case("e18_parallel_scaling")
