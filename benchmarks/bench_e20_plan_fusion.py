"""E20 shim — the experiment lives in ``repro.bench.experiments``.

CLI equivalent: ``python -m repro.bench --suite full --filter e20``.
The case itself always exercises the ``ProcessBackend`` and sweeps the
plan-fusion toggle explicitly (``fuse_plans=True`` vs ``fuse_plans=False``
instances), so it ignores ``BENCH_BACKEND``; set ``BENCH_WORKERS=N`` to
resize the pool (default 2).
"""


def test_e20_plan_fusion(bench_case):
    bench_case("e20_plan_fusion")
