"""E4 shim — the experiment lives in ``repro.bench.experiments``.

CLI equivalent: ``python -m repro.bench --suite full --filter e04``.
This pytest entry point keeps the bench runnable as a test
(``BENCH_SUITE=smoke|full`` selects the parameter tier).
"""


def test_e04_regularization(bench_case):
    bench_case("e04_regularization")
