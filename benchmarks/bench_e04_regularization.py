"""E4 — Lemma 4.1 / Proposition 4.2: the regularization step.

Paper claims: the replacement product yields a Δ-regular graph on 2m
vertices, with a one-to-one component correspondence, and preserves the
spectral gap up to constants (so mixing time stays O(log(n/γ)/λ₂(G))).
The table reports measured gap retention per workload, against both the
library's calibrated constant and the (very pessimistic) Prop 4.2 bound.
"""

from __future__ import annotations

import numpy as np

from repro.core import PipelineConfig, regularize
from repro.graph import (
    components_agree,
    connected_components,
    dumbbell_graph,
    hypercube_graph,
    paper_random_graph,
    spectral_gap,
    star_graph,
    two_sided_spectral_gap,
)
from repro.products import regular_graph_construction

DEGREE = 8


def workloads(seed: int) -> dict:
    return {
        "random G(n,8)": paper_random_graph(120, 8, rng=seed),
        "star n=80": star_graph(80),
        "hypercube d=7": hypercube_graph(7),
        "dumbbell": dumbbell_graph(60, 8, bridges=2, rng=seed),
    }


def run_one(graph, seed: int):
    reg = regularize(graph, expander_degree=DEGREE, rng=seed)
    return reg


def test_e04_regularization(benchmark, report):
    seed = 23
    config = PipelineConfig(expander_degree=DEGREE)
    retention_floor = config.effective_gap_retention
    rows = []
    for name, graph in workloads(seed).items():
        base_gap = spectral_gap(graph)
        reg = run_one(graph, seed)
        product_gap = spectral_gap(reg.graph)
        lifted = reg.lift_labels(connected_components(reg.graph))
        preserved = components_agree(lifted, connected_components(graph))
        clouds = regular_graph_construction(
            np.unique(np.asarray(graph.degrees)).tolist(), DEGREE, rng=seed
        )
        lam_h = min(two_sided_spectral_gap(c) for c in clouds.values())
        prop42_bound = (DEGREE**2 / (DEGREE + 1) ** 3) * base_gap * lam_h**2 / 6
        retention = product_gap / base_gap
        rows.append(
            [
                name,
                reg.graph.n,
                f"{reg.regular_degree}-reg: {reg.graph.is_regular(reg.regular_degree)}",
                "yes" if preserved else "NO",
                f"{base_gap:.4f}",
                f"{product_gap:.4f}",
                f"{retention:.3f}",
                f"{prop42_bound:.6f}",
            ]
        )
        assert reg.graph.n == 2 * graph.m
        assert preserved
        assert product_gap >= prop42_bound
        # The calibration constant is a central estimate; individual
        # workloads scatter around it (dumbbells sit a little below).
        assert retention >= retention_floor * 0.6

    benchmark.pedantic(
        run_one, args=(workloads(seed)["random G(n,8)"], seed), rounds=1, iterations=1
    )

    report(
        "E04",
        "Regularization: Lemma 4.1 structure + Prop 4.2 gap retention",
        ["workload", "2m", "regular", "components kept", "λ₂(G)", "λ₂(GrH)",
         "retention", "Prop4.2 floor"],
        rows,
        notes=(
            f"Library calibration: retention ≈ {retention_floor:.3f} "
            f"(0.8/(d+1) for d={DEGREE}); the Prop 4.2 floor is orders of "
            "magnitude below the measured retention, as expected of the "
            "worst-case constant."
        ),
    )
