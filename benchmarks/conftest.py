"""Pytest plumbing for the experiment benches.

Every ``bench_e*.py`` file is now a thin shim: the sweeps, tables, shape
checks, and JSON artifacts all live in :mod:`repro.bench` (see
``benchmarks/README.md``).  The ``bench_case`` fixture runs one
registered experiment through the shared runner, prints the table, and
persists both the text table and the ``BENCH_<name>.json`` artifact
under ``benchmarks/results/``.

Select the parameter tier with ``BENCH_SUITE=smoke|full`` (default:
``full`` — the paper-shape sweeps these files always ran), the execution
backend with ``BENCH_BACKEND=local|sharded|process`` (default:
``local``), the process-backend pool size with ``BENCH_WORKERS=N``
(default: experiment-specific), and its shared-memory arena with
``BENCH_ARENA=1|0`` (default: on; see ``docs/benchmarks.md``).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro import bench

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
SUITE = os.environ.get("BENCH_SUITE", "full")
BACKEND = os.environ.get("BENCH_BACKEND", "local")
WORKERS = int(os.environ["BENCH_WORKERS"]) if "BENCH_WORKERS" in os.environ else None
def _parse_arena(value: str) -> bool:
    """Strict boolean parse for BENCH_ARENA: a typo must not silently
    measure the wrong mode."""
    normalized = value.strip().lower()
    if normalized in ("1", "true", "yes", "on"):
        return True
    if normalized in ("0", "false", "no", "off"):
        return False
    raise ValueError(
        f"BENCH_ARENA must be one of 1/0/true/false/yes/no/on/off, "
        f"got {value!r}"
    )


ARENA = _parse_arena(os.environ["BENCH_ARENA"]) if "BENCH_ARENA" in os.environ else None


def pytest_collection_modifyitems(items):
    for item in items:
        if "benchmarks" in str(item.fspath):
            item.add_marker(pytest.mark.bench)
            item.add_marker(pytest.mark.slow)


@pytest.fixture
def bench_case():
    """``bench_case(name)`` — run one registered benchmark and persist it."""

    def _run(name: str) -> bench.CaseResult:
        result = bench.run_case(
            name, suite=SUITE, backend=BACKEND, workers=WORKERS, arena=ARENA
        )
        text = bench.render_case(result)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{result.name}.txt").write_text(text + "\n")
        bench.write_case_json(result, RESULTS_DIR)
        print("\n" + text)
        return result

    return _run
