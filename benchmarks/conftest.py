"""Shared helpers for the experiment benches.

Each bench regenerates one experiment from DESIGN.md's per-experiment
index (E1–E14), prints a human-readable table, and writes it to
``benchmarks/results/`` so ``EXPERIMENTS.md`` can reference stable
artefacts.  Timing is secondary (pytest-benchmark records it); the tables
carry the paper-shape comparisons.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def format_table(title: str, headers: "list[str]", rows: "list[list]") -> str:
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@pytest.fixture
def report():
    """``report(experiment_id, title, headers, rows, notes=...)`` —
    print and persist one experiment table."""

    def _report(
        experiment_id: str,
        title: str,
        headers: "list[str]",
        rows: "list[list]",
        notes: str = "",
    ) -> str:
        text = format_table(f"[{experiment_id}] {title}", headers, rows)
        if notes:
            text += f"\n\n{notes}"
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{experiment_id.lower()}.txt").write_text(text + "\n")
        print("\n" + text)
        return text

    return _report
