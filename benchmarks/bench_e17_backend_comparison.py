"""E17 shim — the experiment lives in ``repro.bench.experiments``.

CLI equivalent: ``python -m repro.bench --suite full --filter e17``.
The case itself runs the pipeline on *both* execution backends (local
accounting vs enforced numpy shards) and differential-checks them, so it
ignores ``BENCH_BACKEND``; that variable steers the single-backend
pipeline cases (e.g. E1).
"""


def test_e17_backend_comparison(bench_case):
    bench_case("e17_backend_comparison")
