"""E5 shim — the experiment lives in ``repro.bench.experiments``.

CLI equivalent: ``python -m repro.bench --suite full --filter e05``.
This pytest entry point keeps the bench runnable as a test
(``BENCH_SUITE=smoke|full`` selects the parameter tier).
"""


def test_e05_walk_rounds_and_survival(bench_case):
    bench_case("e05_walk_rounds")


def test_e05_independence_completion(bench_case):
    bench_case("e05b_walk_independence")
