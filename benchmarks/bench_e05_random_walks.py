"""E5 — Theorem 3 / Lemma 5.3: the layered-graph walk structure.

Paper claims: (i) walks of length t for *all* vertices cost O(log t)
rounds (pointer doubling over the sampled layered graph); (ii) each
distinguished start's path survives the disjointness test with
probability ≥ 1/2, so Θ(log n) parallel repetitions give every vertex an
independent walk.
"""

from __future__ import annotations

import numpy as np

from repro.core import independent_random_walks, simple_random_walk
from repro.graph import permutation_regular_graph
from repro.mpc import MPCEngine

N = 128
DEGREE = 4
LENGTHS = [8, 32, 128, 512]


def rounds_for_length(t: int, seed: int) -> "tuple[int, float]":
    graph = permutation_regular_graph(N, DEGREE, rng=seed)
    engine = MPCEngine.for_delta(N * t * t, 0.5)
    run = simple_random_walk(graph, t, rng=seed, engine=engine)
    return engine.rounds, float(run.independent.mean())


def test_e05_walk_rounds_and_survival(benchmark, report):
    seed = 29
    rows = []
    rounds_series = []
    for t in LENGTHS:
        rounds, survival = rounds_for_length(t, seed)
        rounds_series.append(rounds)
        rows.append([t, int(np.log2(t)), rounds, f"{survival:.3f}"])
        assert survival >= 0.5, f"Lemma 5.3 violated at t={t}"

    benchmark.pedantic(rounds_for_length, args=(LENGTHS[-1], seed), rounds=1, iterations=1)

    # Rounds grow ~linearly in log t: quadrupling t should add a bounded
    # number of rounds, far sublinear in t itself.
    deltas = [b - a for a, b in zip(rounds_series, rounds_series[1:])]
    assert max(deltas) <= 16
    assert rounds_series[-1] < rounds_series[0] * 8

    report(
        "E05",
        "SimpleRandomWalk: rounds vs walk length + path survival (Thm 3)",
        ["walk t", "log2 t", "MPC rounds", "survival rate"],
        rows,
        notes=(
            "Expected shape: rounds grow with log t (pointer doubling), "
            "not t; survival ≥ 1/2 at every length (Lemma 5.3), so "
            "Θ(log n) parallel runs suffice for full independence."
        ),
    )


def test_e05_independence_completion(benchmark, report):
    """All vertices obtain independent walks within the Θ(log n) budget."""
    seed = 31
    graph = permutation_regular_graph(N, DEGREE, rng=seed)

    def run():
        return independent_random_walks(graph, 16, rng=seed, max_runs=24)

    targets = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.all(targets >= 0)
    report(
        "E05b",
        "Independent walks for every vertex (Theorem 3 wrapper)",
        ["n", "walk t", "all vertices served"],
        [[N, 16, "yes"]],
    )
