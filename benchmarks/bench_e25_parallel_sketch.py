"""E25 shim — the experiment lives in ``repro.bench.experiments``.

CLI equivalent: ``python -m repro.bench --suite full --filter e25``.
Part A shards on an explicit ``ShardedBackend`` and Part B/C construct
their own ``process``/``rpc`` ingest backends, so the case ignores
``BENCH_BACKEND``; set ``BENCH_WORKERS=N`` to resize the pools
(default 2).  The warm-pool speedup gate arms only on multi-CPU hosts.
"""


def test_e25_parallel_sketch(bench_case):
    bench_case("e25_parallel_sketch")
