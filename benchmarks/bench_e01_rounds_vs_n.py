"""E1 shim — the experiment lives in ``repro.bench.experiments``.

CLI equivalent: ``python -m repro.bench --suite full --filter e01``.
This pytest entry point keeps the bench runnable as a test
(``BENCH_SUITE=smoke|full`` selects the parameter tier).
"""


def test_e01_rounds_vs_n(bench_case):
    bench_case("e01_rounds_vs_n")
