"""E1 — Theorem 1/4 headline: rounds vs n on well-connected graphs.

Paper claim: ``O(log log n)`` MPC rounds for graphs whose components have
constant spectral gap, against the ``Θ(log n)`` of classical leader
election / label propagation.  Expected shape: the pipeline column is
(nearly) flat across a 64x range of n; every baseline column climbs.
"""

from __future__ import annotations

import numpy as np

import repro
from repro import theory
from repro.baselines import pointer_jumping_propagation, random_mate_components
from repro.graph import components_agree, connected_components, permutation_regular_graph
from repro.mpc import MPCEngine

SIZES = [256, 1024, 4096, 16384]
CONFIG = repro.PipelineConfig(
    delta=0.5, expander_degree=4, max_walk_length=160, oversample=6
)


def pipeline_rounds(n: int, seed: int) -> int:
    graph = permutation_regular_graph(n, 6, rng=seed)
    result = repro.mpc_connected_components(
        graph, spectral_gap_bound=0.25, config=CONFIG, rng=seed
    )
    assert components_agree(result.labels, connected_components(graph))
    return result.rounds


def baseline_rounds(n: int, seed: int) -> "tuple[int, int]":
    graph = permutation_regular_graph(n, 6, rng=seed)
    engine_h = MPCEngine.for_delta(graph.n + graph.m, 0.5)
    pointer_jumping_propagation(graph, engine=engine_h)
    engine_r = MPCEngine.for_delta(graph.n + graph.m, 0.5)
    random_mate_components(graph, rng=seed, engine=engine_r)
    return engine_h.rounds, engine_r.rounds


def test_e01_rounds_vs_n(benchmark, report):
    seed = 3
    rows = []
    ours = {}
    mates = {}
    for n in SIZES:
        ours[n] = pipeline_rounds(n, seed)
        htm, mates[n] = baseline_rounds(n, seed)
        rows.append(
            [
                n,
                ours[n],
                htm,
                mates[n],
                f"{theory.theorem1_rounds(n, 0.25, delta=0.5):.1f}",
                f"{theory.classical_pram_rounds(n):.1f}",
            ]
        )

    benchmark.pedantic(pipeline_rounds, args=(SIZES[-1], seed), rounds=1, iterations=1)

    report(
        "E01",
        "MPC rounds vs n on constant-gap expanders (Theorem 1)",
        ["n", "pipeline", "hash-to-min", "random-mate", "Thm1 shape", "log n shape"],
        rows,
        notes=(
            "Expected shape: pipeline ~flat (log log n); baselines climb "
            "(log n). Absolute crossover lies beyond laptop n — the paper's "
            "win is asymptotic; the shape is the reproduced result."
        ),
    )

    # Shape assertions: over a 64x range the pipeline may not grow faster
    # than the doubly-log budget, while random-mate must keep climbing.
    assert ours[SIZES[-1]] - ours[SIZES[0]] <= 8
    assert mates[SIZES[-1]] >= mates[SIZES[0]] + 8
