"""Connectivity service: concurrency differential, cache keying, errors.

The load-bearing property: N clients hammering one server with
interleaved queries over *distinct* graphs each receive responses
bit-identical to a single-client ``mpc_connected_components`` run —
and the digest-keyed cache never bleeds across graphs (one compute per
distinct graph, no matter how many concurrent duplicates ask).
"""

import threading

import numpy as np
import pytest

import repro
from repro.bench.workloads import Workload
from repro.mpc import RpcBackend, graph_digest
from repro.mpc.rpc import RpcTimeoutError
from repro.service import ServiceClient, ServiceError, ServiceServer
from repro.streaming import StreamingConnectivity

SEED = 23
CONFIG = repro.PipelineConfig(
    delta=0.5, expander_degree=4, max_walk_length=32, oversample=4,
    max_phases=2,
)

#: Distinct-structure graphs for the concurrency differential.
FAMILIES = ["dumbbell", "cycle", "grid", "star"]


def build(family, n=96):
    return Workload(family, n).build(SEED)


def reference_labels(graph, engine="liu_tarjan"):
    return repro.mpc_connected_components(
        graph, 0.1, config=CONFIG, rng=SEED, engine=engine
    ).labels


@pytest.fixture(scope="module")
def server():
    with ServiceServer(engine="liu_tarjan", config=CONFIG, seed=SEED) as srv:
        yield srv


class TestConcurrencyDifferential:
    def test_concurrent_clients_bit_identical_no_cache_bleed(self, server):
        graphs = {family: build(family) for family in FAMILIES}
        refs = {
            family: reference_labels(graph)
            for family, graph in graphs.items()
        }
        results: dict = {}
        errors: list = []

        def hammer(client_id):
            try:
                with ServiceClient(server.address) as client:
                    collected = {}
                    # Interleave queries across every graph so cache
                    # entries for different digests are hot at once.
                    digests = {
                        family: client.put_graph(graph.n, graph.edges)
                        for family, graph in graphs.items()
                    }
                    for family, digest in digests.items():
                        collected[family] = {
                            "digest": digest,
                            "labels": client.components(digest),
                            "count": client.component_count(digest),
                        }
                    for family, digest in digests.items():
                        pairs = np.column_stack(
                            [np.arange(20), np.arange(1, 21)]
                        )
                        collected[family]["connected"] = client.connected(
                            digest, pairs
                        )
                    results[client_id] = collected
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not errors, errors[:2]
        assert len(results) == 8
        expected_digests = {
            family: graph_digest(graph.n, graph.edges)
            for family, graph in graphs.items()
        }
        for collected in results.values():
            for family, graph in graphs.items():
                got = collected[family]
                ref = refs[family]
                # Bit-identical to the single-client pipeline run.
                assert got["digest"] == expected_digests[family]
                assert np.array_equal(got["labels"], ref)
                assert got["count"] == int(ref.max()) + 1
                pairs = np.column_stack([np.arange(20), np.arange(1, 21)])
                assert np.array_equal(
                    got["connected"], ref[pairs[:, 0]] == ref[pairs[:, 1]]
                )
        # Cache keyed correctly: one compute per distinct graph, ever —
        # 8 concurrent clients × 4 graphs × 3 query ops all served from
        # 4 computations.
        stats = server.stats()
        assert stats["computes"] == len(FAMILIES)
        assert stats["graphs"] == len(FAMILIES)
        assert stats["cache_misses"] == len(FAMILIES)
        assert stats["cache_hits"] >= 8 * len(FAMILIES) * 3 - len(FAMILIES)
        assert 0.0 < stats["hit_rate"] < 1.0

    def test_distinct_graphs_distinct_digests(self, server):
        with ServiceClient(server.address) as client:
            digests = {
                client.put_graph(graph.n, graph.edges)
                for graph in (build(family) for family in FAMILIES)
            }
        assert len(digests) == len(FAMILIES)


class TestServiceSemantics:
    def test_unknown_digest_is_typed(self, server):
        with ServiceClient(server.address) as client:
            with pytest.raises(ServiceError, match="unknown graph digest"):
                client.components("nope")
            with pytest.raises(ServiceError, match="unknown graph digest"):
                client.connected("nope", [[0, 1]])

    def test_malformed_pairs_are_typed(self, server):
        graph = build("cycle")
        with ServiceClient(server.address) as client:
            digest = client.put_graph(graph.n, graph.edges)
            with pytest.raises(ServiceError, match="out of range"):
                client.connected(digest, [[0, graph.n + 5]])

    def test_put_graph_is_idempotent(self, server):
        graph = build("grid")
        with ServiceClient(server.address) as client:
            first = client.put_graph(graph.n, graph.edges)
            before = client.stats()["computes"]
            client.components(first)
            second = client.put_graph(graph.n, graph.edges)
            assert second == first
            client.components(second)
            assert client.stats()["computes"] == max(before, 1)

    def test_ping_and_stats(self, server):
        with ServiceClient(server.address) as client:
            assert client.ping()
            stats = client.stats()
            assert stats["engine"] == "liu_tarjan"
            assert stats["backend"] == "local"

    def test_connect_failure_is_typed(self, tmp_path):
        with pytest.raises(ServiceError, match="cannot connect"):
            ServiceClient(str(tmp_path / "nowhere.sock"), connect_timeout=0.5)

    def test_call_timeout_is_typed(self, server):
        # Clog the single-thread compute executor so a components query
        # for an uncached graph cannot possibly be answered in time:
        # the client must surface the typed timeout, never hang.
        release = threading.Event()
        server._executor.submit(release.wait)
        big = Workload("permutation_regular", 256, {"degree": 6}).build(7)
        slow = ServiceClient(server.address, call_timeout=0.3)
        try:
            digest = slow.put_graph(big.n, big.edges)
            with pytest.raises(RpcTimeoutError):
                slow.components(digest)
        finally:
            release.set()
            slow.close()


class TestBackendsBehindService:
    def test_service_over_rpc_backend_matches_local(self):
        graph = build("dumbbell")
        ref = reference_labels(graph)
        backend = RpcBackend(workers=2, min_wire_items=0)
        try:
            with ServiceServer(
                engine="liu_tarjan", backend=backend, config=CONFIG,
                seed=SEED,
            ) as srv:
                with ServiceClient(srv.address) as client:
                    digest = client.put_graph(graph.n, graph.edges)
                    labels = client.components(digest)
                    assert np.array_equal(labels, ref)
                    stats = client.stats()
                    assert stats["backend"] == "rpc"
            # The caller owns an instance backend: still open after the
            # server closed, and it really did push frames.
            assert backend.transport_stats()["op_frames"] > 0
        finally:
            backend.close()


class TestStreamingDigestReuse:
    def test_streaming_prefix_digest_hits_service_cache(self, server):
        graph = build("cycle")
        stream = StreamingConnectivity(graph.n, rng=SEED)
        stream.apply_edges(graph.edges)
        snapshot = stream.current_graph()
        with ServiceClient(server.address) as client:
            digest = client.put_graph(snapshot.n, snapshot.edges)
            # The maintainer's materialisation is deterministic, so its
            # digest is the service's cache key verbatim.
            assert stream.graph_digest() == digest
            labels = client.components(digest)
            before = client.stats()
            # Re-querying through the stream's own digest is a pure
            # cache hit — no recompute for an already-served multiset.
            assert np.array_equal(
                client.components(stream.graph_digest()), labels
            )
            after = client.stats()
        assert after["computes"] == before["computes"]
        assert after["cache_hits"] > before["cache_hits"]
        assert np.array_equal(np.sort(np.unique(labels)), np.unique(labels))
