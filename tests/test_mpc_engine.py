"""Tests for the MPC accounting engine."""

import math

import pytest

from repro.mpc import MPCEngine


class TestCharging:
    def test_initial_state(self):
        engine = MPCEngine(100)
        assert engine.rounds == 0
        assert engine.peak_machines == 1

    def test_explicit_rounds(self):
        engine = MPCEngine(100)
        engine.charge_rounds(5, "bfs levels")
        assert engine.rounds == 5

    def test_sort_charge(self):
        engine = MPCEngine(10)
        engine.charge_sort(1000)
        assert engine.rounds == 3

    def test_mixed_charges_accumulate(self):
        engine = MPCEngine(10)
        engine.charge_sort(1000)      # 3
        engine.charge_shuffle(1000)   # 1
        engine.charge_search(100)     # 2
        assert engine.rounds == 6

    def test_peak_tracking(self):
        engine = MPCEngine(100)
        engine.charge_sort(1000)
        engine.charge_sort(50)
        assert engine.peak_items == 1000
        assert engine.peak_machines == 10

    def test_note_data_volume(self):
        engine = MPCEngine(100)
        engine.note_data_volume(500)
        assert engine.rounds == 0
        assert engine.peak_machines == 5

    def test_reset(self):
        engine = MPCEngine(100)
        engine.charge_sort(1000)
        engine.reset()
        assert engine.rounds == 0
        assert engine.peak_items == 0


class TestPhases:
    def test_phase_grouping(self):
        engine = MPCEngine(10)
        with engine.phase("regularize"):
            engine.charge_sort(100)
        with engine.phase("randomize"):
            engine.charge_shuffle()
            engine.charge_shuffle()
        summaries = {p.name: p.rounds for p in engine.phase_summaries()}
        assert summaries == {"regularize": 2, "randomize": 2}

    def test_nested_phases_roll_up(self):
        engine = MPCEngine(10)
        with engine.phase("outer"):
            with engine.phase("inner"):
                engine.charge_shuffle()
        [summary] = engine.phase_summaries()
        assert summary.name == "outer"
        assert summary.rounds == 1

    def test_unphased_charges(self):
        engine = MPCEngine(10)
        engine.charge_shuffle()
        [summary] = engine.phase_summaries()
        assert summary.name == "(none)"

    def test_summary_dict(self):
        engine = MPCEngine(10)
        with engine.phase("p"):
            engine.charge_sort(100)
        summary = engine.summary()
        assert summary["rounds"] == 2
        assert summary["phases"] == {"p": 2}
        assert summary["machine_memory"] == 10


class TestForDelta:
    def test_memory_is_n_to_delta_times_polylog(self):
        import math

        engine = MPCEngine.for_delta(10**6, 0.5)
        polylog = math.log2(10**6) ** 2
        assert engine.machine_memory == math.ceil(1000 * polylog)

    def test_polylog_exponent_zero_is_bare_power(self):
        engine = MPCEngine.for_delta(10**6, 0.5, polylog_exponent=0)
        assert engine.machine_memory == 1000

    def test_small_n_floor(self):
        engine = MPCEngine.for_delta(4, 0.1)
        assert engine.machine_memory >= 2

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            MPCEngine.for_delta(100, 0.0)
        with pytest.raises(ValueError):
            MPCEngine.for_delta(100, 1.5)

    def test_per_sort_cost_stable_across_scale(self):
        """With s = N^δ·polylog, sorting polylog-factor-inflated data costs
        ≈ 1/δ rounds at every scale — the paper's O(1/δ) charges."""
        for n in (10**4, 10**6, 10**8):
            engine = MPCEngine.for_delta(n, 0.5)
            inflated = n * int(math.log2(n)) ** 2
            assert engine.cost.sort_rounds(inflated) <= 3
