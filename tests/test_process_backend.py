"""Unit and integration tests for the true-parallel ``ProcessBackend``.

The backend inherits all accounting from ``ShardedBackend`` and overrides
only the compute kernels, so the contract under test is twofold: every
kernel must be *bit-identical* to the serial backend (same outputs for
sort/search/reduce/min-label on any input), and every counter the engine
reports must be unchanged by the worker pool.  ``min_parallel_items=0``
forces each operation through the worker processes — without it,
laptop-scale inputs would silently use the serial fallback.
"""

import numpy as np
import pytest

import repro
from repro.bench.workloads import Workload
from repro.mpc import (
    BACKENDS,
    MPCEngine,
    ProcessBackend,
    ShardedBackend,
    backend_names,
    make_backend,
)
from repro.mpc.machine import MachineMemoryError

WORKERS = 3


@pytest.fixture
def pair():
    """A (serial, parallel) backend pair with identical shard caps."""
    serial = ShardedBackend(shard_memory=256)
    parallel = ProcessBackend(shard_memory=256, workers=WORKERS,
                              min_parallel_items=0)
    yield serial, parallel
    parallel.close()


def rng():
    return np.random.default_rng(1234)


# ---------------------------------------------------------------------------
# Kernel parity: bit-identical outputs on every operation
# ---------------------------------------------------------------------------


class TestKernelParity:
    def test_sort_by_key(self, pair):
        serial, parallel = pair
        keys = rng().integers(0, 50, 4000)  # heavy ties exercise stability
        values = rng().integers(0, 10**9, 4000)
        assert np.array_equal(
            serial.sort(values, order_by=keys),
            parallel.sort(values, order_by=keys),
        )

    def test_sort_values_only(self, pair):
        serial, parallel = pair
        values = rng().integers(-(10**6), 10**6, 3000)
        assert np.array_equal(serial.sort(values), parallel.sort(values))

    def test_sort_multicolumn_values(self, pair):
        serial, parallel = pair
        edges = rng().integers(0, 500, (2000, 2))
        keys = rng().integers(0, 100, 2000)
        assert np.array_equal(
            serial.sort(edges, order_by=keys),
            parallel.sort(edges, order_by=keys),
        )

    def test_sort_is_stable_like_argsort(self, pair):
        _, parallel = pair
        keys = np.repeat(np.arange(7), 300)
        rng().shuffle(keys)
        tags = np.arange(keys.size)
        out = parallel.sort(tags, order_by=keys)
        assert np.array_equal(out, tags[np.argsort(keys, kind="stable")])

    def test_search(self, pair):
        serial, parallel = pair
        table = rng().integers(0, 10**9, 1500)
        queries = rng().integers(0, 1500, 5000)
        assert np.array_equal(
            serial.search(table, queries), parallel.search(table, queries)
        )

    @pytest.mark.parametrize("op", ["min", "max", "sum"])
    def test_reduce_by_key(self, pair, op):
        serial, parallel = pair
        keys = rng().integers(0, 200, 6000)
        values = rng().integers(-(10**6), 10**6, 6000)
        u1, r1 = serial.reduce_by_key(keys, values, op=op)
        u2, r2 = parallel.reduce_by_key(keys, values, op=op)
        assert np.array_equal(u1, u2)
        assert np.array_equal(r1, r2)

    def test_reduce_min_matches_first_occurrence_dedup(self, pair):
        # The contraction dedup relies on op="min" over ascending indices
        # reproducing np.unique(keys, return_index=True) exactly.
        _, parallel = pair
        keys = rng().integers(0, 64, 4000)
        idx = np.arange(keys.size)
        unique, representative = parallel.reduce_by_key(keys, idx, op="min")
        expected_unique, expected_first = np.unique(keys, return_index=True)
        assert np.array_equal(unique, expected_unique)
        assert np.array_equal(representative, expected_first)

    def test_min_label_exchange(self, pair):
        serial, parallel = pair
        labels = rng().integers(0, 10**9, 2000)
        send = rng().integers(0, 2000, 7000)
        recv = rng().integers(0, 2000, 7000)
        nl1, inc1 = serial.min_label_exchange(labels, send, recv)
        nl2, inc2 = parallel.min_label_exchange(labels, send, recv)
        assert np.array_equal(nl1, nl2)
        assert np.array_equal(inc1, inc2)

    def test_unknown_reducer_raises(self, pair):
        _, parallel = pair
        with pytest.raises(ValueError):
            parallel.reduce_by_key(np.arange(10), np.arange(10), op="median")

    def test_nonfinite_float_keys_fall_back_to_serial(self, pair):
        serial, parallel = pair
        keys = rng().standard_normal(2000)
        keys[17] = np.nan
        values = np.arange(2000)
        assert np.array_equal(
            serial.sort(values, order_by=keys),
            parallel.sort(values, order_by=keys),
        )

    def test_object_dtype_payloads_fall_back_to_serial(self):
        # PyObject pointers must never cross process boundaries via shm.
        serial = ShardedBackend(shard_memory=64)
        parallel = ProcessBackend(shard_memory=64, workers=2,
                                  min_parallel_items=0)
        try:
            keys = np.arange(600)[::-1].copy()
            values = np.array([f"v{i}" for i in range(600)], dtype=object)
            out = parallel.sort(values, order_by=keys)
            assert np.array_equal(out, serial.sort(values, order_by=keys))
            assert not parallel._procs  # serial fallback: pool never started
        finally:
            parallel.close()

    def test_serial_fallback_below_threshold_is_identical(self):
        serial = ShardedBackend(shard_memory=64)
        parallel = ProcessBackend(shard_memory=64, workers=2)  # default threshold
        try:
            keys = rng().integers(0, 9, 300)
            values = rng().integers(0, 99, 300)
            u1, r1 = serial.reduce_by_key(keys, values, op="min")
            u2, r2 = parallel.reduce_by_key(keys, values, op="min")
            assert np.array_equal(u1, u2) and np.array_equal(r1, r2)
            assert not parallel._procs  # pool never started
        finally:
            parallel.close()


# ---------------------------------------------------------------------------
# Counter parity: the pool must not change the model accounting
# ---------------------------------------------------------------------------


class TestCounterParity:
    def test_all_counters_match_sharded(self, pair):
        serial, parallel = pair
        keys = rng().integers(0, 100, 3000)
        values = rng().integers(0, 10**6, 3000)
        labels = rng().integers(0, 10**6, 1000)
        endpoints = rng().integers(0, 1000, 3000)
        for backend in (serial, parallel):
            backend.scatter(values)
            backend.sort(values, order_by=keys)
            backend.search(labels, endpoints)
            backend.reduce_by_key(keys, values, op="min")
            backend.min_label_exchange(labels, endpoints, endpoints[::-1].copy())
        s, p = serial.stats(), parallel.stats()
        assert (s.shard_count, s.peak_shard_load, s.exchanges,
                s.bytes_exchanged, s.op_counts) == (
            p.shard_count, p.peak_shard_load, p.exchanges,
            p.bytes_exchanged, p.op_counts)

    def test_stats_reports_workers_and_name(self, pair):
        _, parallel = pair
        stats = parallel.stats()
        assert stats.name == "process"
        assert stats.workers == WORKERS
        assert stats.to_json()["workers"] == WORKERS

    def test_max_shards_cap_enforced(self):
        backend = ProcessBackend(shard_memory=16, max_shards=2, workers=2,
                                 min_parallel_items=0)
        try:
            with pytest.raises(MachineMemoryError):
                backend.scatter(np.arange(1000))
        finally:
            backend.close()

    def test_pipeline_charge_sequence_matches_local(self):
        graph = Workload("permutation_regular", 512, {"degree": 6}).build(5)
        engine_local = MPCEngine(1024)
        repro.mpc_connected_components(graph, 0.1, rng=5, engine=engine_local)
        backend = ProcessBackend(workers=2, min_parallel_items=0)
        try:
            engine_proc = MPCEngine(1024, backend=backend)
            repro.mpc_connected_components(graph, 0.1, rng=5, engine=engine_proc)
            seq = [(c.label, c.kind, c.rounds, c.items) for c in engine_local.charges]
            seq_p = [(c.label, c.kind, c.rounds, c.items) for c in engine_proc.charges]
            assert seq == seq_p
            assert engine_proc.summary()["backend"]["workers"] == 2
        finally:
            backend.close()


# ---------------------------------------------------------------------------
# Pool lifecycle and failure handling
# ---------------------------------------------------------------------------


class TestPoolLifecycle:
    def test_close_is_idempotent_and_pool_restarts(self, pair):
        _, parallel = pair
        values = rng().integers(0, 9, 1000)
        first = parallel.sort(values)
        parallel.close()
        parallel.close()
        assert np.array_equal(parallel.sort(values), first)

    def test_context_manager_closes_pool(self):
        with ProcessBackend(shard_memory=128, workers=2,
                            min_parallel_items=0) as backend:
            backend.sort(np.arange(500)[::-1].copy())
            assert backend._procs
        assert not backend._procs

    def test_worker_error_propagates(self, pair):
        _, parallel = pair
        parallel._ensure_pool()
        with pytest.raises(RuntimeError, match="failed"):
            parallel._dispatch([[("no-such-op", {})]])

    def test_worker_death_reports_runtime_error_not_stale_lease(self, pair):
        # A dead worker closes the backend (arena included) while the
        # operation's leases are still held; the cleanup must not mask
        # the worker-death diagnostic with an ArenaLeaseError.
        _, parallel = pair
        parallel._ensure_pool()
        parallel._pipes[0].close()  # simulate a worker dying mid-command
        with pytest.raises(RuntimeError, match="died mid-dispatch"):
            parallel.sort(rng().integers(0, 9, 2000))
        # Pool and arena restart cleanly on the next operation.
        assert np.array_equal(
            parallel.sort(np.arange(10, 0, -1)), np.arange(1, 11)
        )

    def test_reset_keeps_pool_but_clears_counters(self, pair):
        _, parallel = pair
        parallel.sort(rng().integers(0, 9, 2000))
        assert parallel.stats().exchanges > 0
        procs = list(parallel._procs)
        parallel.reset()
        assert parallel.stats().exchanges == 0
        assert parallel._procs == procs  # pool survives engine resets

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            ProcessBackend(workers=0)
        with pytest.raises(ValueError):
            ProcessBackend(min_parallel_items=-1)


# ---------------------------------------------------------------------------
# Registry and selection plumbing
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_registered_in_backends(self):
        assert BACKENDS["process"] is ProcessBackend
        assert "process" in backend_names()

    def test_make_backend_with_options(self):
        backend = make_backend("process", workers=2, min_parallel_items=0)
        try:
            assert isinstance(backend, ProcessBackend)
            assert backend.workers == 2
        finally:
            backend.close()

    def test_default_workers_override_scopes_the_pool_size(self):
        from repro.mpc import default_worker_count, default_workers

        base = default_worker_count()
        with default_workers(7):
            assert default_worker_count() == 7
            backend = ProcessBackend()  # no explicit workers
            assert backend.workers == 7
            backend.close()
        assert default_worker_count() == base
        with default_workers(None):  # no-op scope
            assert default_worker_count() == base

    def test_run_case_threads_workers_into_named_backends(self):
        # --workers must reach backends built by name inside experiments
        # (the bench runner wraps the experiment in default_workers()).
        from repro.bench.registry import register_benchmark, unregister_benchmark
        from repro.bench.runner import run_case

        name = "zz_probe_default_workers"
        params = {"seed": 0}

        @register_benchmark(name, title="probe", headers=["w"],
                            smoke=params, full=params)
        def probe(ctx):
            backend = make_backend(ctx.backend)
            ctx.record("probe", workers=backend.workers)

        try:
            result = run_case(name, suite="smoke", backend="process", workers=7)
            assert result.workers == 7
            assert result.records[0]["workers"] == 7
        finally:
            unregister_benchmark(name)

    def test_pipeline_accepts_process_string(self):
        graph = Workload("cycle", 96).build(3)
        result = repro.mpc_connected_components(graph, 0.1, rng=3,
                                                backend="process")
        local = repro.mpc_connected_components(graph, 0.1, rng=3,
                                               backend="local")
        assert np.array_equal(result.labels, local.labels)
        assert result.rounds == local.rounds

    def test_pipeline_closes_backend_it_constructed(self):
        # A pool started during a backend="process" run must not outlive
        # the call (the pipeline owns string-spec backends).
        from repro.mpc import default_workers

        graph = Workload("permutation_regular", 256, {"degree": 6}).build(3)
        with default_workers(2):
            result = repro.mpc_connected_components(
                graph, 0.1, rng=3, backend="process"
            )
        backend = result.engine.backend
        assert isinstance(backend, ProcessBackend)
        assert not backend._procs  # closed on return
        # Counters survive the close.
        assert backend.stats().op_counts

    def test_pipeline_does_not_close_caller_instance(self):
        graph = Workload("cycle", 96).build(3)
        backend = ProcessBackend(workers=2, min_parallel_items=0)
        try:
            repro.mpc_connected_components(graph, 0.1, rng=3, backend=backend)
            assert backend._procs  # caller-owned pool stays up
        finally:
            backend.close()


# ---------------------------------------------------------------------------
# Arena integration and fused dispatch
# ---------------------------------------------------------------------------


class TestArenaIntegration:
    def test_arena_segments_recycle_across_operations(self, pair):
        _, parallel = pair
        values = rng().integers(0, 10**6, 3000)
        parallel.sort(values)
        cold = parallel.arena_stats()["segments"]
        for _ in range(5):
            parallel.sort(values)
        warm = parallel.arena_stats()
        assert warm["segments"] == cold  # steady state: zero new segments
        assert warm["recycled"] > 0

    def test_no_arena_allocates_per_operation(self):
        backend = ProcessBackend(shard_memory=256, workers=2,
                                 min_parallel_items=0, arena=False)
        try:
            values = rng().integers(0, 10**6, 3000)
            backend.sort(values)
            first = backend.arena_stats()["segments"]
            backend.sort(values)
            assert backend.arena_stats()["segments"] == 2 * first
        finally:
            backend.close()

    def test_arena_toggle_does_not_change_results_or_counters(self):
        keys = rng().integers(0, 100, 4000)
        values = rng().integers(0, 10**6, 4000)
        outputs, counters = [], []
        for use_arena in (True, False):
            backend = ProcessBackend(shard_memory=256, workers=WORKERS,
                                     min_parallel_items=0, arena=use_arena)
            try:
                outputs.append(backend.sort(values, order_by=keys))
                stats = backend.stats()
                counters.append((stats.exchanges, stats.bytes_exchanged,
                                 stats.shard_count, stats.peak_shard_load,
                                 stats.op_counts))
            finally:
                backend.close()
        assert np.array_equal(outputs[0], outputs[1])
        assert counters[0] == counters[1]

    def test_arena_survives_reset(self, pair):
        _, parallel = pair
        parallel.sort(rng().integers(0, 9, 2000))
        segments = parallel.arena_stats()["segments"]
        arena = parallel._arena
        parallel.reset()
        assert parallel._arena is arena  # segments survive engine resets
        assert parallel.arena_stats()["segments"] == segments
        assert parallel.stats().dispatch["barriers"] == 0  # run counters clear

    def test_pinned_inputs_upload_once(self, pair):
        _, parallel = pair
        labels = rng().integers(0, 10**9, 2000)
        send = rng().integers(0, 2000, 7000)
        recv = rng().integers(0, 2000, 7000)
        send.setflags(write=False)
        recv.setflags(write=False)
        first = parallel.min_label_exchange(labels, send, recv)
        copied_once = parallel.shm_bytes_copied
        second = parallel.min_label_exchange(labels, send, recv)
        assert np.array_equal(first[0], second[0])
        assert parallel.arena_stats()["pinned_hits"] == 2  # send and recv
        # The second exchange re-uploaded only the labels, not the 2×7000
        # incidence words.
        assert parallel.shm_bytes_copied - copied_once == labels.nbytes

    def test_min_label_is_one_fused_barrier(self, pair):
        serial, parallel = pair
        labels = rng().integers(0, 10**9, 2000)
        send = rng().integers(0, 2000, 7000)
        recv = rng().integers(0, 2000, 7000)
        nl_s, _ = serial.min_label_exchange(labels, send, recv)
        nl_p, _ = parallel.min_label_exchange(labels, send, recv)
        assert np.array_equal(nl_s, nl_p)
        dispatch = parallel.stats().dispatch
        assert dispatch["barriers"] == 1  # gather + fold fused, one barrier
        assert dispatch["steps"] > dispatch["messages"]  # plans carry >1 step

    def test_stats_embed_arena_and_dispatch(self, pair):
        serial, parallel = pair
        parallel.sort(rng().integers(0, 9, 2000))
        doc = parallel.stats().to_json()
        assert doc["arena"]["segments"] > 0
        assert doc["dispatch"]["barriers"] == 1
        # Normalized schema: in-process backends emit the same keys,
        # zero-filled, so artifact consumers never branch on the backend.
        serial_doc = serial.stats().to_json()
        assert serial_doc["arena"] == {
            key: 0 for key in doc["arena"]
        }
        assert serial_doc["dispatch"]["barriers"] == 0
        assert serial_doc["dispatch"]["plan_barriers"] == {}
        assert set(serial_doc["dispatch"]) == set(doc["dispatch"])
        assert serial_doc["workers"] == 0

    def test_run_case_threads_arena_into_named_backends(self):
        # --no-arena must reach backends built by name inside experiments
        # (the bench runner wraps the experiment in default_arena()).
        from repro.bench.registry import register_benchmark, unregister_benchmark
        from repro.bench.runner import run_case

        name = "zz_probe_default_arena"
        params = {"seed": 0}

        @register_benchmark(name, title="probe", headers=["arena"],
                            smoke=params, full=params)
        def probe(ctx):
            backend = make_backend(ctx.backend)
            ctx.record("probe", use_arena=backend.use_arena)

        try:
            result = run_case(name, suite="smoke", backend="process",
                              arena=False)
            assert result.arena is False
            assert result.records[0]["use_arena"] is False
            result = run_case(name, suite="smoke", backend="process")
            assert result.arena is None
            assert result.records[0]["use_arena"] is True  # default: on
        finally:
            unregister_benchmark(name)
