"""Robustness and failure-injection tests for the full pipeline.

The paper's analysis assumes simple sparse graphs and generous constants;
a production library must behave on everything else: multigraphs, denser
inputs, adversarially bad configurations, and deliberately under-resourced
walks.  The invariant under test everywhere: the returned labels are
*exactly* the true components (the stabilising broadcast + verification
make correctness deterministic), with failures surfacing only as extra
counted rounds.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.core import PipelineConfig, mpc_connected_components, sublinear_connectivity
from repro.graph import (
    Graph,
    complete_graph,
    components_agree,
    connected_components,
    cycle_graph,
    path_graph,
    star_graph,
)

# Failure-injection sweeps are the long tail of the test run; CI's fast
# tier skips them (-m "not slow") and a scheduled job runs them nightly.
pytestmark = pytest.mark.slow

TINY = PipelineConfig(max_walk_length=32, oversample=4, growth=4, max_phases=2)


class TestMultigraphInputs:
    def test_self_loops_everywhere(self):
        g = Graph(6, [(0, 0), (0, 1), (1, 1), (2, 3), (3, 3), (4, 4)])
        result = mpc_connected_components(g, 0.1, config=TINY, rng=0)
        assert components_agree(result.labels, connected_components(g))

    def test_heavy_parallel_edges(self):
        edges = [(0, 1)] * 10 + [(1, 2)] * 5 + [(3, 4)] * 7
        g = Graph(5, edges)
        result = mpc_connected_components(g, 0.1, config=TINY, rng=1)
        assert components_agree(result.labels, connected_components(g))

    def test_single_edge(self):
        g = Graph(2, [(0, 1)])
        result = mpc_connected_components(g, 0.5, config=TINY, rng=2)
        assert result.component_count == 1

    def test_only_self_loop(self):
        g = Graph(1, [(0, 0)])
        result = mpc_connected_components(g, 0.5, config=TINY, rng=3)
        assert result.component_count == 1

    def test_dense_input(self):
        """The algorithm targets sparse graphs but must not break on
        dense ones (they just use more machines)."""
        g = complete_graph(24)
        result = mpc_connected_components(g, 0.5, config=TINY, rng=4)
        assert result.component_count == 1


class TestUnderResourcedWalks:
    """Failure injection: walks far below the mixing time."""

    @pytest.mark.parametrize("cap", [4, 8])
    def test_exactness_survives_bad_walks(self, cap):
        config = TINY.with_overrides(max_walk_length=cap)
        g = cycle_graph(80)  # mixing time >> cap
        result = mpc_connected_components(g, 1e-4, config=config, rng=5)
        assert result.component_count == 1

    def test_bad_walks_cost_visible_rounds(self):
        g, _ = repro.graph.community_graph([100], 8, rng=6)
        good = mpc_connected_components(
            g, 0.2, config=TINY.with_overrides(max_walk_length=64), rng=6
        )
        # Under-walking a weak structure raises the step-3/verify bill.
        weak = cycle_graph(200)
        bad = mpc_connected_components(
            weak, 1e-4, config=TINY.with_overrides(max_walk_length=4), rng=6
        )
        assert bad.cc.broadcast_rounds + bad.verify_rounds >= max(
            1, good.cc.broadcast_rounds + good.verify_rounds
        )

    def test_single_phase_schedule(self):
        config = TINY.with_overrides(max_phases=1)
        g = star_graph(40)
        result = mpc_connected_components(g, 0.3, config=config, rng=7)
        assert result.phase_count == 1
        assert result.component_count == 1


class TestDegenerateConfigs:
    def test_minimal_oversample(self):
        config = PipelineConfig(oversample=1, growth=2, max_walk_length=16)
        g = path_graph(30)
        result = mpc_connected_components(g, 0.01, config=config, rng=8)
        assert result.component_count == 1

    def test_huge_growth_target(self):
        """Leader probability floors at leader_floor instead of vanishing."""
        config = PipelineConfig(growth=1000, max_phases=1, max_walk_length=16)
        g = cycle_graph(40)
        result = mpc_connected_components(g, 0.01, config=config, rng=9)
        assert result.component_count == 1

    def test_layered_mode_on_awkward_input(self):
        g = Graph(8, [(0, 1), (1, 2), (2, 0), (0, 0), (3, 4), (4, 5), (5, 3)])
        config = TINY.with_overrides(max_walk_length=8)
        result = mpc_connected_components(
            g, 0.2, config=config, rng=10, walk_mode="layered"
        )
        assert components_agree(result.labels, connected_components(g))


class TestSublinearRobustness:
    def test_tiny_memory(self):
        g = path_graph(60)
        result = sublinear_connectivity(g, machine_memory=4, rng=0, walk_cap=500)
        assert result.component_count == 1

    def test_memory_larger_than_graph(self):
        g = cycle_graph(30)
        result = sublinear_connectivity(g, machine_memory=10_000, rng=1)
        assert result.component_count == 1

    def test_walk_cap_one_step_regime(self):
        g = star_graph(50)
        result = sublinear_connectivity(g, machine_memory=8, rng=2, walk_cap=4)
        assert components_agree(result.labels, connected_components(g))

    def test_multigraph(self):
        g = Graph(5, [(0, 1), (0, 1), (1, 1), (2, 3), (3, 4), (3, 4)])
        result = sublinear_connectivity(g, machine_memory=8, rng=3)
        assert components_agree(result.labels, connected_components(g))


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(2, 24),
    data=st.data(),
)
def test_pipeline_fuzz_exactness(n, data):
    """Hypothesis fuzz: arbitrary small multigraphs, arbitrary seeds —
    the pipeline must always return the exact components."""
    m = data.draw(st.integers(0, 40))
    edges = data.draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m,
            max_size=m,
        )
    )
    seed = data.draw(st.integers(0, 1000))
    g = Graph(n, edges)
    result = mpc_connected_components(g, 0.05, config=TINY, rng=seed)
    assert components_agree(result.labels, connected_components(g))


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(2, 20),
    data=st.data(),
)
def test_sublinear_fuzz_exactness(n, data):
    """Same fuzz for SublinearConn."""
    m = data.draw(st.integers(0, 30))
    edges = data.draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m,
            max_size=m,
        )
    )
    seed = data.draw(st.integers(0, 1000))
    g = Graph(n, edges)
    result = sublinear_connectivity(g, machine_memory=6, rng=seed, walk_cap=200)
    assert components_agree(result.labels, connected_components(g))
