"""Reporter: JSON schema round-trip, tables, regression compare."""

import json

import pytest

from repro import bench

NAME = "zz_test_report_case"


@pytest.fixture
def case_result():
    @bench.register_benchmark(
        NAME,
        title="report case",
        headers=["x", "rounds"],
        smoke={"seed": 2},
        full={"seed": 2},
    )
    def _case(ctx):
        ctx.timeit("kernel", lambda: 42)
        ctx.record("point-a", row=[1, 7], x=1, sweep_rounds=7,
                   peak_machines=3)
        ctx.record("point-b", row=[2, 9], x=2, sweep_rounds=9,
                   peak_machines=4)
        ctx.check("shape", True)

    yield bench.run_case(NAME, suite="smoke")
    bench.unregister_benchmark(NAME)


def test_format_table_alignment():
    text = bench.format_table("T", ["a", "long"], [[1, 2], [333, 4]])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[2].split(" | ") == ["  a", "long"]
    assert lines[-1].split(" | ") == ["333", "   4"]


def test_render_case_contains_table_and_summary(case_result):
    text = bench.render_case(case_result)
    assert "[zz_test_report_case] report case" in text
    assert "point" not in text  # keys are for JSON, rows for humans
    assert "kernel" in text
    assert "1/1 checks ok" in text


def test_case_to_json_has_required_keys(case_result):
    doc = bench.case_to_json(case_result)
    for key in bench.REQUIRED_KEYS:
        assert key in doc, key
    assert doc["schema_version"] == bench.SCHEMA_VERSION
    assert doc["git_sha"]
    assert len(doc["git_sha"]) >= 7  # a real SHA, not empty
    assert doc["records"][0]["key"] == "point-a"
    assert doc["timings"][0]["label"] == "kernel"


def test_write_load_round_trip(case_result, tmp_path):
    path = bench.write_case_json(case_result, tmp_path)
    assert path.name == f"BENCH_{NAME}.json"
    doc = bench.load_case_json(path)
    assert doc["name"] == NAME
    assert doc["total_seconds"] == pytest.approx(case_result.total_seconds)


def test_validate_rejects_missing_keys(case_result):
    doc = bench.case_to_json(case_result)
    del doc["git_sha"]
    with pytest.raises(ValueError, match="git_sha"):
        bench.validate_case_json(doc)


def test_validate_rejects_keyless_records(case_result):
    doc = bench.case_to_json(case_result)
    doc["records"].append({"x": 3})
    with pytest.raises(ValueError, match="stable key"):
        bench.validate_case_json(doc)


def test_compare_flags_counter_regressions(case_result, tmp_path):
    old = bench.case_to_json(case_result, sha="a" * 40)
    new = bench.case_to_json(case_result, sha="b" * 40)
    new["records"][0]["sweep_rounds"] += 5       # regression
    new["records"][1]["peak_machines"] -= 1      # improvement
    diff = bench.compare_cases(old, new)
    assert not diff["ok"]
    assert [e["field"] for e in diff["regressions"]] == ["sweep_rounds"]
    assert [e["field"] for e in diff["improvements"]] == ["peak_machines"]
    text = bench.format_comparison(diff)
    assert "REGRESSION point-a.sweep_rounds: 7 -> 12" in text


def test_compare_flags_wall_clock_blowups_without_gating(case_result):
    old = bench.case_to_json(case_result)
    new = bench.case_to_json(case_result)
    new["total_seconds"] = old["total_seconds"] * 10
    diff = bench.compare_cases(old, new, time_tolerance=0.5)
    assert diff["total_seconds"]["flagged_slower"]
    # Wall clock is host-dependent: flagged for humans, never a gate.
    assert diff["ok"]
    assert "flagged slower" in bench.format_comparison(diff)


def test_compare_tracks_added_and_removed_keys(case_result):
    old = bench.case_to_json(case_result)
    new = json.loads(json.dumps(old))
    new["records"][1]["key"] = "point-c"
    diff = bench.compare_cases(old, new)
    assert diff["added_keys"] == ["point-c"]
    assert diff["removed_keys"] == ["point-b"]
    assert diff["ok"]  # renames aren't counter regressions


def test_compare_bench_files(case_result, tmp_path):
    path_a = tmp_path / "a" / f"BENCH_{NAME}.json"
    path_b = tmp_path / "b" / f"BENCH_{NAME}.json"
    bench.write_case_json(case_result, tmp_path / "a")
    bench.write_case_json(case_result, tmp_path / "b")
    diff = bench.compare_bench_files(path_a, path_b)
    assert diff["ok"]
    assert diff["regressions"] == []


def test_compare_rejects_different_benchmarks(case_result):
    old = bench.case_to_json(case_result)
    new = bench.case_to_json(case_result)
    new["name"] = "something_else"
    with pytest.raises(ValueError, match="different benchmarks"):
        bench.compare_cases(old, new)
