"""Tests for LeaderElection (Section 6, Lemma 6.4)."""

import numpy as np
import pytest

from repro.analysis import Interval
from repro.core import leader_election
from repro.graph import paper_random_graph
from repro.mpc import MPCEngine


class TestMechanics:
    def test_leaders_point_to_themselves(self):
        edges = np.array([(0, 1), (1, 2), (2, 3)])
        result = leader_election(4, edges, 1.0, rng=0)
        assert np.array_equal(result.leader_of, np.arange(4))

    def test_no_leaders_all_unmatched(self):
        edges = np.array([(0, 1), (1, 2)])
        result = leader_election(3, edges, 0.0, rng=0)
        assert np.all(result.leader_of == -1)
        assert np.array_equal(result.groups, np.arange(3))

    def test_matched_vertices_choose_neighbors(self):
        rng = np.random.default_rng(1)
        g = paper_random_graph(60, 10, rng=rng)
        edges = g.simplify().edges
        result = leader_election(60, edges, 0.3, rng=rng)
        adjacency = {tuple(sorted(e)) for e in edges.tolist()}
        for v in range(60):
            leader = result.leader_of[v]
            if leader >= 0 and leader != v:
                assert (min(v, leader), max(v, leader)) in adjacency
                assert result.is_leader[leader]
                assert not result.is_leader[v]

    def test_chosen_edge_consistent(self):
        rng = np.random.default_rng(2)
        g = paper_random_graph(40, 8, rng=rng)
        edges = g.simplify().edges
        result = leader_election(40, edges, 0.25, rng=rng)
        for v in np.flatnonzero(result.chosen_edge >= 0):
            edge = edges[result.chosen_edge[v]]
            assert v in edge
            assert result.leader_of[v] in edge

    def test_self_loops_never_matched(self):
        edges = np.array([(0, 0), (1, 1)])
        result = leader_election(2, edges, 0.5, rng=0)
        for v in range(2):
            assert result.leader_of[v] in (-1, v)

    def test_groups_are_stars(self):
        rng = np.random.default_rng(3)
        g = paper_random_graph(80, 12, rng=rng)
        edges = g.simplify().edges
        result = leader_election(80, edges, 0.2, rng=rng)
        groups = result.groups
        # Every group representative is a leader or a singleton.
        for v in range(80):
            rep = groups[v]
            assert result.is_leader[rep] or rep == v

    def test_empty_edges(self):
        result = leader_election(5, np.empty((0, 2)), 0.5, rng=0)
        assert np.all(result.groups == np.arange(5))

    def test_engine_two_shuffles(self):
        edges = np.array([(0, 1)])
        engine = MPCEngine(100)
        leader_election(2, edges, 0.5, rng=0, engine=engine)
        assert engine.rounds == 2


class TestEquipartition:
    def test_lemma_6_4_component_sizes(self):
        """On an (almost) d·s-regular random graph with leader probability
        1/d, star sizes concentrate in J(1±3ε)dK (Lemma 6.4 — tested with
        generous statistical slack for the scaled-down s)."""
        rng = np.random.default_rng(4)
        d, s = 20, 50  # degree d*s = 1000
        n = 4000
        g = paper_random_graph(n, d * s, rng=rng)
        edges = g.simplify().edges
        result = leader_election(n, edges, 1.0 / d, rng=rng)
        sizes = result.component_sizes()
        matched_fraction = np.mean(result.leader_of >= 0)
        assert matched_fraction > 0.99
        interval = Interval.one_pm(0.5) * d
        inside = np.mean(
            [(interval.low <= x <= interval.high) for x in sizes]
        )
        assert inside > 0.9

    def test_star_size_mean_tracks_inverse_probability(self):
        rng = np.random.default_rng(5)
        n = 3000
        g = paper_random_graph(n, 400, rng=rng)
        edges = g.simplify().edges
        result = leader_election(n, edges, 1.0 / 10, rng=rng)
        sizes = result.component_sizes()
        assert sizes.mean() == pytest.approx(10, rel=0.35)
