"""Tests for the regularization step (Lemma 4.1)."""

import pytest

from repro.core import regularize
from repro.graph import (
    Graph,
    community_graph,
    components_agree,
    connected_components,
    cycle_graph,
    empirical_mixing_time,
    mixing_time_bound,
    min_component_spectral_gap,
    paper_random_graph,
    spectral_gap,
    star_graph,
)
from repro.mpc import MPCEngine


class TestLemma41Structure:
    def test_2m_vertices_and_regular(self):
        g = paper_random_graph(40, 6, rng=0)
        reg = regularize(g, expander_degree=4, rng=0)
        assert reg.graph.n == 2 * g.m          # Lemma 4.1 part 1
        assert reg.graph.is_regular(5)
        assert reg.regular_degree == 5

    def test_component_correspondence(self):
        g, _ = community_graph([20, 30, 10], 8, rng=1)
        reg = regularize(g, expander_degree=4, rng=1)
        product_labels = connected_components(reg.graph)
        # Lemma 4.1 part 2: one-to-one correspondence.
        assert int(product_labels.max()) == int(connected_components(g).max())

    def test_lift_labels_roundtrip(self):
        g, _ = community_graph([15, 25], 8, rng=2)
        reg = regularize(g, expander_degree=4, rng=2)
        lifted = reg.lift_labels(connected_components(reg.graph))
        assert components_agree(lifted, connected_components(g))

    def test_isolated_vertices_reattached(self):
        g = Graph(6, [(0, 1), (1, 2)])  # vertices 3,4,5 isolated
        reg = regularize(g, expander_degree=4, rng=0)
        assert reg.isolated_vertices.tolist() == [3, 4, 5]
        lifted = reg.lift_labels(connected_components(reg.graph))
        assert components_agree(lifted, connected_components(g))

    def test_all_edges_no_vertices_error(self):
        with pytest.raises(ValueError):
            regularize(Graph(3, []), rng=0)

    def test_star_hub_regularized(self):
        g = star_graph(30)
        reg = regularize(g, expander_degree=4, rng=3)
        assert reg.graph.is_regular(5)
        assert reg.graph.n == 2 * g.m


class TestMixingTimePreservation:
    def test_product_gap_proportional_to_base(self):
        """Lemma 4.1 part 3 via Prop. 2.2: the product's mixing time is
        O(log(n/γ)/λ₂(G)).  We check the contrapositive calibration used by
        the pipeline: the product keeps a constant fraction of the base
        gap (the config's gap_retention default)."""
        from repro.core import PipelineConfig

        g = paper_random_graph(60, 8, rng=4)
        base_gap = spectral_gap(g)
        reg = regularize(g, expander_degree=8, rng=4)
        product_gap = spectral_gap(reg.graph)
        retention = PipelineConfig(expander_degree=8).effective_gap_retention
        assert product_gap >= retention * base_gap

    def test_product_mixes_within_bound(self):
        g = paper_random_graph(30, 8, rng=5)
        reg = regularize(g, expander_degree=8, rng=5)
        gamma = 1e-2
        bound = mixing_time_bound(reg.graph.n, spectral_gap(reg.graph), gamma)
        actual = empirical_mixing_time(reg.graph, gamma, max_steps=5 * bound)
        assert actual <= bound

    def test_weakly_connected_base_slow_product(self):
        cycle = cycle_graph(40)
        expander = paper_random_graph(40, 10, rng=6)
        reg_cycle = regularize(cycle, expander_degree=4, rng=6)
        reg_exp = regularize(expander, expander_degree=4, rng=6)
        assert spectral_gap(reg_cycle.graph) < spectral_gap(reg_exp.graph)


class TestEngine:
    def test_rounds_constant_in_n(self):
        """Lemma 4.1: O(1/δ) rounds regardless of graph size."""
        small_engine = MPCEngine(64)
        regularize(paper_random_graph(30, 6, rng=0), rng=0, engine=small_engine)
        large_engine = MPCEngine(64)
        regularize(paper_random_graph(300, 6, rng=0), rng=0, engine=large_engine)
        assert large_engine.rounds <= small_engine.rounds + 4
