"""Tests for k-wise independent hashing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import MERSENNE_P, KWiseHash, sign_hash


class TestKWiseHash:
    def test_deterministic(self):
        h = KWiseHash(3, rng=0)
        x = np.arange(100)
        assert np.array_equal(h.values(x), h.values(x))

    def test_range(self):
        h = KWiseHash(2, rng=1)
        vals = h.values(np.arange(1000))
        assert vals.min() >= 0
        assert int(vals.max()) < MERSENNE_P

    def test_different_seeds_differ(self):
        x = np.arange(50)
        a = KWiseHash(2, rng=0).values(x)
        b = KWiseHash(2, rng=1).values(x)
        assert not np.array_equal(a, b)

    def test_input_out_of_field_rejected(self):
        h = KWiseHash(2, rng=0)
        with pytest.raises(ValueError):
            h.values(np.array([MERSENNE_P]))

    def test_scalar_value(self):
        h = KWiseHash(2, rng=0)
        assert h.value(7) == int(h.values(np.array([7]))[0])

    def test_pairwise_uniformity(self):
        """Bucket counts under a pairwise hash are near-uniform."""
        h = KWiseHash(2, rng=2)
        buckets = h.values(np.arange(20_000)) % np.uint64(16)
        counts = np.bincount(buckets.astype(np.int64), minlength=16)
        assert counts.min() > 0.8 * 20_000 / 16
        assert counts.max() < 1.2 * 20_000 / 16

    def test_pairwise_collision_rate(self):
        """Pr[h(x) = h(y) mod B] ≈ 1/B over the seed for fixed x != y
        (pairwise independence is a property of the hash family, so we
        average over seeds, not positions — a linear hash maps a fixed
        difference to a fixed difference)."""
        B = 16
        collisions = 0
        trials = 2000
        for seed in range(trials):
            h = KWiseHash(2, rng=seed)
            vals = h.values(np.array([123, 45678])) % np.uint64(B)
            collisions += int(vals[0] == vals[1])
        assert collisions / trials == pytest.approx(1 / B, abs=0.02)

    def test_uniform_floats_in_unit_interval(self):
        h = KWiseHash(2, rng=4)
        u = h.uniform_floats(np.arange(1000))
        assert np.all((0 <= u) & (u < 1))
        assert 0.4 < u.mean() < 0.6

    def test_level_distribution_geometric(self):
        h = KWiseHash(2, rng=5)
        levels = h.level(np.arange(100_000), 30)
        frac0 = np.mean(levels == 0)
        frac1 = np.mean(levels == 1)
        assert frac0 == pytest.approx(0.5, abs=0.02)
        assert frac1 == pytest.approx(0.25, abs=0.02)

    def test_level_clamped(self):
        h = KWiseHash(2, rng=6)
        levels = h.level(np.arange(10_000), 3)
        assert levels.max() <= 3


class TestSignHash:
    def test_values_pm_one(self):
        signs = sign_hash(np.arange(100))
        assert set(np.unique(signs)) <= {-1, 1}

    def test_balanced(self):
        h = KWiseHash(2, rng=7)
        signs = sign_hash(h.values(np.arange(50_000)))
        assert abs(signs.mean()) < 0.02


@settings(max_examples=30, deadline=None)
@given(k=st.integers(1, 5), seed=st.integers(0, 100))
def test_degree_k_polynomial_is_function(k, seed):
    """Same input always hashes identically; distinct polynomials exist."""
    h = KWiseHash(k, rng=seed)
    x = np.array([3, 3, 17])
    vals = h.values(x)
    assert vals[0] == vals[1]
