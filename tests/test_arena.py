"""The shared-memory arena: lease discipline, recycling, and lifecycle.

Three properties make :class:`repro.mpc.ShmArena` a safe allocator
rather than a raw buffer pool, and each is tested here adversarially:

* **no aliasing** — two live leases never share a segment (hypothesis
  drives random acquire/release interleavings and checks pairwise
  ``np.shares_memory``);
* **generation tags** — any access through a released lease raises
  :class:`~repro.mpc.ArenaLeaseError`, even after the segment has been
  recycled to a new lease;
* **no leaks** — ``close()`` unlinks every segment it ever created,
  verified by re-attaching each name and expecting ``FileNotFoundError``
  (the same check a ``/dev/shm`` audit would make).

The pipeline-level tests at the bottom are the regression suite for the
PR 4 bugfix: a backend the pipeline constructed from a string spec must
be released via ``try``/``finally`` even when an exception escapes
mid-run — for both ``mpc_connected_components`` and the adaptive
variant — instead of relying on finalizers that race pool shutdown at
interpreter exit.
"""

import gc
from multiprocessing import shared_memory

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.bench.workloads import Workload
from repro.mpc import (
    ArenaLeaseError,
    MPCEngine,
    ProcessBackend,
    ShmArena,
)


def assert_unlinked(names):
    """Every shared-memory name must be gone from the system namespace."""
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


# ---------------------------------------------------------------------------
# Lease basics
# ---------------------------------------------------------------------------


class TestLeaseBasics:
    def test_share_round_trips_contents(self):
        with ShmArena() as arena:
            data = np.arange(1234, dtype=np.int64)
            lease = arena.share(data)
            assert np.array_equal(lease.view, data)
            assert lease.view.dtype == np.int64

    def test_acquire_view_shape_and_dtype(self):
        with ShmArena() as arena:
            lease = arena.acquire((7, 2), np.float64)
            assert lease.view.shape == (7, 2)
            assert lease.view.dtype == np.float64

    def test_use_after_release_raises_on_every_accessor(self):
        arena = ShmArena()
        lease = arena.share(np.arange(10))
        lease.release()
        for accessor in ("view", "descriptor", "segment_name"):
            with pytest.raises(ArenaLeaseError):
                getattr(lease, accessor)
        arena.close()

    def test_release_is_idempotent(self):
        with ShmArena() as arena:
            lease = arena.acquire((10,), np.int64)
            lease.release()
            lease.release()  # no error, no double-free
            assert not lease.alive

    def test_release_after_close_is_a_noop(self):
        # release() is the cleanup path (with-blocks, finally clauses):
        # it must not raise for leases the arena's close invalidated,
        # or cleanup would mask the error that triggered the close.
        arena = ShmArena()
        with arena.acquire((10,), np.int64) as lease:
            arena.close()
        assert not lease.alive  # __exit__ released without raising

    def test_stale_lease_stays_stale_after_recycling(self):
        # The recycled segment serves a new lease; the old tag must not
        # become valid again just because the segment is in use once more.
        with ShmArena() as arena:
            old = arena.acquire((100,), np.uint8)
            name = old.segment_name
            old.release()
            new = arena.acquire((50,), np.uint8)
            assert new.segment_name == name  # really recycled
            assert arena.stats()["recycled"] == 1
            with pytest.raises(ArenaLeaseError):
                old.view

    def test_lease_context_manager_releases(self):
        with ShmArena() as arena:
            with arena.acquire((10,), np.int64) as lease:
                assert lease.alive
            assert not lease.alive

    def test_acquire_after_close_raises(self):
        arena = ShmArena()
        arena.close()
        with pytest.raises(ArenaLeaseError):
            arena.acquire((10,), np.int64)

    def test_descriptor_carries_cacheability(self):
        with ShmArena(cache_in_workers=True) as persistent:
            assert persistent.share(np.arange(4)).descriptor[3] is True
        with ShmArena(cache_in_workers=False) as transient:
            assert transient.share(np.arange(4)).descriptor[3] is False


# ---------------------------------------------------------------------------
# Property: live leases never alias, whatever the acquire/release order
# ---------------------------------------------------------------------------


class TestNoAliasing:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(1, 5000)),
            min_size=1,
            max_size=25,
        )
    )
    def test_live_leases_never_share_a_segment(self, ops):
        arena = ShmArena()
        live = []
        try:
            for release, size in ops:
                if release and live:
                    lease = live.pop(size % len(live))
                    lease.release()
                    with pytest.raises(ArenaLeaseError):
                        lease.view
                else:
                    live.append(arena.acquire((size,), np.uint8))
                names = [lease.segment_name for lease in live]
                assert len(names) == len(set(names)), "two live leases alias"
                for i in range(len(live)):
                    for j in range(i + 1, len(live)):
                        assert not np.shares_memory(
                            live[i].view, live[j].view
                        )
        finally:
            names = arena.segment_names()
            arena.close()
            assert_unlinked(names)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(1, 4096), min_size=1, max_size=12))
    def test_serial_reuse_allocates_one_segment_per_size_class(self, sizes):
        # Acquire/release one lease at a time: every acquisition after the
        # largest-so-far must be served from the free list.
        with ShmArena() as arena:
            peak = 0
            for size in sizes:
                with arena.acquire((size,), np.uint8):
                    pass
                peak = max(peak, size)
            assert arena.stats()["segments"] <= max(1, peak.bit_length())


# ---------------------------------------------------------------------------
# Pinned read-only inputs
# ---------------------------------------------------------------------------


class TestPinnedInputs:
    def test_writable_arrays_are_not_pinned(self):
        with ShmArena() as arena:
            assert arena.share_pinned(np.arange(10)) is None

    def test_views_are_not_pinned(self):
        with ShmArena() as arena:
            base = np.arange(10)
            view = base[2:]
            view.setflags(write=False)
            assert arena.share_pinned(view) is None

    def test_repeat_shares_hit_the_cache(self):
        with ShmArena() as arena:
            array = np.arange(500)
            array.setflags(write=False)
            first, copied_first = arena.share_pinned(array)
            second, copied_second = arena.share_pinned(array)
            assert first is second
            assert copied_first and not copied_second
            assert arena.stats()["pinned_hits"] == 1
            assert arena.stats()["segments"] == 1
            assert np.array_equal(first.view, np.arange(500))

    def test_mutation_behind_the_flag_is_detected_and_refreshed(self):
        # A writeable view taken before the read-only flag flip can still
        # change the contents; the verified reuse must refresh the shared
        # copy instead of serving stale data.
        with ShmArena() as arena:
            array = np.arange(500)
            backdoor = array[:]
            array.setflags(write=False)
            lease, _ = arena.share_pinned(array)
            backdoor[0] = 999_999
            lease_again, copied = arena.share_pinned(array)
            assert lease_again is lease
            assert copied  # refresh counted as a copy, not a hit
            assert lease.view[0] == 999_999
            assert arena.stats()["pinned_hits"] == 0

    def test_dropping_the_array_releases_the_pin(self):
        with ShmArena() as arena:
            array = np.arange(500)
            array.setflags(write=False)
            lease, _ = arena.share_pinned(array)
            name = lease.segment_name
            del array
            gc.collect()
            assert not lease.alive  # weakref released the lease
            recycled = arena.acquire((100,), np.int64)
            assert recycled.segment_name == name


# ---------------------------------------------------------------------------
# Lifecycle: close() leaves nothing in the system shm namespace
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_close_unlinks_every_segment_by_name(self):
        arena = ShmArena()
        for size in (10, 2000, 70000):
            arena.acquire((size,), np.uint8)
        names = arena.segment_names()
        assert len(names) == 3
        arena.close()
        assert_unlinked(names)

    def test_close_is_idempotent(self):
        arena = ShmArena()
        arena.acquire((10,), np.uint8)
        arena.close()
        arena.close()
        assert arena.closed

    def test_backend_close_unlinks_its_arena(self):
        backend = ProcessBackend(shard_memory=256, workers=2,
                                 min_parallel_items=0)
        backend.sort(np.arange(2000)[::-1].copy())
        names = backend._arena.segment_names()
        assert names
        backend.close()
        assert_unlinked(names)
        # Counters survive the close, and the backend restarts on demand.
        assert backend.arena_stats()["segments"] >= len(names)
        backend.sort(np.arange(1000))
        backend.close()

    def test_no_arena_mode_unlinks_per_operation(self):
        backend = ProcessBackend(shard_memory=256, workers=2,
                                 min_parallel_items=0, arena=False)
        try:
            backend.sort(np.arange(2000)[::-1].copy())
            assert backend._arena is None  # nothing persistent was created
            stats = backend.arena_stats()
            assert stats["segments"] > 0  # transient arenas are accounted
            assert stats["segments_held"] == 0  # ... and already unlinked
        finally:
            backend.close()

    def test_engine_context_manager_closes_backend(self):
        backend = ProcessBackend(shard_memory=256, workers=2,
                                 min_parallel_items=0)
        with MPCEngine(256, backend=backend) as engine:
            engine.backend.sort(np.arange(2000)[::-1].copy())
            assert backend._procs
        assert not backend._procs
        assert backend._arena is None


# ---------------------------------------------------------------------------
# Regression: string-spec backends are released even on exceptions
# ---------------------------------------------------------------------------


class _Boom(RuntimeError):
    pass


@pytest.fixture
def captured_backend(monkeypatch):
    """Capture the backend the pipeline constructs from a string spec,
    forcing every operation through the worker pool.
    """
    import repro.core.pipeline as pipeline_module

    captured = []
    real_make = pipeline_module.make_backend

    def capture(spec, **kwargs):
        backend = real_make(spec, **kwargs)
        if isinstance(backend, ProcessBackend):
            backend.min_parallel_items = 0
            backend.workers = 2
            captured.append(backend)
        return backend

    monkeypatch.setattr(pipeline_module, "make_backend", capture)
    return captured


class TestPipelineReleasesBackendOnError:
    GRAPH = None

    def graph(self):
        if TestPipelineReleasesBackendOnError.GRAPH is None:
            TestPipelineReleasesBackendOnError.GRAPH = Workload(
                "permutation_regular", 256, {"degree": 6}
            ).build(7)
        return TestPipelineReleasesBackendOnError.GRAPH

    def _assert_released(self, captured):
        [backend] = captured
        assert not backend._procs, "worker pool must be stopped"
        assert backend._arena is None, "arena must be retired"
        assert backend.arena_stats()["segments"] > 0  # pool really ran

    def test_mpc_connected_components_releases_on_midrun_error(
        self, captured_backend, monkeypatch
    ):
        import repro.core.pipeline as pipeline_module

        def boom(*args, **kwargs):
            raise _Boom("mid-run failure")

        # Fail in the Verify stage, after Step 3 executed real pooled
        # backend operations (so the pool and arena are live).
        monkeypatch.setattr(pipeline_module, "contract_batch", boom)
        with pytest.raises(_Boom):
            repro.mpc_connected_components(
                self.graph(), 0.1, rng=7, backend="process"
            )
        self._assert_released(captured_backend)

    def test_adaptive_releases_on_midrun_error(
        self, captured_backend, monkeypatch
    ):
        import repro.core.pipeline as pipeline_module

        def boom(*args, **kwargs):
            raise _Boom("mid-run failure")

        # Boom at the adaptive loop's final canonicalisation — inside the
        # guess loop's try block, after pooled operations executed.  (Only
        # pipeline.py's reference is patched; grow/bfs keep their own.)
        monkeypatch.setattr(pipeline_module, "canonical_labels", boom)
        with pytest.raises(_Boom):
            repro.mpc_connected_components_adaptive(
                self.graph(), rng=7, backend="process"
            )
        self._assert_released(captured_backend)

    def test_adaptive_releases_on_success(self, captured_backend):
        result = repro.mpc_connected_components_adaptive(
            self.graph(), rng=7, backend="process"
        )
        assert result.labels.shape == (256,)
        self._assert_released(captured_backend)
