"""Execute every fenced python block in the documentation.

Documentation rots when its examples stop running.  This suite extracts
each ``` ```python`` fence from ``README.md`` and ``docs/*.md`` and
executes it in a fresh namespace, doctest-style: a block that raises (or
whose ``assert`` fails) fails the build.  Blocks must therefore be
self-contained, laptop-fast, and deterministic — which is exactly the
property that makes them good documentation.

Fences marked with any other info string (``text``, ``bash``,
``python-norun`` …) are ignored.
"""

import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Markdown files whose python fences are executable documentation.
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

#: ```python ... ``` fences (exact info string; indented fences excluded).
FENCE = re.compile(r"^```python\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def extract_blocks(path: pathlib.Path) -> "list[str]":
    """All executable python fences of one markdown file, in order."""
    return [match.group(1) for match in FENCE.finditer(path.read_text())]


def block_params():
    params = []
    for path in DOC_FILES:
        if not path.exists():
            continue
        for index, block in enumerate(extract_blocks(path)):
            params.append(
                pytest.param(
                    block, id=f"{path.relative_to(REPO_ROOT)}#{index}"
                )
            )
    return params


def test_documentation_files_exist():
    """The documented tree must actually ship (guards against renames)."""
    for name in ("README.md", "docs/architecture.md", "docs/backends.md",
                 "docs/benchmarks.md", "docs/engines.md",
                 "docs/performance.md", "docs/api.md"):
        assert (REPO_ROOT / name).exists(), f"missing documentation file {name}"


def test_docs_contain_executable_examples():
    """Every docs page must carry at least one executed python example."""
    for path in DOC_FILES:
        assert extract_blocks(path), f"{path.name} has no ```python examples"


@pytest.mark.parametrize("block", block_params())
def test_docs_example_executes(block):
    namespace = {"__name__": "__docs_example__"}
    exec(compile(block, "<docs-example>", "exec"), namespace)  # noqa: S102
