"""Smoke tests: every example runs end-to-end at small scale."""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "social_network_communities",
        "round_complexity_sweep",
        "sketch_streaming_connectivity",
        "lower_bound_adversary",
    ],
)
def test_example_runs_small(name, capsys):
    module = load_example(name)
    result = module.main(scale="small")
    assert result  # every example returns a non-empty summary
    out = capsys.readouterr().out
    assert out.strip()  # and prints something human-readable


def test_examples_have_docstrings():
    for path in EXAMPLES_DIR.glob("*.py"):
        source = path.read_text()
        assert source.lstrip().startswith('"""'), f"{path.name} lacks a docstring"
