"""CLI: list/filter/run/json/compare paths of ``python -m repro.bench``."""

import json

import pytest

from repro import bench
from repro.bench import cli

NAME = "zz_test_cli_case"


@pytest.fixture
def cli_case():
    @bench.register_benchmark(
        NAME,
        title="cli case",
        headers=["x"],
        smoke={"seed": 1},
        full={"seed": 1},
        tags=("cli", "zz-probe"),
    )
    def _case(ctx):
        ctx.record("pt", row=[1], x=1, cli_rounds=4)

    yield
    bench.unregister_benchmark(NAME)


def test_list_mode(cli_case, capsys):
    assert cli.main(["--list", "--filter", NAME]) == 0
    out = capsys.readouterr().out
    assert NAME in out
    assert "cli case" in out
    # The listing names each case's suites and tags so --filter targets
    # can be picked without opening the experiment module.
    assert "[full,smoke]" in out
    assert "tags=cli,zz-probe" in out


def test_list_mode_shows_registered_experiments(capsys):
    assert cli.main(["--list", "--filter", "e20"]) == 0
    out = capsys.readouterr().out
    assert "e20_plan_fusion" in out
    assert "tags=pipeline,backends,plans" in out


def test_list_without_tags_prints_placeholder(capsys):
    name = "zz_test_cli_untagged"

    @bench.register_benchmark(
        name, title="untagged", headers=["x"], smoke={}, full={}
    )
    def _untagged(ctx):  # pragma: no cover - never run
        pass

    try:
        assert cli.main(["--list", "--filter", name]) == 0
        assert "tags=-" in capsys.readouterr().out
    finally:
        bench.unregister_benchmark(name)


def test_no_match_is_an_error(capsys):
    assert cli.main(["--filter", "zz_nothing_matches_this"]) == 2


def test_run_writes_artifact(cli_case, tmp_path, capsys):
    rc = cli.main([
        "--suite", "smoke", "--filter", NAME, "--json-dir", str(tmp_path),
    ])
    assert rc == 0
    artifact = tmp_path / f"BENCH_{NAME}.json"
    assert artifact.exists()
    doc = json.loads(artifact.read_text())
    assert doc["name"] == NAME
    assert doc["suite"] == "smoke"
    out = capsys.readouterr().out
    assert "ran 1/1 benchmarks" in out


def test_no_json_flag(cli_case, tmp_path, capsys):
    rc = cli.main([
        "--suite", "smoke", "--filter", NAME, "--json-dir", str(tmp_path),
        "--no-json",
    ])
    assert rc == 0
    assert not list(tmp_path.glob("BENCH_*.json"))


def test_failing_case_sets_exit_code(tmp_path, capsys):
    @bench.register_benchmark(
        "zz_test_cli_failing",
        title="failing",
        headers=["x"],
        smoke={"seed": 1},
        full={"seed": 1},
    )
    def _failing(ctx):
        ctx.check("never-true", False)

    try:
        rc = cli.main([
            "--filter", "zz_test_cli_failing", "--json-dir", str(tmp_path),
        ])
        assert rc == 1
        assert "FAILED zz_test_cli_failing" in capsys.readouterr().err
    finally:
        bench.unregister_benchmark("zz_test_cli_failing")


def test_compare_mode(cli_case, tmp_path, capsys):
    result = bench.run_case(NAME, suite="smoke")
    old_dir, new_dir = tmp_path / "old", tmp_path / "new"
    old_path = bench.write_case_json(result, old_dir)
    new_path = bench.write_case_json(result, new_dir)
    assert cli.main(["--compare", str(old_path), str(new_path)]) == 0

    doc = json.loads(new_path.read_text())
    doc["records"][0]["cli_rounds"] += 1
    new_path.write_text(json.dumps(doc))
    assert cli.main(["--compare", str(old_path), str(new_path)]) == 1
    assert "REGRESSION" in capsys.readouterr().out
