"""Engine/backend cross-product certification.

The engine layer's contract (``docs/engines.md``) is differential: every
registered connectivity engine must produce the *exact* component
partition — bit-identical across all execution backends — and its plan
stream must capture and replay like the paper pipeline's.  This module
gates:

* **Differential** — ``liu_tarjan`` and ``exponentiation`` vs the
  union-find ground truth across all 12 generator families on
  local/sharded/process±arena, with bit-identical labels and equal
  round counts;
* **Replay** — a hypothesis property: each engine's recorded plans
  replay bit-identically (labels and exchange counters) on all three
  backends, for arbitrary random multigraphs;
* **Portfolio** — the dispatcher never returns labels differing from
  the paper engine, and its feature rules pick the documented regimes;
* **Registry and front-end dispatch** — ``engine="paper"`` is
  bit-identical to the default path, unknown names fail loudly, and the
  ``engine=``/``backend=`` seam composes.
"""

import pathlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.bench.workloads import Workload, family_names
from repro.engines import (
    ConnectivityEngine,
    choose_engine,
    engine_names,
    estimate_features,
    get_engine,
    resolve_engine,
)
from repro.graph import Graph, canonical_labels, components_agree
from repro.graph.union_find import DisjointSetUnion
from repro.mpc import MPCEngine, ProcessBackend, ShardedBackend
from repro.mpc.plan import replay

CONFIG = repro.PipelineConfig(
    delta=0.5, expander_degree=4, max_walk_length=32, oversample=4, max_phases=2
)
GAP_BOUND = 0.1
SEED = 23
SIZE_OVERRIDES = {"complete": 64, "hypercube": 64}
NEW_ENGINES = ("liu_tarjan", "exponentiation")


def union_find_truth(graph) -> np.ndarray:
    """Sequential ground truth: DSU over the edge list."""
    dsu = DisjointSetUnion(graph.n)
    dsu.union_edges(graph.edges)
    return canonical_labels(dsu.labels())


def build(family: str, n: int = 192):
    return Workload(family, SIZE_OVERRIDES.get(family, n)).build(SEED)


def run_engine(graph, engine: str, backend: str):
    """One engine run through the public front-end on a named backend."""
    if backend == "process":
        backend = ProcessBackend(workers=2, min_parallel_items=0)
    elif backend == "process-noarena":
        backend = ProcessBackend(workers=2, min_parallel_items=0, arena=False)
    try:
        return repro.mpc_connected_components(
            graph, GAP_BOUND, config=CONFIG, rng=SEED, engine=engine,
            backend=backend,
        )
    finally:
        if isinstance(backend, ProcessBackend):
            backend.close()


# ---------------------------------------------------------------------------
# Differential: both new engines, all 12 families, all backends
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", NEW_ENGINES)
@pytest.mark.parametrize("family", family_names())
class TestEngineDifferential:
    def test_all_backends_match_truth(self, family, engine):
        graph = build(family)
        truth = union_find_truth(graph)
        local = run_engine(graph, engine, "local")
        sharded = run_engine(graph, engine, "sharded")
        process = run_engine(graph, engine, "process")
        noarena = run_engine(graph, engine, "process-noarena")
        assert components_agree(local.labels, truth)
        # Stronger than agreement: engines canonicalise, so the labels
        # are bit-identical to the canonical truth and across backends.
        assert np.array_equal(local.labels, truth)
        assert np.array_equal(local.labels, sharded.labels)
        assert np.array_equal(local.labels, process.labels)
        assert np.array_equal(local.labels, noarena.labels)
        assert (local.rounds == sharded.rounds == process.rounds
                == noarena.rounds)


@pytest.mark.parametrize("family", family_names())
def test_portfolio_matches_paper_labels(family):
    """The dispatcher must never change the answer, only the cost."""
    graph = build(family)
    paper = repro.mpc_connected_components(
        graph, GAP_BOUND, config=CONFIG, rng=SEED, engine="paper"
    )
    portfolio = repro.mpc_connected_components(
        graph, GAP_BOUND, config=CONFIG, rng=SEED, engine="portfolio"
    )
    assert np.array_equal(portfolio.labels, paper.labels)


# ---------------------------------------------------------------------------
# Hypothesis: recorded plans replay bit-identically on all three backends
# ---------------------------------------------------------------------------


@st.composite
def multigraphs(draw):
    """Arbitrary small multigraphs (self-loops and parallel edges too)."""
    n = draw(st.integers(min_value=2, max_value=40))
    m = draw(st.integers(min_value=0, max_value=60))
    endpoint = st.integers(min_value=0, max_value=n - 1)
    edges = draw(
        st.lists(st.tuples(endpoint, endpoint), min_size=m, max_size=m)
    )
    return Graph(n, np.array(edges, dtype=np.int64).reshape(-1, 2))


@pytest.mark.parametrize("engine", NEW_ENGINES)
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(graph=multigraphs())
def test_engine_trace_replays_on_all_backends(tmp_path, engine, graph):
    """Capture on sharded; replay must be bit-identical on every backend.

    ``ReplayResult.ok`` certifies every plan output (including the final
    labels) matches the capture bit-for-bit; the exchange counters must
    reproduce exactly on the enforced backends and be zero on the
    accounting-only local backend.
    """
    path = pathlib.Path(tmp_path) / f"{engine}-{graph.n}-{graph.m}.json"
    backend = ShardedBackend()
    with MPCEngine.for_delta(
        max(graph.n + graph.m, 2), CONFIG.delta, backend=backend,
        trace=str(path),
    ) as mpc:
        result = get_engine(engine).run(
            graph, GAP_BOUND, config=CONFIG, rng=SEED, mpc=mpc
        )
        captured = backend.stats().exchanges
    assert np.array_equal(result.labels, union_find_truth(graph))
    for name in ("local", "sharded", "process"):
        replayed = replay(path, backend=name)
        assert replayed.ok
        expected = 0 if name == "local" else captured
        assert replayed.stats.exchanges == expected


# ---------------------------------------------------------------------------
# Portfolio feature rules
# ---------------------------------------------------------------------------


class TestPortfolioDispatch:
    def test_low_diameter_picks_exponentiation(self):
        features = estimate_features(build("star"), GAP_BOUND)
        assert features.est_diameter <= 2
        assert choose_engine(features) == "exponentiation"

    def test_high_diameter_weak_gap_picks_liu_tarjan(self):
        features = estimate_features(build("path"), GAP_BOUND)
        assert features.est_diameter == 191
        assert choose_engine(features) == "liu_tarjan"

    def test_high_diameter_strong_gap_picks_paper(self):
        features = estimate_features(build("path"), 0.5)
        assert choose_engine(features) == "paper"

    def test_empty_graph_features(self):
        features = estimate_features(Graph(5, np.empty((0, 2), dtype=np.int64)), 0.1)
        assert features.est_diameter == 0 and features.m == 0


# ---------------------------------------------------------------------------
# Registry and front-end dispatch
# ---------------------------------------------------------------------------


class TestEngineRegistry:
    def test_registered_names(self):
        assert engine_names() == [
            "exponentiation", "liu_tarjan", "paper", "portfolio",
        ]

    def test_get_engine_unknown_name(self):
        with pytest.raises(KeyError, match="liu_tarjan"):
            get_engine("nope")

    def test_resolve_engine_passthrough_and_typeerror(self):
        instance = get_engine("paper")
        assert resolve_engine(instance) is instance
        assert resolve_engine("paper") is instance
        with pytest.raises(TypeError):
            resolve_engine(42)

    def test_base_run_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ConnectivityEngine().run(build("cycle", 8), GAP_BOUND)

    def test_paper_engine_matches_default_path(self):
        graph = build("permutation_regular", 256)
        default = repro.mpc_connected_components(
            graph, GAP_BOUND, config=CONFIG, rng=SEED
        )
        named = repro.mpc_connected_components(
            graph, GAP_BOUND, config=CONFIG, rng=SEED, engine="paper"
        )
        assert np.array_equal(default.labels, named.labels)
        assert default.rounds == named.rounds
        summaries = [p.to_json() for p in default.engine.phase_summaries()]
        assert summaries == [p.to_json() for p in named.engine.phase_summaries()]

    def test_named_engine_with_backend_instance_stays_open(self):
        graph = build("cycle", 64)
        backend = ShardedBackend()
        result = repro.mpc_connected_components(
            graph, GAP_BOUND, config=CONFIG, rng=SEED,
            engine="liu_tarjan", backend=backend,
        )
        assert backend.stats().plans > 0
        assert np.array_equal(result.labels, union_find_truth(graph))

    def test_mpc_engine_argument_still_accounts(self):
        graph = build("cycle", 64)
        mpc = MPCEngine(256)
        result = repro.mpc_connected_components(
            graph, GAP_BOUND, config=CONFIG, rng=SEED, engine=mpc
        )
        assert result.engine is mpc and mpc.rounds == result.rounds

    def test_engines_ignore_gap_and_seed(self):
        """The label-propagation engines are deterministic: gap bound
        and RNG seed must not change anything."""
        graph = build("dumbbell", 128)
        runs = [
            repro.mpc_connected_components(
                graph, gap, config=CONFIG, rng=seed, engine="exponentiation"
            )
            for gap, seed in ((0.1, 1), (0.9, 2))
        ]
        assert np.array_equal(runs[0].labels, runs[1].labels)
        assert runs[0].rounds == runs[1].rounds
