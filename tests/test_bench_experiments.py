"""End-to-end: one real registered experiment through runner + artifacts.

The full smoke suite runs in CI (`python -m repro.bench --suite smoke`);
here we pin the contract on a cheap representative case so tier-1 keeps
covering the integration without paying the whole sweep.
"""

import pytest

from repro import bench


@pytest.fixture(scope="module")
def e04_result():
    return bench.run_case("e04_regularization", suite="smoke")


def test_real_case_runs_and_checks(e04_result):
    assert e04_result.suite == "smoke"
    assert e04_result.records
    assert e04_result.rows
    assert all(c["ok"] for c in e04_result.checks)


def test_real_case_artifact_round_trip(e04_result, tmp_path):
    path = bench.write_case_json(e04_result, tmp_path)
    doc = bench.load_case_json(path)
    assert doc["name"] == "e04_regularization"
    assert doc["records"][0]["key"].startswith("paper_random")
    # Self-compare is clean: no counter moves, no wall-clock flag.
    diff = bench.compare_bench_files(path, path)
    assert diff["ok"]


def test_engine_summary_is_embedded_and_serializable():
    result = bench.run_case("e01_rounds_vs_n", suite="smoke")
    record = result.records[0]
    engine = record["pipeline_engine"]
    assert engine["rounds"] > 0
    assert engine["peak_machines"] >= 1
    assert isinstance(engine["phase_breakdown"], list)
    assert {"name", "rounds", "charges"} <= set(engine["phase_breakdown"][0])
