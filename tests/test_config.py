"""Tests for PipelineConfig schedules and the paper-constant reference."""

import pytest

from repro.core import PipelineConfig, paper_constants


class TestValidation:
    def test_defaults_valid(self):
        config = PipelineConfig()
        assert config.expander_degree % 2 == 0

    def test_odd_expander_degree_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(expander_degree=7)

    def test_growth_below_two_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(growth=1)

    def test_with_overrides(self):
        config = PipelineConfig().with_overrides(growth=8)
        assert config.growth == 8
        assert PipelineConfig().growth == 4  # original untouched


class TestSchedules:
    def test_phase_count_is_log_log(self):
        """F grows like log log n (Lemma 6.7's phase bound)."""
        config = PipelineConfig(growth=4, max_phases=10, target_size_exponent=1 / 3)
        f_small = config.phase_count(100)
        f_large = config.phase_count(10**9)
        assert f_small <= f_large
        assert f_large <= 5  # log2 log4 (1e9^(1/3)) ~ 2.4

    def test_phase_count_capped(self):
        config = PipelineConfig(max_phases=2)
        assert config.phase_count(10**12) <= 2

    def test_growth_schedule_squares(self):
        """Δ_i = Δ^{2^{i-1}} (Eq. 3)."""
        config = PipelineConfig(growth=4, max_phases=3, target_size_exponent=0.9)
        schedule = config.growth_schedule(10**8)
        for first, second in zip(schedule, schedule[1:]):
            assert second == first**2

    def test_schedule_reaches_target(self):
        config = PipelineConfig(growth=4, max_phases=8)
        n = 10**6
        f = config.phase_count(n)
        size_after = config.growth ** (2**f - 1)
        assert size_after >= n ** config.target_size_exponent or f == config.max_phases

    def test_walk_count(self):
        config = PipelineConfig()
        n = 10_000
        assert config.walk_count(n) == config.phase_count(n) * config.batch_half_degree

    def test_batch_half_degree(self):
        config = PipelineConfig(growth=4, oversample=8)
        assert config.batch_half_degree == 16


class TestWalkLength:
    def test_longer_for_smaller_gap(self):
        config = PipelineConfig()
        assert config.walk_length(1000, 0.01) > config.walk_length(1000, 0.5)

    def test_capped(self):
        config = PipelineConfig(max_walk_length=64)
        assert config.walk_length(10**6, 1e-9) == 64

    def test_floor(self):
        config = PipelineConfig()
        assert config.walk_length(10, 2.0) >= 4

    def test_gap_retention_lengthens_walks(self):
        tight = PipelineConfig(gap_retention=1.0)
        loose = PipelineConfig(gap_retention=0.1)
        assert loose.walk_length(1000, 0.3) > tight.walk_length(1000, 0.3)


class TestPaperConstants:
    def test_constants_at_representative_n(self):
        consts = paper_constants(10**5)
        assert consts["expander_degree"] == 100
        # eps = (100 log n)^-2 is tiny; s = 1e6 log n / eps^2 is astronomical.
        assert consts["eps"] < 1e-5
        assert consts["oversample"] > 1e12
        assert consts["phases"] >= 1

    def test_walks_per_vertex_is_50_log_n(self):
        import math

        consts = paper_constants(1000)
        assert consts["walks_per_vertex"] == pytest.approx(50 * math.log(1000))
