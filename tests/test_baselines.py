"""Tests for the baseline connectivity algorithms."""

import numpy as np
import pytest

from repro.baselines import (
    min_label_propagation,
    pointer_jumping_propagation,
    random_mate_components,
    shiloach_vishkin_components,
)
from repro.graph import (
    Graph,
    community_graph,
    components_agree,
    connected_components,
    cycle_graph,
    paper_random_graph,
    path_graph,
    permutation_regular_graph,
    star_graph,
)
from repro.mpc import MPCEngine

ALL_BASELINES = [
    ("min-label", lambda g, rng: min_label_propagation(g).labels),
    ("hash-to-min", lambda g, rng: pointer_jumping_propagation(g).labels),
    ("random-mate", lambda g, rng: random_mate_components(g, rng=rng).labels),
    ("shiloach-vishkin", lambda g, rng: shiloach_vishkin_components(g).labels),
]


class TestCorrectness:
    @pytest.mark.parametrize("name,solver", ALL_BASELINES, ids=[b[0] for b in ALL_BASELINES])
    @pytest.mark.parametrize(
        "make",
        [
            lambda: path_graph(40),
            lambda: cycle_graph(33),
            lambda: star_graph(25),
            lambda: Graph(7, [(0, 1), (2, 3), (3, 4)]),
            lambda: Graph(5, []),
            lambda: paper_random_graph(90, 4, rng=0),
            lambda: community_graph([25, 35], 6, rng=1)[0],
        ],
        ids=["path", "cycle", "star", "multi", "empty", "random", "community"],
    )
    def test_matches_reference(self, name, solver, make):
        g = make()
        labels = solver(g, np.random.default_rng(0))
        assert components_agree(labels, connected_components(g))

    @pytest.mark.parametrize("seed", range(5))
    def test_random_fuzz_all_agree(self, seed):
        g = paper_random_graph(60, 3, rng=seed)
        truth = connected_components(g)
        rng = np.random.default_rng(seed)
        for name, solver in ALL_BASELINES:
            assert components_agree(solver(g, rng), truth), name


class TestRoundScaling:
    def test_min_label_rounds_linear_on_path(self):
        result = min_label_propagation(path_graph(64))
        assert result.rounds == 63

    def test_pointer_jumping_logarithmic_on_path(self):
        result = pointer_jumping_propagation(path_graph(256))
        assert result.rounds <= 5 * int(np.log2(256))

    def test_pointer_jumping_beats_plain_on_path(self):
        plain = min_label_propagation(path_graph(128)).rounds
        jumped = pointer_jumping_propagation(path_graph(128)).rounds
        assert jumped < plain / 3

    def test_random_mate_iterations_logarithmic(self):
        g = permutation_regular_graph(512, 6, rng=0)
        result = random_mate_components(g, rng=1)
        assert result.iterations <= 4 * int(np.log2(512))

    def test_random_mate_constant_factor_shrink(self):
        """Components shrink by a roughly constant factor per iteration —
        the Section 3 contrast with GrowComponents' quadratic growth."""
        g = permutation_regular_graph(2048, 8, rng=1)
        result = random_mate_components(g, rng=2)
        history = result.components_per_iteration
        for before, after in zip(history, history[1:]):
            if before > 50:  # ratios are noisy near the end
                assert after >= before / 10

    def test_sv_iterations_logarithmic(self):
        g = permutation_regular_graph(1024, 6, rng=2)
        result = shiloach_vishkin_components(g)
        assert result.iterations <= 4 * int(np.log2(1024))

    def test_engines_charged(self):
        g = cycle_graph(32)
        for runner in (
            lambda e: min_label_propagation(g, engine=e),
            lambda e: pointer_jumping_propagation(g, engine=e),
            lambda e: random_mate_components(g, rng=0, engine=e),
            lambda e: shiloach_vishkin_components(g, engine=e),
        ):
            engine = MPCEngine(64)
            runner(engine)
            assert engine.rounds > 0
